#include "telemetry/csv_export.hh"

#include <cstdio>

#include "common/logging.hh"

namespace mmgpu::telemetry
{

namespace
{

std::string
formatNumber(double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return buffer;
}

} // namespace

CsvWriter
timelineCsv(const Telemetry &tel)
{
    const Timeline *tl = tel.timeline();
    mmgpu_assert(tl != nullptr,
                 "timeline CSV requested with sampling disabled");
    auto tracks = tl->tracks();

    std::vector<std::string> header;
    header.reserve(tracks.size() + 1);
    header.push_back("t_us");
    for (const TimelineTrack *track : tracks)
        header.push_back(track->path());

    CsvWriter csv(std::move(header));
    double us_per_cycle = 1.0e6 / tel.runInfo().clockHz;
    for (std::size_t b = 0; b < tl->binCount(); ++b) {
        std::vector<std::string> row;
        row.reserve(tracks.size() + 1);
        row.push_back(formatNumber(static_cast<double>(b) *
                                   tl->dt() * us_per_cycle));
        for (const TimelineTrack *track : tracks)
            row.push_back(formatNumber(track->valueAt(b)));
        csv.addRow(std::move(row));
    }
    return csv;
}

CsvWriter
countersCsv(const Telemetry &tel)
{
    CsvWriter csv({"kind", "path", "value", "peak"});
    for (const Counter *counter : tel.counters().counters())
        csv.addRow({"counter", counter->path,
                    formatNumber(counter->value), ""});
    for (const Gauge *gauge : tel.counters().gauges())
        csv.addRow({"gauge", gauge->path,
                    formatNumber(gauge->value),
                    formatNumber(gauge->peak)});
    return csv;
}

bool
writeTimelineCsv(const Telemetry &tel, const std::string &path)
{
    if (tel.timeline() == nullptr) {
        warn("no timeline recorded; not writing ", path);
        return false;
    }
    return timelineCsv(tel).writeTo(path);
}

bool
writeCountersCsv(const Telemetry &tel, const std::string &path)
{
    return countersCsv(tel).writeTo(path);
}

} // namespace mmgpu::telemetry
