#include "telemetry/counter_registry.hh"

#include "common/logging.hh"

namespace mmgpu::telemetry
{

Counter &
CounterRegistry::counter(const std::string &path)
{
    mmgpu_assert(!path.empty(), "telemetry counter with empty path");
    auto it = counterIndex.find(path);
    if (it != counterIndex.end())
        return *it->second;
    counterStore.push_back(Counter{path, 0.0});
    Counter *created = &counterStore.back();
    counterIndex.emplace(path, created);
    return *created;
}

Gauge &
CounterRegistry::gauge(const std::string &path)
{
    mmgpu_assert(!path.empty(), "telemetry gauge with empty path");
    auto it = gaugeIndex.find(path);
    if (it != gaugeIndex.end())
        return *it->second;
    gaugeStore.push_back(Gauge{path, 0.0, 0.0});
    Gauge *created = &gaugeStore.back();
    gaugeIndex.emplace(path, created);
    return *created;
}

const Counter *
CounterRegistry::findCounter(const std::string &path) const
{
    auto it = counterIndex.find(path);
    return it == counterIndex.end() ? nullptr : it->second;
}

const Gauge *
CounterRegistry::findGauge(const std::string &path) const
{
    auto it = gaugeIndex.find(path);
    return it == gaugeIndex.end() ? nullptr : it->second;
}

std::vector<const Counter *>
CounterRegistry::counters() const
{
    std::vector<const Counter *> sorted;
    sorted.reserve(counterIndex.size());
    for (const auto &[path, counter] : counterIndex)
        sorted.push_back(counter);
    return sorted;
}

std::vector<const Gauge *>
CounterRegistry::gauges() const
{
    std::vector<const Gauge *> sorted;
    sorted.reserve(gaugeIndex.size());
    for (const auto &[path, gauge] : gaugeIndex)
        sorted.push_back(gauge);
    return sorted;
}

std::vector<const Counter *>
CounterRegistry::countersUnder(const std::string &prefix) const
{
    std::vector<const Counter *> matched;
    for (auto it = counterIndex.lower_bound(prefix);
         it != counterIndex.end(); ++it) {
        const std::string &path = it->first;
        if (path.compare(0, prefix.size(), prefix) != 0)
            break;
        if (path.size() == prefix.size() ||
            path[prefix.size()] == '/')
            matched.push_back(it->second);
    }
    return matched;
}

void
CounterRegistry::reset()
{
    for (auto &counter : counterStore)
        counter.value = 0.0;
    for (auto &gauge : gaugeStore) {
        gauge.value = 0.0;
        gauge.peak = 0.0;
    }
}

} // namespace mmgpu::telemetry
