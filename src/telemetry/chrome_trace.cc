#include "telemetry/chrome_trace.hh"

#include <fstream>
#include <map>

#include "common/logging.hh"

namespace mmgpu::telemetry
{

namespace
{

/** Top-level path segment ("gpm0/hbm" -> "gpm0"). */
std::string
groupOf(const std::string &path)
{
    auto slash = path.find('/');
    return slash == std::string::npos ? path : path.substr(0, slash);
}

/** Path without its top-level segment ("gpm0/hbm" -> "hbm"). */
std::string
leafOf(const std::string &path)
{
    auto slash = path.find('/');
    return slash == std::string::npos ? path
                                      : path.substr(slash + 1);
}

} // namespace

JsonValue
chromeTraceJson(const Telemetry &tel)
{
    const RunInfo &info = tel.runInfo();
    double us_per_cycle = 1.0e6 / info.clockHz;

    JsonValue events = JsonValue::array();

    const Timeline *tl = tel.timeline();
    std::map<std::string, unsigned> pids;
    if (tl) {
        // Stable pid per top-level group, in sorted order.
        for (const TimelineTrack *track : tl->tracks()) {
            std::string group = groupOf(track->path());
            if (!pids.count(group)) {
                unsigned pid =
                    static_cast<unsigned>(pids.size());
                pids.emplace(group, pid);
            }
        }
        for (const auto &[group, pid] : pids) {
            JsonValue meta = JsonValue::object();
            meta.set("name", "process_name");
            meta.set("ph", "M");
            meta.set("pid", pid);
            meta.set("args",
                     JsonValue::object().set("name", group));
            events.push(std::move(meta));
        }

        // One counter series per track, one sample per bin, plus a
        // closing sample at the run end so the last step renders.
        for (const TimelineTrack *track : tl->tracks()) {
            unsigned pid = pids.at(groupOf(track->path()));
            std::string name = leafOf(track->path());
            for (std::size_t b = 0; b < track->binCount(); ++b) {
                JsonValue event = JsonValue::object();
                event.set("name", name);
                event.set("ph", "C");
                event.set("pid", pid);
                event.set("ts", static_cast<double>(b) * tl->dt() *
                                    us_per_cycle);
                event.set("args",
                          JsonValue::object().set(
                              "value", track->valueAt(b)));
                events.push(std::move(event));
            }
            if (track->binCount() > 0) {
                JsonValue event = JsonValue::object();
                event.set("name", name);
                event.set("ph", "C");
                event.set("pid", pid);
                event.set("ts", tl->duration() * us_per_cycle);
                event.set("args", JsonValue::object().set(
                                      "value", 0.0));
                events.push(std::move(event));
            }
        }
    }

    // Registry counters/gauges as one global instant event.
    JsonValue totals = JsonValue::object();
    for (const Counter *counter : tel.counters().counters())
        totals.set(counter->path, counter->value);
    for (const Gauge *gauge : tel.counters().gauges())
        totals.set(gauge->path, gauge->value);
    JsonValue instant = JsonValue::object();
    instant.set("name", "counters");
    instant.set("ph", "I");
    instant.set("s", "g");
    instant.set("pid", 0);
    instant.set("ts", info.endCycles * us_per_cycle);
    instant.set("args", std::move(totals));
    events.push(std::move(instant));

    JsonValue doc = JsonValue::object();
    doc.set("displayTimeUnit", "ms");
    doc.set("traceEvents", std::move(events));
    JsonValue other = JsonValue::object();
    other.set("config", info.configName);
    other.set("workload", info.workloadName);
    other.set("gpmCount", info.gpmCount);
    other.set("clockHz", info.clockHz);
    other.set("durationCycles", info.endCycles);
    if (tl) {
        other.set("timelineDtCycles", tl->dt());
        other.set("timelineBins",
                  static_cast<unsigned long long>(tl->binCount()));
    }
    doc.set("otherData", std::move(other));
    return doc;
}

bool
writeChromeTrace(const Telemetry &tel, const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot write Chrome trace to ", path);
        return false;
    }
    chromeTraceJson(tel).write(out);
    out << "\n";
    return static_cast<bool>(out);
}

} // namespace mmgpu::telemetry
