/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto "JSON Object Format")
 * export of a Telemetry collection.
 *
 * Every timeline track becomes one counter series ("ph":"C"), grouped
 * into a trace "process" per top-level path segment — so a 4-GPM run
 * shows gpm0..gpm3 plus a link group, one counter track each, exactly
 * the per-GPM / per-link lanes the paper's Figure 8/10 analyses need.
 * Registry counters and gauges are attached as one global instant
 * event at the end of the run.
 *
 * Timestamps are emitted in microseconds of simulated time (the
 * format's native unit), converted from core cycles with the run's
 * clock frequency.
 */

#ifndef MMGPU_TELEMETRY_CHROME_TRACE_HH
#define MMGPU_TELEMETRY_CHROME_TRACE_HH

#include <string>

#include "common/json.hh"
#include "telemetry/telemetry.hh"

namespace mmgpu::telemetry
{

/** Build the full Chrome-trace JSON document for @p tel. */
JsonValue chromeTraceJson(const Telemetry &tel);

/**
 * Write chromeTraceJson(@p tel) to @p path.
 * @return true on success (failure warns, mirroring CsvWriter).
 */
bool writeChromeTrace(const Telemetry &tel, const std::string &path);

} // namespace mmgpu::telemetry

#endif // MMGPU_TELEMETRY_CHROME_TRACE_HH
