/**
 * @file
 * Uniformly binned per-resource time series for the telemetry
 * subsystem.
 *
 * The simulator is event driven: resources are busy over arbitrary
 * fractional-cycle intervals, not at fixed sampling points. A
 * TimelineTrack therefore accumulates contributions into fixed-width
 * simulated-time bins — a busy interval is split exactly across the
 * bins it overlaps — so the exported series is an *exact* integral
 * per bin rather than a point sample that could alias against the
 * event schedule. Bin i covers [i*dt, (i+1)*dt) in core cycles.
 *
 * Three track kinds cover everything the exporters need:
 *  - Busy:  addSpan() of busy intervals; normalized to a utilization
 *           in [0, capacity]/capacity where capacity is the number of
 *           servers feeding the track (per-GPM SM aggregation).
 *  - Rate:  addAt() point events; normalized to events per cycle.
 *  - Level: setBin() of externally computed values (e.g. watts from
 *           the calibrated energy model); exported verbatim.
 */

#ifndef MMGPU_TELEMETRY_TIMELINE_HH
#define MMGPU_TELEMETRY_TIMELINE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace mmgpu::telemetry
{

/** Simulation timestamps in (fractional) core cycles; mirrors
 *  noc::Tick without depending on the noc library. */
using Tick = double;

/** One named, uniformly binned time series. */
class TimelineTrack
{
  public:
    /** How raw bin contents map to exported values. */
    enum class Kind : std::uint8_t
    {
        Busy,   //!< busy-time integral; exported as utilization
        Rate,   //!< event accumulation; exported as events/cycle
        Level,  //!< externally set level (e.g. watts); exported raw
    };

    /**
     * @param path Hierarchical series name ("gpm0/hbm").
     * @param kind Track kind.
     * @param dt Bin width in cycles (> 0).
     * @param capacity Number of unit-rate servers aggregated into
     *        this track (Busy normalization divisor).
     */
    TimelineTrack(std::string path, Kind kind, double dt,
                  double capacity = 1.0);

    const std::string &path() const { return path_; }
    Kind kind() const { return kind_; }
    double dt() const { return dt_; }
    double capacity() const { return capacity_; }

    /**
     * Accumulate the interval [@p begin, @p end) weighted by
     * @p weight, split exactly across the bins it overlaps.
     * Negative times are clamped to 0; empty intervals are ignored.
     */
    void addSpan(Tick begin, Tick end, double weight = 1.0);

    /**
     * Accumulate a point contribution of @p amount at time @p t
     * (bin floor(t/dt); t < 0 clamps to bin 0).
     */
    void addAt(Tick t, double amount = 1.0);

    /** Set bin @p bin to @p value, growing the track as needed
     *  (Level tracks). */
    void setBin(std::size_t bin, double value);

    /** Number of bins currently held. */
    std::size_t binCount() const { return bins_.size(); }

    /** Raw accumulated content of bin @p bin (0 past the end). */
    double rawBin(std::size_t bin) const;

    /**
     * Exported value of bin @p bin: Busy -> busy/(capacity*dt)
     * utilization, Rate -> amount/dt, Level -> raw.
     */
    double valueAt(std::size_t bin) const;

    /** Grow (never shrink) to exactly @p bin_count bins, padding
     *  with zeros. */
    void padTo(std::size_t bin_count);

    /**
     * Force exactly @p bin_count bins: pad if short, and fold any
     * overflow (a sample landing exactly at the run end, which sits
     * on a bin boundary) into the last kept bin.
     */
    void clampTo(std::size_t bin_count);

  private:
    /** Bin index for time @p t, clamped at 0. */
    std::size_t binFor(Tick t) const;

    /** Ensure bin @p bin exists. */
    void grow(std::size_t bin);

    std::string path_;
    Kind kind_;
    double dt_;
    double capacity_;
    std::vector<double> bins_;
};

/**
 * The set of tracks recorded during one simulated run, all sharing
 * one bin width. Track references are stable (deque storage), so
 * bandwidth servers and instrumentation sites cache raw pointers.
 */
class Timeline
{
  public:
    /** @param dt_cycles Bin width in core cycles (> 0). */
    explicit Timeline(double dt_cycles);

    /** Bin width in cycles. */
    double dt() const { return dt_; }

    /** Get or create the track at @p path. Kind and capacity are
     *  fixed on first creation. */
    TimelineTrack &track(const std::string &path,
                         TimelineTrack::Kind kind,
                         double capacity = 1.0);

    /** @return the track at @p path, or nullptr if never created. */
    const TimelineTrack *find(const std::string &path) const;

    /**
     * Freeze the run at @p end cycles: every track is padded to the
     * common bin count ceil(end/dt) (at least one bin when end > 0),
     * so exporters see a rectangular series. A span or sample landing
     * exactly at @p end belongs to the last bin; nothing is recorded
     * past it because @p end is the time of the last simulated event.
     */
    void finalize(Tick end);

    /** Run end time in cycles (0 before finalize()). */
    Tick duration() const { return end_; }

    /** Common bin count after finalize(). */
    std::size_t binCount() const { return binCount_; }

    /** All tracks in path-sorted order (deterministic export). */
    std::vector<const TimelineTrack *> tracks() const;

  private:
    double dt_;
    Tick end_ = 0.0;
    std::size_t binCount_ = 0;
    std::deque<TimelineTrack> store;
    std::map<std::string, TimelineTrack *> index;
};

/**
 * A binned multi-channel accumulator for dense per-category activity
 * (per-opcode instruction counts, per-level transaction counts).
 * Kept separate from TimelineTrack so one cache-friendly bin-major
 * matrix serves all channels of a category.
 */
class ActivitySampler
{
  public:
    /**
     * @param dt Bin width in cycles (> 0).
     * @param channels Number of channels (> 0).
     */
    ActivitySampler(double dt, std::size_t channels);

    double dt() const { return dt_; }
    std::size_t channels() const { return channels_; }

    /** Accumulate @p amount into (@p channel, bin floor(t/dt)). */
    void addAt(Tick t, std::size_t channel, double amount = 1.0);

    /** Number of bins currently held. */
    std::size_t binCount() const { return bins_; }

    /** Accumulated amount in (@p bin, @p channel); 0 past the end. */
    double at(std::size_t bin, std::size_t channel) const;

    /** Force exactly @p bin_count bins: pad if short, fold overflow
     *  (boundary samples) into the last kept bin. */
    void clampTo(std::size_t bin_count);

  private:
    double dt_;
    std::size_t channels_;
    std::size_t bins_ = 0;
    std::vector<double> data_; //!< bin-major [bin * channels + ch]
};

} // namespace mmgpu::telemetry

#endif // MMGPU_TELEMETRY_TIMELINE_HH
