/**
 * @file
 * Named run-time counters and gauges for the telemetry subsystem.
 *
 * The registry is handle-based so the hot paths never pay a string
 * lookup: instrumentation sites resolve a Counter/Gauge pointer once
 * (when telemetry is attached) and afterwards an update is a single
 * add through that pointer. When telemetry is disabled the sites hold
 * a null pointer and the whole hook compiles down to a branch-on-null.
 *
 * Names are hierarchical slash-separated paths ("gpm0/sm3/issue"), so
 * exporters can group per-GPM / per-link series and aggregations can
 * select subtrees by prefix.
 */

#ifndef MMGPU_TELEMETRY_COUNTER_REGISTRY_HH
#define MMGPU_TELEMETRY_COUNTER_REGISTRY_HH

#include <algorithm>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace mmgpu::telemetry
{

/**
 * A monotonically increasing event counter. The value is a double so
 * fractional quantities (queueing cycles, bytes over fractional
 * ticks) accumulate without truncation; event counts stay exact well
 * past 2^52 events.
 */
struct Counter
{
    std::string path;
    double value = 0.0;

    /** Accumulate @p delta (monotonic: callers only ever add). */
    void add(double delta = 1.0) { value += delta; }
};

/** An instantaneous last-value-wins gauge with a running peak. */
struct Gauge
{
    std::string path;
    double value = 0.0;
    double peak = 0.0;

    void
    set(double v)
    {
        value = v;
        peak = std::max(peak, v);
    }
};

/**
 * Get-or-create registry of counters and gauges. Returned references
 * are stable for the registry's lifetime (deque storage), so
 * instrumentation sites may cache raw pointers across a whole run.
 */
class CounterRegistry
{
  public:
    /** Get or create the counter at @p path (must be non-empty). */
    Counter &counter(const std::string &path);

    /** Get or create the gauge at @p path (must be non-empty). */
    Gauge &gauge(const std::string &path);

    /** @return the counter at @p path, or nullptr if never created. */
    const Counter *findCounter(const std::string &path) const;

    /** @return the gauge at @p path, or nullptr if never created. */
    const Gauge *findGauge(const std::string &path) const;

    /** All counters in path-sorted order (for deterministic export). */
    std::vector<const Counter *> counters() const;

    /** All gauges in path-sorted order. */
    std::vector<const Gauge *> gauges() const;

    /**
     * Counters whose path starts with "@p prefix/" (or equals
     * @p prefix), path-sorted — subtree aggregation helper.
     */
    std::vector<const Counter *>
    countersUnder(const std::string &prefix) const;

    /** Zero every counter and gauge, keeping all registrations (and
     *  therefore every cached handle) valid. */
    void reset();

  private:
    std::deque<Counter> counterStore;
    std::deque<Gauge> gaugeStore;
    std::map<std::string, Counter *> counterIndex;
    std::map<std::string, Gauge *> gaugeIndex;
};

} // namespace mmgpu::telemetry

#endif // MMGPU_TELEMETRY_COUNTER_REGISTRY_HH
