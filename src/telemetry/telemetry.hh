/**
 * @file
 * Telemetry collector facade.
 *
 * A Telemetry object is the single handle the simulation engine, the
 * harness, and the exporters share. It owns
 *
 *  - a CounterRegistry of named event counters and gauges (always
 *    active while attached),
 *  - an optional Timeline of per-GPM / per-link binned time series
 *    (active when the configured sampling interval is > 0), and
 *  - named ActivitySamplers for dense per-category series (per-opcode
 *    instruction activity, per-level transaction activity) that the
 *    harness turns into the power timeline after a run.
 *
 * Telemetry is strictly opt-in: a simulator without an attached
 * collector carries only null hook pointers, so the disabled cost of
 * every instrumentation site is one branch-on-null. One Telemetry
 * instance holds the data of the *last* run it observed; the engine
 * calls beginRun() to clear it before refilling.
 */

#ifndef MMGPU_TELEMETRY_TELEMETRY_HH
#define MMGPU_TELEMETRY_TELEMETRY_HH

#include <map>
#include <optional>
#include <string>

#include "telemetry/counter_registry.hh"
#include "telemetry/timeline.hh"

namespace mmgpu::telemetry
{

/** Collector configuration. */
struct TelemetryConfig
{
    /**
     * Timeline bin width in core cycles; 0 records counters only
     * (no time series, no activity samplers).
     */
    double timelineDtCycles = 0.0;
};

/** Identification of the run a collector observed. */
struct RunInfo
{
    std::string configName;
    std::string workloadName;
    unsigned gpmCount = 1;
    double clockHz = 1.0e9;
    Tick endCycles = 0.0;
};

/** The shared collector handle. */
class Telemetry
{
  public:
    explicit Telemetry(TelemetryConfig config);

    const TelemetryConfig &config() const { return config_; }

    /** True when time-series sampling is configured. */
    bool timelineEnabled() const { return config_.timelineDtCycles > 0.0; }

    CounterRegistry &counters() { return registry; }
    const CounterRegistry &counters() const { return registry; }

    /** The timeline, or nullptr when sampling is disabled. */
    Timeline *timeline() { return tl ? &*tl : nullptr; }
    const Timeline *timeline() const { return tl ? &*tl : nullptr; }

    /**
     * Get or create the activity sampler named @p name with
     * @p channels channels. Only valid while the timeline is enabled;
     * the channel count is fixed on first creation.
     */
    ActivitySampler &activity(const std::string &name,
                              std::size_t channels);

    /** @return the sampler named @p name, or nullptr. */
    const ActivitySampler *findActivity(const std::string &name) const;

    /**
     * Clear all recorded data for a fresh run: counters are zeroed
     * (registrations survive), the timeline and activity samplers are
     * rebuilt empty, and the run info is reset.
     */
    void beginRun();

    /**
     * Freeze the run: the timeline and every activity sampler are
     * clamped to the common bin count for @p info.endCycles, and the
     * run identification is recorded for the exporters.
     */
    void finalizeRun(const RunInfo &info);

    /** Identification of the recorded run. */
    const RunInfo &runInfo() const { return info_; }

  private:
    TelemetryConfig config_;
    CounterRegistry registry;
    std::optional<Timeline> tl;
    std::map<std::string, ActivitySampler> samplers;
    RunInfo info_;
};

} // namespace mmgpu::telemetry

#endif // MMGPU_TELEMETRY_TELEMETRY_HH
