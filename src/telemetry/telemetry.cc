#include "telemetry/telemetry.hh"

#include "common/logging.hh"

namespace mmgpu::telemetry
{

Telemetry::Telemetry(TelemetryConfig config) : config_(config)
{
    if (timelineEnabled())
        tl.emplace(config_.timelineDtCycles);
}

ActivitySampler &
Telemetry::activity(const std::string &name, std::size_t channels)
{
    mmgpu_assert(timelineEnabled(),
                 "activity sampler '", name,
                 "' requested with the timeline disabled");
    auto it = samplers.find(name);
    if (it != samplers.end()) {
        mmgpu_assert(it->second.channels() == channels,
                     "activity sampler '", name,
                     "' re-registered with a different width");
        return it->second;
    }
    return samplers
        .emplace(name,
                 ActivitySampler(config_.timelineDtCycles, channels))
        .first->second;
}

const ActivitySampler *
Telemetry::findActivity(const std::string &name) const
{
    auto it = samplers.find(name);
    return it == samplers.end() ? nullptr : &it->second;
}

void
Telemetry::beginRun()
{
    registry.reset();
    if (timelineEnabled())
        tl.emplace(config_.timelineDtCycles);
    samplers.clear();
    info_ = RunInfo{};
}

void
Telemetry::finalizeRun(const RunInfo &info)
{
    info_ = info;
    if (tl) {
        tl->finalize(info.endCycles);
        for (auto &[name, sampler] : samplers)
            sampler.clampTo(tl->binCount());
    }
}

} // namespace mmgpu::telemetry
