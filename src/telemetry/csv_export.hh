/**
 * @file
 * CSV export of a Telemetry collection via the common/csv helpers.
 *
 * The timeline is written wide — one time column plus one column per
 * track, one row per bin — which is the layout the terminal sparkline
 * viewer (examples/timeline_viewer) and any spreadsheet consume
 * directly. Counters/gauges are written long (kind,path,value,peak).
 */

#ifndef MMGPU_TELEMETRY_CSV_EXPORT_HH
#define MMGPU_TELEMETRY_CSV_EXPORT_HH

#include <string>

#include "common/csv.hh"
#include "telemetry/telemetry.hh"

namespace mmgpu::telemetry
{

/**
 * Build the wide timeline CSV for @p tel: header "t_us" followed by
 * every track path in sorted order; one row per bin with the bin
 * start time in simulated microseconds and each track's exported
 * value. The timeline must be enabled.
 */
CsvWriter timelineCsv(const Telemetry &tel);

/** Build the long counters CSV: kind,path,value,peak. */
CsvWriter countersCsv(const Telemetry &tel);

/** Write timelineCsv(@p tel) to @p path; false (with a warning) on
 *  failure or when the timeline is disabled. */
bool writeTimelineCsv(const Telemetry &tel, const std::string &path);

/** Write countersCsv(@p tel) to @p path. */
bool writeCountersCsv(const Telemetry &tel, const std::string &path);

} // namespace mmgpu::telemetry

#endif // MMGPU_TELEMETRY_CSV_EXPORT_HH
