#include "telemetry/timeline.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mmgpu::telemetry
{

TimelineTrack::TimelineTrack(std::string path, Kind kind, double dt,
                             double capacity)
    : path_(std::move(path)), kind_(kind), dt_(dt),
      capacity_(capacity)
{
    mmgpu_assert(dt_ > 0.0, "timeline track '", path_,
                 "' with non-positive bin width");
    mmgpu_assert(capacity_ > 0.0, "timeline track '", path_,
                 "' with non-positive capacity");
}

std::size_t
TimelineTrack::binFor(Tick t) const
{
    if (t <= 0.0)
        return 0;
    return static_cast<std::size_t>(t / dt_);
}

void
TimelineTrack::grow(std::size_t bin)
{
    if (bin >= bins_.size())
        bins_.resize(bin + 1, 0.0);
}

void
TimelineTrack::addSpan(Tick begin, Tick end, double weight)
{
    begin = std::max(begin, 0.0);
    if (end <= begin)
        return;
    std::size_t first = binFor(begin);
    std::size_t last = binFor(end);
    // An interval ending exactly on a bin boundary contributes
    // nothing to the bin that starts there.
    if (last > first && end == static_cast<double>(last) * dt_)
        --last;
    grow(last);
    if (first == last) {
        bins_[first] += (end - begin) * weight;
        return;
    }
    bins_[first] +=
        (static_cast<double>(first + 1) * dt_ - begin) * weight;
    for (std::size_t b = first + 1; b < last; ++b)
        bins_[b] += dt_ * weight;
    bins_[last] +=
        (end - static_cast<double>(last) * dt_) * weight;
}

void
TimelineTrack::addAt(Tick t, double amount)
{
    std::size_t bin = binFor(t);
    grow(bin);
    bins_[bin] += amount;
}

void
TimelineTrack::setBin(std::size_t bin, double value)
{
    grow(bin);
    bins_[bin] = value;
}

double
TimelineTrack::rawBin(std::size_t bin) const
{
    return bin < bins_.size() ? bins_[bin] : 0.0;
}

double
TimelineTrack::valueAt(std::size_t bin) const
{
    double raw = rawBin(bin);
    switch (kind_) {
      case Kind::Busy:
        return raw / (capacity_ * dt_);
      case Kind::Rate:
        return raw / dt_;
      case Kind::Level:
        return raw;
      default:
        mmgpu_panic("bad track kind");
    }
}

void
TimelineTrack::padTo(std::size_t bin_count)
{
    if (bin_count > bins_.size())
        bins_.resize(bin_count, 0.0);
}

void
TimelineTrack::clampTo(std::size_t bin_count)
{
    if (bin_count == 0) {
        bins_.clear();
        return;
    }
    if (bins_.size() > bin_count) {
        for (std::size_t b = bin_count; b < bins_.size(); ++b)
            bins_[bin_count - 1] += bins_[b];
        bins_.resize(bin_count);
    }
    padTo(bin_count);
}

Timeline::Timeline(double dt_cycles) : dt_(dt_cycles)
{
    mmgpu_assert(dt_ > 0.0, "timeline with non-positive bin width");
}

TimelineTrack &
Timeline::track(const std::string &path, TimelineTrack::Kind kind,
                double capacity)
{
    auto it = index.find(path);
    if (it != index.end())
        return *it->second;
    store.emplace_back(path, kind, dt_, capacity);
    TimelineTrack *created = &store.back();
    index.emplace(path, created);
    return *created;
}

const TimelineTrack *
Timeline::find(const std::string &path) const
{
    auto it = index.find(path);
    return it == index.end() ? nullptr : it->second;
}

void
Timeline::finalize(Tick end)
{
    end_ = std::max(end, 0.0);
    binCount_ =
        end_ > 0.0
            ? static_cast<std::size_t>(std::ceil(end_ / dt_))
            : 0;
    for (auto &trk : store)
        trk.clampTo(binCount_);
}

std::vector<const TimelineTrack *>
Timeline::tracks() const
{
    std::vector<const TimelineTrack *> sorted;
    sorted.reserve(index.size());
    for (const auto &[path, trk] : index)
        sorted.push_back(trk);
    return sorted;
}

ActivitySampler::ActivitySampler(double dt, std::size_t channels)
    : dt_(dt), channels_(channels)
{
    mmgpu_assert(dt_ > 0.0,
                 "activity sampler with non-positive bin width");
    mmgpu_assert(channels_ > 0, "activity sampler with no channels");
}

void
ActivitySampler::addAt(Tick t, std::size_t channel, double amount)
{
    mmgpu_assert(channel < channels_, "bad activity channel");
    std::size_t bin =
        t <= 0.0 ? 0 : static_cast<std::size_t>(t / dt_);
    if (bin >= bins_) {
        bins_ = bin + 1;
        data_.resize(bins_ * channels_, 0.0);
    }
    data_[bin * channels_ + channel] += amount;
}

double
ActivitySampler::at(std::size_t bin, std::size_t channel) const
{
    mmgpu_assert(channel < channels_, "bad activity channel");
    if (bin >= bins_)
        return 0.0;
    return data_[bin * channels_ + channel];
}

void
ActivitySampler::clampTo(std::size_t bin_count)
{
    if (bin_count == 0) {
        bins_ = 0;
        data_.clear();
        return;
    }
    if (bins_ > bin_count) {
        for (std::size_t b = bin_count; b < bins_; ++b)
            for (std::size_t c = 0; c < channels_; ++c)
                data_[(bin_count - 1) * channels_ + c] +=
                    data_[b * channels_ + c];
    }
    bins_ = bin_count;
    data_.resize(bins_ * channels_, 0.0);
}

} // namespace mmgpu::telemetry
