#include "fault/fault_plan.hh"

#include <cstdlib>

#include "common/hash.hh"
#include "common/logging.hh"

namespace mmgpu::fault
{

SensorFaultSpec
defaultSensorFaults()
{
    SensorFaultSpec spec;
    spec.dropoutRate = 0.08;
    spec.spikeRate = 0.02;
    spec.spikeMagnitude = 1.5;
    spec.glitchRate = 0.02;
    spec.glitchSteps = 4.0;
    spec.jitterFraction = 0.25;
    return spec;
}

std::uint64_t
LinkFaultSpec::digest() const
{
    if (faults.empty())
        return 0;
    Fnv1a hash;
    hash.add(static_cast<std::uint64_t>(faults.size()));
    for (const LinkFault &fault : faults) {
        hash.add(fault.gpm);
        hash.add(fault.channel);
        hash.add(fault.capacityScale);
    }
    return hash.digest();
}

bool
HarnessFaultSpec::matches(const std::vector<std::string> &points,
                          const std::string &config,
                          const std::string &workload)
{
    std::string qualified = config + "|" + workload;
    for (const std::string &point : points) {
        if (point == workload || point == qualified)
            return true;
    }
    return false;
}

std::uint64_t
FaultPlan::fingerprint() const
{
    Fnv1a hash;
    hash.add(seed);
    hash.add(sensor.dropoutRate);
    hash.add(sensor.spikeRate);
    hash.add(sensor.spikeMagnitude);
    hash.add(sensor.glitchRate);
    hash.add(sensor.glitchSteps);
    hash.add(sensor.jitterFraction);
    hash.add(static_cast<std::uint64_t>(harness.failPoints.size()));
    for (const std::string &point : harness.failPoints)
        hash.add(point);
    hash.add(static_cast<std::uint64_t>(harness.hangPoints.size()));
    for (const std::string &point : harness.hangPoints)
        hash.add(point);
    hash.add(harness.hangSeconds);
    hash.add(serve.shardCrashEveryJobs);
    hash.add(serve.dispatcherStallAtJob);
    hash.add(serve.dispatcherStallMs);
    hash.add(serve.walTearAtAppend);
    hash.add(serve.connResetEveryWrites);
    hash.add(static_cast<std::uint64_t>(serve.crashPoints.size()));
    for (const std::string &point : serve.crashPoints)
        hash.add(point);
    return hash.digest();
}

std::uint64_t
FaultPlan::streamFor(const std::string &consumer) const
{
    Fnv1a hash(seed);
    hash.add(consumer);
    return hash.digest();
}

namespace
{

double
envRate(const char *name, double fallback)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return fallback;
    char *end = nullptr;
    double parsed = std::strtod(text, &end);
    if (end == text || *end != '\0' || parsed < 0.0 || parsed > 1.0) {
        warn("ignoring malformed ", name, "='", text,
             "' (want a rate in [0, 1])");
        return fallback;
    }
    return parsed;
}

std::uint64_t
envCount(const char *name, std::uint64_t fallback)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0') {
        warn("ignoring malformed ", name, "='", text,
             "' (want a non-negative integer)");
        return fallback;
    }
    return parsed;
}

std::vector<std::string>
envPoints(const char *name)
{
    std::vector<std::string> points;
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return points;
    std::string rest(text);
    while (!rest.empty()) {
        std::size_t comma = rest.find(',');
        std::string point = rest.substr(0, comma);
        if (!point.empty())
            points.push_back(point);
        if (comma == std::string::npos)
            break;
        rest.erase(0, comma + 1);
    }
    return points;
}

} // namespace

FaultPlan
FaultPlan::fromEnv()
{
    FaultPlan plan;

    // Serve-layer chaos is counter-driven, not stochastic, so it
    // does not require (or touch) the master seed.
    plan.serve.shardCrashEveryJobs = envCount(
        "MMGPU_FAULT_SERVE_CRASH_EVERY",
        plan.serve.shardCrashEveryJobs);
    plan.serve.dispatcherStallAtJob = envCount(
        "MMGPU_FAULT_SERVE_STALL_AT_JOB",
        plan.serve.dispatcherStallAtJob);
    plan.serve.dispatcherStallMs = envCount(
        "MMGPU_FAULT_SERVE_STALL_MS", plan.serve.dispatcherStallMs);
    plan.serve.walTearAtAppend = envCount(
        "MMGPU_FAULT_SERVE_WAL_TEAR_AT", plan.serve.walTearAtAppend);
    plan.serve.connResetEveryWrites = envCount(
        "MMGPU_FAULT_SERVE_CONN_RESET_EVERY",
        plan.serve.connResetEveryWrites);
    plan.serve.crashPoints =
        envPoints("MMGPU_FAULT_SERVE_CRASH_POINT");

    const char *seed_text = std::getenv("MMGPU_FAULT_SEED");
    if (seed_text == nullptr || *seed_text == '\0')
        return plan; // sensor campaign disabled

    char *end = nullptr;
    unsigned long long parsed = std::strtoull(seed_text, &end, 0);
    if (end == seed_text || *end != '\0') {
        warn("ignoring malformed MMGPU_FAULT_SEED='", seed_text, "'");
        return plan;
    }
    plan.seed = parsed;
    plan.sensor = defaultSensorFaults();
    plan.sensor.dropoutRate =
        envRate("MMGPU_FAULT_DROPOUT", plan.sensor.dropoutRate);
    plan.sensor.spikeRate =
        envRate("MMGPU_FAULT_SPIKE", plan.sensor.spikeRate);
    plan.sensor.glitchRate =
        envRate("MMGPU_FAULT_GLITCH", plan.sensor.glitchRate);
    plan.sensor.jitterFraction =
        envRate("MMGPU_FAULT_JITTER", plan.sensor.jitterFraction);
    return plan;
}

} // namespace mmgpu::fault
