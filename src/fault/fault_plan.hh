/**
 * @file
 * Deterministic, seed-driven fault injection.
 *
 * Real GPUJoule-style measurement campaigns contend with a sensor
 * that drops samples, spikes, and glitches, with links that fail or
 * degrade, and with sweep points that hang or die. A FaultPlan
 * describes all of that declaratively so any campaign can be rerun
 * bit-identically: everything stochastic draws from streams derived
 * from the plan's seed, and nothing about worker interleaving feeds
 * back into the draws (sensor faults are keyed per read off a
 * private stream, link faults are fixed at network construction,
 * harness faults match sweep points by name).
 *
 * Taxonomy and the determinism contract are documented in DESIGN.md
 * "Fault model & degraded modes".
 */

#ifndef MMGPU_FAULT_FAULT_PLAN_HH
#define MMGPU_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mmgpu::fault
{

/**
 * Sensor misbehaviour rates. All probabilities are per read; a read
 * suffers at most one of {dropout, spike, glitch}, checked in that
 * order.
 */
struct SensorFaultSpec
{
    /** P(read returns no sample — an NVML error). */
    double dropoutRate = 0.0;

    /** P(read is an outlier spike). */
    double spikeRate = 0.0;

    /** Spike multiplies the true reading by (1 + spikeMagnitude). */
    double spikeMagnitude = 1.5;

    /** P(read is offset by a quantization glitch). */
    double glitchRate = 0.0;

    /** Glitch offset in quantization steps (signed draw). */
    double glitchSteps = 4.0;

    /** Refresh-latch jitter as a fraction of the refresh period:
     *  each read's latch tick arrives uniformly up to this fraction
     *  of a period late. */
    double jitterFraction = 0.0;

    /** True when any rate is non-zero. */
    bool
    enabled() const
    {
        return dropoutRate > 0.0 || spikeRate > 0.0 ||
               glitchRate > 0.0 || jitterFraction > 0.0;
    }
};

/**
 * The default sensor-fault campaign used by tests and docs: >= 5%
 * dropout plus occasional spikes/glitches and latch jitter. The
 * calibration tolerance stated in DESIGN.md is against this plan.
 */
SensorFaultSpec defaultSensorFaults();

/** One degraded or failed inter-GPM link. */
struct LinkFault
{
    /** GPM whose outgoing link is affected. */
    unsigned gpm = 0;

    /** Direction/port, interpreted per topology: ring 0 =
     *  clockwise, 1 = counter-clockwise; switch 0 = uplink, 1 =
     *  downlink; fullmesh = peer GPM id of the pairwise link (a
     *  failed pair reroutes via a 2-hop relay); ocs 0 = circuit
     *  plane (a failed circuit drops the GPM from the matching),
     *  1 = electrical fallback port (must keep some width). */
    unsigned channel = 0;

    /** Remaining capacity fraction in (0, 1]; exactly 0 marks the
     *  link failed (ring traffic reroutes the long way around). */
    double capacityScale = 1.0;

    bool failed() const { return capacityScale == 0.0; }
};

/** The set of link faults applied to one configuration. */
struct LinkFaultSpec
{
    std::vector<LinkFault> faults;

    bool empty() const { return faults.empty(); }

    /**
     * Order-sensitive FNV-1a digest; 0 for the empty spec. Folded
     * into run fingerprints and memo keys so degraded runs never
     * alias healthy ones.
     */
    std::uint64_t digest() const;
};

/**
 * Sweep-point sabotage for harness robustness testing. Points are
 * matched by workload name or by "config|workload".
 */
struct HarnessFaultSpec
{
    /** Points that fail with SimError{InjectedFault}. */
    std::vector<std::string> failPoints;

    /** Points that hang (cooperatively, in wall-clock time) until
     *  hangSeconds elapse or a watchdog cancels them. */
    std::vector<std::string> hangPoints;

    /** How long an injected hang stalls when nothing cancels it. */
    double hangSeconds = 30.0;

    bool
    enabled() const
    {
        return !failPoints.empty() || !hangPoints.empty();
    }

    /** @return true when @p points lists this (config, workload). */
    static bool matches(const std::vector<std::string> &points,
                        const std::string &config,
                        const std::string &workload);
};

/**
 * Serve-layer sabotage: deterministic chaos for the mmgpu_serve
 * daemon so every self-healing mechanism (shard supervision, client
 * retry, WAL replay, reconnect) is exercised by tests, not by hand.
 * Counters are global per process (job N means the Nth job executed
 * by any shard), so a campaign replays identically at any shard
 * count under a serial load and deterministically under the same
 * interleaving otherwise.
 */
struct ServeFaultSpec
{
    /** Crash the executing shard on every Nth job (0 disables). The
     *  supervisor must retire the machine, restart the shard, and
     *  re-queue or poison the work. */
    std::uint64_t shardCrashEveryJobs = 0;

    /** Stall the service dispatcher once, before delivering job N
     *  (0 disables), for dispatcherStallMs. */
    std::uint64_t dispatcherStallAtJob = 0;

    /** How long the injected dispatcher stall lasts. */
    std::uint64_t dispatcherStallMs = 500;

    /** Tear the Nth run-cache WAL append (0 disables): the record is
     *  written truncated mid-payload, as a crash between write() and
     *  fsync would leave it. Replay must drop exactly that record. */
    std::uint64_t walTearAtAppend = 0;

    /** Reset (hard-close) a serve connection after every Nth
     *  response line written (0 disables); exercises client
     *  reconnect-on-broken-socket. */
    std::uint64_t connResetEveryWrites = 0;

    /** Crash the shard executing any job whose work matches one of
     *  these points ("workload" or "config|workload", same matcher
     *  as HarnessFaultSpec). Unlike shardCrashEveryJobs this targets
     *  specific work, so quarantine-after-K-strikes is testable
     *  deterministically regardless of interleaving. */
    std::vector<std::string> crashPoints;

    bool
    enabled() const
    {
        return shardCrashEveryJobs != 0 ||
               dispatcherStallAtJob != 0 || walTearAtAppend != 0 ||
               connResetEveryWrites != 0 || !crashPoints.empty();
    }
};

/** A complete, reproducible fault campaign. */
struct FaultPlan
{
    /** Master seed; every fault stream is derived from it. */
    std::uint64_t seed = 0x0f4a17;

    SensorFaultSpec sensor;
    HarnessFaultSpec harness;
    ServeFaultSpec serve;

    /** True when any category injects anything. */
    bool
    enabled() const
    {
        return sensor.enabled() || harness.enabled() ||
               serve.enabled();
    }

    /**
     * FNV-1a fingerprint over the seed and every rate/point: two
     * plans with equal fingerprints inject bit-identical faults.
     */
    std::uint64_t fingerprint() const;

    /** Derived seed for an independent consumer stream ("sensor",
     *  "calibration", ...): equal plans give equal streams. */
    std::uint64_t streamFor(const std::string &consumer) const;

    /**
     * Build a plan from the environment: `MMGPU_FAULT_SEED=<n>`
     * enables the default sensor campaign under seed n;
     * `MMGPU_FAULT_DROPOUT` / `MMGPU_FAULT_SPIKE` /
     * `MMGPU_FAULT_GLITCH` / `MMGPU_FAULT_JITTER` override the
     * individual rates. The serve-layer chaos knobs
     * `MMGPU_FAULT_SERVE_CRASH_EVERY`,
     * `MMGPU_FAULT_SERVE_STALL_AT_JOB`,
     * `MMGPU_FAULT_SERVE_STALL_MS`, `MMGPU_FAULT_SERVE_WAL_TEAR_AT`,
     * `MMGPU_FAULT_SERVE_CONN_RESET_EVERY`, and
     * `MMGPU_FAULT_SERVE_CRASH_POINT` (comma-separated point list)
     * are independent of the seed (they are counter- or
     * point-driven, not stochastic). Returns a disabled plan when
     * nothing is set.
     */
    static FaultPlan fromEnv();
};

} // namespace mmgpu::fault

#endif // MMGPU_FAULT_FAULT_PLAN_HH
