/**
 * @file
 * First-touch page placement.
 *
 * Multi-module configurations place each 4 KB page of global memory
 * on the GPM whose SM touches it first, as proposed by the MCM-GPU
 * and NUMA-GPU papers the study builds on (§V-A1). Combined with
 * contiguous CTA-to-GPM assignment this localizes block-partitioned
 * data while leaving irregular accesses distributed — the locality
 * behaviour the paper's NUMA analysis rests on.
 */

#ifndef MMGPU_MEM_PAGE_TABLE_HH
#define MMGPU_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "common/units.hh"

namespace mmgpu::mem
{

/** Maps pages to their home GPM on first touch. */
class PageTable
{
  public:
    /** Page size in bytes. */
    static constexpr Bytes pageBytes = 4096;

    /** @param gpm_count Number of GPMs pages can be homed on. */
    explicit PageTable(unsigned gpm_count) : gpmCount(gpm_count) {}

    /**
     * Resolve the home GPM of @p addr, homing the page on
     * @p accessor_gpm if untouched.
     * @return the page's home GPM.
     */
    unsigned
    touch(std::uint64_t addr, unsigned accessor_gpm)
    {
        std::uint64_t page = addr / pageBytes;
        // One-entry lookup cache: consecutive line misses land on
        // the same 4 KB page far more often than not, and a cached
        // page is by definition already mapped — so the hit path
        // skips the hash probe with identical semantics (same home,
        // no first-touch accounting change).
        if (page == cachedPage_)
            return cachedHome_;
        auto [it, inserted] = table.try_emplace(page, accessor_gpm);
        if (inserted)
            ++firstTouches_;
        cachedPage_ = page;
        cachedHome_ = it->second;
        return it->second;
    }

    /**
     * Query without homing.
     * @return home GPM, or gpm_count (an invalid id) if unmapped.
     */
    unsigned
    homeOf(std::uint64_t addr) const
    {
        auto it = table.find(addr / pageBytes);
        return it == table.end() ? gpmCount : it->second;
    }

    /** Pages mapped so far. */
    Count mappedPages() const { return table.size(); }

    /** First-touch events (== mappedPages, kept for test clarity). */
    Count firstTouches() const { return firstTouches_; }

    /** Drop all mappings (between independent runs). */
    void
    reset()
    {
        table.clear();
        firstTouches_ = 0;
        cachedPage_ = noPage;
        cachedHome_ = 0;
    }

  private:
    /** Sentinel: no 64-bit byte address divides down to this page. */
    static constexpr std::uint64_t noPage = ~std::uint64_t{0};

    unsigned gpmCount;
    std::unordered_map<std::uint64_t, unsigned> table;
    Count firstTouches_ = 0;
    std::uint64_t cachedPage_ = noPage;
    unsigned cachedHome_ = 0;
};

} // namespace mmgpu::mem

#endif // MMGPU_MEM_PAGE_TABLE_HH
