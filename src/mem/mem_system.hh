/**
 * @file
 * Passive memory-system resources of a multi-GPM GPU: per-SM L1s,
 * per-GPM module-side L2s, per-GPM HBM channels, the intra-GPM NoC,
 * and the first-touch page table.
 *
 * Timing orchestration lives in the simulation engine (sim::GpuSim),
 * which walks accesses through these resources as a staged event
 * pipeline so that every bandwidth server sees requests in
 * calendar-time order. MemSystem provides the functional state
 * (tag arrays, page table) and the per-resource bandwidth servers.
 *
 * Coherence follows the software-coherence scheme of the multi-module
 * GPU proposals the paper simulates: L1s are write-through/no-allocate
 * and invalidated at kernel boundaries; L2s are write-back
 * write-allocate caches of global DRAM, cleaned of dirty data and
 * purged of remote-homed lines at kernel boundaries.
 */

#ifndef MMGPU_MEM_MEM_SYSTEM_HH
#define MMGPU_MEM_MEM_SYSTEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>


#include "common/units.hh"
#include "isa/instruction.hh"
#include "mem/cache.hh"
#include "mem/page_table.hh"
#include "noc/bandwidth_server.hh"
#include "noc/interconnect.hh"
#include "telemetry/telemetry.hh"

namespace mmgpu::mem
{

/** Memory-subsystem slice of the machine configuration. */
struct MemConfig
{
    unsigned gpmCount = 1;
    unsigned smsPerGpm = 16;

    Bytes l1BytesPerSm = 32 * units::KiB;
    unsigned l1Assoc = 4;

    Bytes l2BytesPerGpm = 2 * units::MiB;
    unsigned l2Assoc = 16;

    /** Per-GPM local HBM stack bandwidth (bytes/cycle). */
    double dramBytesPerCycle = 256.0;

    /** Per-GPM SM<->L2 crossbar aggregate bandwidth (bytes/cycle). */
    double nocBytesPerCycle = 1024.0;

    Cycles l1Latency = 28;
    Cycles l2Latency = 120;
    Cycles dramLatency = 350;
    Cycles nocLatency = 16;
    Cycles sharedLatency = 25;
};

/** Event counts the energy model consumes (Eq. 4 inputs). */
struct MemCounters
{
    /** Warp-level transactions per EPT level. */
    std::array<Count, isa::numTxnLevels> txns{};

    Count l1SectorMisses = 0;
    Count l2SectorMisses = 0;
    Count remoteSectors = 0; //!< sectors served by a remote GPM
    Count localSectors = 0;  //!< sectors served by the local GPM
    Count writebackSectors = 0;

    void
    reset()
    {
        txns.fill(0);
        l1SectorMisses = 0;
        l2SectorMisses = 0;
        remoteSectors = 0;
        localSectors = 0;
        writebackSectors = 0;
    }
};

/** The assembled (passive) memory hierarchy of one simulated GPU. */
class MemSystem
{
  public:
    /**
     * @param config Memory configuration.
     * @param network Inter-GPM network; nullptr for a monolithic GPU
     *        (gpmCount must then be 1). Not owned. Used here only
     *        for the synchronous kernel-boundary writeback drain.
     */
    MemSystem(const MemConfig &config, noc::InterGpmNetwork *network);

    /** Configuration this system was built from. */
    const MemConfig &config() const { return cfg; }

    /** Functional L1 lookup/fill for flat SM id @p sm. */
    CacheAccessResult
    l1Access(unsigned sm, std::uint64_t line_addr, SectorMask sectors,
             bool is_write)
    {
        mmgpu_assert(sm < l1s.size(), "bad SM id");
        CacheAccessResult result =
            l1s[sm].access(line_addr, sectors, is_write);
        telL1SectorHits_->add(sectorCount(result.hitMask));
        telL1SectorMisses_->add(sectorCount(result.missMask));
        return result;
    }

    /** Functional L2 lookup/fill for GPM @p gpm. */
    CacheAccessResult
    l2Access(unsigned gpm, std::uint64_t line_addr, SectorMask sectors,
             bool is_write)
    {
        mmgpu_assert(gpm < l2s.size(), "bad GPM id");
        CacheAccessResult result =
            l2s[gpm].access(line_addr, sectors, is_write);
        telL2SectorHits_->add(sectorCount(result.hitMask));
        telL2SectorMisses_->add(sectorCount(result.missMask));
        return result;
    }

    /** Serialize @p bytes on GPM @p gpm's SM<->L2 crossbar. */
    noc::Tick
    nocAcquire(unsigned gpm, noc::Tick t, double bytes)
    {
        return nocs[gpm].acquire(t, bytes);
    }

    /** Serialize @p bytes on GPM @p gpm's HBM channel. */
    noc::Tick
    dramAcquire(unsigned gpm, noc::Tick t, double bytes)
    {
        if (telDramQueueCycles_) {
            double wait = drams[gpm].nextFreeAt() - t;
            if (wait > 0.0)
                telDramQueueCycles_->add(wait);
        }
        return drams[gpm].acquire(t, bytes);
    }

    /** Resolve (and on first touch, establish) the home of a page. */
    unsigned
    pageTouch(std::uint64_t addr, unsigned gpm)
    {
        return pages.touch(addr, gpm);
    }

    /**
     * Pre-home the page containing @p addr on GPM @p gpm. Models
     * first-touch placement deterministically: the CTA owning a byte
     * range is its first toucher under distributed CTA scheduling,
     * so pages are homed up front instead of racing halo accesses in
     * simulation order (see DESIGN.md).
     */
    void prePlace(std::uint64_t addr, unsigned gpm)
    {
        pages.touch(addr, gpm);
    }

    /**
     * Software-coherence kernel boundary: invalidate L1s, write back
     * all dirty L2 data, purge remote-homed L2 lines. Writeback
     * traffic is charged synchronously starting at time @p t (the
     * pipeline is drained at a boundary), into @p counters.
     * @return the time the writeback drain completes (>= t).
     */
    noc::Tick kernelBoundary(noc::Tick t, MemCounters &counters);

    /** Page table (exposed for tests and locality diagnostics). */
    const PageTable &pageTable() const { return pages; }

    /** Aggregate L1 statistics across all SMs. */
    Count l1Accesses() const;
    Count l1SectorHits() const;

    /** Aggregate L2 statistics across all GPMs. */
    Count l2Accesses() const;
    Count l2SectorHits() const;

    /** Total queueing cycles on all DRAM channels (congestion probe). */
    double dramQueueing() const;

    /** Total busy cycles on all DRAM channels (utilization probe). */
    double dramBusy() const;

    /**
     * Register this hierarchy's telemetry: "mem/..." hit/miss and
     * DRAM-queueing counters, plus (when @p tel has an enabled
     * timeline) per-GPM "gpm<g>/hbm" and "gpm<g>/noc" utilization
     * tracks fed by the bandwidth servers. @p tel must outlive this
     * MemSystem (the engine builds a fresh one per run).
     */
    void attachTelemetry(telemetry::Telemetry &tel);

    /**
     * Null every telemetry handle and bandwidth-server sink. A
     * build-once machine must call this when it runs detached, so a
     * Telemetry object from an earlier run cannot dangle.
     */
    void detachTelemetry();

    /**
     * Restore the as-constructed state: page table emptied, every
     * cache invalidated with statistics zeroed, all bandwidth
     * servers rewound. Telemetry attachments are left as they are —
     * the owner re-resolves or detaches them per run.
     */
    void reset();

  private:
    MemConfig cfg;
    noc::InterGpmNetwork *network; //!< nullptr when monolithic
    PageTable pages;

    std::vector<SectoredCache> l1s;          //!< per flat SM id
    std::vector<SectoredCache> l2s;          //!< per GPM
    std::vector<noc::BandwidthServer> drams; //!< per GPM
    std::vector<noc::BandwidthServer> nocs;  //!< per GPM

    // Telemetry hook handles. Counter hooks point at a per-system
    // discard sink while detached so l1Access()/l2Access() — called
    // once per line per warp access — stay branch-free; the sampler
    // hook stays branch-on-null (addAt does real binning work). The
    // DRAM queue hook keeps its branch: it guards a nextFreeAt()
    // computation, not just the add.
    telemetry::ActivitySampler *telTxn_ = nullptr;
    telemetry::Counter nullCounter_;
    telemetry::Counter *telL1SectorHits_ = &nullCounter_;
    telemetry::Counter *telL1SectorMisses_ = &nullCounter_;
    telemetry::Counter *telL2SectorHits_ = &nullCounter_;
    telemetry::Counter *telL2SectorMisses_ = &nullCounter_;
    telemetry::Counter *telDramQueueCycles_ = nullptr;
};

} // namespace mmgpu::mem

#endif // MMGPU_MEM_MEM_SYSTEM_HH
