/**
 * @file
 * Sectored, set-associative cache model with real tag arrays.
 *
 * Both cache levels use 128 B lines made of four 32 B sectors,
 * matching the transaction granularities GPUJoule measured on the
 * K40 (Table Ib: L1<->RF moves 128 B, L2/DRAM move 32 B sectors).
 * Sector valid bits mean a miss fetches only the sectors a warp
 * actually touched — the mechanism behind the paper's memory
 * divergence energy costs.
 *
 * The model is purely functional (hit/miss/eviction); timing and
 * bandwidth live in the memory system that drives it.
 */

#ifndef MMGPU_MEM_CACHE_HH
#define MMGPU_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "isa/instruction.hh"

namespace mmgpu::mem
{

/** Bit mask over the four 32 B sectors of a 128 B line. */
using SectorMask = std::uint8_t;

/** Number of sectors per line. */
inline constexpr unsigned sectorsPerLine =
    isa::cacheLineBytes / isa::sectorBytes;

/** All four sectors present. */
inline constexpr SectorMask fullLineMask = 0xF;

/**
 * Population count of a sector mask via a 16-entry table.
 * std::popcount on a generic x86-64 target lowers to a libgcc call
 * (the baseline ISA has no popcnt instruction), which is real
 * per-access overhead in the cache and pipeline hot paths; a nibble
 * table is one L1-resident load.
 */
inline unsigned
sectorCount(SectorMask mask)
{
    constexpr std::uint8_t bits[16] = {0, 1, 1, 2, 1, 2, 2, 3,
                                       1, 2, 2, 3, 2, 3, 3, 4};
    return bits[mask & 0xF];
}

/** Result of a cache access. */
struct CacheAccessResult
{
    /** Sectors that hit (were valid). */
    SectorMask hitMask = 0;

    /** Sectors that missed and must be fetched from below. */
    SectorMask missMask = 0;

    /** Dirty sectors of an evicted victim that must be written back. */
    SectorMask writebackMask = 0;

    /** Line byte address of the evicted victim (valid if
     *  writebackMask != 0). */
    std::uint64_t writebackAddr = 0;
};

/**
 * One cache instance (an L1 or an L2 slice).
 *
 * Write policy is chosen by the caller per access: GPU L1s are
 * write-through/no-allocate for global data, L2s are write-back
 * write-allocate; both behaviours are expressible through
 * access()'s parameters.
 */
class SectoredCache
{
  public:
    /**
     * @param name Diagnostic name.
     * @param capacity_bytes Total data capacity; must be a multiple
     *        of associativity * 128 B.
     * @param associativity Ways per set.
     */
    SectoredCache(std::string name, Bytes capacity_bytes,
                  unsigned associativity);

    /**
     * Look up (and on a read, allocate) the sectors of one line.
     *
     * @param addr Any byte address inside the line.
     * @param sectors Sector mask being accessed.
     * @param is_write True for stores: hit sectors are marked dirty;
     *        missed sectors are allocated and marked dirty
     *        (write-allocate). Callers modelling write-through
     *        no-allocate simply don't call this for stores.
     * @return hit/miss masks plus any eviction writeback.
     */
    CacheAccessResult access(std::uint64_t addr, SectorMask sectors,
                             bool is_write);

    /**
     * Mark previously-missed sectors as now present (fill after the
     * lower level responded). The line is guaranteed to still be
     * resident because access() allocates before returning; fills
     * are applied immediately in this functional model, so this is
     * implicit — provided for documentation symmetry and asserts.
     */
    void assertResident(std::uint64_t addr) const;

    /**
     * Invalidate everything; dirty lines are reported through
     * @p writebacks as (line address, dirty mask) pairs.
     * Used for software coherence at kernel boundaries.
     */
    void flushAll(
        std::vector<std::pair<std::uint64_t, SectorMask>> *writebacks);

    /**
     * Invalidate only lines for which @p predicate(lineAddr) is true
     * (e.g. remote-homed lines at a kernel boundary). Dirty lines are
     * reported via @p writebacks.
     */
    template <typename Pred>
    void
    flushIf(Pred predicate,
            std::vector<std::pair<std::uint64_t, SectorMask>> *writebacks)
    {
        for (std::size_t set = 0; set < sets; ++set) {
            std::uint64_t *tags = setTags(set);
            for (unsigned w = 0; w < ways; ++w) {
                if (tags[w] == invalidTag)
                    continue;
                std::uint64_t addr = tags[w] * isa::cacheLineBytes;
                if (!predicate(addr))
                    continue;
                Meta &meta = meta_[set * ways + w];
                if (meta.dirty && writebacks)
                    writebacks->emplace_back(addr, meta.dirty);
                tags[w] = invalidTag;
                meta = Meta{};
            }
        }
    }

    /**
     * Write back every dirty line without invalidating it (the line
     * stays resident, now clean). Dirty (line address, mask) pairs
     * are appended to @p writebacks.
     */
    void cleanDirty(
        std::vector<std::pair<std::uint64_t, SectorMask>> *writebacks);

    /** Number of sets. */
    unsigned numSets() const { return sets; }

    /** Accesses (line-level) since construction/reset. */
    Count accesses() const { return accesses_; }

    /** Accesses with all requested sectors valid. */
    Count hits() const { return hits_; }

    /** Sector-granular hit count. */
    Count sectorHits() const { return sectorHits_; }

    /** Sector-granular miss count. */
    Count sectorMisses() const { return sectorMisses_; }

    /** Reset statistics (contents untouched). */
    void resetStats();

    /**
     * Restore the as-constructed state: every line invalid, the LRU
     * clock rewound, statistics zeroed. A reset cache is
     * indistinguishable from a freshly built one, which is what lets
     * a build-once machine replay a run bit-identically.
     */
    void reset();

  private:
    /**
     * Set-blocked tag-array layout: each set owns one contiguous
     * block of 2 * ways u64 — its tag lane followed by its LRU-stamp
     * lane. The probe loop — by far the hottest code in the memory
     * model — scans only the 8-byte tag lane (two cache lines for a
     * 16-way L2 instead of the six an array-of-Line layout costs),
     * the valid bit is folded into the tag as a sentinel so a probe
     * is one integer compare per way, and because the LRU lane sits
     * right behind the tag lane, a miss's victim scan stays inside
     * the same already-fetched region — full struct-of-arrays lanes
     * measured *slower* here, since a random set index then costs
     * three distant memory regions per access instead of one.
     * Sector valid/dirty masks are cold (touched only on the matched
     * way) and live in a small separate line-indexed array.
     */
    struct Meta
    {
        SectorMask valid = 0;
        SectorMask dirty = 0;
    };

    /** Tag value of an invalid line; no reachable address maps to
     *  it, so probes need no separate valid check. */
    static constexpr std::uint64_t invalidTag = ~std::uint64_t{0};

    /** Tag lane of @p set (its LRU lane starts @c ways behind it). */
    std::uint64_t *
    setTags(std::size_t set)
    {
        return &tagLru_[set * 2 * ways];
    }
    const std::uint64_t *
    setTags(std::size_t set) const
    {
        return &tagLru_[set * 2 * ways];
    }

    /** Victim way of the set with tag lane @p tags / LRU lane
     *  @p last — the first invalid way, else the least-recently-used
     *  one (earliest way on ties). */
    unsigned findVictim(const std::uint64_t *tags,
                        const std::uint64_t *last) const;

    /** Set index of @p tag: single AND when the set count is a power
     *  of two (it always is for real L1/L2 geometries — a 64-bit
     *  divide per access is the alternative), modulo otherwise. */
    std::size_t
    setOf(std::uint64_t tag) const
    {
        return setMask_ ? static_cast<std::size_t>(tag & setMask_)
                        : static_cast<std::size_t>(tag % sets);
    }

    std::string name_;
    unsigned sets;
    unsigned ways;
    std::uint64_t setMask_ = 0; //!< sets - 1 if pow2, else 0 (use %)
    std::vector<std::uint64_t> tagLru_; //!< per set: tags, LRU stamps
    std::vector<Meta> meta_;            //!< sector valid/dirty masks
    std::uint64_t useClock = 1;
    Count accesses_ = 0;
    Count hits_ = 0;
    Count sectorHits_ = 0;
    Count sectorMisses_ = 0;
};

} // namespace mmgpu::mem

#endif // MMGPU_MEM_CACHE_HH
