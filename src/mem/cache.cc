#include "mem/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace mmgpu::mem
{

SectoredCache::SectoredCache(std::string name, Bytes capacity_bytes,
                             unsigned associativity)
    : name_(std::move(name)), ways(associativity)
{
    if (associativity == 0)
        mmgpu_fatal("cache '", name_, "': associativity must be >= 1");
    Bytes line_count = capacity_bytes / isa::cacheLineBytes;
    if (line_count == 0 || line_count % associativity != 0)
        mmgpu_fatal("cache '", name_, "': capacity ", capacity_bytes,
                    " not divisible into ", associativity, "-way sets");
    sets = static_cast<unsigned>(line_count / associativity);
    lines.resize(line_count);
}

SectoredCache::Line *
SectoredCache::findVictim(std::size_t set_base)
{
    Line *victim = &lines[set_base];
    for (unsigned w = 0; w < ways; ++w) {
        Line &line = lines[set_base + w];
        if (!line.validMask)
            return &line; // free way
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }
    return victim;
}

CacheAccessResult
SectoredCache::access(std::uint64_t addr, SectorMask sectors,
                      bool is_write)
{
    mmgpu_assert(sectors != 0 && sectors <= fullLineMask,
                 "bad sector mask");

    std::uint64_t tag = addr / isa::cacheLineBytes;
    std::size_t set_base =
        static_cast<std::size_t>(tag % sets) * ways;

    CacheAccessResult result;
    ++accesses_;
    ++useClock;

    // Probe the set.
    for (unsigned w = 0; w < ways; ++w) {
        Line &line = lines[set_base + w];
        if (line.validMask && line.tag == tag) {
            result.hitMask = sectors & line.validMask;
            result.missMask = sectors & ~line.validMask;
            line.validMask |= sectors; // fill missed sectors
            if (is_write)
                line.dirtyMask |= sectors;
            line.lastUse = useClock;
            if (result.missMask == 0)
                ++hits_;
            sectorHits_ += std::popcount(result.hitMask);
            sectorMisses_ += std::popcount(result.missMask);
            return result;
        }
    }

    // Full line miss: allocate via LRU.
    Line *victim = findVictim(set_base);
    if (victim->validMask && victim->dirtyMask) {
        result.writebackMask = victim->dirtyMask;
        result.writebackAddr = victim->tag * isa::cacheLineBytes;
    }
    victim->tag = tag;
    victim->validMask = sectors;
    victim->dirtyMask = is_write ? sectors : 0;
    victim->lastUse = useClock;

    result.hitMask = 0;
    result.missMask = sectors;
    sectorMisses_ += std::popcount(sectors);
    return result;
}

void
SectoredCache::assertResident(std::uint64_t addr) const
{
    std::uint64_t tag = addr / isa::cacheLineBytes;
    std::size_t set_base =
        static_cast<std::size_t>(tag % sets) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        const Line &line = lines[set_base + w];
        if (line.validMask && line.tag == tag)
            return;
    }
    mmgpu_panic("line ", addr, " not resident in ", name_);
}

void
SectoredCache::flushAll(
    std::vector<std::pair<std::uint64_t, SectorMask>> *writebacks)
{
    flushIf([](std::uint64_t) { return true; }, writebacks);
}

void
SectoredCache::cleanDirty(
    std::vector<std::pair<std::uint64_t, SectorMask>> *writebacks)
{
    for (auto &line : lines) {
        if (!line.validMask || !line.dirtyMask)
            continue;
        if (writebacks)
            writebacks->emplace_back(line.tag * isa::cacheLineBytes,
                                     line.dirtyMask);
        line.dirtyMask = 0;
    }
}

void
SectoredCache::resetStats()
{
    accesses_ = 0;
    hits_ = 0;
    sectorHits_ = 0;
    sectorMisses_ = 0;
}

void
SectoredCache::reset()
{
    // findVictim() never reads lastUse of an invalid line, so
    // rewinding useClock while zeroing every line reproduces the
    // as-constructed replacement behaviour exactly.
    for (Line &line : lines)
        line = Line{};
    useClock = 1;
    resetStats();
}

} // namespace mmgpu::mem
