#include "mem/cache.hh"

#include "common/logging.hh"

namespace mmgpu::mem
{

SectoredCache::SectoredCache(std::string name, Bytes capacity_bytes,
                             unsigned associativity)
    : name_(std::move(name)), ways(associativity)
{
    if (associativity == 0)
        mmgpu_fatal("cache '", name_, "': associativity must be >= 1");
    Bytes line_count = capacity_bytes / isa::cacheLineBytes;
    if (line_count == 0 || line_count % associativity != 0)
        mmgpu_fatal("cache '", name_, "': capacity ", capacity_bytes,
                    " not divisible into ", associativity, "-way sets");
    sets = static_cast<unsigned>(line_count / associativity);
    if ((sets & (sets - 1)) == 0)
        setMask_ = sets - 1;
    tagLru_.assign(line_count * 2, 0);
    for (std::size_t set = 0; set < sets; ++set) {
        std::uint64_t *tags = setTags(set);
        for (unsigned w = 0; w < ways; ++w)
            tags[w] = invalidTag;
    }
    meta_.assign(line_count, Meta{});
}

unsigned
SectoredCache::findVictim(const std::uint64_t *tags,
                          const std::uint64_t *last) const
{
    // Same selection as scanning an array of line structs: the first
    // invalid way short-circuits; otherwise the strictly smallest
    // LRU stamp wins, earliest way on ties. The stamp of an invalid
    // way is never read. The min scan carries (best, victim) through
    // ternaries so it compiles to conditional moves — a branchy scan
    // over LRU stamps is data-dependent and mispredicts constantly
    // in a miss-heavy set.
    unsigned victim = 0;
    std::uint64_t best = last[0];
    for (unsigned w = 0; w < ways; ++w) {
        if (tags[w] == invalidTag)
            return w; // free way
        bool better = last[w] < best;
        victim = better ? w : victim;
        best = better ? last[w] : best;
    }
    return victim;
}

CacheAccessResult
SectoredCache::access(std::uint64_t addr, SectorMask sectors,
                      bool is_write)
{
    mmgpu_assert(sectors != 0 && sectors <= fullLineMask,
                 "bad sector mask");

    std::uint64_t tag = addr / isa::cacheLineBytes;
    std::size_t set = setOf(tag);
    std::uint64_t *tags = setTags(set);
    std::uint64_t *last = tags + ways;

    CacheAccessResult result;
    ++accesses_;
    ++useClock;

    // Probe the set: tag lane only, invalid ways can never match.
    for (unsigned w = 0; w < ways; ++w) {
        if (tags[w] == tag) {
            Meta &meta = meta_[set * ways + w];
            result.hitMask = sectors & meta.valid;
            result.missMask = sectors & ~meta.valid;
            meta.valid |= sectors; // fill missed sectors
            if (is_write)
                meta.dirty |= sectors;
            last[w] = useClock;
            if (result.missMask == 0)
                ++hits_;
            sectorHits_ += sectorCount(result.hitMask);
            sectorMisses_ += sectorCount(result.missMask);
            return result;
        }
    }

    // Full line miss: allocate via LRU.
    unsigned victim = findVictim(tags, last);
    Meta &meta = meta_[set * ways + victim];
    if (tags[victim] != invalidTag && meta.dirty) {
        result.writebackMask = meta.dirty;
        result.writebackAddr = tags[victim] * isa::cacheLineBytes;
    }
    tags[victim] = tag;
    meta.valid = sectors;
    meta.dirty = is_write ? sectors : 0;
    last[victim] = useClock;

    result.hitMask = 0;
    result.missMask = sectors;
    sectorMisses_ += sectorCount(sectors);
    return result;
}

void
SectoredCache::assertResident(std::uint64_t addr) const
{
    std::uint64_t tag = addr / isa::cacheLineBytes;
    std::size_t set = setOf(tag);
    const std::uint64_t *tags = setTags(set);
    for (unsigned w = 0; w < ways; ++w) {
        if (tags[w] == tag)
            return;
    }
    mmgpu_panic("line ", addr, " not resident in ", name_);
}

void
SectoredCache::flushAll(
    std::vector<std::pair<std::uint64_t, SectorMask>> *writebacks)
{
    flushIf([](std::uint64_t) { return true; }, writebacks);
}

void
SectoredCache::cleanDirty(
    std::vector<std::pair<std::uint64_t, SectorMask>> *writebacks)
{
    for (std::size_t set = 0; set < sets; ++set) {
        const std::uint64_t *tags = setTags(set);
        for (unsigned w = 0; w < ways; ++w) {
            if (tags[w] == invalidTag)
                continue;
            Meta &meta = meta_[set * ways + w];
            if (!meta.dirty)
                continue;
            if (writebacks)
                writebacks->emplace_back(tags[w] * isa::cacheLineBytes,
                                         meta.dirty);
            meta.dirty = 0;
        }
    }
}

void
SectoredCache::resetStats()
{
    accesses_ = 0;
    hits_ = 0;
    sectorHits_ = 0;
    sectorMisses_ = 0;
}

void
SectoredCache::reset()
{
    // findVictim() never reads the LRU stamp of an invalid line, so
    // rewinding useClock while invalidating every line reproduces
    // the as-constructed replacement behaviour exactly.
    for (std::size_t set = 0; set < sets; ++set) {
        std::uint64_t *tags = setTags(set);
        for (unsigned w = 0; w < ways; ++w) {
            tags[w] = invalidTag;
            tags[ways + w] = 0;
        }
    }
    std::fill(meta_.begin(), meta_.end(), Meta{});
    useClock = 1;
    resetStats();
}

} // namespace mmgpu::mem
