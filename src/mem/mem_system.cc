#include "mem/mem_system.hh"

#include <sstream>

#include "common/logging.hh"

namespace mmgpu::mem
{

namespace
{

std::string
indexedName(const char *base, unsigned index)
{
    std::ostringstream os;
    os << base << index;
    return os.str();
}

} // namespace

MemSystem::MemSystem(const MemConfig &config,
                     noc::InterGpmNetwork *net)
    : cfg(config), network(net), pages(config.gpmCount)
{
    if (cfg.gpmCount == 0 || cfg.smsPerGpm == 0)
        mmgpu_fatal("memory system with zero GPMs or SMs");
    if (cfg.gpmCount > 1 && network == nullptr)
        mmgpu_fatal("multi-GPM configuration requires a network");

    unsigned total_sms = cfg.gpmCount * cfg.smsPerGpm;
    l1s.reserve(total_sms);
    for (unsigned s = 0; s < total_sms; ++s)
        l1s.emplace_back(indexedName("l1.sm", s), cfg.l1BytesPerSm,
                         cfg.l1Assoc);
    for (unsigned g = 0; g < cfg.gpmCount; ++g) {
        l2s.emplace_back(indexedName("l2.gpm", g), cfg.l2BytesPerGpm,
                         cfg.l2Assoc);
        drams.emplace_back(indexedName("hbm.gpm", g),
                           cfg.dramBytesPerCycle);
        nocs.emplace_back(indexedName("noc.gpm", g),
                          cfg.nocBytesPerCycle);
    }
}

noc::Tick
MemSystem::kernelBoundary(noc::Tick t, MemCounters &counters)
{
    // L1s are write-through: invalidation only.
    for (auto &l1 : l1s)
        l1.flushAll(nullptr);

    noc::Tick drained = t;
    std::vector<std::pair<std::uint64_t, SectorMask>> writebacks;
    for (unsigned g = 0; g < cfg.gpmCount; ++g) {
        writebacks.clear();
        // Purge remote-homed lines (stale after other GPMs write),
        // collecting their dirty data.
        l2s[g].flushIf(
            [&](std::uint64_t line_addr) {
                unsigned home = pages.homeOf(line_addr);
                return home != g && home != cfg.gpmCount;
            },
            &writebacks);
        // Clean remaining (local-homed) dirty lines: write back but
        // keep them cached for the next kernel.
        l2s[g].cleanDirty(&writebacks);

        for (const auto &[line_addr, dirty] : writebacks) {
            unsigned sectors = sectorCount(dirty);
            double bytes =
                sectors * static_cast<double>(isa::sectorBytes);
            counters.txns[static_cast<std::size_t>(
                isa::TxnLevel::DramToL2)] += sectors;
            counters.writebackSectors += sectors;

            if (telTxn_)
                telTxn_->addAt(t,
                               static_cast<std::size_t>(
                                   isa::TxnLevel::DramToL2),
                               sectors);
            unsigned home = pages.touch(line_addr, g);
            noc::Tick at_home = t;
            if (home != g && network != nullptr) {
                counters.remoteSectors += sectors;
                at_home = network->transfer(t, g, home, bytes);
            } else {
                counters.localSectors += sectors;
            }
            drained = std::max(drained,
                               drams[home].acquire(at_home, bytes));
        }
    }
    return drained;
}

Count
MemSystem::l1Accesses() const
{
    Count total = 0;
    for (const auto &l1 : l1s)
        total += l1.accesses();
    return total;
}

Count
MemSystem::l1SectorHits() const
{
    Count total = 0;
    for (const auto &l1 : l1s)
        total += l1.sectorHits();
    return total;
}

Count
MemSystem::l2Accesses() const
{
    Count total = 0;
    for (const auto &l2 : l2s)
        total += l2.accesses();
    return total;
}

Count
MemSystem::l2SectorHits() const
{
    Count total = 0;
    for (const auto &l2 : l2s)
        total += l2.sectorHits();
    return total;
}

double
MemSystem::dramQueueing() const
{
    double total = 0.0;
    for (const auto &dram : drams)
        total += dram.queueingCycles();
    return total;
}

double
MemSystem::dramBusy() const
{
    double total = 0.0;
    for (const auto &dram : drams)
        total += dram.busyCycles();
    return total;
}

void
MemSystem::reset()
{
    pages.reset();
    for (auto &l1 : l1s)
        l1.reset();
    for (auto &l2 : l2s)
        l2.reset();
    for (auto &dram : drams)
        dram.reset();
    for (auto &noc : nocs)
        noc.reset();
}

void
MemSystem::detachTelemetry()
{
    telTxn_ = nullptr;
    telL1SectorHits_ = &nullCounter_;
    telL1SectorMisses_ = &nullCounter_;
    telL2SectorHits_ = &nullCounter_;
    telL2SectorMisses_ = &nullCounter_;
    telDramQueueCycles_ = nullptr;
    for (auto &dram : drams)
        dram.setTelemetrySink(nullptr);
    for (auto &noc : nocs)
        noc.setTelemetrySink(nullptr);
}

void
MemSystem::attachTelemetry(telemetry::Telemetry &tel)
{
    telemetry::CounterRegistry &reg = tel.counters();
    telL1SectorHits_ = &reg.counter("mem/l1_sector_hits");
    telL1SectorMisses_ = &reg.counter("mem/l1_sector_misses");
    telL2SectorHits_ = &reg.counter("mem/l2_sector_hits");
    telL2SectorMisses_ = &reg.counter("mem/l2_sector_misses");
    telDramQueueCycles_ = &reg.counter("mem/dram_queue_cycles");

    telemetry::Timeline *tl = tel.timeline();
    if (tl == nullptr)
        return;
    telTxn_ = &tel.activity("txn", isa::numTxnLevels);
    using Kind = telemetry::TimelineTrack::Kind;
    for (unsigned g = 0; g < cfg.gpmCount; ++g) {
        drams[g].setTelemetrySink(
            &tl->track(indexedName("gpm", g) + "/hbm", Kind::Busy));
        nocs[g].setTelemetrySink(
            &tl->track(indexedName("gpm", g) + "/noc", Kind::Busy));
    }
}

} // namespace mmgpu::mem
