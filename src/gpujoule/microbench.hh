/**
 * @file
 * The GPUJoule microbenchmark suite (paper §IV-A, Algorithm 1).
 *
 * Three families:
 *  - compute microbenchmarks: one per PTX opcode, an unrolled
 *    inline-assembly loop repeating the instruction (the ROI source
 *    is generated as real PTX text and checked by the parser, like
 *    the paper's inline-asm kernels are checked by the assembler);
 *  - data-movement microbenchmarks: pointer-chase loops sized to a
 *    single level of the memory hierarchy, with warp accesses
 *    coalesced to one cache line and locality managed so only the
 *    target level services misses;
 *  - validation microbenchmarks (Fig. 4a): mixed FADD64 + memory
 *    traffic at sub-peak rates, used to expose coverage and
 *    interaction errors after initial calibration.
 *
 * A microbenchmark describes the steady-state activity it induces on
 * the calibration device as fractions of the device's peak rates;
 * the virtual silicon turns that into power, and the calibration
 * pipeline only ever sees the sensor.
 */

#ifndef MMGPU_GPUJOULE_MICROBENCH_HH
#define MMGPU_GPUJOULE_MICROBENCH_HH

#include <optional>
#include <string>
#include <vector>

#include "gpujoule/device_spec.hh"
#include "power/silicon.hh"

namespace mmgpu::joule
{

/** One microbenchmark. */
struct Microbench
{
    std::string name;

    /** ROI inline-PTX source (compute benches; informational for
     *  memory benches, which are pointer-chase loops). */
    std::string ptxSource;

    /** Per-opcode execution intensity as a fraction of the device's
     *  peak rate for that opcode. */
    std::array<double, isa::numOpcodes> instrFractions{};

    /**
     * Per-level warp-access intensity as a fraction of the device's
     * peak access rate at that level. An access at level L also
     * induces the upstream transactions (an L2 access moves a line
     * into the L1 and to the registers).
     */
    std::array<double, isa::numTxnLevels> accessFractions{};

    /** Fraction of SM cycles spent stalled (occupancy benches). */
    double stallFraction = 0.0;

    /** The opcode this bench isolates, if any. */
    std::optional<isa::Opcode> targetOp;

    /** The transaction level this bench isolates, if any. */
    std::optional<isa::TxnLevel> targetLevel;

    /** Steady-state device activity this bench induces on @p spec. */
    power::ActivityRates activityOn(const DeviceSpec &spec) const;
};

/** Generate the Algorithm-1-style PTX ROI for @p op (validated). */
std::string makeComputePtx(isa::Opcode op, unsigned unroll = 8);

/** One compute microbenchmark per (energy-relevant) PTX opcode. */
std::vector<Microbench> computeSuite();

/** One pointer-chase microbenchmark per memory level. */
std::vector<Microbench> memorySuite();

/** An occupancy-sweep bench isolating the energy of stalled cycles. */
Microbench stallBench();

/** The Fig. 4a validation set: FADD64 x {shm, L1, L2, DRAM,
 *  L2+DRAM}. */
std::vector<Microbench> validationSuite();

} // namespace mmgpu::joule

#endif // MMGPU_GPUJOULE_MICROBENCH_HH
