/**
 * @file
 * Idle-power management extensions (paper §V-E).
 *
 * The paper closes by pointing at "system-level techniques that
 * reduce the impact of constant power in the presence of large
 * numbers of GPU modules ... such as intelligent clock-gating and
 * power-gating". This header provides the first-order model of those
 * techniques the ablation benches use:
 *
 *  - clock gating attacks the EP_stall term: an SM that cannot issue
 *    stops toggling its pipeline clocks, eliminating a fraction of
 *    the stall energy;
 *  - power gating attacks the constant term: the SM-domain share of
 *    a GPM's constant power is cut while the GPM's SMs sit entirely
 *    idle (outside their active windows).
 */

#ifndef MMGPU_GPUJOULE_GATING_HH
#define MMGPU_GPUJOULE_GATING_HH

#include "gpujoule/energy_model.hh"

namespace mmgpu::joule
{

/** First-order gating effectiveness knobs. */
struct GatingOptions
{
    /** Fraction of stall energy eliminated by clock gating [0,1]. */
    double clockGating = 0.0;

    /** Fraction of the gateable constant power eliminated during
     *  whole-SM idle time [0,1]. */
    double powerGating = 0.0;

    /** Share of a GPM's constant power that lives in the gateable SM
     *  clock/power domain (the rest is VRs, PDN, I/O, DRAM
     *  interface). */
    double smShareOfConstant = 0.4;
};

/**
 * Eq. 4 with gating applied.
 *
 * Requires inputs.smOccupiedCycles and inputs.smCycleCapacity to be
 * populated (the fraction of SM-cycles outside any active window is
 * what power gating can reclaim).
 */
EnergyBreakdown estimateWithGating(const EnergyInputs &inputs,
                                   const EnergyParams &params,
                                   const GatingOptions &options);

} // namespace mmgpu::joule

#endif // MMGPU_GPUJOULE_GATING_HH
