#include "gpujoule/calibration.hh"

#include <cmath>

#include "common/logging.hh"
#include "gpujoule/energy_model.hh"

namespace mmgpu::joule
{

namespace
{

/** Warm-up margin before the measured ROI begins. */
constexpr Seconds warmup = 0.2;

} // namespace

Calibrator::Calibrator(const power::SiliconGpu &dev, DeviceSpec s,
                       std::uint64_t sensor_seed)
    : device(&dev), spec(s), sensor(power::SensorSpec{}, sensor_seed),
      meter(sensor)
{
}

void
Calibrator::attachFaults(const fault::FaultPlan &plan)
{
    if (!plan.sensor.enabled())
        return;
    sensor.attachFaults(plan.sensor, plan.streamFor("sensor"));
    faulty = true;
}

Watts
Calibrator::measureBench(const Microbench &bench, Seconds roi)
{
    power::ActivityRates rates = bench.activityOn(spec);
    Watts true_power = device->kernelPower(rates);

    power::PowerTimeline timeline;
    timeline.addPhase(warmup, device->idlePower());
    timeline.addPhase(warmup + roi + warmup, true_power);
    return meter.measureSteadyPower(timeline, 2.0 * warmup,
                                    2.0 * warmup + roi);
}

Watts
Calibrator::measureIdle(Seconds roi)
{
    power::PowerTimeline timeline;
    timeline.addPhase(warmup + roi + warmup, device->idlePower());
    return meter.measureSteadyPower(timeline, warmup, warmup + roi);
}

Watts
Calibrator::measureBenchTolerant(const Microbench &bench, Seconds roi,
                                 const CalibrationSettings &settings,
                                 CalibrationResult &result)
{
    power::ActivityRates rates = bench.activityOn(spec);
    Watts true_power = device->kernelPower(rates);

    Seconds r = roi;
    for (unsigned attempt = 0;; ++attempt) {
        power::PowerTimeline timeline;
        timeline.addPhase(warmup, device->idlePower());
        timeline.addPhase(warmup + r + warmup, true_power);
        power::SteadyMeasurement m = meter.measureSteadyPowerRobust(
            timeline, 2.0 * warmup, 2.0 * warmup + r,
            settings.minValidFraction);
        if (m.ok || attempt >= settings.measureRetries)
            return m.power;
        ++result.measurementRetries;
        r *= 2.0;
    }
}

Watts
Calibrator::measureIdleTolerant(Seconds roi,
                                const CalibrationSettings &settings,
                                CalibrationResult &result)
{
    Seconds r = roi;
    for (unsigned attempt = 0;; ++attempt) {
        power::PowerTimeline timeline;
        timeline.addPhase(warmup + r + warmup, device->idlePower());
        power::SteadyMeasurement m = meter.measureSteadyPowerRobust(
            timeline, warmup, warmup + r,
            settings.minValidFraction);
        if (m.ok || attempt >= settings.measureRetries)
            return m.power;
        ++result.measurementRetries;
        r *= 2.0;
    }
}

CalibrationResult
Calibrator::calibrate(const CalibrationSettings &settings)
{
    CalibrationResult result;
    Seconds roi = settings.initialRoi;

    // With sensor faults attached every measurement goes through the
    // robust estimator and retry-with-backoff; without, the original
    // averaging protocol runs bit-identically to before.
    auto bench_power = [&](const Microbench &b) {
        return faulty ? measureBenchTolerant(b, roi, settings, result)
                      : measureBench(b, roi);
    };
    auto idle_power = [&] {
        return faulty ? measureIdleTolerant(roi, settings, result)
                      : measureIdle(roi);
    };

    const auto compute_benches = computeSuite();
    const auto memory_benches = memorySuite();
    const auto validation_benches = validationSuite();
    const Microbench stall_bench = stallBench();

    for (unsigned iter = 1; iter <= settings.maxIterations; ++iter) {
        result.iterations = iter;

        // Step 1a: Const_Power from the idle device.
        result.constPower = idle_power();

        // Step 1b: compute EPIs per Eq. 5 — the measured power delta
        // divided by the (thread-level) instruction rate.
        for (const auto &bench : compute_benches) {
            mmgpu_assert(bench.targetOp.has_value(),
                         "compute bench without target");
            Watts active = bench_power(bench);
            double rate = spec.instrRate(*bench.targetOp);
            Joules epi = (active - result.constPower) / rate;
            result.table.epi[static_cast<std::size_t>(
                *bench.targetOp)] = epi > 0.0 ? epi : 0.0;
        }
        // Memory opcodes execute as MOV-class pipeline operations;
        // their data movement is what the EPTs charge.
        auto mov_epi = result.table.epiOf(isa::Opcode::MOV32);
        for (auto op : {isa::Opcode::LD_GLOBAL, isa::Opcode::ST_GLOBAL,
                        isa::Opcode::LD_SHARED,
                        isa::Opcode::ST_SHARED}) {
            result.table.epi[static_cast<std::size_t>(op)] = mov_epi;
        }

        // Step 1c: data-movement EPTs, hierarchically stripped: the
        // L2 chase also moves lines into registers (L1ToReg), and
        // the DRAM chase additionally crosses the L2<->L1 edge, so
        // already-derived upstream EPTs are subtracted first.
        const double sectors = static_cast<double>(
            isa::cacheLineBytes / isa::sectorBytes);
        for (const auto &bench : memory_benches) {
            mmgpu_assert(bench.targetLevel.has_value(),
                         "memory bench without target level");
            isa::TxnLevel level = *bench.targetLevel;
            Watts active = bench_power(bench);
            double access_rate = spec.accessRate(level);
            double delta = active - result.constPower;

            double txn_rate;
            switch (level) {
              case isa::TxnLevel::SharedToReg:
              case isa::TxnLevel::L1ToReg:
                txn_rate = access_rate;
                break;
              case isa::TxnLevel::L2ToL1:
                delta -= access_rate *
                         result.table.eptOf(isa::TxnLevel::L1ToReg);
                txn_rate = access_rate * sectors;
                break;
              case isa::TxnLevel::DramToL2:
                delta -= access_rate *
                         result.table.eptOf(isa::TxnLevel::L1ToReg);
                delta -= access_rate * sectors *
                         result.table.eptOf(isa::TxnLevel::L2ToL1);
                txn_rate = access_rate * sectors;
                break;
              default:
                mmgpu_panic("bad txn level");
            }
            Joules ept = delta / txn_rate;
            result.table.ept[static_cast<std::size_t>(level)] =
                ept > 0.0 ? ept : 0.0;
        }

        // Step 1d: EP_stall from the low-occupancy bench — subtract
        // the known compute contribution, divide by the stall rate.
        {
            Watts active = bench_power(stall_bench);
            power::ActivityRates rates = stall_bench.activityOn(spec);
            double compute_power =
                rates.instrRates[static_cast<std::size_t>(
                    isa::Opcode::FADD32)] *
                result.table.epiOf(isa::Opcode::FADD32);
            Joules stall =
                (active - result.constPower - compute_power) /
                rates.stallRate;
            result.stallEnergy = stall > 0.0 ? stall : 0.0;
        }

        // Steps 2+3: validate the assembled model on the mixed
        // microbenchmarks (Fig. 4a).
        result.validation.clear();
        double worst = 0.0;
        for (const auto &bench : validation_benches) {
            power::ActivityRates rates = bench.activityOn(spec);
            Seconds duration = roi;

            // Modeled energy: Eq. 4 on the bench's event counts.
            EnergyInputs inputs;
            for (std::size_t i = 0; i < isa::numOpcodes; ++i) {
                inputs.warpInstrs[i] = static_cast<Count>(
                    rates.instrRates[i] * duration / isa::warpSize);
            }
            for (std::size_t i = 0; i < isa::numTxnLevels; ++i) {
                inputs.txns[i] = static_cast<Count>(
                    rates.txnRates[i] * duration);
            }
            inputs.execTime = duration;
            inputs.gpmCount = 1;

            EnergyParams params;
            params.table = result.table;
            params.stallEnergyPerSmCycle = result.stallEnergy;
            params.constPowerPerGpm = result.constPower;

            ValidationPoint point;
            point.name = bench.name;
            point.modeled = estimate(inputs, params).total();
            point.measured = bench_power(bench) * duration;
            result.validation.push_back(point);
            worst = std::max(worst,
                             std::abs(point.relativeError()));
        }

        // Step 4: accuracy achieved?
        if (worst <= settings.accuracyTarget) {
            result.converged = true;
            break;
        }
        roi *= settings.roiGrowth;
    }

    if (!result.converged) {
        warn("GPUJoule calibration did not reach ",
             settings.accuracyTarget * 100.0,
             "% on the validation microbenchmarks after ",
             result.iterations, " iterations");
    }

    const power::SensorFaultStats &stats = sensor.faultStats();
    result.sensorReads = stats.reads;
    result.droppedSamples = stats.dropouts;
    result.spikeSamples = stats.spikes;
    result.glitchSamples = stats.glitches;
    return result;
}

} // namespace mmgpu::joule
