#include "gpujoule/energy_model.hh"

#include "common/logging.hh"

namespace mmgpu::joule
{

EnergyBreakdown
estimate(const EnergyInputs &inputs, const EnergyParams &params)
{
    mmgpu_assert(inputs.gpmCount >= 1, "energy estimate with no GPMs");
    mmgpu_assert(inputs.execTime >= 0.0, "negative execution time");

    EnergyBreakdown breakdown;

    // sum_c EPI_c * IC_c (thread-level instruction counts).
    for (std::size_t i = 0; i < isa::numOpcodes; ++i) {
        breakdown.smBusy += params.table.epi[i] *
                            static_cast<double>(inputs.warpInstrs[i]) *
                            isa::warpSize;
    }

    // sum_m EPT_m * TC_m, attributed per hierarchy edge.
    auto txn_energy = [&](isa::TxnLevel level) {
        auto i = static_cast<std::size_t>(level);
        return params.table.ept[i] *
               static_cast<double>(inputs.txns[i]);
    };
    breakdown.shmToReg = txn_energy(isa::TxnLevel::SharedToReg);
    breakdown.l1ToReg = txn_energy(isa::TxnLevel::L1ToReg);
    breakdown.l2ToL1 = txn_energy(isa::TxnLevel::L2ToL1);
    breakdown.dramToL2 = txn_energy(isa::TxnLevel::DramToL2);

    // EP_stall * stalls.
    breakdown.smIdle =
        params.stallEnergyPerSmCycle * inputs.smStallCycles;

    // Const_Power * Execution_Time, scaled by (amortized) GPM count.
    breakdown.constant = params.constPowerPerGpm *
                         params.constScale(inputs.gpmCount) *
                         inputs.execTime;

    // Inter-GPM data movement (§V-A2): per-hop link energy plus the
    // extra switch-crossing energy where a switch is present.
    breakdown.interModule =
        units::energyPerTransfer(params.linkPjPerBit,
                                 inputs.linkBytes) +
        units::energyPerTransfer(params.switchPjPerBit,
                                 inputs.switchBytes);

    return breakdown;
}

EnergyBreakdown
estimate(const EnergyInputs &inputs, const EnergyParams &params,
         telemetry::Telemetry &telemetry)
{
    EnergyBreakdown breakdown = estimate(inputs, params);

    telemetry::CounterRegistry &reg = telemetry.counters();
    reg.gauge("energy/sm_busy_j").set(breakdown.smBusy);
    reg.gauge("energy/sm_idle_j").set(breakdown.smIdle);
    reg.gauge("energy/constant_j").set(breakdown.constant);
    reg.gauge("energy/shm_to_reg_j").set(breakdown.shmToReg);
    reg.gauge("energy/l1_to_reg_j").set(breakdown.l1ToReg);
    reg.gauge("energy/l2_to_l1_j").set(breakdown.l2ToL1);
    reg.gauge("energy/dram_to_l2_j").set(breakdown.dramToL2);
    reg.gauge("energy/inter_module_j").set(breakdown.interModule);
    reg.gauge("energy/total_j").set(breakdown.total());
    if (inputs.execTime > 0.0) {
        reg.gauge("energy/avg_power_w")
            .set(breakdown.total() / inputs.execTime);
    }
    return breakdown;
}

} // namespace mmgpu::joule
