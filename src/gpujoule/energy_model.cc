#include "gpujoule/energy_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/contract.hh"
#include "common/logging.hh"

namespace mmgpu::joule
{

EnergyBreakdown
estimate(const EnergyInputs &inputs, const EnergyParams &params)
{
    MMGPU_EXPECT(inputs.gpmCount >= 1, "energy estimate with no GPMs");
    MMGPU_EXPECT(inputs.execTime >= 0.0, "negative execution time");

    EnergyBreakdown breakdown;

    // sum_c EPI_c * IC_c (thread-level instruction counts).
    for (std::size_t i = 0; i < isa::numOpcodes; ++i) {
        breakdown.smBusy += params.table.epi[i] *
                            static_cast<double>(inputs.warpInstrs[i]) *
                            isa::warpSize;
    }

    // sum_m EPT_m * TC_m, attributed per hierarchy edge.
    auto txn_energy = [&](isa::TxnLevel level) {
        auto i = static_cast<std::size_t>(level);
        return params.table.ept[i] *
               static_cast<double>(inputs.txns[i]);
    };
    breakdown.shmToReg = txn_energy(isa::TxnLevel::SharedToReg);
    breakdown.l1ToReg = txn_energy(isa::TxnLevel::L1ToReg);
    breakdown.l2ToL1 = txn_energy(isa::TxnLevel::L2ToL1);
    breakdown.dramToL2 = txn_energy(isa::TxnLevel::DramToL2);

    // EP_stall * stalls.
    breakdown.smIdle =
        params.stallEnergyPerSmCycle * inputs.smStallCycles;

    // Const_Power * Execution_Time, scaled by (amortized) GPM count.
    breakdown.constant = params.constPowerPerGpm *
                         params.constScale(inputs.gpmCount) *
                         inputs.execTime;

    // Inter-GPM data movement (§V-A2): per-hop link energy plus the
    // extra switch-crossing energy where a switch is present.
    breakdown.interModule =
        units::energyPerTransfer(params.linkPjPerBit,
                                 inputs.linkBytes) +
        units::energyPerTransfer(params.switchPjPerBit,
                                 inputs.switchBytes) +
        params.reconfigJoules *
            static_cast<double>(inputs.reconfigs);

    if constexpr (contract::auditsEnabled) {
        std::string verdict = auditEstimate(inputs, params, breakdown);
        MMGPU_INVARIANT(verdict.empty(), verdict);
    }
    MMGPU_ENSURE(std::isfinite(breakdown.total()),
                 "non-finite total energy");
    return breakdown;
}

EnergyBreakdown
estimate(const EnergyInputs &inputs, const EnergyParams &params,
         telemetry::Telemetry &telemetry)
{
    EnergyBreakdown breakdown = estimate(inputs, params);

    telemetry::CounterRegistry &reg = telemetry.counters();
    reg.gauge("energy/sm_busy_j").set(breakdown.smBusy);
    reg.gauge("energy/sm_idle_j").set(breakdown.smIdle);
    reg.gauge("energy/constant_j").set(breakdown.constant);
    reg.gauge("energy/shm_to_reg_j").set(breakdown.shmToReg);
    reg.gauge("energy/l1_to_reg_j").set(breakdown.l1ToReg);
    reg.gauge("energy/l2_to_l1_j").set(breakdown.l2ToL1);
    reg.gauge("energy/dram_to_l2_j").set(breakdown.dramToL2);
    reg.gauge("energy/inter_module_j").set(breakdown.interModule);
    reg.gauge("energy/total_j").set(breakdown.total());
    if (inputs.execTime > 0.0) {
        reg.gauge("energy/avg_power_w")
            .set(breakdown.total() / inputs.execTime);
    }
    return breakdown;
}

namespace
{

/**
 * |got - want| within a 1e-9 relative band (absolute below 1e-15 J,
 * far under one picojoule, so zero-energy components compare clean).
 */
bool
closeEnough(long double want, double got)
{
    const long double diff = std::fabs(want - got);
    const long double scale =
        std::max<long double>(std::fabs(want), 1e-6L);
    return diff <= 1e-9L * scale + 1e-15L;
}

std::string
mismatch(const char *component, long double want, double got)
{
    std::ostringstream os;
    os.precision(17);
    os << "energy audit: " << component << " reported " << got
       << " J but re-derivation gives "
       << static_cast<double>(want) << " J";
    return os.str();
}

} // namespace

std::string
auditEstimate(const EnergyInputs &inputs, const EnergyParams &params,
              const EnergyBreakdown &breakdown)
{
    const double components[] = {
        breakdown.smBusy,   breakdown.smIdle,   breakdown.constant,
        breakdown.shmToReg, breakdown.l1ToReg,  breakdown.l2ToL1,
        breakdown.dramToL2, breakdown.interModule};
    for (double c : components) {
        if (!std::isfinite(c))
            return "energy audit: non-finite component";
        if (c < 0.0)
            return "energy audit: negative component";
    }

    // Re-derive the EPI sum in reverse opcode order with extended
    // precision: catches both dropped terms and gross accumulation
    // error in the forward pass.
    long double sm_busy = 0.0L;
    for (std::size_t i = isa::numOpcodes; i-- > 0;) {
        sm_busy += static_cast<long double>(params.table.epi[i]) *
                   static_cast<long double>(inputs.warpInstrs[i]) *
                   isa::warpSize;
    }
    if (!closeEnough(sm_busy, breakdown.smBusy))
        return mismatch("smBusy", sm_busy, breakdown.smBusy);

    const struct
    {
        const char *name;
        isa::TxnLevel level;
        double got;
    } txn_terms[] = {
        {"shmToReg", isa::TxnLevel::SharedToReg, breakdown.shmToReg},
        {"l1ToReg", isa::TxnLevel::L1ToReg, breakdown.l1ToReg},
        {"l2ToL1", isa::TxnLevel::L2ToL1, breakdown.l2ToL1},
        {"dramToL2", isa::TxnLevel::DramToL2, breakdown.dramToL2},
    };
    for (const auto &term : txn_terms) {
        auto i = static_cast<std::size_t>(term.level);
        long double want =
            static_cast<long double>(params.table.ept[i]) *
            static_cast<long double>(inputs.txns[i]);
        if (!closeEnough(want, term.got))
            return mismatch(term.name, want, term.got);
    }

    long double sm_idle =
        static_cast<long double>(params.stallEnergyPerSmCycle) *
        inputs.smStallCycles;
    if (!closeEnough(sm_idle, breakdown.smIdle))
        return mismatch("smIdle", sm_idle, breakdown.smIdle);

    long double constant =
        static_cast<long double>(params.constPowerPerGpm) *
        params.constScale(inputs.gpmCount) * inputs.execTime;
    if (!closeEnough(constant, breakdown.constant))
        return mismatch("constant", constant, breakdown.constant);

    long double inter_module =
        static_cast<long double>(
            units::energyPerTransfer(params.linkPjPerBit,
                                     inputs.linkBytes)) +
        static_cast<long double>(
            units::energyPerTransfer(params.switchPjPerBit,
                                     inputs.switchBytes)) +
        static_cast<long double>(params.reconfigJoules) *
            static_cast<double>(inputs.reconfigs);
    if (!closeEnough(inter_module, breakdown.interModule))
        return mismatch("interModule", inter_module,
                        breakdown.interModule);

    // The reported total must be exactly the sum of the reported
    // components — a component added to the struct but forgotten in
    // total() shows up here.
    long double component_sum = 0.0L;
    for (double c : components)
        component_sum += c;
    if (!closeEnough(component_sum, breakdown.total()))
        return mismatch("total", component_sum, breakdown.total());

    return {};
}

} // namespace mmgpu::joule
