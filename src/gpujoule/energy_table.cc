#include "gpujoule/energy_table.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mmgpu::joule
{

EnergyTable
paperTableIb()
{
    using isa::Opcode;
    using units::nJ;

    EnergyTable table;
    auto set = [&](Opcode op, double nanojoules) {
        table.epi[static_cast<std::size_t>(op)] = nanojoules * nJ;
    };

    // 32b float ADD, MUL, FMA: 0.06, 0.05, 0.05 nJ.
    set(Opcode::FADD32, 0.06);
    set(Opcode::FMUL32, 0.05);
    set(Opcode::FFMA32, 0.05);
    // 32b int ADD, SUB: 0.07, 0.07 nJ.
    set(Opcode::IADD32, 0.07);
    set(Opcode::ISUB32, 0.07);
    // 32b bitwise AND, OR, XOR: 0.06 nJ each.
    set(Opcode::AND32, 0.06);
    set(Opcode::OR32, 0.06);
    set(Opcode::XOR32, 0.06);
    // 32b float SINE, COS: 0.10 nJ each.
    set(Opcode::SIN32, 0.10);
    set(Opcode::COS32, 0.10);
    // 32b int MUL, MAD: 0.13, 0.15 nJ.
    set(Opcode::IMUL32, 0.13);
    set(Opcode::IMAD32, 0.15);
    // 64b float ADD, MUL, FMA: 0.15, 0.13, 0.16 nJ.
    set(Opcode::FADD64, 0.15);
    set(Opcode::FMUL64, 0.13);
    set(Opcode::FFMA64, 0.16);
    // 32b float SQRT, LOG2, EXP2, RCP: 0.02, 0.03, 0.08, 0.31 nJ.
    set(Opcode::SQRT32, 0.02);
    set(Opcode::LG232, 0.03);
    set(Opcode::EX232, 0.08);
    set(Opcode::RCP32, 0.31);
    // Register moves and memory opcodes: MOV-class pipeline cost;
    // the data movement itself is charged through the EPTs.
    set(Opcode::MOV32, 0.02);
    set(Opcode::LD_GLOBAL, 0.02);
    set(Opcode::ST_GLOBAL, 0.02);
    set(Opcode::LD_SHARED, 0.02);
    set(Opcode::ST_SHARED, 0.02);

    using isa::TxnLevel;
    auto set_txn = [&](TxnLevel level, double nanojoules) {
        table.ept[static_cast<std::size_t>(level)] = nanojoules * nJ;
    };
    // Data movement transactions (nJ per transaction).
    set_txn(TxnLevel::SharedToReg, 5.45); // 5.32 pJ/bit * 128 B
    set_txn(TxnLevel::L1ToReg, 5.99);     // 5.85 pJ/bit * 128 B
    set_txn(TxnLevel::L2ToL1, 3.96);      // 15.48 pJ/bit * 32 B
    set_txn(TxnLevel::DramToL2, 7.82);    // 30.55 pJ/bit * 32 B

    return table;
}

double
maxRelativeError(const EnergyTable &a, const EnergyTable &b)
{
    double worst = 0.0;
    for (std::size_t i = 0; i < isa::numOpcodes; ++i) {
        if (b.epi[i] <= 0.0)
            continue;
        worst = std::max(worst,
                         std::abs(a.epi[i] - b.epi[i]) / b.epi[i]);
    }
    for (std::size_t i = 0; i < isa::numTxnLevels; ++i) {
        if (b.ept[i] <= 0.0)
            continue;
        worst = std::max(worst,
                         std::abs(a.ept[i] - b.ept[i]) / b.ept[i]);
    }
    return worst;
}

} // namespace mmgpu::joule
