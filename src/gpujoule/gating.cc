#include "gpujoule/gating.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mmgpu::joule
{

EnergyBreakdown
estimateWithGating(const EnergyInputs &inputs,
                   const EnergyParams &params,
                   const GatingOptions &options)
{
    if (options.clockGating < 0.0 || options.clockGating > 1.0 ||
        options.powerGating < 0.0 || options.powerGating > 1.0 ||
        options.smShareOfConstant < 0.0 ||
        options.smShareOfConstant > 1.0) {
        mmgpu_fatal("gating knobs must be in [0,1]");
    }

    EnergyBreakdown breakdown = estimate(inputs, params);

    // Clock gating: stalled SMs stop toggling pipeline clocks.
    breakdown.smIdle *= 1.0 - options.clockGating;

    // Power gating: the SM-domain share of constant power is shut
    // off while SMs sit outside any active window.
    if (options.powerGating > 0.0) {
        if (inputs.smCycleCapacity <= 0.0)
            mmgpu_fatal("power gating requires smCycleCapacity");
        double occupancy =
            std::clamp(inputs.smOccupiedCycles /
                           inputs.smCycleCapacity,
                       0.0, 1.0);
        double idle_fraction = 1.0 - occupancy;
        breakdown.constant *= 1.0 - options.powerGating *
                                        options.smShareOfConstant *
                                        idle_fraction;
    }
    return breakdown;
}

} // namespace mmgpu::joule
