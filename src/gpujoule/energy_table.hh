/**
 * @file
 * Energy-per-instruction / energy-per-transaction tables.
 *
 * An EnergyTable is GPUJoule's calibrated artifact: one EPI per PTX
 * opcode (joules per thread-level instruction) and one EPT per
 * memory-hierarchy transaction level. paperTableIb() returns the
 * values the paper measured on the Tesla K40 (Table Ib) for
 * comparison against what our calibration pipeline recovers.
 */

#ifndef MMGPU_GPUJOULE_ENERGY_TABLE_HH
#define MMGPU_GPUJOULE_ENERGY_TABLE_HH

#include <array>

#include "common/units.hh"
#include "isa/instruction.hh"
#include "isa/opcode.hh"

namespace mmgpu::joule
{

/** Calibrated per-event energies. */
struct EnergyTable
{
    /** Joules per thread-level instruction, indexed by opcode. */
    std::array<Joules, isa::numOpcodes> epi{};

    /** Joules per transaction, indexed by TxnLevel. */
    std::array<Joules, isa::numTxnLevels> ept{};

    /** EPI accessor by opcode. */
    Joules
    epiOf(isa::Opcode op) const
    {
        return epi[static_cast<std::size_t>(op)];
    }

    /** EPT accessor by level. */
    Joules
    eptOf(isa::TxnLevel level) const
    {
        return ept[static_cast<std::size_t>(level)];
    }

    /** Effective pJ/bit of a transaction level (Table Ib column 2). */
    double
    pjPerBit(isa::TxnLevel level) const
    {
        return eptOf(level) /
               (8.0 * static_cast<double>(isa::txnBytes(level))) / 1e-12;
    }
};

/**
 * The published Table Ib values for the Tesla K40 (nJ per
 * thread-instruction, nJ per transaction). Loads/stores carry no
 * pipeline EPI of their own in the paper's accounting — their cost
 * is the EPT of the transactions they trigger — so memory opcodes
 * get a MOV-class EPI.
 */
EnergyTable paperTableIb();

/**
 * Maximum relative EPI/EPT deviation between two tables, e.g. the
 * recovered calibration vs the published values.
 */
double maxRelativeError(const EnergyTable &a, const EnergyTable &b);

} // namespace mmgpu::joule

#endif // MMGPU_GPUJOULE_ENERGY_TABLE_HH
