#include "gpujoule/microbench.hh"

#include <sstream>

#include "common/logging.hh"
#include "isa/ptx_parser.hh"

namespace mmgpu::joule
{

power::ActivityRates
Microbench::activityOn(const DeviceSpec &spec) const
{
    power::ActivityRates rates;
    for (std::size_t i = 0; i < isa::numOpcodes; ++i) {
        if (instrFractions[i] > 0.0) {
            rates.instrRates[i] =
                instrFractions[i] *
                spec.instrRate(static_cast<isa::Opcode>(i));
        }
    }

    using isa::TxnLevel;
    auto level_index = [](TxnLevel level) {
        return static_cast<std::size_t>(level);
    };
    auto add_txn = [&](TxnLevel level, double rate) {
        rates.txnRates[level_index(level)] += rate;
    };

    // An access at level L induces the full upstream cascade: the
    // line always crosses into the register file, and sector
    // transfers occur at every level below the one that hits.
    for (std::size_t i = 0; i < isa::numTxnLevels; ++i) {
        if (accessFractions[i] <= 0.0)
            continue;
        auto level = static_cast<TxnLevel>(i);
        double access_rate = accessFractions[i] * spec.accessRate(level);
        double sectors = static_cast<double>(isa::cacheLineBytes /
                                             isa::sectorBytes);

        switch (level) {
          case TxnLevel::SharedToReg:
            add_txn(TxnLevel::SharedToReg, access_rate);
            break;
          case TxnLevel::L1ToReg:
            add_txn(TxnLevel::L1ToReg, access_rate);
            break;
          case TxnLevel::L2ToL1:
            add_txn(TxnLevel::L1ToReg, access_rate);
            add_txn(TxnLevel::L2ToL1, access_rate * sectors);
            break;
          case TxnLevel::DramToL2:
            add_txn(TxnLevel::L1ToReg, access_rate);
            add_txn(TxnLevel::L2ToL1, access_rate * sectors);
            add_txn(TxnLevel::DramToL2, access_rate * sectors);
            break;
          default:
            mmgpu_panic("bad txn level");
        }
    }

    if (stallFraction > 0.0) {
        // Stalled SM-cycles per second across the whole device.
        rates.stallRate = stallFraction * spec.smCount * spec.clockHz;
    }
    return rates;
}

std::string
makeComputePtx(isa::Opcode op, unsigned unroll)
{
    std::ostringstream ptx;
    ptx << "// GPUJoule compute microbenchmark ROI: "
        << isa::mnemonic(op) << "\n";
    ptx << ".reg .f32 %r1, %r2, %r3;\n";
    ptx << "mov.f32 %r1, 0f3F800000;\n";
    ptx << "mov.f32 %r2, 0f40000000;\n";
    ptx << "mov.f32 %r3, 0f40400000;\n";

    std::string operands;
    switch (isa::funcUnit(op)) {
      case isa::FuncUnit::SFU:
        operands = "%r3, %r1";
        break;
      case isa::FuncUnit::MOVE:
        operands = "%r3, %r1";
        break;
      case isa::FuncUnit::LDST:
        operands = "%r3, [%r1]";
        break;
      default:
        // Two- or three-input ALU forms.
        operands = (op == isa::Opcode::FFMA32 ||
                    op == isa::Opcode::FFMA64 ||
                    op == isa::Opcode::IMAD32)
                       ? "%r3, %r1, %r3, %r2"
                       : "%r3, %r1, %r2";
        break;
    }
    for (unsigned i = 0; i < unroll; ++i)
        ptx << isa::mnemonic(op) << " " << operands << ";\n";

    std::string source = ptx.str();
    isa::PtxParseResult parsed = isa::parsePtx(source);
    if (!parsed.ok)
        mmgpu_panic("generated microbenchmark fails to parse: ",
                    parsed.error);
    // The register-initialization prologue contributes MOVs of its
    // own, so the ROI count is a lower bound for the MOV bench.
    mmgpu_assert(parsed.kernel.countOf(op) >= unroll,
                 "microbenchmark ROI has wrong instruction count");
    return source;
}

std::vector<Microbench>
computeSuite()
{
    std::vector<Microbench> suite;
    for (std::size_t i = 0; i < isa::numOpcodes; ++i) {
        auto op = static_cast<isa::Opcode>(i);
        // Memory opcodes are characterized by the data-movement
        // suite, not by compute loops.
        if (isa::isMemory(op))
            continue;
        Microbench bench;
        bench.name = std::string("epi.") + isa::mnemonic(op);
        bench.ptxSource = makeComputePtx(op);
        bench.instrFractions[i] = 1.0;
        bench.targetOp = op;
        suite.push_back(std::move(bench));
    }
    return suite;
}

std::vector<Microbench>
memorySuite()
{
    std::vector<Microbench> suite;
    const struct
    {
        isa::TxnLevel level;
        const char *name;
    } levels[] = {
        {isa::TxnLevel::SharedToReg, "ept.shared_chase"},
        {isa::TxnLevel::L1ToReg, "ept.l1_chase"},
        {isa::TxnLevel::L2ToL1, "ept.l2_chase"},
        {isa::TxnLevel::DramToL2, "ept.dram_chase"},
    };
    for (const auto &entry : levels) {
        Microbench bench;
        bench.name = entry.name;
        bench.ptxSource =
            "// pointer-chase loop, working set sized to the level\n"
            ".reg .f32 %p;\n"
            "ld.global.f32 %p, [%p];\n";
        bench.accessFractions[static_cast<std::size_t>(entry.level)] =
            1.0;
        bench.targetLevel = entry.level;
        suite.push_back(std::move(bench));
    }
    return suite;
}

Microbench
stallBench()
{
    // Low-occupancy FADD32 loop: a quarter of peak issue rate with
    // 60% of SM cycles stalled on dependencies.
    Microbench bench;
    bench.name = "epstall.low_occupancy";
    bench.ptxSource = makeComputePtx(isa::Opcode::FADD32, 2);
    bench.instrFractions[static_cast<std::size_t>(
        isa::Opcode::FADD32)] = 0.25;
    bench.stallFraction = 0.60;
    bench.targetOp = isa::Opcode::FADD32;
    return bench;
}

std::vector<Microbench>
validationSuite()
{
    std::vector<Microbench> suite;
    const struct
    {
        const char *name;
        std::vector<isa::TxnLevel> levels;
    } combos[] = {
        {"fadd64+shared", {isa::TxnLevel::SharedToReg}},
        {"fadd64+l1d", {isa::TxnLevel::L1ToReg}},
        {"fadd64+l2", {isa::TxnLevel::L2ToL1}},
        {"fadd64+dram", {isa::TxnLevel::DramToL2}},
        {"fadd64+l2+dram",
         {isa::TxnLevel::L2ToL1, isa::TxnLevel::DramToL2}},
    };
    for (const auto &combo : combos) {
        Microbench bench;
        bench.name = std::string("validate.") + combo.name;
        bench.ptxSource = makeComputePtx(isa::Opcode::FADD64, 4);
        bench.instrFractions[static_cast<std::size_t>(
            isa::Opcode::FADD64)] = 0.5;
        for (auto level : combo.levels) {
            // The DRAM component runs near peak (a bandwidth bench);
            // companion levels run at reduced rates.
            double fraction =
                level == isa::TxnLevel::DramToL2 ? 0.7 : 0.35;
            if (combo.levels.size() == 1)
                fraction = 0.7;
            bench.accessFractions[static_cast<std::size_t>(level)] =
                fraction;
        }
        suite.push_back(std::move(bench));
    }
    return suite;
}

} // namespace mmgpu::joule
