/**
 * @file
 * The GPUJoule calibration pipeline (paper Figure 3).
 *
 * Steps, exactly as the paper's flow chart:
 *  1. Run the compute and data-movement microbenchmarks on the
 *     device, measuring steady-state power through the on-board
 *     sensor, and derive EPIs/EPTs per Eq. 5 (data-movement levels
 *     are stripped hierarchically: the L2 figure subtracts the
 *     already-derived L1 contribution, and so on).
 *  2. Assemble the initial energy model.
 *  3. Run mixed-instruction validation microbenchmarks; compare
 *     modeled vs measured energy.
 *  4. If accuracy is not achieved, refine: lengthen the measurement
 *     ROI (averaging down sensor noise and quantization dither) and
 *     re-derive, up to a bounded number of iterations.
 *
 * The calibrator can only observe the device through the sensor —
 * it never reads the silicon's hidden coefficients.
 */

#ifndef MMGPU_GPUJOULE_CALIBRATION_HH
#define MMGPU_GPUJOULE_CALIBRATION_HH

#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "gpujoule/device_spec.hh"
#include "gpujoule/energy_table.hh"
#include "gpujoule/microbench.hh"
#include "power/measurement.hh"
#include "power/sensor.hh"
#include "power/silicon.hh"

namespace mmgpu::joule
{

/** Settings of one calibration campaign. */
struct CalibrationSettings
{
    /** Initial steady-state ROI per microbenchmark. */
    Seconds initialRoi = 0.15;

    /** ROI growth factor per refinement iteration. */
    double roiGrowth = 3.0;

    /** Acceptance threshold on the validation microbenchmarks'
     *  worst absolute relative error. */
    double accuracyTarget = 0.08;

    /** Refinement iteration bound. */
    unsigned maxIterations = 4;

    /** With sensor faults attached: per-microbench re-measure bound
     *  when too few reads survive dropout. Each retry doubles the
     *  measurement ROI (backoff), averaging down the loss. */
    unsigned measureRetries = 3;

    /** With sensor faults attached: fraction of polls that must
     *  survive dropout before a measurement is trusted. */
    double minValidFraction = 0.6;
};

/** Modeled-vs-measured comparison of one validation bench. */
struct ValidationPoint
{
    std::string name;
    Joules modeled = 0.0;
    Joules measured = 0.0;

    /** Signed relative error (modeled - measured) / measured. */
    double
    relativeError() const
    {
        return measured != 0.0 ? (modeled - measured) / measured : 0.0;
    }
};

/** Output of a calibration campaign. */
struct CalibrationResult
{
    /** Recovered EPI/EPT table. */
    EnergyTable table;

    /** Measured device idle power (Eq. 4's Const_Power). */
    Watts constPower = 0.0;

    /** Recovered energy per stalled SM-cycle (EP_stall). */
    Joules stallEnergy = 0.0;

    /** Fig. 4a points from the final iteration. */
    std::vector<ValidationPoint> validation;

    /** Refinement iterations used (1 = initial pass sufficed). */
    unsigned iterations = 0;

    /** Whether the accuracy target was met. */
    bool converged = false;

    /** Sensor reads issued over the campaign (fault accounting). */
    Count sensorReads = 0;

    /** Reads lost to injected dropouts. */
    Count droppedSamples = 0;

    /** Reads inflated by injected spikes. */
    Count spikeSamples = 0;

    /** Reads offset by injected quantization glitches. */
    Count glitchSamples = 0;

    /** ROI-doubling re-measurements forced by excessive dropout. */
    unsigned measurementRetries = 0;
};

/** Drives the Figure 3 flow against one device. */
class Calibrator
{
  public:
    /**
     * @param device Device under calibration.
     * @param spec Its throughput description.
     * @param sensor_seed Sensor noise seed for this campaign.
     */
    Calibrator(const power::SiliconGpu &device, DeviceSpec spec,
               std::uint64_t sensor_seed = 0x5e4507);

    /** Run the full pipeline. */
    CalibrationResult calibrate(const CalibrationSettings &settings = {});

    /**
     * Inject @p plan's sensor faults into this campaign's sensor
     * (no-op when the plan carries no sensor faults). Measurements
     * switch to the outlier-robust median-of-windows estimator with
     * per-microbench retry-with-backoff; under the default fault
     * plan (8% dropout, 2% spikes) recovered EPIs/EPTs stay within
     * roughly twice the fault-free accuracy envelope — the
     * regression suite asserts 20% against the hidden truth.
     */
    void attachFaults(const fault::FaultPlan &plan);

    /**
     * Measure one microbenchmark's steady power over @p roi seconds
     * (exposed for tests and the Fig. 4a bench).
     */
    Watts measureBench(const Microbench &bench, Seconds roi);

    /** Measured idle power over @p roi seconds. */
    Watts measureIdle(Seconds roi);

  private:
    /** Fault-tolerant measureBench: robust estimator plus ROI
     *  doubling while too few reads survive; tallies retries. */
    Watts measureBenchTolerant(const Microbench &bench, Seconds roi,
                               const CalibrationSettings &settings,
                               CalibrationResult &result);

    /** Fault-tolerant measureIdle. */
    Watts measureIdleTolerant(Seconds roi,
                              const CalibrationSettings &settings,
                              CalibrationResult &result);

    const power::SiliconGpu *device;
    DeviceSpec spec;
    power::PowerSensor sensor;
    power::PowerMeter meter;
    bool faulty = false;
};

} // namespace mmgpu::joule

#endif // MMGPU_GPUJOULE_CALIBRATION_HH
