/**
 * @file
 * Factory for the reference K40-class virtual silicon.
 *
 * The ground truth seeds from the paper's published Table Ib values,
 * perturbed per-coefficient by a small seeded deviation so the
 * calibration pipeline provably *recovers* the device's energies
 * through the sensor rather than echoing constants, plus the
 * device-level effects the GPUJoule model class omits (idle power,
 * DRAM background power, stall energy).
 */

#ifndef MMGPU_GPUJOULE_REFERENCE_DEVICE_HH
#define MMGPU_GPUJOULE_REFERENCE_DEVICE_HH

#include <cstdint>

#include "gpujoule/device_spec.hh"
#include "power/silicon.hh"

namespace mmgpu::joule
{

/**
 * Build the reference ground truth.
 *
 * @param spec Device throughput description (for the DRAM
 *        utilization reference point).
 * @param seed Perturbation seed; the default is the repo-wide
 *        reference device.
 * @param perturbation Max relative deviation applied to each
 *        coefficient.
 */
power::GroundTruth
referenceK40Truth(const DeviceSpec &spec = {},
                  std::uint64_t seed = 0x40c0ffee,
                  double perturbation = 0.03);

} // namespace mmgpu::joule

#endif // MMGPU_GPUJOULE_REFERENCE_DEVICE_HH
