/**
 * @file
 * Throughput model of the calibration device (paper Table Ia).
 *
 * Microbenchmarks need to know the rate at which the device executes
 * their region of interest to turn a measured power delta into an
 * energy per event (Eq. 5). On real hardware this rate is simply
 * measured (instructions / time); here the virtual device publishes
 * its achievable throughputs, mirroring what a microbenchmark run
 * would observe on a Tesla K40.
 */

#ifndef MMGPU_GPUJOULE_DEVICE_SPEC_HH
#define MMGPU_GPUJOULE_DEVICE_SPEC_HH

#include "common/units.hh"
#include "isa/instruction.hh"
#include "isa/opcode.hh"

namespace mmgpu::joule
{

/** Calibration-device (Tesla K40 class) throughput description. */
struct DeviceSpec
{
    unsigned smCount = 15;
    double clockHz = 745e6;

    /** Warp instructions issued per SM per cycle at full occupancy. */
    double issuePerCycle = 4.0;

    /** Achievable bandwidth per memory level, bytes/s (measured
     *  figures, below datasheet peaks). */
    double sharedBytesPerSec = 1.30e12;
    double l1BytesPerSec = 1.10e12;
    double l2BytesPerSec = 4.50e11;
    double dramBytesPerSec = 2.20e11;

    /**
     * Peak thread-level instruction rate for @p op: all SMs issuing
     * it back to back, derated by the opcode's issue cost.
     */
    double
    instrRate(isa::Opcode op) const
    {
        return smCount * issuePerCycle * clockHz * isa::warpSize /
               static_cast<double>(isa::issueCost(op));
    }

    /**
     * Warp-access rate (128 B accesses/s) of a pointer-chase style
     * microbenchmark saturating @p level.
     */
    double
    accessRate(isa::TxnLevel level) const
    {
        double bw = 0.0;
        switch (level) {
          case isa::TxnLevel::SharedToReg:
            bw = sharedBytesPerSec;
            break;
          case isa::TxnLevel::L1ToReg:
            bw = l1BytesPerSec;
            break;
          case isa::TxnLevel::L2ToL1:
            bw = l2BytesPerSec;
            break;
          case isa::TxnLevel::DramToL2:
            bw = dramBytesPerSec;
            break;
          default:
            break;
        }
        return bw / static_cast<double>(isa::cacheLineBytes);
    }

    /** DRAM sector (32 B) rate at peak bandwidth. */
    double
    dramSectorRateMax() const
    {
        return dramBytesPerSec / static_cast<double>(isa::sectorBytes);
    }
};

} // namespace mmgpu::joule

#endif // MMGPU_GPUJOULE_DEVICE_SPEC_HH
