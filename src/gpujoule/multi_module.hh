/**
 * @file
 * Multi-module energy-model configuration (paper §V-A2).
 *
 * Maps an integration domain and topology onto the published energy
 * constants the study uses:
 *  - HBM DRAM interface: 21.1 pJ/bit (replaces the K40's calibrated
 *    GDDR5 DRAM EPT in all simulated-architecture studies);
 *  - on-package links: 0.54 pJ/bit (ground-referenced signaling);
 *  - on-board links: 10 pJ/bit;
 *  - switch crossing: +10 pJ/bit;
 *  - constant-energy amortization: on-board replicates all per-GPM
 *    constant power; on-package shares 50% of it (25% and 0% are
 *    studied as sensitivity points).
 */

#ifndef MMGPU_GPUJOULE_MULTI_MODULE_HH
#define MMGPU_GPUJOULE_MULTI_MODULE_HH

#include "gpujoule/energy_model.hh"

namespace mmgpu::joule
{

/** Published energy constants (see file header for sources). */
namespace constants
{
/** On-package link energy [23]. */
inline constexpr double onPackagePjPerBit = 0.54;

/** On-board link energy [5]. */
inline constexpr double onBoardPjPerBit = 10.0;

/** Additional switch-crossing energy (paper §V-C footnote 2). */
inline constexpr double switchPjPerBit = 10.0;

/** HBM DRAM interface energy [39]. */
inline constexpr double hbmPjPerBit = 21.1;

/** Energy of one circuit reconfiguration of an optical
 *  circuit-scheduled fabric (MEMS mirror retargeting plus control
 *  plane; order-of-magnitude figure for a package-scale OCS). */
inline constexpr Joules ocsReconfigJoules = 50e-6;

/** Fraction of per-GPM constant power that replicates on-package
 *  (50% amortization baseline, §V-A2). */
inline constexpr double onPackageConstGrowth = 0.5;
} // namespace constants

/** Knobs for building the EnergyParams of one studied design. */
struct MultiModuleOptions
{
    /** True for on-package integration (0.54 pJ/bit, amortization);
     *  false for on-board (10 pJ/bit, no amortization). */
    bool onPackage = true;

    /** True when the inter-GPM network crosses a switch fabric —
     *  a packet switch, or a circuit-scheduled fabric's electrical
     *  fallback plane (adds the switch crossing energy). */
    bool switched = false;

    /** True when the fabric is circuit-scheduled: charges
     *  constants::ocsReconfigJoules per circuit reconfiguration. */
    bool circuitReconfig = false;

    /** Multiplier on the link pJ/bit (the §V-C interconnect-energy
     *  point study uses 2x and 4x). */
    double linkEnergyScale = 1.0;

    /** Override of the constant-growth fraction; negative means use
     *  the domain default (1.0 on-board, 0.5 on-package). The
     *  amortization sensitivity study passes 0.75 (25% shared) and
     *  1.0 (no sharing). */
    double constGrowthOverride = -1.0;
};

/**
 * Build the energy parameters for a simulated multi-module (or
 * monolithic) GPU from a calibrated table.
 *
 * @param table Calibrated EPI/EPT table (K40-derived). The DRAM EPT
 *        is replaced by the HBM figure, since all simulated
 *        configurations use HBM stacks.
 * @param stall_energy Calibrated EP_stall (J per stalled SM-cycle).
 * @param const_power Calibrated per-GPM constant power.
 * @param options Domain/topology knobs.
 */
EnergyParams multiModuleParams(const EnergyTable &table,
                               Joules stall_energy, Watts const_power,
                               const MultiModuleOptions &options);

} // namespace mmgpu::joule

#endif // MMGPU_GPUJOULE_MULTI_MODULE_HH
