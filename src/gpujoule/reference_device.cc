#include "gpujoule/reference_device.hh"

#include "common/rng.hh"
#include "gpujoule/energy_table.hh"

namespace mmgpu::joule
{

power::GroundTruth
referenceK40Truth(const DeviceSpec &spec, std::uint64_t seed,
                  double perturbation)
{
    EnergyTable table = paperTableIb();
    Rng rng(seed);
    auto perturb = [&](Joules value) {
        return value * (1.0 + perturbation * (2.0 * rng.uniform() - 1.0));
    };

    power::GroundTruth truth;
    for (std::size_t i = 0; i < isa::numOpcodes; ++i)
        truth.epi[i] = perturb(table.epi[i]);
    for (std::size_t i = 0; i < isa::numTxnLevels; ++i)
        truth.ept[i] = perturb(table.ept[i]);

    // K40-class device constants: idle power around 62 W (VRs, PDN,
    // host I/O, leakage at the performance power state), a ~25 W
    // DRAM background exposed at low utilization, and roughly 0.8 nJ
    // per stalled SM-cycle (scheduler and datapath clocks running
    // without issue).
    truth.idlePower = 62.0;
    truth.memActiveFloor = 30.0;
    truth.dramSectorRateMax = spec.dramSectorRateMax();
    truth.stallEnergyPerSmCycle = 0.8 * units::nJ;
    return truth;
}

} // namespace mmgpu::joule
