#include "gpujoule/multi_module.hh"

#include "common/logging.hh"

namespace mmgpu::joule
{

EnergyParams
multiModuleParams(const EnergyTable &table, Joules stall_energy,
                  Watts const_power, const MultiModuleOptions &options)
{
    if (options.linkEnergyScale <= 0.0)
        mmgpu_fatal("non-positive link energy scale");

    EnergyParams params;
    params.table = table;
    params.stallEnergyPerSmCycle = stall_energy;
    params.constPowerPerGpm = const_power;

    // All simulated configurations use HBM stacks: replace the
    // calibrated (GDDR5) DRAM interface energy with the published
    // HBM figure at the 32 B sector granularity.
    params.table.ept[static_cast<std::size_t>(
        isa::TxnLevel::DramToL2)] =
        units::energyPerTransfer(constants::hbmPjPerBit,
                                 isa::sectorBytes);

    params.linkPjPerBit = (options.onPackage
                               ? constants::onPackagePjPerBit
                               : constants::onBoardPjPerBit) *
                          options.linkEnergyScale;
    params.switchPjPerBit =
        options.switched ? constants::switchPjPerBit : 0.0;
    params.reconfigJoules =
        options.circuitReconfig ? constants::ocsReconfigJoules : 0.0;

    if (options.constGrowthOverride >= 0.0) {
        if (options.constGrowthOverride > 1.0)
            mmgpu_fatal("constant-growth fraction above 1");
        params.constGrowthFraction = options.constGrowthOverride;
    } else {
        params.constGrowthFraction =
            options.onPackage ? constants::onPackageConstGrowth : 1.0;
    }
    return params;
}

} // namespace mmgpu::joule
