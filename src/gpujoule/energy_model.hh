/**
 * @file
 * The GPUJoule energy model — the paper's Eq. 4:
 *
 *   E_GPU = sum_c EPI_c * IC_c
 *         + sum_m EPT_m * TC_m
 *         + EP_stall * stalls
 *         + Const_Power * Execution_Time
 *
 * extended for multi-module GPUs (§V-A2) with inter-GPM link energy
 * (per byte-hop and per switch crossing), the HBM DRAM interface
 * energy, and constant-energy amortization across GPMs.
 *
 * The model consumes plain event counts (EnergyInputs) and is
 * deliberately independent of the performance simulator — the same
 * top-down decoupling the paper argues for.
 */

#ifndef MMGPU_GPUJOULE_ENERGY_MODEL_HH
#define MMGPU_GPUJOULE_ENERGY_MODEL_HH

#include <array>
#include <string>

#include "common/units.hh"
#include "gpujoule/energy_table.hh"
#include "isa/instruction.hh"
#include "isa/opcode.hh"
#include "telemetry/telemetry.hh"

namespace mmgpu::joule
{

/** Event counts of one run (Eq. 4 right-hand side). */
struct EnergyInputs
{
    /** Warp-level instruction counts per opcode (the model expands
     *  them by the 32 lanes of a warp). */
    std::array<Count, isa::numOpcodes> warpInstrs{};

    /** Memory transaction counts per level. */
    std::array<Count, isa::numTxnLevels> txns{};

    /** SM-cycles spent stalled with resident work, summed over SMs. */
    double smStallCycles = 0.0;

    /** End-to-end execution time. */
    Seconds execTime = 0.0;

    /** GPM count of the configuration. */
    unsigned gpmCount = 1;

    /** Bytes entering the inter-GPM network (counted per message,
     *  matching the per-transferred-bit energy figures). */
    Count linkBytes = 0;

    /** Bytes through the switch fabric. */
    Count switchBytes = 0;

    /** Circuit reconfigurations of a circuit-scheduled fabric (0 on
     *  every other topology). */
    Count reconfigs = 0;

    /** SM-cycles inside active windows, summed over SMs (used only
     *  by the gating extension; 0 when untracked). */
    double smOccupiedCycles = 0.0;

    /** Total SM-cycle capacity (SM count x execution cycles; used
     *  only by the gating extension; 0 when untracked). */
    double smCycleCapacity = 0.0;
};

/** Model coefficients for one device/configuration. */
struct EnergyParams
{
    /** Calibrated EPI/EPT table. */
    EnergyTable table;

    /** Joules per stalled SM-cycle (EP_stall). */
    Joules stallEnergyPerSmCycle = 0.0;

    /** Constant (idle) power of one GPM (Const_Power). */
    Watts constPowerPerGpm = 0.0;

    /**
     * Fraction of per-GPM constant power that replicates with GPM
     * count; the rest is shared platform overhead (paper's Constant
     * Energy Amortization). 1.0 models on-board integration (no
     * sharing); 0.5 is the paper's on-package baseline.
     * Effective constant power = constPowerPerGpm *
     *   (growthFraction * N + (1 - growthFraction)).
     */
    double constGrowthFraction = 1.0;

    /** Inter-GPM link energy per transferred bit. */
    double linkPjPerBit = 0.0;

    /** Additional energy per bit through a switch crossing. */
    double switchPjPerBit = 0.0;

    /** Energy per circuit reconfiguration of a circuit-scheduled
     *  fabric (0 everywhere else). */
    Joules reconfigJoules = 0.0;

    /** Effective GPM-count multiplier on constant power. */
    double
    constScale(unsigned gpm_count) const
    {
        if (gpm_count <= 1)
            return 1.0;
        return constGrowthFraction * gpm_count +
               (1.0 - constGrowthFraction);
    }
};

/** Eq. 4 output, broken down by the Figure 7 components. */
struct EnergyBreakdown
{
    Joules smBusy = 0.0;     //!< "SM Pipeline (Busy)": EPI terms
    Joules smIdle = 0.0;     //!< "SM Pipeline (Idle)": EP_stall term
    Joules constant = 0.0;   //!< "Constant Energy Overhead"
    Joules shmToReg = 0.0;   //!< shared memory -> register file
    Joules l1ToReg = 0.0;    //!< "L1 -> Reg"
    Joules l2ToL1 = 0.0;     //!< "L2 -> L1"
    Joules dramToL2 = 0.0;   //!< "DRAM -> L2"
    Joules interModule = 0.0; //!< "Inter-Module" link + switch energy

    /** Total GPU energy. */
    Joules
    total() const
    {
        return smBusy + smIdle + constant + shmToReg + l1ToReg +
               l2ToL1 + dramToL2 + interModule;
    }
};

/** Evaluate Eq. 4. */
EnergyBreakdown estimate(const EnergyInputs &inputs,
                         const EnergyParams &params);

/**
 * Evaluate Eq. 4 and record the per-component breakdown into
 * @p telemetry as "energy/..." gauges (joules) plus the derived
 * "energy/total_j" and "energy/avg_power_w" figures. Pass the same
 * Telemetry the simulator filled so one export carries both the
 * performance activity and its energy attribution.
 */
EnergyBreakdown estimate(const EnergyInputs &inputs,
                         const EnergyParams &params,
                         telemetry::Telemetry &telemetry);

/**
 * Energy-accounting audit: re-derives every Eq. 4 term of
 * @p breakdown from @p inputs and @p params with independent
 * (long double, reverse-order) arithmetic and checks the reported
 * components and total against them to a 1e-9 relative tolerance —
 * catching silently dropped terms, unit slips, and accumulation
 * error, the class of defect EnergAIzer-style calibration pipelines
 * are most sensitive to. Also rejects non-finite or negative
 * components outright.
 *
 * @return empty string when the books balance, else a diagnostic.
 *         Plain-function form so tests can exercise it at any
 *         contract level; estimate() wraps it in MMGPU_INVARIANT in
 *         audit builds (MMGPU_CONTRACTS=2).
 */
std::string auditEstimate(const EnergyInputs &inputs,
                          const EnergyParams &params,
                          const EnergyBreakdown &breakdown);

} // namespace mmgpu::joule

#endif // MMGPU_GPUJOULE_ENERGY_MODEL_HH
