/**
 * @file
 * Scaling-efficiency metrics (paper §III).
 *
 * EDP Scaling Efficiency (EDPSE) is the paper's contribution: the
 * fraction of linear EDP scaling a design realizes when hardware is
 * replicated N times (Eq. 2), generalized to EDiPSE for EDiP metrics
 * (Eq. 3). Parallel efficiency (Eq. 1) is the classical
 * performance-only counterpart.
 */

#ifndef MMGPU_METRICS_EDPSE_HH
#define MMGPU_METRICS_EDPSE_HH

#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"

namespace mmgpu::metrics
{

/** Energy/delay observation of one run. */
struct EnergyDelay
{
    Joules energy = 0.0;
    Seconds delay = 0.0;
};

/** Energy-delay product E * D. */
inline double
edp(const EnergyDelay &point)
{
    return point.energy * point.delay;
}

/** Generalized energy-delay product E * D^i. */
inline double
edip(const EnergyDelay &point, int i)
{
    mmgpu_assert(i >= 1, "EDiP exponent must be >= 1");
    return point.energy * std::pow(point.delay, i);
}

/**
 * Parallel efficiency in percent (Eq. 1):
 *   t1 * 100 / (N * tN).
 *
 * @param t1 Execution time on 1 processor.
 * @param tn Execution time on @p n processors.
 * @param n Processor count.
 */
inline double
parallelEfficiency(Seconds t1, Seconds tn, unsigned n)
{
    mmgpu_assert(n >= 1 && t1 > 0.0 && tn > 0.0,
                 "bad parallel-efficiency inputs");
    return t1 * 100.0 / (static_cast<double>(n) * tn);
}

/**
 * EDP Scaling Efficiency in percent (Eq. 2):
 *   EDP1 * 100 / (N * EDPN).
 *
 * 100% means linear EDP scaling (N-fold speedup at constant energy);
 * values above 100% indicate super-linear speedup or an energy
 * decrease (paper footnote 1).
 *
 * @param one The 1-processor observation.
 * @param scaled The N-processor observation.
 * @param n Resource replication factor.
 */
inline double
edpse(const EnergyDelay &one, const EnergyDelay &scaled, unsigned n)
{
    mmgpu_assert(n >= 1, "EDPSE with zero resources");
    double scaled_edp = edp(scaled);
    mmgpu_assert(scaled_edp > 0.0, "EDPSE with non-positive EDP");
    return edp(one) * 100.0 / (static_cast<double>(n) * scaled_edp);
}

/**
 * EDiP Scaling Efficiency in percent (Eq. 3):
 *   EDiP1 * 100 / (N^i * EDiPN).
 */
inline double
edipse(const EnergyDelay &one, const EnergyDelay &scaled, unsigned n,
       int i)
{
    mmgpu_assert(n >= 1, "EDiPSE with zero resources");
    double scaled_edip = edip(scaled, i);
    mmgpu_assert(scaled_edip > 0.0, "EDiPSE with non-positive EDiP");
    return edip(one, i) * 100.0 /
           (std::pow(static_cast<double>(n), i) * scaled_edip);
}

/** Speedup t1/tN. */
inline double
speedup(Seconds t1, Seconds tn)
{
    mmgpu_assert(tn > 0.0, "speedup with zero time");
    return t1 / tn;
}

} // namespace mmgpu::metrics

#endif // MMGPU_METRICS_EDPSE_HH
