#include "noc/topologies/circuit.hh"

#include <algorithm>

#include "common/logging.hh"
#include "noc/topologies/detail.hh"

namespace mmgpu::noc
{

using detail::linkName;
using detail::linkScales;

CircuitSwitchedNetwork::CircuitSwitchedNetwork(
    unsigned gpm_count, double per_gpm_io_bytes_per_cycle,
    Cycles hop_latency, Cycles fabric_latency,
    const fault::LinkFaultSpec &faults)
    : gpmCount(gpm_count), hopLatency(hop_latency),
      fabricLatency(fabric_latency)
{
    if (gpm_count < 2)
        mmgpu_fatal("circuit fabric requires >= 2 GPMs, got ",
                    gpm_count);
    auto scales = linkScales("ocs", gpm_count, faults);
    const double fallback_rate =
        per_gpm_io_bytes_per_cycle * ocs::fallbackFraction;
    circuitPlaneUp_.assign(gpm_count, true);
    for (unsigned g = 0; g < gpm_count; ++g) {
        // A failed circuit plane (scale 0) drops the GPM from the
        // matching — degraded reconfiguration — rather than failing
        // the machine; its traffic rides the fallback.
        circuitPlaneUp_[g] = scales[g][0] > 0.0;
        double tx_scale = circuitPlaneUp_[g] ? scales[g][0] : 1.0;
        circuitTx_.emplace_back(
            linkName("ocs", g, ".tx"),
            per_gpm_io_bytes_per_cycle * tx_scale);
        if (scales[g][1] == 0.0)
            mmgpu_fatal("ocs fallback port failure on GPM ", g,
                        " strands its unmatched traffic; use a"
                        " capacity scale > 0");
        fallbackUp_.emplace_back(linkName("ocs", g, ".fb.up"),
                                 fallback_rate * scales[g][1]);
        fallbackDown_.emplace_back(linkName("ocs", g, ".fb.down"),
                                   fallback_rate * scales[g][1]);
    }
    circuits_.assign(gpm_count, gpm_count);
    demand_.assign(std::size_t{gpm_count} * gpm_count, 0.0);
}

std::vector<unsigned>
CircuitSwitchedNetwork::matchCircuits(
    const std::vector<double> &demand) const
{
    // Greedy maximum-weight matching: sort all demanded pairs by
    // weight (heaviest first; ties in (src, dst) order so the result
    // is deterministic), then claim transmit and receive ports
    // first-come. Both endpoints need a healthy circuit plane.
    struct Pair
    {
        double weight;
        unsigned src;
        unsigned dst;
    };
    std::vector<Pair> pairs;
    for (unsigned s = 0; s < gpmCount; ++s) {
        for (unsigned d = 0; d < gpmCount; ++d) {
            double w = demand[std::size_t{s} * gpmCount + d];
            if (s != d && w > 0.0 && circuitPlaneUp_[s] &&
                circuitPlaneUp_[d])
                pairs.push_back({w, s, d});
        }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair &a, const Pair &b) {
                  if (a.weight != b.weight)
                      return a.weight > b.weight;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.dst < b.dst;
              });
    std::vector<unsigned> matching(gpmCount, gpmCount);
    std::vector<bool> rxTaken(gpmCount, false);
    for (const Pair &p : pairs) {
        if (matching[p.src] == gpmCount && !rxTaken[p.dst]) {
            matching[p.src] = p.dst;
            rxTaken[p.dst] = true;
        }
    }
    return matching;
}

void
CircuitSwitchedNetwork::advanceEpochs(Tick t)
{
    while (t >= epochStart_ + ocs::epochCycles) {
        Tick boundary = epochStart_ + ocs::epochCycles;
        std::vector<unsigned> next = matchCircuits(demand_);
        if (next != circuits_) {
            circuits_ = std::move(next);
            ++traffic_.reconfigs;
            // The reconfiguration window starts at the boundary the
            // demand was evaluated at, not at the (possibly much
            // later) message that triggered the evaluation.
            circuitsReadyAt_ =
                std::max(circuitsReadyAt_,
                         boundary + ocs::reconfigLatencyCycles);
        }
        std::fill(demand_.begin(), demand_.end(), 0.0);
        epochStart_ = boundary;
    }
}

HopOutcome
CircuitSwitchedNetwork::step(unsigned current, unsigned dst, Tick t,
                             double bytes)
{
    mmgpu_assert(dst < gpmCount, "bad GPM id");
    advanceEpochs(t);

    HopOutcome hop;
    if (current != fabricNode()) {
        mmgpu_assert(current < gpmCount, "bad GPM id");
        mmgpu_assert(current != dst, "circuit step at destination");
        // Demand is observed at injection, whatever path serves it.
        demand_[std::size_t{current} * gpmCount + dst] += bytes;
        if (circuits_[current] == dst && t >= circuitsReadyAt_) {
            // Established circuit: one full-bandwidth hop.
            hop.ready = circuitTx_[current].acquire(t, bytes)
                        + static_cast<double>(hopLatency);
            hop.next = dst;
            hop.arrived = true;
            traffic_.byteHops += static_cast<Count>(bytes);
            ++traffic_.arrivals;
            traffic_.deliveredBytes += static_cast<Count>(bytes);
            return hop;
        }
        // Unmatched pair (or dark circuits mid-reconfiguration):
        // thin electrical fallback, phase one.
        hop.ready = fallbackUp_[current].acquire(t, bytes)
                    + static_cast<double>(hopLatency)
                    + static_cast<double>(fabricLatency);
        hop.next = fabricNode();
        hop.arrived = false;
        traffic_.byteHops += static_cast<Count>(bytes);
        traffic_.switchBytes += static_cast<Count>(bytes);
        return hop;
    }
    // Fallback phase two: fabric -> destination GPM. Completes even
    // across a reconfiguration boundary — circuits and fallback are
    // independent planes, so in-flight fallback traffic drains.
    hop.ready = fallbackDown_[dst].acquire(t, bytes)
                + static_cast<double>(hopLatency);
    hop.next = dst;
    hop.arrived = true;
    traffic_.byteHops += static_cast<Count>(bytes);
    ++traffic_.arrivals;
    traffic_.deliveredBytes += static_cast<Count>(bytes);
    return hop;
}

std::string
CircuitSwitchedNetwork::auditConservation() const
{
    std::string base = InterGpmNetwork::auditConservation();
    if (!base.empty())
        return base;
    // Every byte travels either one circuit hop or two fallback
    // hops, and exactly the fallback bytes transit the electrical
    // fabric: byteHops == circuitBytes + 2 * fallbackBytes
    //                  == messageBytes + switchBytes.
    if (traffic_.byteHops !=
        traffic_.messageBytes + traffic_.switchBytes)
        return trafficImbalance(
            "ocs byte-hops vs message + fallback bytes",
            traffic_.byteHops,
            traffic_.messageBytes + traffic_.switchBytes);
    if (traffic_.switchBytes > traffic_.messageBytes)
        return trafficImbalance("ocs fallback bytes vs message bytes",
                                traffic_.switchBytes,
                                traffic_.messageBytes);
    // The circuit fabric never relays through intermediate GPMs.
    if (traffic_.rerouted != 0)
        return trafficImbalance("reroutes on a circuit fabric",
                                traffic_.rerouted, 0);
    return {};
}

double
CircuitSwitchedNetwork::totalQueueing() const
{
    double total = 0.0;
    for (const auto &link : circuitTx_)
        total += link.queueingCycles();
    for (const auto &link : fallbackUp_)
        total += link.queueingCycles();
    for (const auto &link : fallbackDown_)
        total += link.queueingCycles();
    return total;
}

double
CircuitSwitchedNetwork::totalBusy() const
{
    double total = 0.0;
    for (const auto &link : circuitTx_)
        total += link.busyCycles();
    for (const auto &link : fallbackUp_)
        total += link.busyCycles();
    for (const auto &link : fallbackDown_)
        total += link.busyCycles();
    return total;
}

void
CircuitSwitchedNetwork::attachTelemetry(telemetry::Timeline &timeline)
{
    using Kind = telemetry::TimelineTrack::Kind;
    for (unsigned g = 0; g < gpmCount; ++g) {
        circuitTx_[g].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".tx"), Kind::Busy));
        fallbackUp_[g].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".fb.up"), Kind::Busy));
        fallbackDown_[g].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".fb.down"), Kind::Busy));
    }
}

void
CircuitSwitchedNetwork::detachTelemetry()
{
    for (auto &link : circuitTx_)
        link.setTelemetrySink(nullptr);
    for (auto &link : fallbackUp_)
        link.setTelemetrySink(nullptr);
    for (auto &link : fallbackDown_)
        link.setTelemetrySink(nullptr);
}

void
CircuitSwitchedNetwork::reset()
{
    for (auto &link : circuitTx_)
        link.reset();
    for (auto &link : fallbackUp_)
        link.reset();
    for (auto &link : fallbackDown_)
        link.reset();
    circuits_.assign(gpmCount, gpmCount);
    std::fill(demand_.begin(), demand_.end(), 0.0);
    epochStart_ = 0.0;
    circuitsReadyAt_ = 0.0;
    traffic_.reset();
}

} // namespace mmgpu::noc
