/**
 * @file
 * Circuit-scheduled (OCS-style) reconfigurable fabric.
 *
 * An optical circuit switch gives each GPM one full-bandwidth
 * transmit circuit, but a circuit connects exactly one (src, dst)
 * pair at a time. A traffic-matrix estimator accumulates demand per
 * epoch; at each epoch boundary the fabric recomputes a maximum-
 * weight matching over the previous epoch's demand and, when the
 * matching changes, performs a reconfiguration — paying a latency
 * window during which circuits are unavailable plus a fixed energy
 * penalty (LinkTraffic::reconfigs, charged by GPUJoule). Pairs the
 * matching leaves unmatched fall back to a thin electrical path
 * whose bytes are charged the switch-crossing energy.
 */

#ifndef MMGPU_NOC_TOPOLOGIES_CIRCUIT_HH
#define MMGPU_NOC_TOPOLOGIES_CIRCUIT_HH

#include <vector>

#include "noc/interconnect.hh"

namespace mmgpu::noc
{

/** Modeling knobs of the circuit-scheduled fabric. Fixed (not
 *  per-config) so every OCS machine reconfigures on the same
 *  deterministic schedule; a fast MEMS-class switch is assumed. */
namespace ocs
{
/** Traffic-matrix accumulation window (cycles at 1 GHz). */
inline constexpr double epochCycles = 8192.0;

/** Circuits are dark for this long after a reconfiguration. */
inline constexpr double reconfigLatencyCycles = 1024.0;

/** Electrical fallback width as a fraction of the per-GPM I/O
 *  bandwidth (a thin management-class path). */
inline constexpr double fallbackFraction = 0.25;
} // namespace ocs

/**
 * Circuit-scheduled fabric. step() is single-hop over an
 * established circuit, or two-phase (uplink -> fallback fabric ->
 * downlink) over the electrical fallback for unmatched pairs and
 * during reconfiguration windows.
 *
 * Fault model: LinkFault::channel 0 derates a GPM's circuit plane
 * (its transmit circuit runs at reduced width; a failed plane,
 * scale 0, removes the GPM from matching entirely — degraded
 * reconfiguration — and all its traffic takes the fallback).
 * Channel 1 derates the GPM's electrical fallback port; a fully
 * failed fallback port strands unmatched traffic and is fatal.
 */
class CircuitSwitchedNetwork : public InterGpmNetwork
{
  public:
    /**
     * @param gpm_count GPMs attached (>= 2).
     * @param per_gpm_io_bytes_per_cycle Circuit bandwidth per GPM
     *        (a circuit grants the whole optical port); the
     *        electrical fallback gets ocs::fallbackFraction of it.
     * @param hop_latency Per-hop pipeline latency in cycles.
     * @param fabric_latency Fallback fabric crossing latency.
     * @param faults Degraded planes/ports (see class comment).
     */
    CircuitSwitchedNetwork(unsigned gpm_count,
                           double per_gpm_io_bytes_per_cycle,
                           Cycles hop_latency, Cycles fabric_latency,
                           const fault::LinkFaultSpec &faults = {});

    HopOutcome step(unsigned current, unsigned dst, Tick t,
                    double bytes) override;

    std::string auditConservation() const override;

    double totalQueueing() const override;
    double totalBusy() const override;

    void attachTelemetry(telemetry::Timeline &timeline) override;

    void detachTelemetry() override;

    void reset() override;

    /** Sentinel node id for "inside the fallback fabric". */
    unsigned fabricNode() const { return gpmCount; }

    /** Established circuit destination of @p src, or gpmCount when
     *  the GPM holds no circuit (tests/diagnostics). */
    unsigned circuitOf(unsigned src) const { return circuits_[src]; }

    /** Reconfigurations performed since the last reset. */
    Count reconfigCount() const { return traffic_.reconfigs; }

  private:
    /** Advance the epoch state machine up to time @p t: at each
     *  crossed boundary, rematch circuits against the finished
     *  epoch's demand matrix and count a reconfiguration when the
     *  matching changes. */
    void advanceEpochs(Tick t);

    /** Greedy deterministic maximum-weight matching over @p demand:
     *  heaviest pairs first, ties broken by (src, dst) order. */
    std::vector<unsigned>
    matchCircuits(const std::vector<double> &demand) const;

    unsigned gpmCount;
    Cycles hopLatency;
    Cycles fabricLatency;

    /** Per-GPM transmit circuit ports (full optical bandwidth,
     *  derated by a channel-0 fault). */
    std::vector<BandwidthServer> circuitTx_;
    /** Per-GPM electrical fallback ports. */
    std::vector<BandwidthServer> fallbackUp_;
    std::vector<BandwidthServer> fallbackDown_;

    /** circuitPlaneUp_[g]: GPM g participates in matching. */
    std::vector<bool> circuitPlaneUp_;

    /** circuits_[src] = dst of the established circuit, or gpmCount
     *  when src holds none. */
    std::vector<unsigned> circuits_;

    /** Demand matrix of the current epoch, [src * N + dst] bytes. */
    std::vector<double> demand_;

    /** Start of the epoch currently accumulating demand. */
    Tick epochStart_ = 0.0;

    /** Circuits are unusable before this time (reconfiguring). */
    Tick circuitsReadyAt_ = 0.0;
};

} // namespace mmgpu::noc

#endif // MMGPU_NOC_TOPOLOGIES_CIRCUIT_HH
