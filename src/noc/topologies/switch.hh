/**
 * @file
 * High-radix switch fabric (paper §V-C, NVSwitch-style).
 */

#ifndef MMGPU_NOC_TOPOLOGIES_SWITCH_HH
#define MMGPU_NOC_TOPOLOGIES_SWITCH_HH

#include <vector>

#include "noc/interconnect.hh"

namespace mmgpu::noc
{

/**
 * High-radix switch: every GPM has one uplink and one downlink to a
 * non-blocking fabric, so a transfer always costs exactly two
 * endpoint link traversals regardless of GPM count.
 */
class SwitchNetwork : public InterGpmNetwork
{
  public:
    /**
     * @param gpm_count Number of GPMs attached (>= 2).
     * @param link_bytes_per_cycle Per-port, per-direction capacity
     *        (the full per-GPM I/O bandwidth setting).
     * @param port_latency One-way port latency in cycles.
     * @param fabric_latency Fabric crossing latency in cycles.
     * @param faults Degraded ports (channel 0 = uplink, 1 =
     *        downlink). Ports run at reduced width (capacityScale);
     *        a fully failed port (scale 0) strands its GPM — the
     *        switch has no alternate path — and is fatal here.
     */
    SwitchNetwork(unsigned gpm_count, double link_bytes_per_cycle,
                  Cycles port_latency, Cycles fabric_latency,
                  const fault::LinkFaultSpec &faults = {});

    HopOutcome step(unsigned current, unsigned dst, Tick t,
                    double bytes) override;

    std::string auditConservation() const override;

    double totalQueueing() const override;
    double totalBusy() const override;

    void attachTelemetry(telemetry::Timeline &timeline) override;

    void detachTelemetry() override;

    void reset() override;

    /** Sentinel node id representing "inside the switch fabric". */
    unsigned fabricNode() const { return gpmCount; }

  private:
    unsigned gpmCount;
    Cycles portLatency;
    Cycles fabricLatency;
    std::vector<BandwidthServer> uplinks;
    std::vector<BandwidthServer> downlinks;
};

} // namespace mmgpu::noc

#endif // MMGPU_NOC_TOPOLOGIES_SWITCH_HH
