#include "noc/topologies/fullmesh.hh"

#include <sstream>

#include "common/logging.hh"
#include "noc/topologies/detail.hh"

namespace mmgpu::noc
{

namespace
{

std::string
pairName(unsigned src, unsigned dst)
{
    std::ostringstream os;
    os << "mesh" << src << ".to" << dst;
    return os.str();
}

} // namespace

FullmeshNetwork::FullmeshNetwork(unsigned gpm_count,
                                 double per_gpm_io_bytes_per_cycle,
                                 Cycles hop_latency,
                                 const fault::LinkFaultSpec &faults)
    : gpmCount(gpm_count), hopLatency(hop_latency)
{
    if (gpm_count < 2)
        mmgpu_fatal("fullmesh requires >= 2 GPMs, got ", gpm_count);
    // Channel c of GPM g names the (g -> c) pairwise link.
    auto scales = detail::channelScales("fullmesh", gpm_count,
                                        gpm_count, faults);
    for (unsigned g = 0; g < gpm_count; ++g) {
        if (scales[g][g] < 1.0)
            mmgpu_fatal("fullmesh link fault names GPM ", g,
                        " as its own peer");
    }

    const double per_link =
        per_gpm_io_bytes_per_cycle / static_cast<double>(gpm_count - 1);
    links_.reserve(std::size_t{gpm_count} * gpm_count);
    failed_.assign(std::size_t{gpm_count} * gpm_count, false);
    for (unsigned s = 0; s < gpm_count; ++s) {
        for (unsigned d = 0; d < gpm_count; ++d) {
            std::size_t at = std::size_t{s} * gpmCount + d;
            // The diagonal is a never-acquired placeholder keeping
            // the [src * N + dst] indexing direct; failed links keep
            // nominal capacity but are excluded from routing.
            double scale = s == d ? 1.0 : scales[s][d];
            failed_[at] = s != d && scale == 0.0;
            anyFailed = anyFailed || failed_[at];
            double rate =
                failed_[at] ? per_link : per_link * scale;
            links_.emplace_back(pairName(s, d), rate);
        }
    }

    relay_.assign(std::size_t{gpm_count} * gpm_count, 0);
    for (unsigned s = 0; s < gpm_count; ++s) {
        for (unsigned d = 0; d < gpm_count; ++d) {
            std::size_t at = std::size_t{s} * gpmCount + d;
            relay_[at] = s;
            if (s == d || !failed_[at])
                continue;
            // Deterministic detour: the lowest-indexed GPM with
            // healthy links from the source and to the destination.
            unsigned relay = gpm_count;
            for (unsigned r = 0; r < gpm_count; ++r) {
                if (r == s || r == d)
                    continue;
                if (!failed_[std::size_t{s} * gpmCount + r] &&
                    !failed_[std::size_t{r} * gpmCount + d]) {
                    relay = r;
                    break;
                }
            }
            if (relay == gpm_count)
                mmgpu_fatal("fullmesh link faults leave GPM ", s,
                            " unable to reach GPM ", d,
                            " even via a 2-hop relay");
            relay_[at] = relay;
        }
    }
    pairBytes_.assign(std::size_t{gpm_count} * gpm_count, 0);
}

BandwidthServer &
FullmeshNetwork::link(unsigned src, unsigned dst)
{
    return links_[std::size_t{src} * gpmCount + dst];
}

const BandwidthServer &
FullmeshNetwork::link(unsigned src, unsigned dst) const
{
    return links_[std::size_t{src} * gpmCount + dst];
}

unsigned
FullmeshNetwork::relayFor(unsigned src, unsigned dst) const
{
    mmgpu_assert(src < gpmCount && dst < gpmCount, "bad GPM id");
    return relay_[std::size_t{src} * gpmCount + dst];
}

HopOutcome
FullmeshNetwork::step(unsigned current, unsigned dst, Tick t,
                      double bytes)
{
    mmgpu_assert(current < gpmCount && dst < gpmCount, "bad GPM id");
    mmgpu_assert(current != dst, "fullmesh step at destination");

    unsigned next = dst;
    std::size_t at = std::size_t{current} * gpmCount + dst;
    if (anyFailed && failed_[at]) {
        // Detour leg one: hop to the precomputed relay; the relay's
        // link to the destination is healthy by construction, so the
        // second step() call arrives directly.
        next = relay_[at];
        ++traffic_.rerouted;
    }

    HopOutcome hop;
    hop.ready = link(current, next).acquire(t, bytes)
                + static_cast<double>(hopLatency);
    hop.next = next;
    hop.arrived = next == dst;
    traffic_.byteHops += static_cast<Count>(bytes);
    pairBytes_[std::size_t{current} * gpmCount + next] +=
        static_cast<Count>(bytes);
    if (hop.arrived) {
        ++traffic_.arrivals;
        traffic_.deliveredBytes += static_cast<Count>(bytes);
    }
    return hop;
}

std::string
FullmeshNetwork::auditConservation() const
{
    std::string base = InterGpmNetwork::auditConservation();
    if (!base.empty())
        return base;
    // Per-pair books: every byte-hop was recorded against exactly
    // one pairwise link.
    Count pair_total = 0;
    for (Count c : pairBytes_)
        pair_total += c;
    if (pair_total != traffic_.byteHops)
        return trafficImbalance("per-pair bytes vs byte-hops",
                                pair_total, traffic_.byteHops);
    // The diagonal must never carry traffic.
    for (unsigned g = 0; g < gpmCount; ++g) {
        if (pairBytes_[std::size_t{g} * gpmCount + g] != 0)
            return trafficImbalance(
                "self-link bytes on a fullmesh",
                pairBytes_[std::size_t{g} * gpmCount + g], 0);
    }
    // A healthy mesh is single-hop: byte-hops equal injected bytes
    // and nothing reroutes. Degraded meshes relay (two hops), so
    // every rerouted message adds one extra hop.
    if (!anyFailed) {
        if (traffic_.rerouted != 0)
            return trafficImbalance("reroutes on a healthy fullmesh",
                                    traffic_.rerouted, 0);
        if (traffic_.byteHops != traffic_.messageBytes)
            return trafficImbalance(
                "fullmesh byte-hops vs message bytes",
                traffic_.byteHops, traffic_.messageBytes);
    }
    // Mesh messages never cross a switch fabric.
    if (traffic_.switchBytes != 0)
        return trafficImbalance("switch bytes on a fullmesh",
                                traffic_.switchBytes, 0);
    return {};
}

double
FullmeshNetwork::totalQueueing() const
{
    double total = 0.0;
    for (const auto &link : links_)
        total += link.queueingCycles();
    return total;
}

double
FullmeshNetwork::totalBusy() const
{
    double total = 0.0;
    for (const auto &link : links_)
        total += link.busyCycles();
    return total;
}

void
FullmeshNetwork::attachTelemetry(telemetry::Timeline &timeline)
{
    using Kind = telemetry::TimelineTrack::Kind;
    for (unsigned s = 0; s < gpmCount; ++s) {
        for (unsigned d = 0; d < gpmCount; ++d) {
            if (s == d)
                continue;
            link(s, d).setTelemetrySink(&timeline.track(
                "link/" + pairName(s, d), Kind::Busy));
        }
    }
}

void
FullmeshNetwork::detachTelemetry()
{
    for (auto &link : links_)
        link.setTelemetrySink(nullptr);
}

void
FullmeshNetwork::reset()
{
    for (auto &link : links_)
        link.reset();
    pairBytes_.assign(pairBytes_.size(), 0);
    traffic_.reset();
}

} // namespace mmgpu::noc
