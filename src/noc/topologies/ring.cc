#include "noc/topologies/ring.hh"

#include "common/logging.hh"
#include "noc/topologies/detail.hh"

namespace mmgpu::noc
{

using detail::linkName;
using detail::linkScales;

RingNetwork::RingNetwork(unsigned gpm_count, double link_bytes_per_cycle,
                         Cycles hop_latency,
                         const fault::LinkFaultSpec &faults)
    : gpmCount(gpm_count), hopLatency(hop_latency)
{
    if (gpm_count < 2)
        mmgpu_fatal("ring requires >= 2 GPMs, got ", gpm_count);
    auto scales = linkScales("ring", gpm_count, faults);
    links.reserve(gpm_count);
    failed.assign(gpm_count, std::array<bool, 2>{false, false});
    for (unsigned g = 0; g < gpm_count; ++g) {
        // Failed links keep their nominal capacity but are excluded
        // from routing; derated links run at reduced width.
        std::array<double, 2> rate;
        for (unsigned c = 0; c < 2; ++c) {
            failed[g][c] = scales[g][c] == 0.0;
            anyFailed = anyFailed || failed[g][c];
            rate[c] = failed[g][c]
                          ? link_bytes_per_cycle
                          : link_bytes_per_cycle * scales[g][c];
        }
        links.push_back(std::array<BandwidthServer, 2>{
            BandwidthServer(linkName("ring", g, ".cw"), rate[0]),
            BandwidthServer(linkName("ring", g, ".ccw"), rate[1])});
    }
    if (anyFailed) {
        viaCw.assign(std::size_t{gpmCount} * gpmCount, false);
        viaCcw.assign(std::size_t{gpmCount} * gpmCount, false);
        for (unsigned s = 0; s < gpmCount; ++s) {
            for (unsigned d = 0; d < gpmCount; ++d) {
                if (s == d)
                    continue;
                std::size_t at = std::size_t{s} * gpmCount + d;
                viaCw[at] = cwViable(s, d);
                viaCcw[at] = ccwViable(s, d);
                if (!viaCw[at] && !viaCcw[at])
                    mmgpu_fatal("link faults partition the ring: GPM ",
                                s, " cannot reach GPM ", d,
                                " in either direction");
            }
        }
    }
}

bool
RingNetwork::cwViable(unsigned src, unsigned dst) const
{
    for (unsigned u = src; u != dst; u = (u + 1) % gpmCount) {
        if (failed[u][0])
            return false;
    }
    return true;
}

bool
RingNetwork::ccwViable(unsigned src, unsigned dst) const
{
    for (unsigned u = src; u != dst; u = (u + gpmCount - 1) % gpmCount) {
        if (failed[u][1])
            return false;
    }
    return true;
}

unsigned
RingNetwork::hopCount(unsigned src, unsigned dst) const
{
    mmgpu_assert(src < gpmCount && dst < gpmCount, "bad GPM id");
    unsigned forward = (dst + gpmCount - src) % gpmCount;
    unsigned backward = gpmCount - forward;
    return forward <= backward ? forward : backward;
}

HopOutcome
RingNetwork::step(unsigned current, unsigned dst, Tick t, double bytes)
{
    mmgpu_assert(current < gpmCount && dst < gpmCount, "bad GPM id");
    mmgpu_assert(current != dst, "ring step at destination");

    unsigned forward = (dst + gpmCount - current) % gpmCount;
    unsigned backward = gpmCount - forward;
    bool clockwise = forward <= backward;
    if (anyFailed) {
        // Graceful reroute: when the preferred (shortest) direction
        // crosses a failed link, go the long way around. Progress in
        // the chosen direction only shrinks its remaining arc, so a
        // message never oscillates between directions; the
        // constructor guaranteed one direction is always viable.
        bool preferred_ok =
            clockwise ? viaCw[std::size_t{current} * gpmCount + dst]
                      : viaCcw[std::size_t{current} * gpmCount + dst];
        if (!preferred_ok) {
            clockwise = !clockwise;
            ++traffic_.rerouted;
        }
    }

    BandwidthServer &link =
        clockwise ? links[current][0] : links[current][1];
    HopOutcome hop;
    hop.ready = link.acquire(t, bytes) + static_cast<double>(hopLatency);
    hop.next = clockwise ? (current + 1) % gpmCount
                         : (current + gpmCount - 1) % gpmCount;
    hop.arrived = hop.next == dst;
    traffic_.byteHops += static_cast<Count>(bytes);
    if (hop.arrived) {
        ++traffic_.arrivals;
        traffic_.deliveredBytes += static_cast<Count>(bytes);
    }
    return hop;
}

std::string
RingNetwork::auditConservation() const
{
    std::string base = InterGpmNetwork::auditConservation();
    if (!base.empty())
        return base;
    // A healthy ring routes every message the shortest way; reroutes
    // can only come from the degraded path.
    if (!anyFailed && traffic_.rerouted != 0)
        return trafficImbalance("reroutes on a healthy ring",
                                traffic_.rerouted, 0);
    // Ring messages never cross a switch fabric.
    if (traffic_.switchBytes != 0)
        return trafficImbalance("switch bytes on a ring",
                                traffic_.switchBytes, 0);
    return {};
}

double
RingNetwork::totalQueueing() const
{
    double total = 0.0;
    for (const auto &pair : links)
        total += pair[0].queueingCycles() + pair[1].queueingCycles();
    return total;
}

double
RingNetwork::totalBusy() const
{
    double total = 0.0;
    for (const auto &pair : links)
        total += pair[0].busyCycles() + pair[1].busyCycles();
    return total;
}

void
RingNetwork::attachTelemetry(telemetry::Timeline &timeline)
{
    using Kind = telemetry::TimelineTrack::Kind;
    for (unsigned g = 0; g < gpmCount; ++g) {
        links[g][0].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".cw"), Kind::Busy));
        links[g][1].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".ccw"), Kind::Busy));
    }
}

void
RingNetwork::detachTelemetry()
{
    for (auto &pair : links) {
        pair[0].setTelemetrySink(nullptr);
        pair[1].setTelemetrySink(nullptr);
    }
}

void
RingNetwork::reset()
{
    for (auto &pair : links) {
        pair[0].reset();
        pair[1].reset();
    }
    traffic_.reset();
}

bool
ringPartitioned(unsigned gpm_count, const fault::LinkFaultSpec &faults)
{
    std::vector<std::array<bool, 2>> down(
        gpm_count, std::array<bool, 2>{false, false});
    for (const auto &f : faults.faults) {
        if (f.gpm >= gpm_count || f.channel > 1)
            continue; // malformed entries are rejected elsewhere
        if (f.capacityScale == 0.0)
            down[f.gpm][f.channel] = true;
    }
    for (unsigned s = 0; s < gpm_count; ++s) {
        for (unsigned d = 0; d < gpm_count; ++d) {
            if (s == d)
                continue;
            bool cw_ok = true;
            for (unsigned u = s; u != d; u = (u + 1) % gpm_count)
                cw_ok = cw_ok && !down[u][0];
            bool ccw_ok = true;
            for (unsigned u = s; u != d;
                 u = (u + gpm_count - 1) % gpm_count)
                ccw_ok = ccw_ok && !down[u][1];
            if (!cw_ok && !ccw_ok)
                return true;
        }
    }
    return false;
}

} // namespace mmgpu::noc
