#include "noc/topologies/switch.hh"

#include "common/logging.hh"
#include "noc/topologies/detail.hh"

namespace mmgpu::noc
{

using detail::linkName;
using detail::linkScales;

SwitchNetwork::SwitchNetwork(unsigned gpm_count,
                             double link_bytes_per_cycle,
                             Cycles port_latency, Cycles fabric_latency,
                             const fault::LinkFaultSpec &faults)
    : gpmCount(gpm_count), portLatency(port_latency),
      fabricLatency(fabric_latency)
{
    if (gpm_count < 2)
        mmgpu_fatal("switch requires >= 2 GPMs, got ", gpm_count);
    auto scales = linkScales("switch", gpm_count, faults);
    for (unsigned g = 0; g < gpm_count; ++g) {
        for (unsigned c = 0; c < 2; ++c) {
            if (scales[g][c] == 0.0)
                mmgpu_fatal("switch port failure on GPM ", g,
                            " strands it: the switch has no alternate"
                            " path; use a capacity scale > 0");
        }
        uplinks.emplace_back(linkName("sw", g, ".up"),
                             link_bytes_per_cycle * scales[g][0]);
        downlinks.emplace_back(linkName("sw", g, ".down"),
                               link_bytes_per_cycle * scales[g][1]);
    }
}

HopOutcome
SwitchNetwork::step(unsigned current, unsigned dst, Tick t, double bytes)
{
    mmgpu_assert(dst < downlinks.size(), "bad GPM id");
    HopOutcome hop;
    if (current != fabricNode()) {
        // GPM -> switch: uplink traversal + fabric crossing.
        mmgpu_assert(current < uplinks.size(), "bad GPM id");
        mmgpu_assert(current != dst, "switch step at destination");
        hop.ready = uplinks[current].acquire(t, bytes)
                    + static_cast<double>(portLatency)
                    + static_cast<double>(fabricLatency);
        hop.next = fabricNode();
        hop.arrived = false;
        traffic_.byteHops += static_cast<Count>(bytes);
        traffic_.switchBytes += static_cast<Count>(bytes);
    } else {
        // Switch -> GPM: downlink traversal.
        hop.ready = downlinks[dst].acquire(t, bytes)
                    + static_cast<double>(portLatency);
        hop.next = dst;
        hop.arrived = true;
        traffic_.byteHops += static_cast<Count>(bytes);
        ++traffic_.arrivals;
        traffic_.deliveredBytes += static_cast<Count>(bytes);
    }
    return hop;
}

std::string
SwitchNetwork::auditConservation() const
{
    std::string base = InterGpmNetwork::auditConservation();
    if (!base.empty())
        return base;
    // Every switch message crosses exactly one uplink and one
    // downlink, and its full payload transits the fabric once.
    if (traffic_.byteHops != 2 * traffic_.messageBytes)
        return trafficImbalance("switch byte-hops vs 2x message bytes",
                                traffic_.byteHops,
                                2 * traffic_.messageBytes);
    if (traffic_.switchBytes != traffic_.messageBytes)
        return trafficImbalance("fabric bytes vs message bytes",
                                traffic_.switchBytes,
                                traffic_.messageBytes);
    if (traffic_.rerouted != 0)
        return trafficImbalance("reroutes on a switch",
                                traffic_.rerouted, 0);
    return {};
}

double
SwitchNetwork::totalQueueing() const
{
    double total = 0.0;
    for (const auto &link : uplinks)
        total += link.queueingCycles();
    for (const auto &link : downlinks)
        total += link.queueingCycles();
    return total;
}

double
SwitchNetwork::totalBusy() const
{
    double total = 0.0;
    for (const auto &link : uplinks)
        total += link.busyCycles();
    for (const auto &link : downlinks)
        total += link.busyCycles();
    return total;
}

void
SwitchNetwork::attachTelemetry(telemetry::Timeline &timeline)
{
    using Kind = telemetry::TimelineTrack::Kind;
    for (unsigned g = 0; g < gpmCount; ++g) {
        uplinks[g].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".up"), Kind::Busy));
        downlinks[g].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".down"), Kind::Busy));
    }
}

void
SwitchNetwork::detachTelemetry()
{
    for (auto &link : uplinks)
        link.setTelemetrySink(nullptr);
    for (auto &link : downlinks)
        link.setTelemetrySink(nullptr);
}

void
SwitchNetwork::reset()
{
    for (auto &link : uplinks)
        link.reset();
    for (auto &link : downlinks)
        link.reset();
    traffic_.reset();
}

} // namespace mmgpu::noc
