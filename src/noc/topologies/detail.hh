/**
 * @file
 * Shared helpers for the topology plugins: link naming and fault
 * spec expansion. Internal to src/noc/topologies — nothing outside
 * the plugins should need these.
 */

#ifndef MMGPU_NOC_TOPOLOGIES_DETAIL_HH
#define MMGPU_NOC_TOPOLOGIES_DETAIL_HH

#include <algorithm>
#include <array>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "fault/fault_plan.hh"

namespace mmgpu::noc::detail
{

inline std::string
linkName(const char *kind, unsigned gpm, const char *suffix)
{
    std::ostringstream os;
    os << kind << gpm << suffix;
    return os.str();
}

/**
 * Per-link capacity scales from a fault spec: 1.0 healthy, (0, 1)
 * derated, 0 failed. Multiple faults on one link compose by taking
 * the most severe. Fatal on malformed entries — configuration
 * validation reports these with context first; this is the backstop
 * for directly constructed networks.
 *
 * @param channels Channels per GPM the topology exposes (2 for the
 *        two-channel fabrics; gpm_count for the fullmesh, where the
 *        channel names the peer).
 */
inline std::vector<std::vector<double>>
channelScales(const char *kind, unsigned gpm_count, unsigned channels,
              const fault::LinkFaultSpec &faults)
{
    std::vector<std::vector<double>> scales(
        gpm_count, std::vector<double>(channels, 1.0));
    for (const auto &f : faults.faults) {
        if (f.gpm >= gpm_count)
            mmgpu_fatal(kind, " link fault names GPM ", f.gpm,
                        " but the network has ", gpm_count);
        if (f.channel >= channels)
            mmgpu_fatal(kind, " link fault channel ", f.channel,
                        " (links have channels 0..", channels - 1,
                        ")");
        if (f.capacityScale < 0.0 || f.capacityScale > 1.0)
            mmgpu_fatal(kind, " link fault capacity scale ",
                        f.capacityScale, " outside [0, 1]");
        double &slot = scales[f.gpm][f.channel];
        slot = std::min(slot, f.capacityScale);
    }
    return scales;
}

/** channelScales for the fixed two-channel fabrics, in the array
 *  shape the ring/switch constructors were written against. */
inline std::vector<std::array<double, 2>>
linkScales(const char *kind, unsigned gpm_count,
           const fault::LinkFaultSpec &faults)
{
    auto wide = channelScales(kind, gpm_count, 2, faults);
    std::vector<std::array<double, 2>> scales(gpm_count);
    for (unsigned g = 0; g < gpm_count; ++g)
        scales[g] = {wide[g][0], wide[g][1]};
    return scales;
}

} // namespace mmgpu::noc::detail

#endif // MMGPU_NOC_TOPOLOGIES_DETAIL_HH
