/**
 * @file
 * Bidirectional ring fabric (paper §V-A1, the on-package default).
 */

#ifndef MMGPU_NOC_TOPOLOGIES_RING_HH
#define MMGPU_NOC_TOPOLOGIES_RING_HH

#include <array>
#include <vector>

#include "noc/interconnect.hh"

namespace mmgpu::noc
{

/**
 * Bidirectional ring. Each GPM owns one link per direction; a
 * transfer acquires every link along the shorter path in sequence
 * (store-and-forward), so intermediate GPMs' links are consumed by
 * through-traffic — the bandwidth amplification that makes rings
 * collapse at high GPM counts (paper §V-B).
 */
class RingNetwork : public InterGpmNetwork
{
  public:
    /**
     * @param gpm_count Number of GPMs on the ring (>= 2).
     * @param link_bytes_per_cycle Per-link, per-direction capacity.
     *        The paper's per-GPM I/O bandwidth setting is split
     *        across the two directions a GPM can send into.
     * @param hop_latency Per-hop pipeline latency in cycles.
     * @param faults Degraded/failed links (channel 0 = clockwise,
     *        1 = counter-clockwise). A failed link forces traffic
     *        the long way around the ring (graceful reroute); the
     *        constructor is fatal when the failures leave some pair
     *        of GPMs unreachable in both directions.
     */
    RingNetwork(unsigned gpm_count, double link_bytes_per_cycle,
                Cycles hop_latency,
                const fault::LinkFaultSpec &faults = {});

    HopOutcome step(unsigned current, unsigned dst, Tick t,
                    double bytes) override;

    std::string auditConservation() const override;

    double totalQueueing() const override;
    double totalBusy() const override;

    void attachTelemetry(telemetry::Timeline &timeline) override;

    void detachTelemetry() override;

    void reset() override;

    /** Hop count of the shorter direction from @p src to @p dst
     *  (ignores faults: the healthy-topology distance). */
    unsigned hopCount(unsigned src, unsigned dst) const;

  private:
    /** All clockwise links from @p src to @p dst are up. */
    bool cwViable(unsigned src, unsigned dst) const;

    /** All counter-clockwise links from @p src to @p dst are up. */
    bool ccwViable(unsigned src, unsigned dst) const;

    unsigned gpmCount;
    Cycles hopLatency;
    /** links[g][0] = clockwise link out of GPM g, [1] = ccw. */
    std::vector<std::array<BandwidthServer, 2>> links;
    /** failed[g][c]: link exists but routes no traffic. */
    std::vector<std::array<bool, 2>> failed;
    /** Any failed link present (degraded routing engaged). */
    bool anyFailed = false;
    /** Precomputed viability, indexed [src * gpmCount + dst]. */
    std::vector<bool> viaCw;
    std::vector<bool> viaCcw;
};

} // namespace mmgpu::noc

#endif // MMGPU_NOC_TOPOLOGIES_RING_HH
