/**
 * @file
 * Fullmesh fabric: a dedicated point-to-point link per ordered GPM
 * pair, one hop per message.
 */

#ifndef MMGPU_NOC_TOPOLOGIES_FULLMESH_HH
#define MMGPU_NOC_TOPOLOGIES_FULLMESH_HH

#include <vector>

#include "noc/interconnect.hh"

namespace mmgpu::noc
{

/**
 * Fully connected mesh. Every ordered GPM pair (s, d) owns a
 * dedicated unidirectional link, so a healthy transfer is a single
 * hop with no through-traffic — the opposite extreme from the ring's
 * bandwidth amplification. The price is link width: a GPM's I/O
 * bandwidth is divided across its N-1 outgoing links, so pairwise
 * bandwidth shrinks as the mesh grows (which is why real MCM designs
 * stop at small GPM counts or move to a switch).
 *
 * Fault model: LinkFault::channel names the *peer GPM* of the
 * (gpm -> channel) link. A failed pairwise link reroutes its traffic
 * through a deterministic 2-hop relay — the lowest-indexed GPM whose
 * links from source and to destination are both healthy — counted in
 * LinkTraffic::rerouted. Construction is fatal when no relay exists.
 */
class FullmeshNetwork : public InterGpmNetwork
{
  public:
    /**
     * @param gpm_count GPMs in the mesh (>= 2).
     * @param per_gpm_io_bytes_per_cycle Per-GPM I/O bandwidth; each
     *        of the N-1 outgoing links gets an equal share.
     * @param hop_latency Per-hop pipeline latency in cycles.
     * @param faults Failed/derated pairwise links (channel = peer).
     */
    FullmeshNetwork(unsigned gpm_count,
                    double per_gpm_io_bytes_per_cycle,
                    Cycles hop_latency,
                    const fault::LinkFaultSpec &faults = {});

    HopOutcome step(unsigned current, unsigned dst, Tick t,
                    double bytes) override;

    std::string auditConservation() const override;

    double totalQueueing() const override;
    double totalBusy() const override;

    void attachTelemetry(telemetry::Timeline &timeline) override;

    void detachTelemetry() override;

    void reset() override;

    /** The relay GPM a failed (src, dst) link detours through, or
     *  src itself when the direct link is healthy (tests). */
    unsigned relayFor(unsigned src, unsigned dst) const;

    /** Bytes carried per directed pair since the last reset
     *  (per-pair conservation books; indexed [src * N + dst]). */
    const std::vector<Count> &pairBytes() const { return pairBytes_; }

  private:
    BandwidthServer &link(unsigned src, unsigned dst);
    const BandwidthServer &link(unsigned src, unsigned dst) const;

    unsigned gpmCount;
    Cycles hopLatency;
    /** links_[src * gpmCount + dst]; the diagonal is a never-
     *  acquired placeholder so indexing stays direct. */
    std::vector<BandwidthServer> links_;
    /** failed_[src * gpmCount + dst]. */
    std::vector<bool> failed_;
    bool anyFailed = false;
    /** relay_[src * gpmCount + dst]: precomputed detour GPM for
     *  failed links; == src for healthy pairs. */
    std::vector<unsigned> relay_;
    /** Per-pair byte books (the fullmesh drain audit cross-checks
     *  their sum against the aggregate byteHops). */
    std::vector<Count> pairBytes_;
};

} // namespace mmgpu::noc

#endif // MMGPU_NOC_TOPOLOGIES_FULLMESH_HH
