/**
 * @file
 * Bandwidth server — the basic contention primitive of the simulator.
 *
 * Every shared resource with a byte/cycle capacity (DRAM channel,
 * L2 bank group, intra-GPM NoC, ring link, switch port) is modelled
 * as a bandwidth server: requests serialize on it in arrival order
 * and queueing delay emerges when offered load exceeds capacity.
 * The paper's central performance effect — GPM idle time caused by
 * inter-GPM bandwidth pressure (§V-B) — emerges from exactly this
 * mechanism rather than being scripted.
 *
 * The simulator's event loop processes warp continuations in global
 * time order, so acquire() calls arrive with non-decreasing
 * timestamps and a single scalar "next free" suffices.
 */

#ifndef MMGPU_NOC_BANDWIDTH_SERVER_HH
#define MMGPU_NOC_BANDWIDTH_SERVER_HH

#include <string>

#include "common/logging.hh"
#include "common/units.hh"
#include "telemetry/timeline.hh"

namespace mmgpu::noc
{

/** Simulation timestamps in (fractional) core cycles. */
using Tick = double;

/** A FIFO resource with a fixed byte/cycle service rate. */
class BandwidthServer
{
  public:
    /**
     * @param name Diagnostic name.
     * @param bytes_per_cycle Service capacity; must be > 0.
     */
    BandwidthServer(std::string name, double bytes_per_cycle)
        : name_(std::move(name)), bytesPerCycle(bytes_per_cycle)
    {
        if (bytes_per_cycle <= 0.0)
            mmgpu_fatal("bandwidth server '", name_,
                        "' configured with non-positive rate");
    }

    /**
     * Serialize a @p bytes transfer arriving at time @p t.
     * @return the completion time of the transfer.
     */
    Tick
    acquire(Tick t, double bytes)
    {
        Tick start = t > nextFree ? t : nextFree;
        Tick service = bytes / bytesPerCycle;
        nextFree = start + service;
        busy += service;
        queueing += start - t;
        ++requests;
        if (sink_)
            sink_->addSpan(start, nextFree);
        return nextFree;
    }

    /** Total cycles spent serving transfers. */
    double busyCycles() const { return busy; }

    /** Total queueing delay imposed on requests, in cycles. */
    double queueingCycles() const { return queueing; }

    /** Number of transfers served. */
    Count requestCount() const { return requests; }

    /** Configured capacity in bytes/cycle. */
    double rate() const { return bytesPerCycle; }

    /** Diagnostic name. */
    const std::string &name() const { return name_; }

    /** Earliest time a new request would start service (telemetry
     *  probes compute queueing deltas from this). */
    Tick nextFreeAt() const { return nextFree; }

    /**
     * Mirror every future busy interval into @p sink (nullptr
     * detaches). Disabled telemetry costs one branch-on-null per
     * acquire(); the sink must outlive the server or be detached.
     */
    void
    setTelemetrySink(telemetry::TimelineTrack *sink)
    {
        sink_ = sink;
    }

    /** Forget all history (between launches/runs). */
    void
    reset()
    {
        nextFree = 0.0;
        busy = 0.0;
        queueing = 0.0;
        requests = 0;
    }

  private:
    std::string name_;
    double bytesPerCycle;
    telemetry::TimelineTrack *sink_ = nullptr;
    Tick nextFree = 0.0;
    double busy = 0.0;
    double queueing = 0.0;
    Count requests = 0;
};

} // namespace mmgpu::noc

#endif // MMGPU_NOC_BANDWIDTH_SERVER_HH
