#include "noc/topology_registry.hh"

#include <string>

#include "common/logging.hh"
#include "noc/topologies/circuit.hh"
#include "noc/topologies/fullmesh.hh"
#include "noc/topologies/ring.hh"
#include "noc/topologies/switch.hh"

namespace mmgpu::noc
{

namespace
{

Result<void>
faultError(const std::string &what)
{
    return SimError::config(what);
}

/** Shared bounds checks: GPM id, channel range, capacity range. */
Result<void>
checkFaultBounds(const char *kind, unsigned gpm_count,
                 unsigned channels, const fault::LinkFaultSpec &faults)
{
    for (const auto &f : faults.faults) {
        if (f.gpm >= gpm_count)
            return faultError(std::string(kind) +
                              " link fault names GPM " +
                              std::to_string(f.gpm) +
                              " but the machine has " +
                              std::to_string(gpm_count));
        if (f.channel >= channels)
            return faultError(std::string(kind) +
                              " link fault channel " +
                              std::to_string(f.channel) +
                              " (channels are 0.." +
                              std::to_string(channels - 1) + ")");
        if (f.capacityScale < 0.0 || f.capacityScale > 1.0)
            return faultError(std::string(kind) +
                              " link fault capacity scale outside"
                              " [0, 1]");
    }
    return Result<void>::success();
}

// ---- Topology::None ---------------------------------------------- //

Result<void>
checkNoneFaults(unsigned, const fault::LinkFaultSpec &faults)
{
    if (!faults.empty())
        return faultError("link faults on a machine without an"
                          " interconnect");
    return Result<void>::success();
}

std::unique_ptr<InterGpmNetwork>
makeNone(const TopologyParams &)
{
    return nullptr;
}

// ---- ring -------------------------------------------------------- //

Result<void>
checkRingFaults(unsigned gpm_count, const fault::LinkFaultSpec &faults)
{
    if (Result<void> r = checkFaultBounds("ring", gpm_count, 2, faults);
        !r.ok())
        return r;
    if (ringPartitioned(gpm_count, faults))
        return faultError("link faults partition the ring: some GPM"
                          " pair is unreachable in both directions");
    return Result<void>::success();
}

std::unique_ptr<InterGpmNetwork>
makeRing(const TopologyParams &params)
{
    // A GPM's I/O bandwidth is split across its two ring directions.
    return std::make_unique<RingNetwork>(
        params.gpmCount, params.perGpmIoBytesPerCycle / 2.0,
        params.hopLatency, params.faults);
}

// ---- switch ------------------------------------------------------ //

Result<void>
checkSwitchFaults(unsigned gpm_count,
                  const fault::LinkFaultSpec &faults)
{
    if (Result<void> r =
            checkFaultBounds("switch", gpm_count, 2, faults);
        !r.ok())
        return r;
    for (const auto &f : faults.faults) {
        if (f.failed())
            return faultError(
                "switch port failure strands GPM " +
                std::to_string(f.gpm) +
                ": the switch has no alternate path; use a capacity"
                " scale > 0");
    }
    return Result<void>::success();
}

std::unique_ptr<InterGpmNetwork>
makeSwitch(const TopologyParams &params)
{
    return std::make_unique<SwitchNetwork>(
        params.gpmCount, params.perGpmIoBytesPerCycle,
        params.hopLatency, params.switchLatency, params.faults);
}

// ---- fullmesh ---------------------------------------------------- //

Result<void>
checkFullmeshFaults(unsigned gpm_count,
                    const fault::LinkFaultSpec &faults)
{
    // Channel names the peer GPM of the pairwise link.
    if (Result<void> r = checkFaultBounds("fullmesh", gpm_count,
                                          gpm_count, faults);
        !r.ok())
        return r;
    for (const auto &f : faults.faults) {
        if (f.channel == f.gpm)
            return faultError("fullmesh link fault names GPM " +
                              std::to_string(f.gpm) +
                              " as its own peer");
    }
    // Every failed pair needs a 2-hop relay: some GPM with healthy
    // links from the source and to the destination.
    std::vector<bool> down(std::size_t{gpm_count} * gpm_count, false);
    for (const auto &f : faults.faults) {
        if (f.failed())
            down[std::size_t{f.gpm} * gpm_count + f.channel] = true;
    }
    for (unsigned s = 0; s < gpm_count; ++s) {
        for (unsigned d = 0; d < gpm_count; ++d) {
            if (s == d || !down[std::size_t{s} * gpm_count + d])
                continue;
            bool reachable = false;
            for (unsigned r = 0; r < gpm_count && !reachable; ++r) {
                reachable = r != s && r != d &&
                            !down[std::size_t{s} * gpm_count + r] &&
                            !down[std::size_t{r} * gpm_count + d];
            }
            if (!reachable)
                return faultError(
                    "fullmesh link faults leave GPM " +
                    std::to_string(s) + " unable to reach GPM " +
                    std::to_string(d) + " even via a 2-hop relay");
        }
    }
    return Result<void>::success();
}

std::unique_ptr<InterGpmNetwork>
makeFullmesh(const TopologyParams &params)
{
    return std::make_unique<FullmeshNetwork>(
        params.gpmCount, params.perGpmIoBytesPerCycle,
        params.hopLatency, params.faults);
}

// ---- circuit-scheduled (ocs) ------------------------------------- //

Result<void>
checkCircuitFaults(unsigned gpm_count,
                   const fault::LinkFaultSpec &faults)
{
    if (Result<void> r = checkFaultBounds("ocs", gpm_count, 2, faults);
        !r.ok())
        return r;
    for (const auto &f : faults.faults) {
        // Channel 0 (circuit plane) may fail outright: the GPM drops
        // out of the matching and rides the fallback. Channel 1 (the
        // fallback port) must keep some width or unmatched traffic
        // strands.
        if (f.channel == 1 && f.failed())
            return faultError(
                "ocs fallback port failure strands GPM " +
                std::to_string(f.gpm) +
                "'s unmatched traffic; use a capacity scale > 0");
    }
    return Result<void>::success();
}

std::unique_ptr<InterGpmNetwork>
makeCircuit(const TopologyParams &params)
{
    return std::make_unique<CircuitSwitchedNetwork>(
        params.gpmCount, params.perGpmIoBytesPerCycle,
        params.hopLatency, params.switchLatency, params.faults);
}

// ---- geometry ---------------------------------------------------- //

unsigned
linkCountNone(unsigned)
{
    return 0;
}

unsigned
linkCountTwoPerGpm(unsigned gpm_count)
{
    return 2 * gpm_count;
}

unsigned
linkCountFullmesh(unsigned gpm_count)
{
    return gpm_count * (gpm_count - 1);
}

unsigned
linkCountCircuit(unsigned gpm_count)
{
    // One transmit circuit plus the two fallback ports per GPM.
    return 3 * gpm_count;
}

const TopologyDesc descs[] = {
    {Topology::None, "monolithic",
     "single die, no inter-GPM network", 0,
     /*usesSwitchFabric=*/false, /*usesCircuitReconfig=*/false,
     linkCountNone, checkNoneFaults, makeNone},
    {Topology::Ring, "ring",
     "bidirectional ring, shortest-direction routing", 2,
     /*usesSwitchFabric=*/false, /*usesCircuitReconfig=*/false,
     linkCountTwoPerGpm, checkRingFaults, makeRing},
    {Topology::Switch, "switch",
     "single-hop high-radix switch (+10 pJ/bit crossing)", 2,
     /*usesSwitchFabric=*/true, /*usesCircuitReconfig=*/false,
     linkCountTwoPerGpm, checkSwitchFaults, makeSwitch},
    {Topology::Fullmesh, "fullmesh",
     "dedicated pairwise links, one hop, 1/(N-1) link width", 2,
     /*usesSwitchFabric=*/false, /*usesCircuitReconfig=*/false,
     linkCountFullmesh, checkFullmeshFaults, makeFullmesh},
    {Topology::Circuit, "ocs",
     "circuit-scheduled optical fabric with electrical fallback", 2,
     /*usesSwitchFabric=*/true, /*usesCircuitReconfig=*/true,
     linkCountCircuit, checkCircuitFaults, makeCircuit},
};

} // namespace

const TopologyDesc &
topologyDesc(Topology topology)
{
    for (const TopologyDesc &desc : descs) {
        if (desc.id == topology)
            return desc;
    }
    mmgpu_panic("bad topology");
}

const std::vector<const TopologyDesc *> &
allTopologies()
{
    static const std::vector<const TopologyDesc *> all = [] {
        std::vector<const TopologyDesc *> v;
        for (const TopologyDesc &desc : descs)
            v.push_back(&desc);
        return v;
    }();
    return all;
}

const TopologyDesc *
topologyFromName(std::string_view name)
{
    for (const TopologyDesc &desc : descs) {
        if (name == desc.name)
            return &desc;
    }
    return nullptr;
}

std::string
topologyNameList()
{
    std::string list;
    for (const TopologyDesc &desc : descs) {
        if (desc.id == Topology::None)
            continue;
        if (!list.empty())
            list += ", ";
        list += desc.name;
    }
    return list;
}

} // namespace mmgpu::noc
