/**
 * @file
 * Topology descriptor registry.
 *
 * One TopologyDesc per fabric: the canonical name, geometry sizing,
 * the hooks energy attribution and configuration validation consult,
 * and the factory that builds the network. Everything outside
 * src/noc that used to branch on the Topology enum (machine
 * assembly, Eq. 4 parameter selection, link-fault validation, CLI
 * and wire-protocol parsing) goes through these descriptors, so a
 * new fabric is one plugin plus one row in the table in
 * topology_registry.cc.
 */

#ifndef MMGPU_NOC_TOPOLOGY_REGISTRY_HH
#define MMGPU_NOC_TOPOLOGY_REGISTRY_HH

#include <memory>
#include <string_view>
#include <vector>

#include "common/result.hh"
#include "noc/interconnect.hh"

namespace mmgpu::noc
{

/** Static description of one inter-GPM fabric. */
struct TopologyDesc
{
    Topology id = Topology::None;

    /** Canonical name used by the CLI, the wire protocol, and
     *  configuration names ("ring", "switch", "fullmesh", "ocs"). */
    const char *name = "";

    /** One-line description for --help output and docs. */
    const char *summary = "";

    /** Smallest GPM count the fabric supports (0 = no network). */
    unsigned minGpms = 0;

    /**
     * Energy attribution: true when LinkTraffic::switchBytes flows
     * through an electrical fabric charged the extra switch pJ/bit
     * (the high-radix switch; the circuit fabric's electrical
     * fallback). StudyContext::paramsFor reads this instead of
     * comparing enum values.
     */
    bool usesSwitchFabric = false;

    /** Energy attribution: true when LinkTraffic::reconfigs carries
     *  circuit reconfigurations charged a per-event energy. */
    bool usesCircuitReconfig = false;

    /** Directed physical links the fabric builds for @p gpm_count
     *  GPMs (telemetry sizing, docs). */
    unsigned (*linkCount)(unsigned gpm_count) = nullptr;

    /**
     * Validate @p faults against this fabric's link geometry and
     * degraded-routing abilities (the meaning of LinkFault::channel
     * is per-topology: ring cw/ccw, switch up/down, fullmesh peer
     * GPM id, circuit port plane). Used by GpuConfig::check() so
     * user errors surface with context before construction fatals.
     */
    Result<void> (*checkFaults)(unsigned gpm_count,
                                const fault::LinkFaultSpec &faults) =
        nullptr;

    /** Build the network. Returns nullptr for Topology::None. */
    std::unique_ptr<InterGpmNetwork> (*make)(
        const TopologyParams &params) = nullptr;
};

/** The descriptor for @p topology; fatal on an unknown value. */
const TopologyDesc &topologyDesc(Topology topology);

/** Every registered descriptor, Topology::None included, in enum
 *  order (CLI help, bench sweeps, docs). */
const std::vector<const TopologyDesc *> &allTopologies();

/** Look a descriptor up by its canonical name.
 *  @return nullptr when @p name matches no fabric. */
const TopologyDesc *topologyFromName(std::string_view name);

/** Comma-separated canonical names of all real fabrics (error
 *  messages of CLI/wire parsers). */
std::string topologyNameList();

} // namespace mmgpu::noc

#endif // MMGPU_NOC_TOPOLOGY_REGISTRY_HH
