/**
 * @file
 * Inter-GPM interconnection networks: ring and high-radix switch.
 *
 * The paper evaluates two topologies (§V-A1, §V-C):
 *  - a ring, the default for on-package integration, where a transfer
 *    traverses every link between source and destination (shortest
 *    direction) and therefore consumes bandwidth on each hop; and
 *  - a high-radix switch (NVSwitch-style) for on-board systems, where
 *    a transfer crosses exactly one uplink and one downlink plus a
 *    non-blocking fabric, at the cost of an extra 10 pJ/bit.
 *
 * Both report the traffic quantities GPUJoule charges energy for:
 * byte-hops over GPM endpoint links and bytes through the switch.
 */

#ifndef MMGPU_NOC_INTERCONNECT_HH
#define MMGPU_NOC_INTERCONNECT_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hh"
#include "fault/fault_plan.hh"
#include "noc/bandwidth_server.hh"

namespace mmgpu::noc
{

/** Inter-GPM topology selector. */
enum class Topology : std::uint8_t
{
    None,    //!< monolithic GPU, no inter-GPM network
    Ring,    //!< bidirectional ring, shortest-direction routing
    Switch,  //!< single-hop high-radix switch
};

/** @return human-readable topology name. */
const char *topologyName(Topology topology);

/** Traffic accounting for link-energy attribution. */
struct LinkTraffic
{
    /**
     * Bytes × links-traversed: the *bandwidth* consumed on the
     * network (through-traffic loads every intermediate ring link).
     * Diagnostic for congestion analyses.
     */
    Count byteHops = 0;

    /**
     * Bytes entering the network, counted once per message. The
     * inter-GPM pJ/bit energy figures the paper uses ([23], [5])
     * are per transferred bit, so GPUJoule charges link energy
     * against this quantity.
     */
    Count messageBytes = 0;

    /** Bytes passing through the switch fabric; multiplied by the
     *  additional per-switch pJ/bit energy. */
    Count switchBytes = 0;

    /** Messages that crossed the network. */
    Count transfers = 0;

    /** Ring hops forced away from the shortest direction by a
     *  failed link (degraded-mode diagnostic; 0 when healthy). */
    Count rerouted = 0;

    /** Messages whose final hop arrived at the destination GPM.
     *  Equals transfers whenever the network is quiescent — the
     *  flit-conservation audit. */
    Count arrivals = 0;

    /** Bytes delivered at destinations (the arrival-side twin of
     *  messageBytes; equal at quiescent points). */
    Count deliveredBytes = 0;

    void
    reset()
    {
        byteHops = 0;
        messageBytes = 0;
        switchBytes = 0;
        transfers = 0;
        rerouted = 0;
        arrivals = 0;
        deliveredBytes = 0;
    }
};

/** Outcome of advancing a message by one network hop. */
struct HopOutcome
{
    /** Time the message is available at the next node. */
    Tick ready = 0.0;

    /** Node the message is now at (may be the switch fabric's
     *  sentinel id == gpmCount). */
    unsigned next = 0;

    /** True once the message has reached its destination GPM. */
    bool arrived = false;
};

/**
 * Abstract inter-GPM network.
 *
 * The primary interface is stepwise: the simulation engine advances a
 * message one hop per calendar event via step(), so every link sees
 * arrivals in calendar-time order even under congestion. The
 * synchronous transfer() convenience walks all hops at once and is
 * reserved for quiescent points (kernel-boundary writeback drains)
 * and tests.
 */
class InterGpmNetwork
{
  public:
    virtual ~InterGpmNetwork() = default;

    /**
     * Advance @p bytes currently at node @p current one hop toward
     * GPM @p dst, contending on that hop's link starting at @p t.
     */
    virtual HopOutcome step(unsigned current, unsigned dst, Tick t,
                            double bytes) = 0;

    /**
     * Move @p bytes from GPM @p src to GPM @p dst starting at @p t,
     * walking all hops synchronously.
     * @return delivery completion time.
     */
    Tick
    transfer(Tick t, unsigned src, unsigned dst, double bytes)
    {
        noteTransfer(bytes);
        unsigned node = src;
        Tick now = t;
        while (true) {
            HopOutcome hop = step(node, dst, now, bytes);
            now = hop.ready;
            node = hop.next;
            if (hop.arrived)
                return now;
        }
    }

    /** Count one logical message of @p bytes entering the network
     *  (called by the engine when it starts a stepwise journey). */
    void
    noteTransfer(double bytes)
    {
        ++traffic_.transfers;
        traffic_.messageBytes += static_cast<Count>(bytes);
    }

    /** Accumulated traffic since the last reset. */
    const LinkTraffic &traffic() const { return traffic_; }

    /**
     * Flit-conservation audit, meaningful only at quiescent points
     * (no message mid-journey): every message and byte injected into
     * the network must have arrived at a destination exactly once —
     * including traffic rerouted the long way around a degraded
     * ring. Topology subclasses add their own identities (a switch
     * message crosses exactly two endpoint links; a healthy ring
     * never reroutes).
     *
     * @return empty string when the books balance, else a diagnostic.
     *         Plain-function form (rather than asserting internally)
     *         so tests can exercise it at any contract level; the
     *         simulator wraps it in MMGPU_INVARIANT at end of run.
     */
    virtual std::string auditConservation() const;

    /** Aggregate queueing cycles across all links (congestion probe). */
    virtual double totalQueueing() const = 0;

    /** Aggregate busy cycles across all links (utilization probe). */
    virtual double totalBusy() const = 0;

    /**
     * Register one Busy utilization track per physical link in
     * @p timeline (under the "link/" group) and mirror every link's
     * busy intervals into it. The timeline must outlive the network
     * (the engine attaches a fresh network each run).
     */
    virtual void attachTelemetry(telemetry::Timeline &timeline) = 0;

    /**
     * Null every link's telemetry sink. Build-once machines call
     * this when running detached so tracks from an earlier run's
     * Timeline cannot dangle (reset() deliberately preserves sinks).
     */
    virtual void detachTelemetry() = 0;

    /** Clear link state and traffic counters. */
    virtual void reset() = 0;

  protected:
    LinkTraffic traffic_;
};

/**
 * Bidirectional ring. Each GPM owns one link per direction; a
 * transfer acquires every link along the shorter path in sequence
 * (store-and-forward), so intermediate GPMs' links are consumed by
 * through-traffic — the bandwidth amplification that makes rings
 * collapse at high GPM counts (paper §V-B).
 */
class RingNetwork : public InterGpmNetwork
{
  public:
    /**
     * @param gpm_count Number of GPMs on the ring (>= 2).
     * @param link_bytes_per_cycle Per-link, per-direction capacity.
     *        The paper's per-GPM I/O bandwidth setting is split
     *        across the two directions a GPM can send into.
     * @param hop_latency Per-hop pipeline latency in cycles.
     * @param faults Degraded/failed links (channel 0 = clockwise,
     *        1 = counter-clockwise). A failed link forces traffic
     *        the long way around the ring (graceful reroute); the
     *        constructor is fatal when the failures leave some pair
     *        of GPMs unreachable in both directions.
     */
    RingNetwork(unsigned gpm_count, double link_bytes_per_cycle,
                Cycles hop_latency,
                const fault::LinkFaultSpec &faults = {});

    HopOutcome step(unsigned current, unsigned dst, Tick t,
                    double bytes) override;

    std::string auditConservation() const override;

    double totalQueueing() const override;
    double totalBusy() const override;

    void attachTelemetry(telemetry::Timeline &timeline) override;

    void detachTelemetry() override;

    void reset() override;

    /** Hop count of the shorter direction from @p src to @p dst
     *  (ignores faults: the healthy-topology distance). */
    unsigned hopCount(unsigned src, unsigned dst) const;

  private:
    /** All clockwise links from @p src to @p dst are up. */
    bool cwViable(unsigned src, unsigned dst) const;

    /** All counter-clockwise links from @p src to @p dst are up. */
    bool ccwViable(unsigned src, unsigned dst) const;

    unsigned gpmCount;
    Cycles hopLatency;
    /** links[g][0] = clockwise link out of GPM g, [1] = ccw. */
    std::vector<std::array<BandwidthServer, 2>> links;
    /** failed[g][c]: link exists but routes no traffic. */
    std::vector<std::array<bool, 2>> failed;
    /** Any failed link present (degraded routing engaged). */
    bool anyFailed = false;
    /** Precomputed viability, indexed [src * gpmCount + dst]. */
    std::vector<bool> viaCw;
    std::vector<bool> viaCcw;
};

/**
 * High-radix switch: every GPM has one uplink and one downlink to a
 * non-blocking fabric, so a transfer always costs exactly two
 * endpoint link traversals regardless of GPM count.
 */
class SwitchNetwork : public InterGpmNetwork
{
  public:
    /**
     * @param gpm_count Number of GPMs attached (>= 2).
     * @param link_bytes_per_cycle Per-port, per-direction capacity
     *        (the full per-GPM I/O bandwidth setting).
     * @param port_latency One-way port latency in cycles.
     * @param fabric_latency Fabric crossing latency in cycles.
     * @param faults Degraded ports (channel 0 = uplink, 1 =
     *        downlink). Ports run at reduced width (capacityScale);
     *        a fully failed port (scale 0) strands its GPM — the
     *        switch has no alternate path — and is fatal here.
     */
    SwitchNetwork(unsigned gpm_count, double link_bytes_per_cycle,
                  Cycles port_latency, Cycles fabric_latency,
                  const fault::LinkFaultSpec &faults = {});

    HopOutcome step(unsigned current, unsigned dst, Tick t,
                    double bytes) override;

    std::string auditConservation() const override;

    double totalQueueing() const override;
    double totalBusy() const override;

    void attachTelemetry(telemetry::Timeline &timeline) override;

    void detachTelemetry() override;

    void reset() override;

    /** Sentinel node id representing "inside the switch fabric". */
    unsigned fabricNode() const { return gpmCount; }

  private:
    unsigned gpmCount;
    Cycles portLatency;
    Cycles fabricLatency;
    std::vector<BandwidthServer> uplinks;
    std::vector<BandwidthServer> downlinks;
};

/**
 * Do @p faults' failed links leave some pair of GPMs on a
 * @p gpm_count ring unreachable in both directions? Exposed so
 * configuration validation can reject such plans before a fatal
 * deep inside network construction.
 */
bool ringPartitioned(unsigned gpm_count,
                     const fault::LinkFaultSpec &faults);

/**
 * Build the network for @p topology, wiring in any link faults.
 * @return nullptr for Topology::None.
 */
std::unique_ptr<InterGpmNetwork>
makeNetwork(Topology topology, unsigned gpm_count,
            double per_gpm_io_bytes_per_cycle, Cycles hop_latency,
            Cycles switch_latency,
            const fault::LinkFaultSpec &faults = {});

} // namespace mmgpu::noc

#endif // MMGPU_NOC_INTERCONNECT_HH
