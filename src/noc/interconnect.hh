/**
 * @file
 * Inter-GPM interconnection networks: the abstract network, its
 * traffic books, and the registry-driven factory.
 *
 * The paper evaluates two topologies (§V-A1, §V-C) — a ring and a
 * high-radix switch. This layer generalizes them into a pluggable
 * family: each fabric lives in src/noc/topologies/ behind the
 * InterGpmNetwork interface and registers a TopologyDesc (name,
 * geometry, energy-attribution hooks, fault validation) in the
 * registry (noc/topology_registry.hh). Machine assembly, energy
 * attribution, configuration validation, and CLI/wire parsing all
 * consult the descriptor instead of branching on the enum, so adding
 * a fabric is: write the plugin, add one registry row.
 *
 * All fabrics report the traffic quantities GPUJoule charges energy
 * for: byte-hops over GPM endpoint links, bytes through electrical
 * fabrics, and circuit reconfigurations.
 */

#ifndef MMGPU_NOC_INTERCONNECT_HH
#define MMGPU_NOC_INTERCONNECT_HH

#include <memory>
#include <string>

#include "common/units.hh"
#include "fault/fault_plan.hh"
#include "noc/bandwidth_server.hh"

namespace mmgpu::noc
{

/** Inter-GPM topology selector. */
enum class Topology : std::uint8_t
{
    None,     //!< monolithic GPU, no inter-GPM network
    Ring,     //!< bidirectional ring, shortest-direction routing
    Switch,   //!< single-hop high-radix switch
    Fullmesh, //!< dedicated pairwise links, one hop
    Circuit,  //!< circuit-scheduled (OCS-style) reconfigurable fabric
};

/** @return human-readable topology name. */
const char *topologyName(Topology topology);

/** Traffic accounting for link-energy attribution. */
struct LinkTraffic
{
    /**
     * Bytes × links-traversed: the *bandwidth* consumed on the
     * network (through-traffic loads every intermediate ring link).
     * Diagnostic for congestion analyses.
     */
    Count byteHops = 0;

    /**
     * Bytes entering the network, counted once per message. The
     * inter-GPM pJ/bit energy figures the paper uses ([23], [5])
     * are per transferred bit, so GPUJoule charges link energy
     * against this quantity.
     */
    Count messageBytes = 0;

    /** Bytes passing through an electrical fabric (switch crossing,
     *  or the circuit-scheduled fabric's thin electrical fallback);
     *  multiplied by the additional per-switch pJ/bit energy. */
    Count switchBytes = 0;

    /** Messages that crossed the network. */
    Count transfers = 0;

    /** Hops forced away from the preferred route by a failed link
     *  (degraded-mode diagnostic; 0 when healthy). */
    Count rerouted = 0;

    /** Messages whose final hop arrived at the destination GPM.
     *  Equals transfers whenever the network is quiescent — the
     *  flit-conservation audit. */
    Count arrivals = 0;

    /** Bytes delivered at destinations (the arrival-side twin of
     *  messageBytes; equal at quiescent points). */
    Count deliveredBytes = 0;

    /** Circuit reconfigurations performed (circuit-scheduled fabric
     *  only; each one is charged a fixed energy penalty). */
    Count reconfigs = 0;

    void
    reset()
    {
        byteHops = 0;
        messageBytes = 0;
        switchBytes = 0;
        transfers = 0;
        rerouted = 0;
        arrivals = 0;
        deliveredBytes = 0;
        reconfigs = 0;
    }
};

/** Outcome of advancing a message by one network hop. */
struct HopOutcome
{
    /** Time the message is available at the next node. */
    Tick ready = 0.0;

    /** Node the message is now at (may be a fabric sentinel id ==
     *  gpmCount for switch-like topologies). */
    unsigned next = 0;

    /** True once the message has reached its destination GPM. */
    bool arrived = false;
};

/**
 * Abstract inter-GPM network.
 *
 * The primary interface is stepwise: the simulation engine advances a
 * message one hop per calendar event via step(), so every link sees
 * arrivals in calendar-time order even under congestion. The
 * synchronous transfer() convenience walks all hops at once and is
 * reserved for quiescent points (kernel-boundary writeback drains)
 * and tests.
 */
class InterGpmNetwork
{
  public:
    virtual ~InterGpmNetwork() = default;

    /**
     * Advance @p bytes currently at node @p current one hop toward
     * GPM @p dst, contending on that hop's link starting at @p t.
     */
    virtual HopOutcome step(unsigned current, unsigned dst, Tick t,
                            double bytes) = 0;

    /**
     * Move @p bytes from GPM @p src to GPM @p dst starting at @p t,
     * walking all hops synchronously.
     * @return delivery completion time.
     */
    Tick
    transfer(Tick t, unsigned src, unsigned dst, double bytes)
    {
        noteTransfer(bytes);
        unsigned node = src;
        Tick now = t;
        while (true) {
            HopOutcome hop = step(node, dst, now, bytes);
            now = hop.ready;
            node = hop.next;
            if (hop.arrived)
                return now;
        }
    }

    /** Count one logical message of @p bytes entering the network
     *  (called by the engine when it starts a stepwise journey). */
    void
    noteTransfer(double bytes)
    {
        ++traffic_.transfers;
        traffic_.messageBytes += static_cast<Count>(bytes);
    }

    /** Accumulated traffic since the last reset. */
    const LinkTraffic &traffic() const { return traffic_; }

    /**
     * Flit-conservation audit, meaningful only at quiescent points
     * (no message mid-journey): every message and byte injected into
     * the network must have arrived at a destination exactly once —
     * including traffic rerouted the long way around a degraded
     * ring or relayed around a failed mesh link. Topology plugins
     * add their own identities (a switch message crosses exactly
     * two endpoint links; a healthy ring never reroutes; a mesh
     * keeps per-pair books; circuit traffic splits exactly between
     * circuits and the electrical fallback).
     *
     * @return empty string when the books balance, else a diagnostic.
     *         Plain-function form (rather than asserting internally)
     *         so tests can exercise it at any contract level; the
     *         simulator wraps it in MMGPU_INVARIANT at end of run.
     */
    virtual std::string auditConservation() const;

    /** Aggregate queueing cycles across all links (congestion probe). */
    virtual double totalQueueing() const = 0;

    /** Aggregate busy cycles across all links (utilization probe). */
    virtual double totalBusy() const = 0;

    /**
     * Register one Busy utilization track per physical link in
     * @p timeline (under the "link/" group) and mirror every link's
     * busy intervals into it. The timeline must outlive the network
     * (the engine attaches a fresh network each run).
     */
    virtual void attachTelemetry(telemetry::Timeline &timeline) = 0;

    /**
     * Null every link's telemetry sink. Build-once machines call
     * this when running detached so tracks from an earlier run's
     * Timeline cannot dangle (reset() deliberately preserves sinks).
     */
    virtual void detachTelemetry() = 0;

    /** Clear link state and traffic counters. */
    virtual void reset() = 0;

  protected:
    LinkTraffic traffic_;
};

/** Format one violated conservation identity for audit diagnostics:
 *  "<what>: <lhs> != <rhs>". Shared by the topology plugins. */
std::string trafficImbalance(const char *what, Count lhs, Count rhs);

/** Everything a topology factory needs to build its network. */
struct TopologyParams
{
    /** Number of GPMs attached (>= 2 for every real fabric). */
    unsigned gpmCount = 0;

    /** Per-GPM inter-GPM I/O bandwidth, bytes/cycle per direction.
     *  Each plugin splits this across its own link geometry (the
     *  ring halves it per direction; the fullmesh divides it across
     *  N-1 pairwise links). */
    double perGpmIoBytesPerCycle = 0.0;

    /** Per-hop pipeline latency in cycles. */
    Cycles hopLatency = 0;

    /** Fabric-crossing latency in cycles (switch-like fabrics). */
    Cycles switchLatency = 0;

    /** Degraded/failed links; meaning of LinkFault::channel is
     *  per-topology (see TopologyDesc::checkFaults). */
    fault::LinkFaultSpec faults;
};

/**
 * Do @p faults' failed links leave some pair of GPMs on a
 * @p gpm_count ring unreachable in both directions? Exposed so
 * configuration validation can reject such plans before a fatal
 * deep inside network construction.
 */
bool ringPartitioned(unsigned gpm_count,
                     const fault::LinkFaultSpec &faults);

/**
 * Build the network for @p topology via the registry, wiring in any
 * link faults.
 * @return nullptr for Topology::None.
 */
std::unique_ptr<InterGpmNetwork>
makeNetwork(Topology topology, unsigned gpm_count,
            double per_gpm_io_bytes_per_cycle, Cycles hop_latency,
            Cycles switch_latency,
            const fault::LinkFaultSpec &faults = {});

} // namespace mmgpu::noc

#endif // MMGPU_NOC_INTERCONNECT_HH
