#include "noc/interconnect.hh"

#include <sstream>

#include "common/logging.hh"
#include "noc/topology_registry.hh"

namespace mmgpu::noc
{

const char *
topologyName(Topology topology)
{
    return topologyDesc(topology).name;
}

std::string
trafficImbalance(const char *what, Count lhs, Count rhs)
{
    std::ostringstream os;
    os << what << ": " << lhs << " != " << rhs;
    return os.str();
}

std::string
InterGpmNetwork::auditConservation() const
{
    if (traffic_.arrivals != traffic_.transfers)
        return trafficImbalance("messages injected vs delivered",
                                traffic_.transfers, traffic_.arrivals);
    if (traffic_.deliveredBytes != traffic_.messageBytes)
        return trafficImbalance("bytes injected vs delivered",
                                traffic_.messageBytes,
                                traffic_.deliveredBytes);
    return {};
}

std::unique_ptr<InterGpmNetwork>
makeNetwork(Topology topology, unsigned gpm_count,
            double per_gpm_io_bytes_per_cycle, Cycles hop_latency,
            Cycles switch_latency, const fault::LinkFaultSpec &faults)
{
    TopologyParams params;
    params.gpmCount = gpm_count;
    params.perGpmIoBytesPerCycle = per_gpm_io_bytes_per_cycle;
    params.hopLatency = hop_latency;
    params.switchLatency = switch_latency;
    params.faults = faults;
    return topologyDesc(topology).make(params);
}

} // namespace mmgpu::noc
