#include "noc/interconnect.hh"

#include <array>
#include <sstream>

#include "common/logging.hh"

namespace mmgpu::noc
{

const char *
topologyName(Topology topology)
{
    switch (topology) {
      case Topology::None:
        return "monolithic";
      case Topology::Ring:
        return "ring";
      case Topology::Switch:
        return "switch";
      default:
        mmgpu_panic("bad topology");
    }
}

namespace
{

std::string
linkName(const char *kind, unsigned gpm, const char *suffix)
{
    std::ostringstream os;
    os << kind << gpm << suffix;
    return os.str();
}

} // namespace

RingNetwork::RingNetwork(unsigned gpm_count, double link_bytes_per_cycle,
                         Cycles hop_latency)
    : gpmCount(gpm_count), hopLatency(hop_latency)
{
    if (gpm_count < 2)
        mmgpu_fatal("ring requires >= 2 GPMs, got ", gpm_count);
    links.reserve(gpm_count);
    for (unsigned g = 0; g < gpm_count; ++g) {
        links.push_back(std::array<BandwidthServer, 2>{
            BandwidthServer(linkName("ring", g, ".cw"),
                            link_bytes_per_cycle),
            BandwidthServer(linkName("ring", g, ".ccw"),
                            link_bytes_per_cycle)});
    }
}

unsigned
RingNetwork::hopCount(unsigned src, unsigned dst) const
{
    mmgpu_assert(src < gpmCount && dst < gpmCount, "bad GPM id");
    unsigned forward = (dst + gpmCount - src) % gpmCount;
    unsigned backward = gpmCount - forward;
    return forward <= backward ? forward : backward;
}

HopOutcome
RingNetwork::step(unsigned current, unsigned dst, Tick t, double bytes)
{
    mmgpu_assert(current < gpmCount && dst < gpmCount, "bad GPM id");
    mmgpu_assert(current != dst, "ring step at destination");

    unsigned forward = (dst + gpmCount - current) % gpmCount;
    unsigned backward = gpmCount - forward;
    bool clockwise = forward <= backward;

    BandwidthServer &link =
        clockwise ? links[current][0] : links[current][1];
    HopOutcome hop;
    hop.ready = link.acquire(t, bytes) + static_cast<double>(hopLatency);
    hop.next = clockwise ? (current + 1) % gpmCount
                         : (current + gpmCount - 1) % gpmCount;
    hop.arrived = hop.next == dst;
    traffic_.byteHops += static_cast<Count>(bytes);
    return hop;
}

double
RingNetwork::totalQueueing() const
{
    double total = 0.0;
    for (const auto &pair : links)
        total += pair[0].queueingCycles() + pair[1].queueingCycles();
    return total;
}

double
RingNetwork::totalBusy() const
{
    double total = 0.0;
    for (const auto &pair : links)
        total += pair[0].busyCycles() + pair[1].busyCycles();
    return total;
}

void
RingNetwork::attachTelemetry(telemetry::Timeline &timeline)
{
    using Kind = telemetry::TimelineTrack::Kind;
    for (unsigned g = 0; g < gpmCount; ++g) {
        links[g][0].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".cw"), Kind::Busy));
        links[g][1].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".ccw"), Kind::Busy));
    }
}

void
RingNetwork::reset()
{
    for (auto &pair : links) {
        pair[0].reset();
        pair[1].reset();
    }
    traffic_.reset();
}

SwitchNetwork::SwitchNetwork(unsigned gpm_count,
                             double link_bytes_per_cycle,
                             Cycles port_latency, Cycles fabric_latency)
    : gpmCount(gpm_count), portLatency(port_latency),
      fabricLatency(fabric_latency)
{
    if (gpm_count < 2)
        mmgpu_fatal("switch requires >= 2 GPMs, got ", gpm_count);
    for (unsigned g = 0; g < gpm_count; ++g) {
        uplinks.emplace_back(linkName("sw", g, ".up"),
                             link_bytes_per_cycle);
        downlinks.emplace_back(linkName("sw", g, ".down"),
                               link_bytes_per_cycle);
    }
}

HopOutcome
SwitchNetwork::step(unsigned current, unsigned dst, Tick t, double bytes)
{
    mmgpu_assert(dst < downlinks.size(), "bad GPM id");
    HopOutcome hop;
    if (current != fabricNode()) {
        // GPM -> switch: uplink traversal + fabric crossing.
        mmgpu_assert(current < uplinks.size(), "bad GPM id");
        mmgpu_assert(current != dst, "switch step at destination");
        hop.ready = uplinks[current].acquire(t, bytes)
                    + static_cast<double>(portLatency)
                    + static_cast<double>(fabricLatency);
        hop.next = fabricNode();
        hop.arrived = false;
        traffic_.byteHops += static_cast<Count>(bytes);
        traffic_.switchBytes += static_cast<Count>(bytes);
    } else {
        // Switch -> GPM: downlink traversal.
        hop.ready = downlinks[dst].acquire(t, bytes)
                    + static_cast<double>(portLatency);
        hop.next = dst;
        hop.arrived = true;
        traffic_.byteHops += static_cast<Count>(bytes);
    }
    return hop;
}

double
SwitchNetwork::totalQueueing() const
{
    double total = 0.0;
    for (const auto &link : uplinks)
        total += link.queueingCycles();
    for (const auto &link : downlinks)
        total += link.queueingCycles();
    return total;
}

double
SwitchNetwork::totalBusy() const
{
    double total = 0.0;
    for (const auto &link : uplinks)
        total += link.busyCycles();
    for (const auto &link : downlinks)
        total += link.busyCycles();
    return total;
}

void
SwitchNetwork::attachTelemetry(telemetry::Timeline &timeline)
{
    using Kind = telemetry::TimelineTrack::Kind;
    for (unsigned g = 0; g < gpmCount; ++g) {
        uplinks[g].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".up"), Kind::Busy));
        downlinks[g].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".down"), Kind::Busy));
    }
}

void
SwitchNetwork::reset()
{
    for (auto &link : uplinks)
        link.reset();
    for (auto &link : downlinks)
        link.reset();
    traffic_.reset();
}

std::unique_ptr<InterGpmNetwork>
makeNetwork(Topology topology, unsigned gpm_count,
            double per_gpm_io_bytes_per_cycle, Cycles hop_latency,
            Cycles switch_latency)
{
    switch (topology) {
      case Topology::None:
        return nullptr;
      case Topology::Ring:
        // A GPM's I/O bandwidth is split across its two ring
        // directions.
        return std::make_unique<RingNetwork>(
            gpm_count, per_gpm_io_bytes_per_cycle / 2.0, hop_latency);
      case Topology::Switch:
        return std::make_unique<SwitchNetwork>(
            gpm_count, per_gpm_io_bytes_per_cycle, hop_latency,
            switch_latency);
      default:
        mmgpu_panic("bad topology");
    }
}

} // namespace mmgpu::noc
