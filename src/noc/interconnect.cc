#include "noc/interconnect.hh"

#include <algorithm>
#include <array>
#include <sstream>

#include "common/logging.hh"

namespace mmgpu::noc
{

const char *
topologyName(Topology topology)
{
    switch (topology) {
      case Topology::None:
        return "monolithic";
      case Topology::Ring:
        return "ring";
      case Topology::Switch:
        return "switch";
      default:
        mmgpu_panic("bad topology");
    }
}

namespace
{

std::string
linkName(const char *kind, unsigned gpm, const char *suffix)
{
    std::ostringstream os;
    os << kind << gpm << suffix;
    return os.str();
}

/**
 * Per-link capacity scales from a fault spec: 1.0 healthy, (0, 1)
 * derated, 0 failed. Multiple faults on one link compose by taking
 * the most severe. Fatal on malformed entries — configuration
 * validation reports these with context first; this is the backstop
 * for directly constructed networks.
 */
std::vector<std::array<double, 2>>
linkScales(const char *kind, unsigned gpm_count,
           const fault::LinkFaultSpec &faults)
{
    std::vector<std::array<double, 2>> scales(
        gpm_count, std::array<double, 2>{1.0, 1.0});
    for (const auto &f : faults.faults) {
        if (f.gpm >= gpm_count)
            mmgpu_fatal(kind, " link fault names GPM ", f.gpm,
                        " but the network has ", gpm_count);
        if (f.channel > 1)
            mmgpu_fatal(kind, " link fault channel ", f.channel,
                        " (links have channels 0 and 1)");
        if (f.capacityScale < 0.0 || f.capacityScale > 1.0)
            mmgpu_fatal(kind, " link fault capacity scale ",
                        f.capacityScale, " outside [0, 1]");
        double &slot = scales[f.gpm][f.channel];
        slot = std::min(slot, f.capacityScale);
    }
    return scales;
}

/**
 * Format one violated conservation identity: "<what>: <lhs> != <rhs>".
 */
std::string
imbalance(const char *what, Count lhs, Count rhs)
{
    std::ostringstream os;
    os << what << ": " << lhs << " != " << rhs;
    return os.str();
}

} // namespace

std::string
InterGpmNetwork::auditConservation() const
{
    if (traffic_.arrivals != traffic_.transfers)
        return imbalance("messages injected vs delivered",
                         traffic_.transfers, traffic_.arrivals);
    if (traffic_.deliveredBytes != traffic_.messageBytes)
        return imbalance("bytes injected vs delivered",
                         traffic_.messageBytes,
                         traffic_.deliveredBytes);
    return {};
}

RingNetwork::RingNetwork(unsigned gpm_count, double link_bytes_per_cycle,
                         Cycles hop_latency,
                         const fault::LinkFaultSpec &faults)
    : gpmCount(gpm_count), hopLatency(hop_latency)
{
    if (gpm_count < 2)
        mmgpu_fatal("ring requires >= 2 GPMs, got ", gpm_count);
    auto scales = linkScales("ring", gpm_count, faults);
    links.reserve(gpm_count);
    failed.assign(gpm_count, std::array<bool, 2>{false, false});
    for (unsigned g = 0; g < gpm_count; ++g) {
        // Failed links keep their nominal capacity but are excluded
        // from routing; derated links run at reduced width.
        std::array<double, 2> rate;
        for (unsigned c = 0; c < 2; ++c) {
            failed[g][c] = scales[g][c] == 0.0;
            anyFailed = anyFailed || failed[g][c];
            rate[c] = failed[g][c]
                          ? link_bytes_per_cycle
                          : link_bytes_per_cycle * scales[g][c];
        }
        links.push_back(std::array<BandwidthServer, 2>{
            BandwidthServer(linkName("ring", g, ".cw"), rate[0]),
            BandwidthServer(linkName("ring", g, ".ccw"), rate[1])});
    }
    if (anyFailed) {
        viaCw.assign(std::size_t{gpmCount} * gpmCount, false);
        viaCcw.assign(std::size_t{gpmCount} * gpmCount, false);
        for (unsigned s = 0; s < gpmCount; ++s) {
            for (unsigned d = 0; d < gpmCount; ++d) {
                if (s == d)
                    continue;
                std::size_t at = std::size_t{s} * gpmCount + d;
                viaCw[at] = cwViable(s, d);
                viaCcw[at] = ccwViable(s, d);
                if (!viaCw[at] && !viaCcw[at])
                    mmgpu_fatal("link faults partition the ring: GPM ",
                                s, " cannot reach GPM ", d,
                                " in either direction");
            }
        }
    }
}

bool
RingNetwork::cwViable(unsigned src, unsigned dst) const
{
    for (unsigned u = src; u != dst; u = (u + 1) % gpmCount) {
        if (failed[u][0])
            return false;
    }
    return true;
}

bool
RingNetwork::ccwViable(unsigned src, unsigned dst) const
{
    for (unsigned u = src; u != dst; u = (u + gpmCount - 1) % gpmCount) {
        if (failed[u][1])
            return false;
    }
    return true;
}

unsigned
RingNetwork::hopCount(unsigned src, unsigned dst) const
{
    mmgpu_assert(src < gpmCount && dst < gpmCount, "bad GPM id");
    unsigned forward = (dst + gpmCount - src) % gpmCount;
    unsigned backward = gpmCount - forward;
    return forward <= backward ? forward : backward;
}

HopOutcome
RingNetwork::step(unsigned current, unsigned dst, Tick t, double bytes)
{
    mmgpu_assert(current < gpmCount && dst < gpmCount, "bad GPM id");
    mmgpu_assert(current != dst, "ring step at destination");

    unsigned forward = (dst + gpmCount - current) % gpmCount;
    unsigned backward = gpmCount - forward;
    bool clockwise = forward <= backward;
    if (anyFailed) {
        // Graceful reroute: when the preferred (shortest) direction
        // crosses a failed link, go the long way around. Progress in
        // the chosen direction only shrinks its remaining arc, so a
        // message never oscillates between directions; the
        // constructor guaranteed one direction is always viable.
        bool preferred_ok =
            clockwise ? viaCw[std::size_t{current} * gpmCount + dst]
                      : viaCcw[std::size_t{current} * gpmCount + dst];
        if (!preferred_ok) {
            clockwise = !clockwise;
            ++traffic_.rerouted;
        }
    }

    BandwidthServer &link =
        clockwise ? links[current][0] : links[current][1];
    HopOutcome hop;
    hop.ready = link.acquire(t, bytes) + static_cast<double>(hopLatency);
    hop.next = clockwise ? (current + 1) % gpmCount
                         : (current + gpmCount - 1) % gpmCount;
    hop.arrived = hop.next == dst;
    traffic_.byteHops += static_cast<Count>(bytes);
    if (hop.arrived) {
        ++traffic_.arrivals;
        traffic_.deliveredBytes += static_cast<Count>(bytes);
    }
    return hop;
}

std::string
RingNetwork::auditConservation() const
{
    std::string base = InterGpmNetwork::auditConservation();
    if (!base.empty())
        return base;
    // A healthy ring routes every message the shortest way; reroutes
    // can only come from the degraded path.
    if (!anyFailed && traffic_.rerouted != 0)
        return imbalance("reroutes on a healthy ring",
                         traffic_.rerouted, 0);
    // Ring messages never cross a switch fabric.
    if (traffic_.switchBytes != 0)
        return imbalance("switch bytes on a ring", traffic_.switchBytes,
                         0);
    return {};
}

double
RingNetwork::totalQueueing() const
{
    double total = 0.0;
    for (const auto &pair : links)
        total += pair[0].queueingCycles() + pair[1].queueingCycles();
    return total;
}

double
RingNetwork::totalBusy() const
{
    double total = 0.0;
    for (const auto &pair : links)
        total += pair[0].busyCycles() + pair[1].busyCycles();
    return total;
}

void
RingNetwork::attachTelemetry(telemetry::Timeline &timeline)
{
    using Kind = telemetry::TimelineTrack::Kind;
    for (unsigned g = 0; g < gpmCount; ++g) {
        links[g][0].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".cw"), Kind::Busy));
        links[g][1].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".ccw"), Kind::Busy));
    }
}

void
RingNetwork::detachTelemetry()
{
    for (auto &pair : links) {
        pair[0].setTelemetrySink(nullptr);
        pair[1].setTelemetrySink(nullptr);
    }
}

void
RingNetwork::reset()
{
    for (auto &pair : links) {
        pair[0].reset();
        pair[1].reset();
    }
    traffic_.reset();
}

SwitchNetwork::SwitchNetwork(unsigned gpm_count,
                             double link_bytes_per_cycle,
                             Cycles port_latency, Cycles fabric_latency,
                             const fault::LinkFaultSpec &faults)
    : gpmCount(gpm_count), portLatency(port_latency),
      fabricLatency(fabric_latency)
{
    if (gpm_count < 2)
        mmgpu_fatal("switch requires >= 2 GPMs, got ", gpm_count);
    auto scales = linkScales("switch", gpm_count, faults);
    for (unsigned g = 0; g < gpm_count; ++g) {
        for (unsigned c = 0; c < 2; ++c) {
            if (scales[g][c] == 0.0)
                mmgpu_fatal("switch port failure on GPM ", g,
                            " strands it: the switch has no alternate"
                            " path; use a capacity scale > 0");
        }
        uplinks.emplace_back(linkName("sw", g, ".up"),
                             link_bytes_per_cycle * scales[g][0]);
        downlinks.emplace_back(linkName("sw", g, ".down"),
                               link_bytes_per_cycle * scales[g][1]);
    }
}

HopOutcome
SwitchNetwork::step(unsigned current, unsigned dst, Tick t, double bytes)
{
    mmgpu_assert(dst < downlinks.size(), "bad GPM id");
    HopOutcome hop;
    if (current != fabricNode()) {
        // GPM -> switch: uplink traversal + fabric crossing.
        mmgpu_assert(current < uplinks.size(), "bad GPM id");
        mmgpu_assert(current != dst, "switch step at destination");
        hop.ready = uplinks[current].acquire(t, bytes)
                    + static_cast<double>(portLatency)
                    + static_cast<double>(fabricLatency);
        hop.next = fabricNode();
        hop.arrived = false;
        traffic_.byteHops += static_cast<Count>(bytes);
        traffic_.switchBytes += static_cast<Count>(bytes);
    } else {
        // Switch -> GPM: downlink traversal.
        hop.ready = downlinks[dst].acquire(t, bytes)
                    + static_cast<double>(portLatency);
        hop.next = dst;
        hop.arrived = true;
        traffic_.byteHops += static_cast<Count>(bytes);
        ++traffic_.arrivals;
        traffic_.deliveredBytes += static_cast<Count>(bytes);
    }
    return hop;
}

std::string
SwitchNetwork::auditConservation() const
{
    std::string base = InterGpmNetwork::auditConservation();
    if (!base.empty())
        return base;
    // Every switch message crosses exactly one uplink and one
    // downlink, and its full payload transits the fabric once.
    if (traffic_.byteHops != 2 * traffic_.messageBytes)
        return imbalance("switch byte-hops vs 2x message bytes",
                         traffic_.byteHops,
                         2 * traffic_.messageBytes);
    if (traffic_.switchBytes != traffic_.messageBytes)
        return imbalance("fabric bytes vs message bytes",
                         traffic_.switchBytes, traffic_.messageBytes);
    if (traffic_.rerouted != 0)
        return imbalance("reroutes on a switch", traffic_.rerouted, 0);
    return {};
}

double
SwitchNetwork::totalQueueing() const
{
    double total = 0.0;
    for (const auto &link : uplinks)
        total += link.queueingCycles();
    for (const auto &link : downlinks)
        total += link.queueingCycles();
    return total;
}

double
SwitchNetwork::totalBusy() const
{
    double total = 0.0;
    for (const auto &link : uplinks)
        total += link.busyCycles();
    for (const auto &link : downlinks)
        total += link.busyCycles();
    return total;
}

void
SwitchNetwork::attachTelemetry(telemetry::Timeline &timeline)
{
    using Kind = telemetry::TimelineTrack::Kind;
    for (unsigned g = 0; g < gpmCount; ++g) {
        uplinks[g].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".up"), Kind::Busy));
        downlinks[g].setTelemetrySink(&timeline.track(
            linkName("link/gpm", g, ".down"), Kind::Busy));
    }
}

void
SwitchNetwork::detachTelemetry()
{
    for (auto &link : uplinks)
        link.setTelemetrySink(nullptr);
    for (auto &link : downlinks)
        link.setTelemetrySink(nullptr);
}

void
SwitchNetwork::reset()
{
    for (auto &link : uplinks)
        link.reset();
    for (auto &link : downlinks)
        link.reset();
    traffic_.reset();
}

bool
ringPartitioned(unsigned gpm_count, const fault::LinkFaultSpec &faults)
{
    std::vector<std::array<bool, 2>> down(
        gpm_count, std::array<bool, 2>{false, false});
    for (const auto &f : faults.faults) {
        if (f.gpm >= gpm_count || f.channel > 1)
            continue; // malformed entries are rejected elsewhere
        if (f.capacityScale == 0.0)
            down[f.gpm][f.channel] = true;
    }
    for (unsigned s = 0; s < gpm_count; ++s) {
        for (unsigned d = 0; d < gpm_count; ++d) {
            if (s == d)
                continue;
            bool cw_ok = true;
            for (unsigned u = s; u != d; u = (u + 1) % gpm_count)
                cw_ok = cw_ok && !down[u][0];
            bool ccw_ok = true;
            for (unsigned u = s; u != d;
                 u = (u + gpm_count - 1) % gpm_count)
                ccw_ok = ccw_ok && !down[u][1];
            if (!cw_ok && !ccw_ok)
                return true;
        }
    }
    return false;
}

std::unique_ptr<InterGpmNetwork>
makeNetwork(Topology topology, unsigned gpm_count,
            double per_gpm_io_bytes_per_cycle, Cycles hop_latency,
            Cycles switch_latency, const fault::LinkFaultSpec &faults)
{
    switch (topology) {
      case Topology::None:
        return nullptr;
      case Topology::Ring:
        // A GPM's I/O bandwidth is split across its two ring
        // directions.
        return std::make_unique<RingNetwork>(
            gpm_count, per_gpm_io_bytes_per_cycle / 2.0, hop_latency,
            faults);
      case Topology::Switch:
        return std::make_unique<SwitchNetwork>(
            gpm_count, per_gpm_io_bytes_per_cycle, hop_latency,
            switch_latency, faults);
      default:
        mmgpu_panic("bad topology");
    }
}

} // namespace mmgpu::noc
