/**
 * @file
 * Shard routing for the simulation service.
 *
 * Every worker shard owns one ScalingRunner machine-pool view, so
 * where a request lands matters twice: for *load* (a busy shard adds
 * queueing latency) and for *locality* (a shard that just simulated
 * the same machine identity holds a warm build-once machine it can
 * reset instead of rebuilding the whole GPM hierarchy).
 *
 * The policy, in order:
 *
 *  1. Affinity: if the request's machine identity was last served by
 *     shard S, S is deliverable, and S's load is within `slack` of
 *     the least-loaded deliverable shard, route to S.
 *  2. Power-of-two-choices: otherwise draw two deliverable shards
 *     from a seeded deterministic RNG, route to the less loaded of
 *     the two, and update the affinity table.
 *
 * "Deliverable" comes from the caller (the service dispatcher passes
 * the set of shards with a free prefetch slot) so routing never
 * picks a shard the dispatcher cannot feed — the fix for head-of-
 * line blocking where affinity kept choosing one full shard while
 * idle shards starved. With no mask, every shard is deliverable.
 *
 * Power-of-two-choices gives near-least-loaded balance without
 * scanning all shards per request; the affinity override bounds how
 * much balance we trade for machine reuse. The RNG is seeded, so a
 * replayed request sequence routes identically given the same
 * deliverable sets — routing never affects *results* (the memo
 * cache dedups work), only placement.
 */

#ifndef MMGPU_SERVE_ROUTER_HH
#define MMGPU_SERVE_ROUTER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/lockdep.hh"
#include "common/rng.hh"
#include "common/thread_safety.hh"

namespace mmgpu::serve
{

/** Thread-safe affinity + power-of-two-choices shard router. */
class Router
{
  public:
    /**
     * @param shards Worker shard count (> 0).
     * @param slack Load headroom an affinity hit may cost versus the
     *        least-loaded shard before balance wins (jobs).
     * @param seed Seed of the deterministic choice stream.
     */
    explicit Router(std::size_t shards, std::size_t slack = 2,
                    std::uint64_t seed = 0x10c411ull);

    /**
     * Pick the shard for @p machine_identity and account one job of
     * load against it (release() when the job finishes).
     *
     * @param deliverable Optional per-shard mask (size == shards());
     *        only shards with a nonzero entry are eligible, and at
     *        least one must be. nullptr means all shards.
     */
    std::size_t
    route(std::uint64_t machine_identity,
          const std::vector<std::uint8_t> *deliverable = nullptr);

    /** Account one finished job off @p shard. */
    void release(std::size_t shard);

    /** Current per-shard queued+running load. */
    std::vector<std::size_t> loads() const;

    /** Shard count. */
    std::size_t shards() const { return shardCount_; }

    /** Requests routed by the affinity rule since construction. */
    std::uint64_t affinityHits() const;

  private:
    mutable sync::Mutex mutex_;
    std::vector<std::size_t> load_ MMGPU_GUARDED_BY(mutex_);
    std::map<std::uint64_t, std::size_t> affinity_
        MMGPU_GUARDED_BY(mutex_);
    Rng rng_ MMGPU_GUARDED_BY(mutex_);
    const std::size_t shardCount_; //!< immutable; lock-free reads
    const std::size_t slack_;
    std::uint64_t affinityHits_ MMGPU_GUARDED_BY(mutex_) = 0;
};

} // namespace mmgpu::serve

#endif // MMGPU_SERVE_ROUTER_HH
