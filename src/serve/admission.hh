/**
 * @file
 * Bounded priority admission queue of the simulation service.
 *
 * Admission is the service's backpressure point, with three gates
 * checked in order:
 *
 *  1. *Per-client quota* — a token bucket per client id (wire field
 *     `client`, defaulting to the connection) refilled at
 *     quotaRatePerSec up to quotaBurst. A client out of tokens is
 *     rejected with QuotaExceeded and a Retry-After hint naming its
 *     own reserved refill slot (rejections form a virtual queue, one
 *     refill period apart), so one flooding client cannot consume
 *     the whole queue while a light client starves — and its retries
 *     come back staggered rather than in lockstep.
 *  2. *Load shedding* — past shedWatermark × maxDepth pending jobs,
 *     low-priority work (priority >= 2, the batch tier) is shed with
 *     a Retry-After hint derived from the observed per-job service
 *     pace (EWMA fed by noteServiced()), keeping headroom for
 *     interactive probes during overload.
 *  3. *Depth bound* — the queue holds at most `maxDepth` pending
 *     requests; a push against a full queue is rejected immediately
 *     rather than blocking the socket reader or growing memory
 *     without bound.
 *
 * Within the bound, ordering is strict priority (0 = high, 1 =
 * normal, 2 = batch) with FIFO among equals, implemented as a map
 * keyed on (priority, admission ticket) so a flood of batch work can
 * never starve an interactive probe. Work re-queued after a shard
 * crash re-enters through requeue(), which bypasses every gate: the
 * job was already accepted once, and dropping it would turn a
 * supervised crash into a client-visible error.
 */

#ifndef MMGPU_SERVE_ADMISSION_HH
#define MMGPU_SERVE_ADMISSION_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/lockdep.hh"
#include "common/thread_safety.hh"
#include "serve/request.hh"

namespace mmgpu::serve
{

/** One admitted request, stamped with its admission order and time. */
struct Job
{
    Request request;
    std::uint64_t ticket = 0;    //!< admission order (FIFO tiebreak)
    std::int64_t admittedMs = 0; //!< wallclock::nowMs() at admission
};

/** Outcome of an admission attempt. */
enum class Admit : std::uint8_t
{
    Accepted,      //!< queued; a worker will pick it up
    QueueFull,     //!< bounded depth exceeded — reject, don't block
    QuotaExceeded, //!< this client's token bucket is empty
    Shedding,      //!< overloaded; low-priority work is shed
    Stopped,       //!< the service is shutting down
};

/** Admission policy knobs beyond the depth bound. */
struct AdmissionOptions
{
    /** Bound on pending jobs (> 0). */
    std::size_t maxDepth = 64;

    /** Token-bucket refill per client per second; 0 disables
     *  per-client quotas entirely. */
    double quotaRatePerSec = 0.0;

    /** Token-bucket capacity (burst allowance) per client. */
    double quotaBurst = 16.0;

    /** Depth fraction past which priority >= 2 work is shed. */
    double shedWatermark = 0.85;
};

/** Bounded, priority-ordered, thread-safe admission queue. */
class AdmissionQueue
{
  public:
    /** @param max_depth Bound on pending jobs (> 0); quotas and
     *  shedding keep their defaults (quotas off). */
    explicit AdmissionQueue(std::size_t max_depth);

    explicit AdmissionQueue(const AdmissionOptions &options);

    /**
     * Admit @p request (non-blocking). On Accepted the job is queued
     * and one waiting pop() wakes; every other verdict leaves the
     * queue untouched. When non-null, @p retry_after_ms receives a
     * client backoff hint for QuotaExceeded/Shedding/QueueFull (0
     * for the other verdicts).
     */
    Admit tryPush(Request request, std::int64_t now_ms,
                  std::uint64_t *retry_after_ms = nullptr);

    /**
     * Re-queue crash-recovered work, bypassing depth, quota, and
     * shed gates (it was admitted once already). Keeps the original
     * ticket so the job re-enters at its old position among equals.
     * @return false when the queue is stopped — the caller must
     *         answer the job's sinks itself.
     */
    bool requeue(Job job);

    /**
     * Block until a job is available or the queue is stopped.
     * @return the highest-priority / oldest job, or nullopt once
     *         stopped *and* drained.
     */
    std::optional<Job> pop();

    /**
     * Feed the shed-hint pace estimator: @p service_ms is how long
     * the last completed job took end to end. An EWMA (alpha 1/8)
     * of these turns queue depth into a Retry-After estimate.
     */
    void noteServiced(std::int64_t service_ms);

    /**
     * Stop admitting; wake every blocked pop(). Jobs already queued
     * still drain (pop() keeps returning them) so accepted work is
     * never silently dropped.
     */
    void stop();

    /** True once stop() was called. */
    bool stopped() const { return stopped_.load(); }

    /** Pending jobs right now. */
    std::size_t depth() const;

    /** Jobs accepted since construction. */
    std::uint64_t accepted() const { return accepted_.load(); }

    /** Pushes rejected for depth since construction. */
    std::uint64_t rejected() const { return rejected_.load(); }

    /** Pushes rejected by per-client quotas since construction. */
    std::uint64_t quotaRejected() const
    {
        return quotaRejected_.load();
    }

    /** Pushes shed for overload since construction. */
    std::uint64_t shedRejected() const { return shedRejected_.load(); }

    /** Crash-recovered jobs re-queued since construction. */
    std::uint64_t requeued() const { return requeued_.load(); }

  private:
    /** Token bucket state for one client id. */
    struct Bucket
    {
        double tokens = 0.0;
        std::int64_t lastMs = 0;
        /** Virtual-queue tail: the wall time the latest Retry-After
         *  hint promised a token for. Each rejection reserves the
         *  next slot so a rejected burst retries staggered, one
         *  refill apart, instead of in lockstep. */
        double promisedUntilMs = 0.0;
    };

    AdmissionOptions options_;
    mutable sync::Mutex mutex_;
    sync::ConditionVariable cv_ MMGPU_GUARDED_BY(mutex_);
    /** (priority, ticket) -> job; map order is the service order. */
    std::map<std::pair<int, std::uint64_t>, Job> queue_
        MMGPU_GUARDED_BY(mutex_);
    std::unordered_map<std::string, Bucket> buckets_
        MMGPU_GUARDED_BY(mutex_);
    std::uint64_t nextTicket_ MMGPU_GUARDED_BY(mutex_) = 0;
    /** 0 until the first sample. */
    double serviceEwmaMs_ MMGPU_GUARDED_BY(mutex_) = 0.0;
    std::atomic<bool> stopped_{false};
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> quotaRejected_{0};
    std::atomic<std::uint64_t> shedRejected_{0};
    std::atomic<std::uint64_t> requeued_{0};
};

} // namespace mmgpu::serve

#endif // MMGPU_SERVE_ADMISSION_HH
