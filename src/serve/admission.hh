/**
 * @file
 * Bounded priority admission queue of the simulation service.
 *
 * Admission is the service's backpressure point: the queue holds at
 * most `maxDepth` pending requests, and a push against a full queue
 * is *rejected immediately* — the client gets a "rejected" response
 * and may retry with backoff — rather than blocking the socket reader
 * or growing memory without bound. Within the bound, ordering is
 * strict priority (0 = high, 1 = normal, 2 = batch) with FIFO among
 * equals, implemented as a map keyed on (priority, admission ticket)
 * so a flood of batch work can never starve an interactive probe.
 */

#ifndef MMGPU_SERVE_ADMISSION_HH
#define MMGPU_SERVE_ADMISSION_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "serve/request.hh"

namespace mmgpu::serve
{

/** One admitted request, stamped with its admission order and time. */
struct Job
{
    Request request;
    std::uint64_t ticket = 0;    //!< admission order (FIFO tiebreak)
    std::int64_t admittedMs = 0; //!< wallclock::nowMs() at admission
};

/** Outcome of an admission attempt. */
enum class Admit : std::uint8_t
{
    Accepted,  //!< queued; a worker will pick it up
    QueueFull, //!< bounded depth exceeded — reject, don't block
    Stopped,   //!< the service is shutting down
};

/** Bounded, priority-ordered, thread-safe admission queue. */
class AdmissionQueue
{
  public:
    /** @param max_depth Bound on pending jobs (> 0). */
    explicit AdmissionQueue(std::size_t max_depth);

    /**
     * Admit @p request (non-blocking). On Accepted the job is queued
     * and one waiting pop() wakes; QueueFull/Stopped leave the queue
     * untouched.
     */
    Admit tryPush(Request request, std::int64_t now_ms);

    /**
     * Block until a job is available or the queue is stopped.
     * @return the highest-priority / oldest job, or nullopt once
     *         stopped *and* drained.
     */
    std::optional<Job> pop();

    /**
     * Stop admitting; wake every blocked pop(). Jobs already queued
     * still drain (pop() keeps returning them) so accepted work is
     * never silently dropped.
     */
    void stop();

    /** True once stop() was called. */
    bool stopped() const { return stopped_.load(); }

    /** Pending jobs right now. */
    std::size_t depth() const;

    /** Jobs accepted since construction. */
    std::uint64_t accepted() const { return accepted_.load(); }

    /** Pushes rejected for depth since construction. */
    std::uint64_t rejected() const { return rejected_.load(); }

  private:
    const std::size_t maxDepth_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    /** (priority, ticket) -> job; map order is the service order. */
    std::map<std::pair<int, std::uint64_t>, Job> queue_;
    std::uint64_t nextTicket_ = 0;
    std::atomic<bool> stopped_{false};
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> rejected_{0};
};

} // namespace mmgpu::serve

#endif // MMGPU_SERVE_ADMISSION_HH
