#include "serve/socket_server.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"

namespace mmgpu::serve
{

namespace
{

/** poll() slice while stalled, so a shutdown fd is noticed fast. */
constexpr int writePollMs = 100;

/** Smallest line cap an operator may configure; below this even a
 *  bare ping request would not fit. */
constexpr std::size_t minLineCap = 512;

std::uint64_t
envUint(const char *name, std::uint64_t fallback, std::uint64_t lo,
        std::uint64_t hi)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0' || parsed < lo || parsed > hi) {
        warn("ignoring ", name, "='", text, "' (want an integer in [",
             lo, ", ", hi, "])");
        return fallback;
    }
    return parsed;
}

} // namespace

SocketServerOptions
SocketServerOptions::fromEnv()
{
    SocketServerOptions options;
    options.lineCap =
        static_cast<std::size_t>(envUint("MMGPU_SERVE_LINE_CAP",
                                         options.lineCap, minLineCap,
                                         maxRequestBytes));
    options.writeBudgetMs = static_cast<int>(
        envUint("MMGPU_SERVE_WRITE_BUDGET_SEC",
                static_cast<std::uint64_t>(options.writeBudgetMs) /
                    1000,
                1, 3600) *
        1000);
    return options;
}

SocketServer::ConnState::~ConnState()
{
    ::close(fd);
}

bool
SocketServer::ConnState::writeLine(const std::string &line)
{
    std::lock_guard<sync::Mutex> lock(writeMutex);
    if (!alive.load())
        return false;
    std::string framed = line;
    framed.push_back('\n');
    std::size_t written = 0;
    int stalled_ms = 0;
    while (written < framed.size()) {
        // MSG_DONTWAIT: never park a worker thread inside send() — a
        // stalled client must cost its connection, not a shard, and
        // stop() must always be able to wake us via shutdown().
        // MSG_NOSIGNAL: a vanished client must surface as EPIPE, not
        // a process-killing SIGPIPE.
        // writeMutex is held by design: it only serializes writers
        // on ONE connection, the send is non-blocking, and the stall
        // budget below bounds the hold time. No other lock nests
        // with it. (This is the audited survivor of the historical
        // stop-vs-stalled-writer deadlock.)
        ssize_t n = ::send(fd, framed.data() + written, // mmgpu-lint: allow(no-blocking-under-lock)
                           framed.size() - written,
                           MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n > 0) {
            written += static_cast<std::size_t>(n);
            stalled_ms = 0;
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (stalled_ms >= writeBudgetMs) {
                // Client stopped reading: drop it. shutdown() also
                // wakes this connection's reader out of recv().
                alive.store(false);
                ::shutdown(fd, SHUT_RDWR);
                return false;
            }
            pollfd pfd{};
            pfd.fd = fd;
            pfd.events = POLLOUT;
            // Bounded by writePollMs and only under this
            // connection's writeMutex — see the send() note above.
            ::poll(&pfd, 1, writePollMs); // mmgpu-lint: allow(no-blocking-under-lock)
            stalled_ms += writePollMs;
            if (!alive.load())
                return false;
            continue;
        }
        alive.store(false);
        return false;
    }
    return true;
}

SocketServer::SocketServer(SimService &service, std::string path,
                           SocketServerOptions options)
    : service_(service), path_(std::move(path)), options_(options)
{
    // Validate even programmatic options: a zero/oversized cap is a
    // config bug, not something to crash or silently obey.
    if (options_.lineCap < minLineCap ||
        options_.lineCap > maxRequestBytes) {
        warn("serve: line cap ", options_.lineCap,
             " out of range; clamping");
        options_.lineCap =
            std::clamp(options_.lineCap, minLineCap, maxRequestBytes);
    }
    if (options_.writeBudgetMs <= 0) {
        warn("serve: non-positive write budget; using 10000 ms");
        options_.writeBudgetMs = 10000;
    }
    chaos_ = std::make_shared<ChaosState>();
    if (options_.faultPlan != nullptr) {
        chaos_->resetEveryWrites =
            options_.faultPlan->serve.connResetEveryWrites;
    }
}

SocketServer::~SocketServer()
{
    stop();
}

Result<void>
SocketServer::start()
{
    mmgpu_assert(!running_, "SocketServer::start() called twice");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path)) {
        return SimError::config("socket path too long: " + path_);
    }
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        return SimError::io(std::string("socket(): ") +
                            std::strerror(errno));
    }
    ::unlink(path_.c_str()); // stale socket file from a dead daemon
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        SimError error = SimError::io("bind(" + path_ +
                                      "): " + std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return error;
    }
    if (::listen(listenFd_, 16) != 0) {
        SimError error = SimError::io(std::string("listen(): ") +
                                      std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(path_.c_str());
        return error;
    }
    running_ = true;
    stop_.store(false);

    // Tell the service what front end it is running behind, so
    // `--stats` echoes the enforced caps.
    JsonValue info = JsonValue::object();
    info.set("socket", path_);
    info.set("line-cap", options_.lineCap);
    info.set("write-budget-ms", options_.writeBudgetMs);
    service_.setFrontendInfo(std::move(info));

    acceptor_ = std::thread([this] { acceptLoop(); });
    return Result<void>::success();
}

void
SocketServer::stop()
{
    if (!running_)
        return;
    running_ = false;
    stop_.store(true);
    if (acceptor_.joinable())
        acceptor_.join();
    ::close(listenFd_);
    listenFd_ = -1;

    // Shut every live connection so blocked readers wake with EOF
    // and stalled writers wake with EPIPE. Deliberately NOT under
    // the connection's writeMutex: a stalled writeLine() holds it,
    // and shutdown() on an fd is safe concurrently with send() —
    // taking the mutex here would deadlock stop() against the very
    // writer it is trying to unblock.
    std::map<std::uint64_t, std::thread> threads;
    {
        std::lock_guard<sync::Mutex> lock(connMutex_);
        for (const auto &weak : conns_) {
            if (std::shared_ptr<ConnState> conn = weak.lock()) {
                conn->alive.store(false);
                ::shutdown(conn->fd, SHUT_RDWR);
            }
        }
        threads.swap(connThreads_);
        conns_.clear();
        finishedConns_.clear();
    }
    for (auto &[id, thread] : threads)
        if (thread.joinable())
            thread.join();
    ::unlink(path_.c_str());
}

void
SocketServer::acceptLoop()
{
    while (!stop_.load()) {
        // Reap on every pass (the 100 ms poll timeout drives this
        // even with no new connections) so a long-lived daemon
        // serving many short connections never accumulates
        // exited-but-joinable reader threads.
        reapFinished();
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0)
            continue; // timeout (stop_ check) or EINTR
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        accepted_.fetch_add(1);
        auto conn = std::make_shared<ConnState>(
            fd, options_.writeBudgetMs);
        std::lock_guard<sync::Mutex> lock(connMutex_);
        std::uint64_t id = nextConnId_++;
        conns_.push_back(conn);
        connThreads_.emplace(id, std::thread([this, id, conn] {
                                 connectionLoop(id, conn);
                             }));
    }
}

void
SocketServer::reapFinished()
{
    std::vector<std::thread> finished;
    {
        std::lock_guard<sync::Mutex> lock(connMutex_);
        for (std::uint64_t id : finishedConns_) {
            auto it = connThreads_.find(id);
            if (it == connThreads_.end())
                continue;
            finished.push_back(std::move(it->second));
            connThreads_.erase(it);
        }
        finishedConns_.clear();
        conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                    [](const auto &weak) {
                                        return weak.expired();
                                    }),
                     conns_.end());
    }
    // Join outside connMutex_: the exiting thread's last act is to
    // enqueue its id under that mutex.
    for (std::thread &thread : finished)
        if (thread.joinable())
            thread.join();
}

std::size_t
SocketServer::trackedConnectionThreads() const
{
    std::lock_guard<sync::Mutex> lock(connMutex_);
    return connThreads_.size();
}

void
SocketServer::maybeInjectReset(ChaosState &chaos,
                               const std::shared_ptr<ConnState> &conn)
{
    if (chaos.resetEveryWrites == 0)
        return;
    std::uint64_t writes = chaos.writes.fetch_add(1) + 1;
    if (writes % chaos.resetEveryWrites != 0)
        return;
    // Hard-close *after* the response went out: the client can still
    // read what is buffered, then hits EOF/EPIPE and must reconnect —
    // exactly the failure a dying NAT or restarted proxy produces.
    chaos.resets.fetch_add(1);
    conn->alive.store(false);
    ::shutdown(conn->fd, SHUT_RDWR);
}

void
SocketServer::connectionLoop(std::uint64_t id,
                             std::shared_ptr<ConnState> conn)
{
    // Per-connection quota identity: requests that do not name a
    // "client" are accounted against their connection.
    const std::string default_client =
        "conn-" + std::to_string(id);
    std::string pending;
    char buffer[4096];
    while (true) {
        ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break; // EOF or error: client is gone

        pending.append(buffer, static_cast<std::size_t>(n));

        // A client streaming garbage without a newline must not
        // balloon daemon memory: cap the partial line too.
        if (pending.find('\n') == std::string::npos &&
            pending.size() > options_.lineCap) {
            conn->writeLine(
                Response::error(
                    "", SimError::parse(
                            "request line exceeds " +
                            std::to_string(options_.lineCap) +
                            " bytes"))
                    .encode());
            break;
        }

        std::size_t start = 0;
        for (std::size_t nl = pending.find('\n', start);
             nl != std::string::npos;
             nl = pending.find('\n', start)) {
            std::string line =
                pending.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            if (line.size() > options_.lineCap) {
                conn->writeLine(
                    Response::error(
                        parseRequestId(line),
                        SimError::parse(
                            "request line exceeds " +
                            std::to_string(options_.lineCap) +
                            " bytes"))
                        .encode());
                continue;
            }
            service_.submitLine(
                line,
                [conn, chaos = chaos_](const Response &response) {
                    if (conn->writeLine(response.encode()))
                        maybeInjectReset(*chaos, conn);
                },
                default_client);
        }
        pending.erase(0, start);
    }
    conn->alive.store(false);
    std::lock_guard<sync::Mutex> lock(connMutex_);
    finishedConns_.push_back(id);
}

} // namespace mmgpu::serve
