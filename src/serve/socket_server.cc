#include "serve/socket_server.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"

namespace mmgpu::serve
{

SocketServer::ConnState::~ConnState()
{
    ::close(fd);
}

bool
SocketServer::ConnState::writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(writeMutex);
    if (!alive)
        return false;
    std::string framed = line;
    framed.push_back('\n');
    std::size_t written = 0;
    while (written < framed.size()) {
        // MSG_NOSIGNAL: a vanished client must surface as EPIPE, not
        // a process-killing SIGPIPE.
        ssize_t n = ::send(fd, framed.data() + written,
                           framed.size() - written, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            alive = false;
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

SocketServer::SocketServer(SimService &service, std::string path)
    : service_(service), path_(std::move(path))
{
}

SocketServer::~SocketServer()
{
    stop();
}

Result<void>
SocketServer::start()
{
    mmgpu_assert(!running_, "SocketServer::start() called twice");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path)) {
        return SimError::config("socket path too long: " + path_);
    }
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        return SimError::io(std::string("socket(): ") +
                            std::strerror(errno));
    }
    ::unlink(path_.c_str()); // stale socket file from a dead daemon
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        SimError error = SimError::io("bind(" + path_ +
                                      "): " + std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return error;
    }
    if (::listen(listenFd_, 16) != 0) {
        SimError error = SimError::io(std::string("listen(): ") +
                                      std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(path_.c_str());
        return error;
    }
    running_ = true;
    stop_.store(false);
    acceptor_ = std::thread([this] { acceptLoop(); });
    return Result<void>::success();
}

void
SocketServer::stop()
{
    if (!running_)
        return;
    running_ = false;
    stop_.store(true);
    if (acceptor_.joinable())
        acceptor_.join();
    ::close(listenFd_);
    listenFd_ = -1;

    // Shut every live connection so blocked readers wake with EOF.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (const auto &weak : conns_) {
            if (std::shared_ptr<ConnState> conn = weak.lock()) {
                std::lock_guard<std::mutex> wlock(conn->writeMutex);
                conn->alive = false;
                ::shutdown(conn->fd, SHUT_RDWR);
            }
        }
        threads.swap(connThreads_);
        conns_.clear();
    }
    for (std::thread &thread : threads)
        if (thread.joinable())
            thread.join();
    ::unlink(path_.c_str());
}

void
SocketServer::acceptLoop()
{
    while (!stop_.load()) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0)
            continue; // timeout (stop_ check) or EINTR
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        accepted_.fetch_add(1);
        auto conn = std::make_shared<ConnState>(fd);
        std::lock_guard<std::mutex> lock(connMutex_);
        conns_.push_back(conn);
        connThreads_.emplace_back(
            [this, conn] { connectionLoop(conn); });
    }
}

void
SocketServer::connectionLoop(std::shared_ptr<ConnState> conn)
{
    std::string pending;
    char buffer[4096];
    while (true) {
        ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break; // EOF or error: client is gone

        pending.append(buffer, static_cast<std::size_t>(n));

        // A client streaming garbage without a newline must not
        // balloon daemon memory: cap the partial line too.
        if (pending.find('\n') == std::string::npos &&
            pending.size() > maxRequestBytes) {
            conn->writeLine(
                Response::error(
                    "", SimError::parse(
                            "request line exceeds " +
                            std::to_string(maxRequestBytes) +
                            " bytes"))
                    .encode());
            break;
        }

        std::size_t start = 0;
        for (std::size_t nl = pending.find('\n', start);
             nl != std::string::npos;
             nl = pending.find('\n', start)) {
            std::string line =
                pending.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            service_.submitLine(
                line, [conn](const Response &response) {
                    conn->writeLine(response.encode());
                });
        }
        pending.erase(0, start);
    }
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    conn->alive = false;
}

} // namespace mmgpu::serve
