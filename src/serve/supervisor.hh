/**
 * @file
 * Shard supervision: crash isolation, strike accounting, quarantine,
 * restart backoff, and request-class circuit breaking.
 *
 * The serve tier must survive its own engine. A simulation that dies
 * inside a shard (an injected chaos crash, a contract-audit panic
 * downgraded via the thread panic trap, a watchdog cancellation that
 * poisons the machine) is a *shard* problem, not a *daemon* problem:
 * the supervisor retires the possibly-corrupt machine, restarts the
 * shard after a bounded exponential backoff, and either re-queues the
 * work (clients never see the crash) or — after maxStrikes crashes on
 * the same work fingerprint — quarantines that fingerprint so it is
 * answered with ErrCode::Poisoned instead of crashing a shard a
 * fourth time.
 *
 * Everything here is clock-free: callers pass wall-times in, so the
 * policy is unit-testable deterministically and the lint determinism
 * rule holds. Thread-safe; one instance is shared by all shards.
 */

#ifndef MMGPU_SERVE_SUPERVISOR_HH
#define MMGPU_SERVE_SUPERVISOR_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/lockdep.hh"
#include "common/thread_safety.hh"

namespace mmgpu::serve
{

/** Tunables for ShardSupervisor. */
struct SupervisorOptions
{
    /** Crashes on the same work fingerprint before it is poisoned. */
    unsigned maxStrikes = 3;

    /** First restart delay after a shard crash. */
    std::uint64_t backoffBaseMs = 100;

    /** Restart delay ceiling (doubles per consecutive crash). */
    std::uint64_t backoffCapMs = 5000;

    /** Bounded in-memory event log length (oldest dropped). */
    std::size_t eventLogCap = 128;
};

/** What the supervisor decided about a crashed job. */
enum class CrashVerdict
{
    Requeue, ///< transparent retry on a fresh shard/machine
    Poison,  ///< fingerprint quarantined; answer ErrCode::Poisoned
};

/** One supervision event, kept in a bounded log for --stats. */
struct SupervisorEvent
{
    std::uint64_t wallMs = 0;
    unsigned shard = 0;
    std::uint64_t fingerprint = 0;
    unsigned strike = 0;
    CrashVerdict verdict = CrashVerdict::Requeue;
    std::string message;
};

/** Aggregate supervision counters. */
struct SupervisorStats
{
    std::uint64_t crashes = 0;    ///< shard crashes observed
    std::uint64_t requeues = 0;   ///< crashes answered by retry
    std::uint64_t poisonings = 0; ///< fingerprints quarantined
    std::size_t quarantined = 0;  ///< quarantine set size now
    std::uint64_t backoffMsTotal = 0; ///< restart delay handed out
};

/**
 * Crash bookkeeping shared by every shard of a SimService.
 */
class ShardSupervisor
{
  public:
    explicit ShardSupervisor(const SupervisorOptions &options = {});

    /** The supervisor's ruling on one crash. */
    struct Outcome
    {
        CrashVerdict verdict = CrashVerdict::Requeue;
        /** How long the crashed shard must sleep before restart. */
        std::uint64_t backoffMs = 0;
        /** Strike count for the fingerprint, including this crash. */
        unsigned strike = 0;
    };

    /**
     * Record that @p shard crashed while executing work
     * @p fingerprint, and decide its fate. @p message is the panic /
     * fault text for the event log.
     */
    Outcome onCrash(unsigned shard, std::uint64_t fingerprint,
                    const std::string &message, std::uint64_t wall_ms);

    /** A shard finished a job cleanly; its backoff resets. */
    void onHealthy(unsigned shard);

    /** @return true when @p fingerprint has been poisoned. */
    bool quarantined(std::uint64_t fingerprint) const;

    SupervisorStats stats() const;

    /** Snapshot of the bounded event log, oldest first. */
    std::vector<SupervisorEvent> events() const;

  private:
    mutable sync::Mutex mutex_;
    SupervisorOptions options_;
    std::unordered_map<std::uint64_t, unsigned> strikes_
        MMGPU_GUARDED_BY(mutex_);
    std::unordered_set<std::uint64_t> quarantine_
        MMGPU_GUARDED_BY(mutex_);
    std::unordered_map<unsigned, std::uint64_t> shardBackoffMs_
        MMGPU_GUARDED_BY(mutex_);
    std::deque<SupervisorEvent> events_ MMGPU_GUARDED_BY(mutex_);
    std::uint64_t crashes_ MMGPU_GUARDED_BY(mutex_) = 0;
    std::uint64_t requeues_ MMGPU_GUARDED_BY(mutex_) = 0;
    std::uint64_t poisonings_ MMGPU_GUARDED_BY(mutex_) = 0;
    std::uint64_t backoffMsTotal_ MMGPU_GUARDED_BY(mutex_) = 0;
};

/** Tunables for CircuitBreaker. */
struct BreakerOptions
{
    /** Sliding window length per request class. */
    std::size_t window = 16;

    /** Error fraction at which the class opens (sheds). */
    double tripRatio = 0.5;

    /** Outcomes required before the ratio is trusted. */
    std::size_t minSamples = 8;

    /** How long an open class sheds before closing again. */
    std::uint64_t cooldownMs = 2000;
};

/**
 * Per-request-class circuit breaker. When a class's recent error
 * rate spikes (>= tripRatio over the last `window` outcomes), the
 * class opens: the service sheds new requests of that class with a
 * Retry-After hint instead of feeding more work to a failing path.
 * After cooldownMs the class closes with a fresh window.
 *
 * Clock-free like the supervisor: callers pass wall-times.
 */
class CircuitBreaker
{
  public:
    /** @p classes is the number of request classes tracked. */
    explicit CircuitBreaker(std::size_t classes,
                            const BreakerOptions &options = {});

    /** Record one outcome for @p cls (true = success). */
    void record(std::size_t cls, bool ok, std::uint64_t wall_ms);

    /** @return true when @p cls is open (shed it). */
    bool open(std::size_t cls, std::uint64_t wall_ms) const;

    /** Milliseconds until @p cls closes; 0 when it is not open. */
    std::uint64_t retryAfterMs(std::size_t cls,
                               std::uint64_t wall_ms) const;

    /** Total times any class opened. */
    std::uint64_t trips() const;

  private:
    struct ClassState
    {
        std::vector<std::uint8_t> ring; ///< 1 = error
        std::size_t head = 0;
        std::size_t count = 0;
        std::size_t errors = 0;
        std::uint64_t openUntilMs = 0;
    };

    void resetLocked(ClassState &state) const
        MMGPU_REQUIRES(mutex_);

    mutable sync::Mutex mutex_;
    BreakerOptions options_;
    std::vector<ClassState> classes_ MMGPU_GUARDED_BY(mutex_);
    std::uint64_t trips_ MMGPU_GUARDED_BY(mutex_) = 0;
};

} // namespace mmgpu::serve

#endif // MMGPU_SERVE_SUPERVISOR_HH
