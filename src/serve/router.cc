#include "serve/router.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mmgpu::serve
{

Router::Router(std::size_t shards, std::size_t slack,
               std::uint64_t seed)
    : load_(shards, 0), rng_(seed), slack_(slack)
{
    mmgpu_assert(shards > 0, "router needs at least one shard");
}

std::size_t
Router::route(std::uint64_t machine_identity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t least =
        *std::min_element(load_.begin(), load_.end());

    auto it = affinity_.find(machine_identity);
    if (it != affinity_.end() && load_[it->second] <= least + slack_) {
        ++affinityHits_;
        ++load_[it->second];
        return it->second;
    }

    std::size_t shard;
    if (load_.size() == 1) {
        shard = 0;
    } else {
        std::size_t a = rng_.below(load_.size());
        std::size_t b = rng_.below(load_.size());
        shard = load_[a] <= load_[b] ? a : b;
    }
    affinity_[machine_identity] = shard;
    ++load_[shard];
    return shard;
}

void
Router::release(std::size_t shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    mmgpu_assert(shard < load_.size() && load_[shard] > 0,
                 "release() without a matching route()");
    --load_[shard];
}

std::vector<std::size_t>
Router::loads() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return load_;
}

std::uint64_t
Router::affinityHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return affinityHits_;
}

} // namespace mmgpu::serve
