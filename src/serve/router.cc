#include "serve/router.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace mmgpu::serve
{

Router::Router(std::size_t shards, std::size_t slack,
               std::uint64_t seed)
    : load_(shards, 0), rng_(seed), shardCount_(shards),
      slack_(slack)
{
    mmgpu_assert(shards > 0, "router needs at least one shard");
}

std::size_t
Router::route(std::uint64_t machine_identity,
              const std::vector<std::uint8_t> *deliverable)
{
    std::lock_guard<sync::Mutex> lock(mutex_);
    mmgpu_assert(deliverable == nullptr ||
                     deliverable->size() == load_.size(),
                 "deliverable mask size != shard count");
    std::vector<std::size_t> candidates;
    std::size_t least = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < load_.size(); ++i) {
        if (deliverable != nullptr && (*deliverable)[i] == 0)
            continue;
        candidates.push_back(i);
        least = std::min(least, load_[i]);
    }
    mmgpu_assert(!candidates.empty(),
                 "route() needs at least one deliverable shard");

    auto it = affinity_.find(machine_identity);
    if (it != affinity_.end() &&
        (deliverable == nullptr ||
         (*deliverable)[it->second] != 0) &&
        load_[it->second] <= least + slack_) {
        ++affinityHits_;
        ++load_[it->second];
        return it->second;
    }

    std::size_t shard;
    if (candidates.size() == 1) {
        shard = candidates.front();
    } else {
        std::size_t a = candidates[rng_.below(candidates.size())];
        std::size_t b = candidates[rng_.below(candidates.size())];
        shard = load_[a] <= load_[b] ? a : b;
    }
    affinity_[machine_identity] = shard;
    ++load_[shard];
    return shard;
}

void
Router::release(std::size_t shard)
{
    std::lock_guard<sync::Mutex> lock(mutex_);
    mmgpu_assert(shard < load_.size() && load_[shard] > 0,
                 "release() without a matching route()");
    --load_[shard];
}

std::vector<std::size_t>
Router::loads() const
{
    std::lock_guard<sync::Mutex> lock(mutex_);
    return load_;
}

std::uint64_t
Router::affinityHits() const
{
    std::lock_guard<sync::Mutex> lock(mutex_);
    return affinityHits_;
}

} // namespace mmgpu::serve
