#include "serve/batch.hh"

#include <condition_variable>
#include <mutex>
#include <string>

namespace mmgpu::serve
{

BatchResult
runBatch(SimService &service, std::istream &in, std::ostream &out)
{
    BatchResult result;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#')
            continue;

        std::mutex mutex;
        std::condition_variable cv;
        bool ready = false;
        Response response;
        service.submitLine(line, [&](const Response &r) {
            std::lock_guard<std::mutex> lock(mutex);
            response = r;
            ready = true;
            cv.notify_one();
        });
        {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&] { return ready; });
        }

        ++result.requests;
        if (response.status != ResponseStatus::Ok)
            ++result.failures;
        out << response.encode() << "\n";
    }
    return result;
}

} // namespace mmgpu::serve
