#include "serve/batch.hh"

#include <mutex>
#include <string>

#include "common/lockdep.hh"

namespace mmgpu::serve
{

BatchResult
runBatch(SimService &service, std::istream &in, std::ostream &out)
{
    BatchResult result;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#')
            continue;

        sync::Mutex mutex;
        sync::ConditionVariable cv;
        bool ready = false;
        Response response;
        service.submitLine(line, [&](const Response &r) {
            std::lock_guard<sync::Mutex> lock(mutex);
            response = r;
            ready = true;
            cv.notify_one();
        });
        {
            std::unique_lock<sync::Mutex> lock(mutex);
            cv.wait(lock, [&] { return ready; });
        }

        ++result.requests;
        if (response.status != ResponseStatus::Ok)
            ++result.failures;
        out << response.encode() << "\n";
    }
    return result;
}

} // namespace mmgpu::serve
