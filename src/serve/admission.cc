#include "serve/admission.hh"

#include "common/logging.hh"

namespace mmgpu::serve
{

AdmissionQueue::AdmissionQueue(std::size_t max_depth)
    : maxDepth_(max_depth)
{
    mmgpu_assert(max_depth > 0, "admission queue needs depth > 0");
}

Admit
AdmissionQueue::tryPush(Request request, std::int64_t now_ms)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_.load())
            return Admit::Stopped;
        if (queue_.size() >= maxDepth_) {
            rejected_.fetch_add(1);
            return Admit::QueueFull;
        }
        Job job;
        job.ticket = nextTicket_++;
        job.admittedMs = now_ms;
        int priority = request.priority;
        job.request = std::move(request);
        queue_.emplace(std::make_pair(priority, job.ticket),
                       std::move(job));
        accepted_.fetch_add(1);
    }
    cv_.notify_one();
    return Admit::Accepted;
}

std::optional<Job>
AdmissionQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock,
             [this] { return stopped_.load() || !queue_.empty(); });
    if (queue_.empty())
        return std::nullopt; // stopped and drained
    auto first = queue_.begin();
    Job job = std::move(first->second);
    queue_.erase(first);
    return job;
}

void
AdmissionQueue::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopped_.store(true);
    }
    cv_.notify_all();
}

std::size_t
AdmissionQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

} // namespace mmgpu::serve
