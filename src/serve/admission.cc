#include "serve/admission.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mmgpu::serve
{

namespace
{

/** Ceiling on any Retry-After hint we hand out. */
constexpr std::uint64_t maxRetryHintMs = 30000;

/** Shed-hint pace assumed before noteServiced() has any samples. */
constexpr double fallbackServiceMs = 250.0;

} // namespace

AdmissionQueue::AdmissionQueue(std::size_t max_depth)
    : AdmissionQueue([max_depth] {
          AdmissionOptions options;
          options.maxDepth = max_depth;
          return options;
      }())
{
}

AdmissionQueue::AdmissionQueue(const AdmissionOptions &options)
    : options_(options)
{
    mmgpu_assert(options_.maxDepth > 0,
                 "admission queue needs depth > 0");
    mmgpu_assert(options_.quotaRatePerSec >= 0.0,
                 "negative quota rate");
    options_.shedWatermark =
        std::clamp(options_.shedWatermark, 0.0, 1.0);
}

Admit
AdmissionQueue::tryPush(Request request, std::int64_t now_ms,
                        std::uint64_t *retry_after_ms)
{
    if (retry_after_ms != nullptr)
        *retry_after_ms = 0;
    {
        std::lock_guard<sync::Mutex> lock(mutex_);
        if (stopped_.load())
            return Admit::Stopped;

        // Gate 1: per-client token bucket.
        if (options_.quotaRatePerSec > 0.0) {
            Bucket &bucket = buckets_[request.client];
            if (bucket.lastMs == 0 && bucket.tokens == 0.0)
                bucket.tokens = options_.quotaBurst; // first sight
            double refill =
                static_cast<double>(now_ms - bucket.lastMs) / 1000.0 *
                options_.quotaRatePerSec;
            if (refill > 0.0)
                bucket.tokens = std::min(options_.quotaBurst,
                                         bucket.tokens + refill);
            bucket.lastMs = now_ms;
            if (bucket.tokens < 1.0) {
                quotaRejected_.fetch_add(1);
                if (retry_after_ms != nullptr) {
                    // Virtual queue: each rejection reserves its own
                    // future token slot, so a burst of rejected
                    // requests gets staggered hints instead of all
                    // thundering back at the same instant and losing
                    // to the same empty bucket again.
                    double per_token_ms =
                        1000.0 / options_.quotaRatePerSec;
                    double ready_ms =
                        static_cast<double>(now_ms) +
                        (1.0 - bucket.tokens) * per_token_ms;
                    double slot_ms = std::max(
                        ready_ms, bucket.promisedUntilMs);
                    bucket.promisedUntilMs = slot_ms + per_token_ms;
                    *retry_after_ms = std::min(
                        maxRetryHintMs,
                        static_cast<std::uint64_t>(std::ceil(
                            slot_ms -
                            static_cast<double>(now_ms))));
                }
                return Admit::QuotaExceeded;
            }
            bucket.tokens -= 1.0;
        }

        // Gate 2: shed batch-tier work past the high-water mark.
        std::size_t watermark = static_cast<std::size_t>(
            options_.shedWatermark *
            static_cast<double>(options_.maxDepth));
        if (request.priority >= 2 && queue_.size() >= watermark &&
            watermark < options_.maxDepth) {
            shedRejected_.fetch_add(1);
            if (retry_after_ms != nullptr) {
                double pace = serviceEwmaMs_ > 0.0 ? serviceEwmaMs_
                                                   : fallbackServiceMs;
                double excess = static_cast<double>(
                    queue_.size() - watermark + 1);
                *retry_after_ms = std::min(
                    maxRetryHintMs,
                    static_cast<std::uint64_t>(
                        std::ceil(excess * pace)));
            }
            return Admit::Shedding;
        }

        // Gate 3: hard depth bound.
        if (queue_.size() >= options_.maxDepth) {
            rejected_.fetch_add(1);
            if (retry_after_ms != nullptr) {
                double pace = serviceEwmaMs_ > 0.0 ? serviceEwmaMs_
                                                   : fallbackServiceMs;
                *retry_after_ms = std::min(
                    maxRetryHintMs,
                    static_cast<std::uint64_t>(std::ceil(pace)));
            }
            return Admit::QueueFull;
        }

        Job job;
        job.ticket = nextTicket_++;
        job.admittedMs = now_ms;
        int priority = request.priority;
        job.request = std::move(request);
        queue_.emplace(std::make_pair(priority, job.ticket),
                       std::move(job));
        accepted_.fetch_add(1);
        cv_.notify_one();
    }
    return Admit::Accepted;
}

bool
AdmissionQueue::requeue(Job job)
{
    {
        std::lock_guard<sync::Mutex> lock(mutex_);
        if (stopped_.load())
            return false;
        int priority = job.request.priority;
        std::uint64_t ticket = job.ticket;
        queue_.emplace(std::make_pair(priority, ticket),
                       std::move(job));
        requeued_.fetch_add(1);
        cv_.notify_one();
    }
    return true;
}

std::optional<Job>
AdmissionQueue::pop()
{
    std::unique_lock<sync::Mutex> lock(mutex_);
    cv_.wait(lock,
             [this] { return stopped_.load() || !queue_.empty(); });
    if (queue_.empty())
        return std::nullopt; // stopped and drained
    auto first = queue_.begin();
    Job job = std::move(first->second);
    queue_.erase(first);
    return job;
}

void
AdmissionQueue::noteServiced(std::int64_t service_ms)
{
    if (service_ms < 0)
        return;
    std::lock_guard<sync::Mutex> lock(mutex_);
    double sample = static_cast<double>(service_ms);
    serviceEwmaMs_ = serviceEwmaMs_ == 0.0
                         ? sample
                         : serviceEwmaMs_ + (sample - serviceEwmaMs_) / 8.0;
}

void
AdmissionQueue::stop()
{
    {
        std::lock_guard<sync::Mutex> lock(mutex_);
        stopped_.store(true);
        cv_.notify_all();
    }
}

std::size_t
AdmissionQueue::depth() const
{
    std::lock_guard<sync::Mutex> lock(mutex_);
    return queue_.size();
}

} // namespace mmgpu::serve
