/**
 * @file
 * Scripted batch front end of the simulation service.
 *
 * `mmgpu_serve --batch file` runs a request script through the same
 * SimService engine the socket serves — one request line per line,
 * `#` comments and blank lines skipped — writing one response line
 * per request, in request order. Useful for canned sweeps, CI
 * drivers, and reproducing a client session without a socket.
 */

#ifndef MMGPU_SERVE_BATCH_HH
#define MMGPU_SERVE_BATCH_HH

#include <istream>
#include <ostream>

#include "serve/service.hh"

namespace mmgpu::serve
{

/** Outcome tally of one batch script. */
struct BatchResult
{
    std::size_t requests = 0; //!< request lines processed
    std::size_t failures = 0; //!< error or rejected responses
};

/**
 * Run every request line of @p in through @p service, writing each
 * response line to @p out in request order (requests are still
 * submitted one at a time, so a batch is a serial client).
 */
BatchResult runBatch(SimService &service, std::istream &in,
                     std::ostream &out);

} // namespace mmgpu::serve

#endif // MMGPU_SERVE_BATCH_HH
