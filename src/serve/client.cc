#include "serve/client.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/rng.hh"
#include "common/wallclock.hh"

namespace mmgpu::serve
{

namespace
{

/** Short recv slices while a hedged attempt round-robins between
 *  its two connections. */
constexpr std::int64_t hedgePollMs = 20;

/** Budget for opening the hedge's second connection; a hedge that
 *  cannot connect promptly is not worth having. */
constexpr std::int64_t hedgeConnectMs = 1000;

} // namespace

ServeClient::~ServeClient()
{
    close();
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    pending_.clear();
}

Result<void>
ServeClient::connect(const std::string &socket_path,
                     std::int64_t timeout_ms)
{
    close();
    path_ = socket_path;

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        return SimError::config("socket path too long: " +
                                socket_path);
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    std::int64_t deadline = wallclock::nowMs() + timeout_ms;
    while (true) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return SimError::io(std::string("socket(): ") +
                                std::strerror(errno));
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            fd_ = fd;
            return Result<void>::success();
        }
        int err = errno;
        ::close(fd);
        // ENOENT/ECONNREFUSED while the daemon is still starting.
        if (wallclock::nowMs() >= deadline) {
            return SimError::io("connect(" + socket_path +
                                "): " + std::strerror(err));
        }
        wallclock::sleepMs(20);
    }
}

Result<void>
ServeClient::sendLine(const std::string &line)
{
    if (fd_ < 0)
        return SimError::io("client is not connected");
    std::string framed = line;
    framed.push_back('\n');
    std::size_t written = 0;
    while (written < framed.size()) {
        ssize_t n = ::send(fd_, framed.data() + written,
                           framed.size() - written, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            int err = errno;
            close();
            return SimError::io(std::string("send(): ") +
                                std::strerror(err));
        }
        written += static_cast<std::size_t>(n);
    }
    return Result<void>::success();
}

Result<std::string>
ServeClient::recvLine(std::int64_t timeout_ms)
{
    if (fd_ < 0)
        return SimError::io("client is not connected");
    std::int64_t deadline = wallclock::nowMs() + timeout_ms;
    while (true) {
        std::size_t nl = pending_.find('\n');
        if (nl != std::string::npos) {
            std::string line = pending_.substr(0, nl);
            pending_.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return line;
        }

        std::int64_t remaining = deadline - wallclock::nowMs();
        if (remaining <= 0)
            return SimError::timeout("no response within " +
                                     std::to_string(timeout_ms) +
                                     " ms");
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        int ready = ::poll(
            &pfd, 1,
            static_cast<int>(std::min<std::int64_t>(remaining, 100)));
        if (ready < 0 && errno != EINTR)
            return SimError::io(std::string("poll(): ") +
                                std::strerror(errno));
        if (ready <= 0)
            continue;

        char buffer[4096];
        ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            close();
            return SimError::io("connection closed by the daemon");
        }
        pending_.append(buffer, static_cast<std::size_t>(n));
    }
}

Result<Response>
ServeClient::roundTrip(const Request &request,
                       std::int64_t timeout_ms)
{
    if (Result<void> sent = sendLine(request.encode()); !sent.ok())
        return sent.error();
    Result<std::string> line = recvLine(timeout_ms);
    if (!line.ok())
        return line.error();
    return parseResponse(line.value());
}

bool
ServeClient::shouldRetry(const Result<Response> &result,
                         std::uint64_t &wait_ms)
{
    wait_ms = 0;
    if (!result.ok()) {
        if (result.error().code == ErrCode::Io) {
            // Broken transport (EPIPE, EOF, injected reset): the
            // connection is already closed by sendLine/recvLine, or
            // must be so the next attempt reconnects cleanly.
            close();
            return true;
        }
        // Timeout: the daemon's watchdog verdict stands. Parse: the
        // response itself is broken — retrying cannot fix either.
        return false;
    }
    const Response &response = result.value();
    if (response.status == ResponseStatus::Rejected) {
        if (response.message.find("quota") != std::string::npos)
            counters_.rejectedQuota += 1;
        else if (response.message.find("shed") != std::string::npos ||
                 response.message.find("overload") !=
                     std::string::npos)
            counters_.rejectedShed += 1;
        else
            counters_.rejectedOther += 1;
        wait_ms = response.retryAfterMs;
        return true;
    }
    if (response.status == ResponseStatus::Error &&
        response.code == ErrCode::Unavailable)
        return true;
    // Ok, or a terminal error (Poisoned, Config, InjectedFault, ...).
    return false;
}

Result<Response>
ServeClient::attemptOnce(const Request &request,
                         std::int64_t timeout_ms,
                         const RetryPolicy &policy)
{
    if (policy.hedgeAfterMs <= 0)
        return roundTrip(request, timeout_ms);

    if (Result<void> sent = sendLine(request.encode()); !sent.ok())
        return sent.error();

    const std::int64_t deadline = wallclock::nowMs() + timeout_ms;
    std::int64_t hedge_at = wallclock::nowMs() + policy.hedgeAfterMs;
    ServeClient hedge;
    bool hedge_sent = false;

    while (true) {
        if (connected()) {
            Result<std::string> line = recvLine(hedgePollMs);
            if (line.ok())
                return parseResponse(line.value());
            if (line.error().code != ErrCode::Timeout)
                close(); // primary transport died; hedge may still win
        }
        if (hedge_sent && hedge.connected()) {
            Result<std::string> line = hedge.recvLine(hedgePollMs);
            if (line.ok()) {
                counters_.hedgesWon += 1;
                // The primary still owes a response for this request;
                // drop the connection rather than let a stale line
                // answer the next call.
                close();
                return parseResponse(line.value());
            }
            if (line.error().code != ErrCode::Timeout)
                hedge.close();
        }
        if (!connected() && !(hedge_sent && hedge.connected()))
            return SimError::io(
                "both primary and hedge connections failed");

        std::int64_t now = wallclock::nowMs();
        if (now >= deadline) {
            // The request is still in flight on whatever connection
            // survived; a late response must not answer the next
            // call, so drop the primary.
            close();
            return SimError::timeout("no response within " +
                                     std::to_string(timeout_ms) +
                                     " ms (hedged)");
        }
        if (!hedge_sent && connected() && now >= hedge_at) {
            if (hedge.connect(path_, hedgeConnectMs).ok() &&
                hedge.sendLine(request.encode()).ok()) {
                hedge_sent = true;
                counters_.hedgesLaunched += 1;
            } else {
                hedge_at = deadline; // do not try again this attempt
            }
        }
    }
}

Result<Response>
ServeClient::call(const Request &request, const RetryPolicy &policy)
{
    counters_.requests += 1;
    // Jitter stream: deterministic per (seed, work), so reruns pace
    // identically but distinct clients/requests desynchronize.
    Rng jitter(policy.seed ^ request.workIdentity() ^
               0x5e27c11ea7ull);
    const std::int64_t deadline =
        wallclock::nowMs() + policy.deadlineMs;
    std::uint64_t backoff_ms =
        policy.backoffBaseMs > 0 ? policy.backoffBaseMs : 1;
    const std::uint64_t backoff_cap =
        std::max<std::uint64_t>(policy.backoffCapMs, backoff_ms);
    Result<Response> last =
        SimError::internal("retry loop made no attempt");

    int attempts = std::max(policy.maxAttempts, 1);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (!connected()) {
            if (path_.empty())
                return SimError::io("client was never connected");
            std::int64_t budget = std::min<std::int64_t>(
                deadline - wallclock::nowMs(), hedgeConnectMs);
            if (budget <= 0)
                break;
            Result<void> re = connect(path_, budget);
            if (!re.ok()) {
                last = re.error();
                continue; // transient; backoff below already paid
            }
            counters_.reconnects += 1;
        }

        std::int64_t remaining = deadline - wallclock::nowMs();
        if (remaining <= 0)
            break;
        last = attemptOnce(
            request, std::min(policy.perTryTimeoutMs, remaining),
            policy);

        std::uint64_t hint_ms = 0;
        if (!shouldRetry(last, hint_ms))
            return last;
        if (attempt + 1 >= attempts)
            break;

        std::uint64_t pause =
            backoff_ms + jitter.below(backoff_ms / 2 + 1);
        pause = std::max(pause, hint_ms);
        backoff_ms = std::min(backoff_ms * 2, backoff_cap);
        if (wallclock::nowMs() + static_cast<std::int64_t>(pause) >=
            deadline)
            break;
        counters_.retries += 1;
        wallclock::sleepMs(static_cast<std::int64_t>(pause));
    }
    return last;
}

} // namespace mmgpu::serve
