#include "serve/client.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/wallclock.hh"

namespace mmgpu::serve
{

ServeClient::~ServeClient()
{
    close();
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    pending_.clear();
}

Result<void>
ServeClient::connect(const std::string &socket_path,
                     std::int64_t timeout_ms)
{
    close();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        return SimError::config("socket path too long: " +
                                socket_path);
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    std::int64_t deadline = wallclock::nowMs() + timeout_ms;
    while (true) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return SimError::io(std::string("socket(): ") +
                                std::strerror(errno));
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            fd_ = fd;
            return Result<void>::success();
        }
        int err = errno;
        ::close(fd);
        // ENOENT/ECONNREFUSED while the daemon is still starting.
        if (wallclock::nowMs() >= deadline) {
            return SimError::io("connect(" + socket_path +
                                "): " + std::strerror(err));
        }
        wallclock::sleepMs(20);
    }
}

Result<void>
ServeClient::sendLine(const std::string &line)
{
    if (fd_ < 0)
        return SimError::io("client is not connected");
    std::string framed = line;
    framed.push_back('\n');
    std::size_t written = 0;
    while (written < framed.size()) {
        ssize_t n = ::send(fd_, framed.data() + written,
                           framed.size() - written, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            int err = errno;
            close();
            return SimError::io(std::string("send(): ") +
                                std::strerror(err));
        }
        written += static_cast<std::size_t>(n);
    }
    return Result<void>::success();
}

Result<std::string>
ServeClient::recvLine(std::int64_t timeout_ms)
{
    if (fd_ < 0)
        return SimError::io("client is not connected");
    std::int64_t deadline = wallclock::nowMs() + timeout_ms;
    while (true) {
        std::size_t nl = pending_.find('\n');
        if (nl != std::string::npos) {
            std::string line = pending_.substr(0, nl);
            pending_.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return line;
        }

        std::int64_t remaining = deadline - wallclock::nowMs();
        if (remaining <= 0)
            return SimError::timeout("no response within " +
                                     std::to_string(timeout_ms) +
                                     " ms");
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        int ready = ::poll(
            &pfd, 1,
            static_cast<int>(std::min<std::int64_t>(remaining, 100)));
        if (ready < 0 && errno != EINTR)
            return SimError::io(std::string("poll(): ") +
                                std::strerror(errno));
        if (ready <= 0)
            continue;

        char buffer[4096];
        ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            close();
            return SimError::io("connection closed by the daemon");
        }
        pending_.append(buffer, static_cast<std::size_t>(n));
    }
}

Result<Response>
ServeClient::roundTrip(const Request &request,
                       std::int64_t timeout_ms)
{
    if (Result<void> sent = sendLine(request.encode()); !sent.ok())
        return sent.error();
    Result<std::string> line = recvLine(timeout_ms);
    if (!line.ok())
        return line.error();
    return parseResponse(line.value());
}

} // namespace mmgpu::serve
