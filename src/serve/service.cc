#include "serve/service.hh"

#include <setjmp.h>

#include <algorithm>

#include "common/crash_guard.hh"
#include "common/logging.hh"
#include "common/wallclock.hh"
#include "trace/workloads.hh"

namespace mmgpu::serve
{

namespace
{

/** Circuit-breaker request classes: run-shaped vs. study-shaped. */
constexpr std::size_t breakerClasses = 2;

std::size_t
breakerClassOf(RequestType type)
{
    return type == RequestType::Study ? 1 : 0;
}

/**
 * Server-side failure classification: errors the *service* owns
 * (timeouts, crashes, injected faults, internal bugs) feed the
 * circuit breaker and retire pooled machines; client mistakes (bad
 * config, parse errors) do neither.
 */
bool
serverSideFailure(const Response &response)
{
    if (response.status != ResponseStatus::Error)
        return false;
    switch (response.code) {
      case ErrCode::Timeout:
      case ErrCode::InjectedFault:
      case ErrCode::Internal:
      case ErrCode::Unavailable:
        return true;
      default:
        return false;
    }
}

/** Latency observations retained for the percentile estimates. */
constexpr std::size_t latencyRingCap = 1024;

/** Watchdog / housekeeping poll granularity. */
constexpr std::int64_t pollMs = 50;

/**
 * Jobs a shard may hold beyond the one it is running. Kept at 1 so
 * the *admission* queue is where work waits: its depth bound stays
 * the real backpressure limit, and a job's priority keeps mattering
 * until the moment a shard can actually take it.
 */
constexpr std::size_t shardPendingCap = 1;

/** @p q-th percentile (0..1) of @p values; 0 when empty. */
double
percentile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1) + 0.5);
    rank = std::min(rank, values.size() - 1);
    std::nth_element(values.begin(), values.begin() + rank,
                     values.end());
    return values[rank];
}

} // namespace

namespace
{

AdmissionOptions
admissionOptionsFor(const ServeOptions &options)
{
    AdmissionOptions admission;
    admission.maxDepth = options.queueDepth;
    admission.quotaRatePerSec = options.quotaRatePerSec;
    admission.quotaBurst = options.quotaBurst;
    admission.shedWatermark = options.shedWatermark;
    return admission;
}

} // namespace

SimService::SimService(const ServeOptions &options,
                       const harness::StudyContext &context)
    : options_(options), context_(context), runner_(context),
      queue_(admissionOptionsFor(options)),
      router_(options.shards, options.routerSlack),
      supervisor_(options.supervisor),
      breaker_(breakerClasses, options.breaker),
      tel_(telemetry::TelemetryConfig{})
{
    mmgpu_assert(options.shards > 0, "service needs >= 1 shard");
    shardPending_.assign(options.shards, 0);
    for (std::size_t i = 0; i < options.shards; ++i) {
        shardSites_.push_back(
            prof::dynamicSite("serve/shard" + std::to_string(i)));
        shardQueues_.push_back(std::make_unique<ShardQueue>());
        busySinceMs_.push_back(
            std::make_unique<std::atomic<std::int64_t>>(0));
        cancel_.push_back(
            std::make_unique<std::atomic<bool>>(false));
        generation_.push_back(
            std::make_unique<std::atomic<std::uint64_t>>(0));
    }
    telemetry::CounterRegistry &reg = tel_.counters();
    cAccepted_ = &reg.counter("serve/accepted");
    cRejected_ = &reg.counter("serve/rejected");
    cCompleted_ = &reg.counter("serve/completed");
    cFailed_ = &reg.counter("serve/failed");
    cDedup_ = &reg.counter("serve/dedup_attached");
    cSims_ = &reg.counter("serve/sims_started");
    cCrashes_ = &reg.counter("serve/shard_crashes");
    cPoisonedAnswers_ = &reg.counter("serve/poisoned_answers");
    gQueueDepth_ = &reg.gauge("serve/queue_depth");
    gInflight_ = &reg.gauge("serve/inflight");
    gBusyShards_ = &reg.gauge("serve/busy_shards");
    gHitRate_ = &reg.gauge("serve/cache_hit_rate");
}

SimService::~SimService()
{
    beginShutdown();
    join();
}

void
SimService::start()
{
    mmgpu_assert(!started_, "SimService::start() called twice");
    started_ = true;

    if (harness::RunCache *cache = runner_.persistentCache()) {
        double seconds = options_.cacheFlushSec > 0.0
                             ? options_.cacheFlushSec
                             : harness::RunCache::
                                   autoFlushSecondsFromEnv();
        if (seconds > 0.0)
            cache->startAutoFlush(seconds);
    }

    dispatcher_ = std::thread([this] { dispatchLoop(); });
    for (std::size_t i = 0; i < options_.shards; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
    housekeeper_ = std::thread([this] { housekeepLoop(); });
}

void
SimService::submit(Request request, ResponseCallback done)
{
    switch (request.type) {
      case RequestType::Ping: {
        JsonValue result = JsonValue::object();
        result.set("pong", true);
        done(Response::ok(request.id, std::move(result)));
        return;
      }
      case RequestType::Stats:
        done(statsResponse(request.id));
        return;
      case RequestType::Prof:
        done(profResponse(request.id));
        return;
      case RequestType::Shutdown: {
        JsonValue result = JsonValue::object();
        result.set("stopping", true);
        done(Response::ok(request.id, std::move(result)));
        beginShutdown();
        return;
      }
      case RequestType::Run:
      case RequestType::Study:
        break;
      default:
        done(Response::error(
            request.id,
            SimError::internal("unhandled request type")));
        return;
    }

    const std::uint64_t identity = request.workIdentity();
    const std::string id = request.id;

    // Quarantined work killed a shard maxStrikes times already; a
    // fourth simulation attempt is how outages start. Answer with
    // the dedicated Poisoned code so clients know not to retry.
    if (supervisor_.quarantined(identity)) {
        {
            std::lock_guard<sync::Mutex> tlock(telMutex_);
            cPoisonedAnswers_->add();
        }
        done(Response::error(
            id, SimError::poisoned(
                    "work quarantined after repeated shard "
                    "crashes")));
        return;
    }

    // An open circuit means this request class is currently failing
    // server-side; shed instead of feeding the failure.
    std::size_t cls = breakerClassOf(request.type);
    std::int64_t breaker_now = wallclock::nowMs();
    if (breaker_.open(cls, static_cast<std::uint64_t>(breaker_now))) {
        {
            std::lock_guard<sync::Mutex> tlock(telMutex_);
            cRejected_->add();
        }
        done(Response::rejected(
            id,
            std::string("circuit open for ") +
                requestTypeName(request.type) + " requests",
            breaker_.retryAfterMs(
                cls, static_cast<std::uint64_t>(breaker_now))));
        return;
    }

    Admit admit = Admit::Accepted;
    std::uint64_t retry_after_ms = 0;
    {
        // One lock spans the attach-or-admit decision so a duplicate
        // arriving between "no entry" and "queued" cannot slip
        // through and simulate twice.
        std::lock_guard<sync::Mutex> lock(inflightMutex_);
        auto it = inflight_.find(identity);
        if (it != inflight_.end()) {
            it->second.sinks.emplace_back(id, std::move(done));
            std::lock_guard<sync::Mutex> tlock(telMutex_);
            cDedup_->add();
            return;
        }
        admit = queue_.tryPush(std::move(request), wallclock::nowMs(),
                               &retry_after_ms);
        if (admit == Admit::Accepted)
            inflight_[identity].sinks.emplace_back(id,
                                                   std::move(done));
    }
    if (admit == Admit::Accepted) {
        std::lock_guard<sync::Mutex> tlock(telMutex_);
        cAccepted_->add();
        return;
    }
    {
        std::lock_guard<sync::Mutex> tlock(telMutex_);
        cRejected_->add();
    }
    const char *reason = "admission queue is full";
    switch (admit) {
      case Admit::Stopped:
        reason = "service is shutting down";
        break;
      case Admit::QuotaExceeded:
        reason = "client quota exceeded";
        break;
      case Admit::Shedding:
        reason = "service overloaded; low-priority work shed";
        break;
      default:
        break;
    }
    done(Response::rejected(id, reason, retry_after_ms));
}

void
SimService::submitLine(const std::string &line, ResponseCallback done,
                       const std::string &default_client)
{
    Result<Request> parsed = parseRequest(line);
    if (!parsed.ok()) {
        done(Response::error(parseRequestId(line), parsed.error()));
        return;
    }
    if (parsed.value().client.empty())
        parsed.value().client = default_client;
    submit(std::move(parsed.value()), std::move(done));
}

Response
SimService::call(Request request)
{
    sync::Mutex mutex;
    sync::ConditionVariable cv;
    bool ready = false;
    Response out;
    submit(std::move(request), [&](const Response &response) {
        std::lock_guard<sync::Mutex> lock(mutex);
        out = response;
        ready = true;
        cv.notify_one();
    });
    std::unique_lock<sync::Mutex> lock(mutex);
    cv.wait(lock, [&] { return ready; });
    return out;
}

void
SimService::beginShutdown()
{
    if (shutdown_.exchange(true))
        return;
    queue_.stop();
    // Notify under the mutex waitShutdown() checks its predicate
    // with: a bare notify can land between that check and the block
    // and be lost, hanging the daemon's run loop forever.
    {
        std::lock_guard<sync::Mutex> lock(shutdownMutex_);
        shutdownCv_.notify_all();
    }
}

void
SimService::waitShutdown()
{
    std::unique_lock<sync::Mutex> lock(shutdownMutex_);
    shutdownCv_.wait(lock, [this] { return shutdown_.load(); });
}

void
SimService::join()
{
    if (!started_ || joined_)
        return;
    joined_ = true;
    if (dispatcher_.joinable())
        dispatcher_.join();
    for (std::thread &worker : workers_)
        if (worker.joinable())
            worker.join();
    stopHousekeeper_.store(true);
    if (housekeeper_.joinable())
        housekeeper_.join();

    // Every queued job has now drained. Defensive sweep: any sink
    // still attached (a crash re-queue that raced shutdown) gets an
    // Unavailable answer — a submitted request is answered exactly
    // once, even across a dying service.
    std::vector<std::uint64_t> leftover;
    {
        std::lock_guard<sync::Mutex> lock(inflightMutex_);
        for (const auto &[identity, entry] : inflight_)
            leftover.push_back(identity);
    }
    for (std::uint64_t identity : leftover) {
        answerSinks(identity,
                    Response::error(
                        std::string(),
                        SimError::unavailable(
                            "service shut down before the work "
                            "could run")));
    }

    // Stop ordering (shards drained above, socket closed by the
    // owner after we return): final cache flush *before* the daemon
    // exits, so the snapshot is complete and the WAL truncates to
    // empty — a restart replays nothing and loses nothing.
    if (harness::RunCache *cache = runner_.persistentCache()) {
        cache->stopAutoFlush();
        cache->flush();
    }
}

void
SimService::dispatchLoop()
{
    while (std::optional<Job> job = queue_.pop()) {
        // Injected chaos: stall the dispatcher once, right before
        // delivering job N. Clients see latency, never errors — the
        // admission queue absorbs the backlog.
        std::uint64_t dispatched = jobsDispatched_.fetch_add(1) + 1;
        if (options_.faultPlan != nullptr) {
            const fault::ServeFaultSpec &serve =
                options_.faultPlan->serve;
            if (serve.dispatcherStallAtJob != 0 &&
                dispatched == serve.dispatcherStallAtJob &&
                !dispatcherStalled_.exchange(true)) {
                warn("serve: injected dispatcher stall (",
                     serve.dispatcherStallMs, " ms)");
                wallclock::sleepMs(static_cast<std::int64_t>(
                    serve.dispatcherStallMs));
            }
        }
        // Route only over shards with a free prefetch slot, so one
        // full shard never head-of-line-blocks delivery to idle
        // ones (affinity then degrades to balance, which is the
        // right trade: a warm machine is worth queueing slack, not
        // starving the rest of the fleet). Block only when *every*
        // slot is taken — then the admission queue really is the
        // place work waits.
        std::size_t shard = 0;
        {
            std::unique_lock<sync::Mutex> lock(slotMutex_);
            std::vector<std::uint8_t> open(options_.shards, 0);
            slotCv_.wait(lock, [&] {
                bool any = false;
                for (std::size_t i = 0; i < options_.shards; ++i) {
                    open[i] =
                        shardPending_[i] < shardPendingCap ? 1 : 0;
                    any = any || open[i] != 0;
                }
                return any;
            });
            shard = router_.route(
                job->request.spec.machineIdentity(), &open);
            ++shardPending_[shard];
        }
        RoutedJob routed;
        routed.job = std::move(*job);
        routed.shard = shard;
        ShardQueue &sq = *shardQueues_[shard];
        {
            std::lock_guard<sync::Mutex> lock(sq.mutex);
            sq.jobs.push_back(std::move(routed));
            sq.cv.notify_all();
        }
    }
    // Admission stopped and drained: close every shard feed.
    for (auto &sq : shardQueues_) {
        {
            std::lock_guard<sync::Mutex> lock(sq->mutex);
            sq->closed = true;
            sq->cv.notify_all();
        }
    }
}

void
SimService::workerLoop(std::size_t shard)
{
    ShardQueue &sq = *shardQueues_[shard];
    while (true) {
        RoutedJob routed;
        {
            std::unique_lock<sync::Mutex> lock(sq.mutex);
            sq.cv.wait(lock, [&sq] {
                return !sq.jobs.empty() || sq.closed;
            });
            if (sq.jobs.empty())
                return; // closed and drained
            routed = std::move(sq.jobs.front());
            sq.jobs.pop_front();
        }
        {
            // A prefetch slot freed: tell the dispatcher.
            std::lock_guard<sync::Mutex> lock(slotMutex_);
            --shardPending_[shard];
            slotCv_.notify_all();
        }
        execute(shard, routed.job);
    }
}

void
SimService::execute(std::size_t shard, const Job &job)
{
    // New job epoch: the watchdog cancels only against the
    // generation it observed, so a cancel aimed at the previous job
    // cannot land on this one.
    generation_[shard]->fetch_add(1);
    cancel_[shard]->store(false);
    busySinceMs_[shard]->store(wallclock::nowMs());

    std::int64_t job_start_ns = wallclock::nowNs();
    Response response;
    std::string crash_msg;
    bool crashed = runGuarded(shard, job, response, crash_msg);
    auto job_ns = static_cast<std::uint64_t>(wallclock::nowNs() -
                                             job_start_ns);
    shardSites_[shard]->addSample(job_ns, job_ns);

    if (crashed) {
        crashRecover(shard, job, crash_msg);
        return;
    }

    busySinceMs_[shard]->store(0);
    generation_[shard]->fetch_add(1); // idle epoch
    router_.release(shard);

    // A server-side failure (timeout, injected fault, internal
    // error) may have left the job's pooled machines mid-simulation;
    // retire them so the next hit rebuilds clean state. The breaker
    // also learns about it, while client mistakes count as success.
    bool failure = serverSideFailure(response);
    if (failure)
        runner_.invalidateMachines(job.request.spec.config());
    else
        supervisor_.onHealthy(static_cast<unsigned>(shard));
    breaker_.record(
        breakerClassOf(job.request.type), !failure,
        static_cast<std::uint64_t>(wallclock::nowMs()));

    std::int64_t served_ms = wallclock::nowMs() - job.admittedMs;
    queue_.noteServiced(served_ms);

    std::vector<std::pair<std::string, ResponseCallback>> sinks;
    {
        std::lock_guard<sync::Mutex> lock(inflightMutex_);
        auto it = inflight_.find(job.request.workIdentity());
        if (it != inflight_.end()) {
            sinks = std::move(it->second.sinks);
            inflight_.erase(it);
        }
    }
    {
        // Count *requests answered*, not jobs executed: every
        // dedup-attached subscriber of this job gets a response.
        std::lock_guard<sync::Mutex> tlock(telMutex_);
        if (response.status == ResponseStatus::Ok)
            cCompleted_->add(static_cast<double>(sinks.size()));
        else
            cFailed_->add(static_cast<double>(sinks.size()));
    }
    recordLatency(static_cast<double>(served_ms));
    for (auto &[sink_id, sink] : sinks) {
        Response copy = response;
        copy.id = sink_id;
        sink(copy);
    }
}

bool
SimService::runGuarded(std::size_t shard, const Job &job,
                       Response &response, std::string &crash_msg)
{
    // The trap's fields are written through the thread-local active
    // pointer (they escape), so reading them after the siglongjmp is
    // well-defined in practice; locals of the *interrupted* frames
    // (executeRun and below) are abandoned — pooled machines, the
    // one resource that matters, are retired by crashRecover().
    CrashTrap trap;
    if (sigsetjmp(trap.jumpBuffer(), 0) == 0) {
        std::uint64_t job_index = jobsExecuted_.fetch_add(1) + 1;
        maybeInjectCrash(job_index, job.request);
        response = job.request.type == RequestType::Run
                       ? executeRun(job.request, cancel_[shard].get())
                       : executeStudy(job.request,
                                      cancel_[shard].get());
        return false;
    }
    crash_msg = trap.message();
    return true;
}

void
SimService::maybeInjectCrash(std::uint64_t job_index,
                             const Request &request)
{
    if (options_.faultPlan == nullptr)
        return;
    const fault::ServeFaultSpec &serve = options_.faultPlan->serve;
    if (serve.shardCrashEveryJobs != 0 &&
        job_index % serve.shardCrashEveryJobs == 0) {
        mmgpu_panic("injected serve chaos: shard crash at job ",
                    job_index);
    }
    if (!serve.crashPoints.empty() &&
        fault::HarnessFaultSpec::matches(serve.crashPoints,
                                         request.spec.config().name,
                                         request.spec.workload)) {
        mmgpu_panic("injected serve chaos: crash point '",
                    request.spec.workload, "'");
    }
}

void
SimService::crashRecover(std::size_t shard, const Job &job,
                         const std::string &crash_msg)
{
    busySinceMs_[shard]->store(0);
    generation_[shard]->fetch_add(1); // idle epoch
    router_.release(shard);

    // Crash isolation: whatever machine the job was driving is in an
    // unknown state. Retire every pooled machine of its config so no
    // later run inherits the wreckage (the checked-out one was
    // abandoned by the longjmp and never returns to the pool).
    runner_.invalidateMachines(job.request.spec.config());

    const std::uint64_t identity = job.request.workIdentity();
    ShardSupervisor::Outcome outcome = supervisor_.onCrash(
        static_cast<unsigned>(shard), identity, crash_msg,
        static_cast<std::uint64_t>(wallclock::nowMs()));
    {
        std::lock_guard<sync::Mutex> tlock(telMutex_);
        cCrashes_->add();
    }
    breaker_.record(breakerClassOf(job.request.type), false,
                    static_cast<std::uint64_t>(wallclock::nowMs()));
    warn("serve: shard ", shard, " crashed (strike ", outcome.strike,
         "): ", crash_msg);

    bool answered = false;
    if (outcome.verdict == CrashVerdict::Requeue) {
        // Transparent retry: the sinks stay attached under the work
        // identity, so when the re-queued job completes on a healthy
        // shard the clients get their answers as if nothing died.
        Job retry = job;
        if (!queue_.requeue(std::move(retry))) {
            // Shutting down: nothing will run it; answer now.
            answerSinks(identity,
                        Response::error(
                            job.request.id,
                            SimError::unavailable(
                                "shard crashed during shutdown: " +
                                crash_msg)));
            answered = true;
        }
    } else {
        {
            std::lock_guard<sync::Mutex> tlock(telMutex_);
            cPoisonedAnswers_->add();
        }
        answerSinks(identity,
                    Response::error(
                        job.request.id,
                        SimError::poisoned(
                            "work quarantined after " +
                            std::to_string(outcome.strike) +
                            " shard crashes: " + crash_msg)));
        answered = true;
    }
    if (answered) {
        recordLatency(static_cast<double>(wallclock::nowMs() -
                                          job.admittedMs));
    }

    // The logical shard restart: sleep the supervisor-assigned
    // backoff before taking more work, so a crash-looping shard
    // cannot burn the machine pool at full speed.
    wallclock::sleepMs(static_cast<std::int64_t>(outcome.backoffMs));
}

void
SimService::answerSinks(std::uint64_t identity,
                        const Response &response)
{
    std::vector<std::pair<std::string, ResponseCallback>> sinks;
    {
        std::lock_guard<sync::Mutex> lock(inflightMutex_);
        auto it = inflight_.find(identity);
        if (it != inflight_.end()) {
            sinks = std::move(it->second.sinks);
            inflight_.erase(it);
        }
    }
    {
        std::lock_guard<sync::Mutex> tlock(telMutex_);
        cFailed_->add(static_cast<double>(sinks.size()));
    }
    for (auto &[sink_id, sink] : sinks) {
        Response copy = response;
        copy.id = sink_id;
        sink(copy);
    }
}

Response
SimService::executeRun(const Request &request,
                       const std::atomic<bool> *cancel)
{
    const RunSpec &spec = request.spec;
    sim::GpuConfig config = spec.config();
    if (Result<void> check = config.check(); !check.ok())
        return Response::error(request.id, check.error());
    std::optional<trace::KernelProfile> profile =
        trace::findWorkload(spec.workload);
    if (!profile) {
        return Response::error(
            request.id, SimError::config("unknown workload '" +
                                         spec.workload + "'"));
    }
    if (!runner_.cached(config, *profile, spec.linkEnergyScale,
                        spec.constGrowthOverride)) {
        std::lock_guard<sync::Mutex> tlock(telMutex_);
        cSims_->add();
    }
    Result<const harness::RunOutcome *> outcome = runner_.tryRun(
        config, *profile, spec.linkEnergyScale,
        spec.constGrowthOverride, cancel);
    if (!outcome.ok())
        return Response::error(request.id, outcome.error());
    return Response::ok(request.id, encodeOutcome(*outcome.value()));
}

Response
SimService::executeStudy(const Request &request,
                         const std::atomic<bool> *cancel)
{
    const RunSpec &spec = request.spec;
    sim::GpuConfig config = spec.config();
    if (Result<void> check = config.check(); !check.ok())
        return Response::error(request.id, check.error());

    std::vector<trace::KernelProfile> workloads;
    if (spec.workload == "all") {
        workloads = trace::scalingWorkloads();
    } else {
        std::optional<trace::KernelProfile> profile =
            trace::findWorkload(spec.workload);
        if (!profile) {
            return Response::error(
                request.id, SimError::config("unknown workload '" +
                                             spec.workload + "'"));
        }
        workloads.push_back(std::move(*profile));
    }

    // Pre-run every point through the error-isolating tryRun() path
    // so one poisoned point yields an error *response* instead of
    // killing the daemon inside scalingStudy()'s fatal-on-error
    // aggregation. Afterwards scalingStudy() reads pure memo hits,
    // so its aggregation is bit-identical to the in-process path.
    const sim::GpuConfig baseline = sim::baselineConfig();
    for (const trace::KernelProfile &profile : workloads) {
        if (!runner_.cached(baseline, profile)) {
            std::lock_guard<sync::Mutex> tlock(telMutex_);
            cSims_->add();
        }
        Result<const harness::RunOutcome *> one =
            runner_.tryRun(baseline, profile, 1.0, -1.0, cancel);
        if (!one.ok())
            return Response::error(request.id, one.error());
        if (!runner_.cached(config, profile, spec.linkEnergyScale,
                            spec.constGrowthOverride)) {
            std::lock_guard<sync::Mutex> tlock(telMutex_);
            cSims_->add();
        }
        Result<const harness::RunOutcome *> scaled = runner_.tryRun(
            config, profile, spec.linkEnergyScale,
            spec.constGrowthOverride, cancel);
        if (!scaled.ok())
            return Response::error(request.id, scaled.error());
    }

    std::vector<harness::ScalingPoint> points = harness::scalingStudy(
        runner_, config, workloads, spec.linkEnergyScale,
        spec.constGrowthOverride);
    return Response::ok(request.id, encodeStudy(config, points));
}

Response
SimService::statsResponse(const std::string &id)
{
    ServiceStats s = stats();
    JsonValue doc = JsonValue::object();
    doc.set("accepted", s.accepted);
    doc.set("rejected", s.rejected);
    doc.set("completed", s.completed);
    doc.set("failed", s.failed);
    doc.set("dedup-attached", s.dedupAttached);
    doc.set("sims-started", s.simulationsStarted);
    doc.set("affinity-hits", s.affinityHits);
    doc.set("queue-depth", s.queueDepth);
    doc.set("inflight", s.inflight);
    doc.set("busy-shards", s.busyShards);
    doc.set("shards", s.shards);
    doc.set("cache-hit-rate", s.cacheHitRate);
    doc.set("latency-p50-ms", s.latencyP50Ms);
    doc.set("latency-p95-ms", s.latencyP95Ms);
    doc.set("quota-rejected", s.quotaRejected);
    doc.set("shed", s.shed);
    doc.set("crashes", s.crashes);
    doc.set("requeues", s.requeues);
    doc.set("poisonings", s.poisonings);
    doc.set("quarantined", s.quarantined);
    doc.set("breaker-trips", s.breakerTrips);
    JsonValue series = JsonValue::array();
    for (const StatsSample &sample : timeseries()) {
        JsonValue p = JsonValue::object();
        p.set("t-ms", static_cast<long long>(sample.tMs));
        p.set("queue-depth", sample.queueDepth);
        p.set("busy-shards", sample.busyShards);
        p.set("inflight", sample.inflight);
        p.set("cache-hit-rate", sample.cacheHitRate);
        p.set("crashes", sample.crashes);
        series.push(std::move(p));
    }
    doc.set("timeseries", std::move(series));
    // Last few supervision events, so an operator can see *what*
    // crashed and what the supervisor did about it.
    JsonValue events = JsonValue::array();
    for (const SupervisorEvent &event : supervisor_.events()) {
        JsonValue e = JsonValue::object();
        e.set("t-ms", static_cast<double>(event.wallMs));
        e.set("shard", event.shard);
        e.set("strike", event.strike);
        e.set("verdict", event.verdict == CrashVerdict::Poison
                             ? "poison"
                             : "requeue");
        e.set("message", event.message);
        events.push(std::move(e));
    }
    doc.set("supervisor-events", std::move(events));
    {
        std::lock_guard<sync::Mutex> lock(frontendMutex_);
        if (frontendInfo_.isObject())
            doc.set("frontend", frontendInfo_);
    }
    // Per-shard job-time aggregates from the profiler's
    // "serve/shard<N>" sites (sampled unconditionally in execute()).
    JsonValue shards = JsonValue::object();
    for (const prof::SiteSnapshot &site : prof::snapshot()) {
        if (site.label.rfind("serve/shard", 0) != 0)
            continue;
        JsonValue one = JsonValue::object();
        one.set("jobs", site.calls);
        one.set("busy-ms",
                static_cast<double>(site.inclusiveNs) / 1.0e6);
        shards.set(site.label, std::move(one));
    }
    doc.set("prof-shards", std::move(shards));
    return Response::ok(id, std::move(doc));
}

Response
SimService::profResponse(const std::string &id)
{
    JsonValue doc = JsonValue::object();
    doc.set("profiling-enabled", prof::enabled());
    JsonValue sites = JsonValue::array();
    for (const prof::SiteSnapshot &site : prof::snapshot()) {
        JsonValue one = JsonValue::object();
        one.set("label", site.label);
        one.set("calls", site.calls);
        one.set("inclusive-ns", site.inclusiveNs);
        one.set("exclusive-ns", site.exclusiveNs);
        if (site.count != 0)
            one.set("count", site.count);
        sites.push(std::move(one));
    }
    doc.set("sites", std::move(sites));
    return Response::ok(id, std::move(doc));
}

void
SimService::recordLatency(double ms)
{
    std::lock_guard<sync::Mutex> lock(statsMutex_);
    if (latencyRing_.size() < latencyRingCap)
        latencyRing_.push_back(ms);
    else
        latencyRing_[latencyNext_ % latencyRingCap] = ms;
    ++latencyNext_;
    ++latencyCount_;
}

double
SimService::cacheHitRate() const
{
    harness::RunCache *cache = runner_.persistentCache();
    if (cache == nullptr)
        return 0.0;
    double hits = static_cast<double>(cache->hits());
    double misses = static_cast<double>(cache->misses());
    double total = hits + misses;
    return total > 0.0 ? hits / total : 0.0;
}

std::size_t
SimService::busyShardCount() const
{
    std::size_t busy = 0;
    for (const auto &since : busySinceMs_)
        if (since->load() != 0)
            ++busy;
    return busy;
}

ServiceStats
SimService::stats() const
{
    ServiceStats s;
    {
        std::lock_guard<sync::Mutex> tlock(telMutex_);
        s.accepted = static_cast<std::uint64_t>(cAccepted_->value);
        s.rejected = static_cast<std::uint64_t>(cRejected_->value);
        s.completed = static_cast<std::uint64_t>(cCompleted_->value);
        s.failed = static_cast<std::uint64_t>(cFailed_->value);
        s.dedupAttached = static_cast<std::uint64_t>(cDedup_->value);
        s.simulationsStarted =
            static_cast<std::uint64_t>(cSims_->value);
    }
    s.affinityHits = router_.affinityHits();
    s.queueDepth = queue_.depth();
    {
        std::lock_guard<sync::Mutex> lock(inflightMutex_);
        s.inflight = inflight_.size();
    }
    s.busyShards = busyShardCount();
    s.shards = options_.shards;
    s.cacheHitRate = cacheHitRate();
    {
        std::lock_guard<sync::Mutex> lock(statsMutex_);
        s.latencyP50Ms = percentile(latencyRing_, 0.50);
        s.latencyP95Ms = percentile(latencyRing_, 0.95);
    }
    s.quotaRejected = queue_.quotaRejected();
    s.shed = queue_.shedRejected();
    SupervisorStats sup = supervisor_.stats();
    s.crashes = sup.crashes;
    s.requeues = sup.requeues;
    s.poisonings = sup.poisonings;
    s.quarantined = sup.quarantined;
    s.breakerTrips = breaker_.trips();
    return s;
}

void
SimService::setFrontendInfo(JsonValue info)
{
    std::lock_guard<sync::Mutex> lock(frontendMutex_);
    frontendInfo_ = std::move(info);
}

std::vector<StatsSample>
SimService::timeseries() const
{
    std::lock_guard<sync::Mutex> lock(statsMutex_);
    return {samples_.begin(), samples_.end()};
}

void
SimService::housekeepLoop()
{
    std::int64_t lastSample = wallclock::nowMs();
    while (!stopHousekeeper_.load()) {
        wallclock::sleepMs(pollMs);

        // Watchdog: cancel any shard stuck past its budget. tryRun
        // polls the flag at its cooperative points (injected hangs),
        // so a hung point comes back as a timeout error response and
        // the shard moves on — blast radius is one request.
        if (options_.watchdogSeconds > 0.0) {
            std::int64_t now = wallclock::nowMs();
            std::int64_t budget = static_cast<std::int64_t>(
                options_.watchdogSeconds * 1000.0);
            for (std::size_t i = 0; i < busySinceMs_.size(); ++i) {
                std::uint64_t gen = generation_[i]->load();
                std::int64_t since = busySinceMs_[i]->load();
                if (since == 0 || now - since <= budget)
                    continue;
                if (generation_[i]->load() != gen)
                    continue; // job turned over mid-observation
                cancel_[i]->store(true);
                // If a fresh job slipped in between the check and
                // the store, retract: a job milliseconds old cannot
                // be over budget, and it will be re-judged against
                // its own epoch on a later tick.
                if (generation_[i]->load() != gen)
                    cancel_[i]->store(false);
            }
        }

        std::int64_t now = wallclock::nowMs();
        if (now - lastSample < options_.sampleMs)
            continue;
        lastSample = now;

        StatsSample sample;
        sample.tMs = now;
        sample.queueDepth = queue_.depth();
        sample.busyShards = busyShardCount();
        {
            std::lock_guard<sync::Mutex> lock(inflightMutex_);
            sample.inflight = inflight_.size();
        }
        sample.cacheHitRate = cacheHitRate();
        sample.crashes = supervisor_.stats().crashes;
        {
            std::lock_guard<sync::Mutex> lock(statsMutex_);
            samples_.push_back(sample);
            while (samples_.size() > options_.timeseriesCap)
                samples_.pop_front();
        }
        {
            std::lock_guard<sync::Mutex> tlock(telMutex_);
            gQueueDepth_->set(
                static_cast<double>(sample.queueDepth));
            gInflight_->set(static_cast<double>(sample.inflight));
            gBusyShards_->set(
                static_cast<double>(sample.busyShards));
            gHitRate_->set(sample.cacheHitRate);
        }
    }
}

} // namespace mmgpu::serve
