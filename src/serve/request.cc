#include "serve/request.hh"

#include <cstdio>
#include <cstdlib>

#include "common/hash.hh"
#include "noc/topology_registry.hh"

namespace mmgpu::serve
{

namespace
{

/** Schema salt for the work/machine identity hashes. */
constexpr std::uint64_t identitySalt = 0x5e27e001;

/** Protocol spelling of a bandwidth setting ("2x", not "2x-BW"). */
const char *
bwProtocolName(sim::BwSetting bw)
{
    switch (bw) {
      case sim::BwSetting::Bw1x:
        return "1x";
      case sim::BwSetting::Bw4x:
        return "4x";
      default:
        return "2x";
    }
}

Result<RequestType>
typeFromName(const std::string &name)
{
    if (name == "ping")
        return RequestType::Ping;
    if (name == "run")
        return RequestType::Run;
    if (name == "study")
        return RequestType::Study;
    if (name == "stats")
        return RequestType::Stats;
    if (name == "prof")
        return RequestType::Prof;
    if (name == "shutdown")
        return RequestType::Shutdown;
    return SimError::parse("unknown request type '" + name + "'");
}

/** Fetch an optional string field; empty optional-style via ok flag. */
Result<void>
readString(const JsonValue &doc, const char *key, std::string &out)
{
    const JsonValue *value = doc.find(key);
    if (value == nullptr)
        return Result<void>::success();
    if (!value->isString())
        return SimError::parse(std::string("field '") + key +
                               "' must be a string");
    out = value->asString();
    return Result<void>::success();
}

Result<void>
readNumber(const JsonValue &doc, const char *key, double &out)
{
    const JsonValue *value = doc.find(key);
    if (value == nullptr)
        return Result<void>::success();
    if (!value->isNumber())
        return SimError::parse(std::string("field '") + key +
                               "' must be a number");
    out = value->asNumber();
    return Result<void>::success();
}

} // namespace

const char *
requestTypeName(RequestType type)
{
    switch (type) {
      case RequestType::Ping:
        return "ping";
      case RequestType::Run:
        return "run";
      case RequestType::Study:
        return "study";
      case RequestType::Stats:
        return "stats";
      case RequestType::Prof:
        return "prof";
      case RequestType::Shutdown:
        return "shutdown";
      default:
        return "unknown";
    }
}

sim::GpuConfig
RunSpec::config() const
{
    if (gpms <= 1)
        return sim::baselineConfig();
    sim::IntegrationDomain dom =
        domain < 0    ? sim::defaultDomainFor(bw)
        : domain == 0 ? sim::IntegrationDomain::OnPackage
                      : sim::IntegrationDomain::OnBoard;
    sim::GpuConfig config =
        sim::multiGpmConfig(gpms, bw, topology, dom);
    config.placement = placement;
    config.ctaScheduling = ctaSched;
    return config;
}

std::uint64_t
RunSpec::machineIdentity() const
{
    // Mirrors the harness MachinePool key: the fields that shape the
    // built machine, not the workload or the energy knobs.
    sim::GpuConfig built = config();
    Fnv1a hash(identitySalt);
    hash.add(built.name);
    hash.add(built.topology);
    hash.add(built.placement);
    hash.add(built.ctaScheduling);
    hash.add(built.linkFaults.digest());
    return hash.digest();
}

std::uint64_t
Request::workIdentity() const
{
    Fnv1a hash(identitySalt);
    hash.add(type);
    hash.add(spec.workload);
    hash.add(spec.gpms);
    hash.add(spec.bw);
    hash.add(spec.topology);
    hash.add(static_cast<std::uint64_t>(spec.domain + 1));
    hash.add(spec.placement);
    hash.add(spec.ctaSched);
    hash.add(spec.linkEnergyScale);
    hash.add(spec.constGrowthOverride);
    return hash.digest();
}

std::string
Request::encode() const
{
    JsonValue doc = JsonValue::object();
    doc.set("type", requestTypeName(type));
    if (!id.empty())
        doc.set("id", id);
    if (!client.empty())
        doc.set("client", client);
    if (type == RequestType::Run || type == RequestType::Study) {
        doc.set("workload", spec.workload);
        doc.set("gpms", spec.gpms);
        doc.set("bw", bwProtocolName(spec.bw));
        doc.set("topology", noc::topologyName(spec.topology));
        if (spec.domain >= 0)
            doc.set("domain",
                    spec.domain == 0 ? "package" : "board");
        doc.set("placement",
                sim::placementPolicyName(spec.placement));
        doc.set("cta-sched", sm::ctaSchedPolicyName(spec.ctaSched));
        if (spec.linkEnergyScale != 1.0)
            doc.set("link-energy-scale", spec.linkEnergyScale);
        if (spec.constGrowthOverride != -1.0)
            doc.set("const-growth-override",
                    spec.constGrowthOverride);
    }
    if (priority != 1)
        doc.set("priority", priority);
    return doc.dumpCompact();
}

Result<Request>
parseRequest(const std::string &line)
{
    if (line.size() > maxRequestBytes) {
        return SimError::parse(
            "request exceeds " + std::to_string(maxRequestBytes) +
            " bytes");
    }
    std::optional<JsonValue> doc = parseJson(line);
    if (!doc)
        return SimError::parse("request is not valid JSON");
    if (!doc->isObject())
        return SimError::parse("request must be a JSON object");

    Request request;
    std::string type_name;
    if (Result<void> r = readString(*doc, "type", type_name); !r.ok())
        return r.error();
    if (type_name.empty())
        return SimError::parse("request lacks a 'type' field");
    Result<RequestType> type = typeFromName(type_name);
    if (!type.ok())
        return type.error();
    request.type = type.value();

    if (Result<void> r = readString(*doc, "id", request.id); !r.ok())
        return r.error();

    if (Result<void> r = readString(*doc, "client", request.client);
        !r.ok())
        return r.error();

    double priority = 1.0;
    if (Result<void> r = readNumber(*doc, "priority", priority);
        !r.ok())
        return r.error();
    if (priority < 0.0 || priority > 2.0 ||
        priority != static_cast<double>(static_cast<int>(priority))) {
        return SimError::parse(
            "priority must be an integer in [0, 2]");
    }
    request.priority = static_cast<int>(priority);

    RunSpec &spec = request.spec;
    if (Result<void> r = readString(*doc, "workload", spec.workload);
        !r.ok())
        return r.error();

    double gpms = static_cast<double>(spec.gpms);
    if (Result<void> r = readNumber(*doc, "gpms", gpms); !r.ok())
        return r.error();
    if (gpms < 1.0 || gpms > 4096.0 ||
        gpms != static_cast<double>(static_cast<unsigned>(gpms))) {
        return SimError::parse(
            "gpms must be a small positive integer");
    }
    spec.gpms = static_cast<unsigned>(gpms);

    std::string text;
    if (Result<void> r = readString(*doc, "bw", text); !r.ok())
        return r.error();
    if (!text.empty()) {
        if (text == "1x")
            spec.bw = sim::BwSetting::Bw1x;
        else if (text == "2x")
            spec.bw = sim::BwSetting::Bw2x;
        else if (text == "4x")
            spec.bw = sim::BwSetting::Bw4x;
        else
            return SimError::parse("bw must be 1x, 2x, or 4x");
    }

    text.clear();
    if (Result<void> r = readString(*doc, "topology", text); !r.ok())
        return r.error();
    if (!text.empty()) {
        const noc::TopologyDesc *topo = noc::topologyFromName(text);
        if (topo == nullptr || topo->id == noc::Topology::None)
            return SimError::parse("topology must be one of: " +
                                   noc::topologyNameList());
        spec.topology = topo->id;
    }

    text.clear();
    if (Result<void> r = readString(*doc, "domain", text); !r.ok())
        return r.error();
    if (!text.empty()) {
        if (text == "package")
            spec.domain = 0;
        else if (text == "board")
            spec.domain = 1;
        else
            return SimError::parse(
                "domain must be package or board");
    }

    text.clear();
    if (Result<void> r = readString(*doc, "placement", text); !r.ok())
        return r.error();
    if (!text.empty()) {
        if (text == "first-touch")
            spec.placement = sim::PlacementPolicy::FirstTouchOwner;
        else if (text == "striped")
            spec.placement = sim::PlacementPolicy::Striped;
        else if (text == "locality")
            spec.placement = sim::PlacementPolicy::Locality;
        else
            return SimError::parse(
                "placement must be first-touch, striped, or"
                " locality");
    }

    text.clear();
    if (Result<void> r = readString(*doc, "cta-sched", text); !r.ok())
        return r.error();
    if (!text.empty()) {
        if (text == "distributed")
            spec.ctaSched = sm::CtaSchedPolicy::Distributed;
        else if (text == "round-robin")
            spec.ctaSched = sm::CtaSchedPolicy::RoundRobin;
        else
            return SimError::parse(
                "cta-sched must be distributed or round-robin");
    }

    if (Result<void> r = readNumber(*doc, "link-energy-scale",
                                    spec.linkEnergyScale);
        !r.ok())
        return r.error();
    if (!(spec.linkEnergyScale >= 0.0))
        return SimError::parse(
            "link-energy-scale must be non-negative");
    if (Result<void> r = readNumber(*doc, "const-growth-override",
                                    spec.constGrowthOverride);
        !r.ok())
        return r.error();

    return request;
}

std::string
parseRequestId(const std::string &line)
{
    if (line.size() > maxRequestBytes)
        return {};
    std::optional<JsonValue> doc = parseJson(line);
    if (!doc)
        return {};
    const JsonValue *id = doc->find("id");
    return (id != nullptr && id->isString()) ? id->asString()
                                             : std::string();
}

Response
Response::ok(std::string id, JsonValue result)
{
    Response response;
    response.id = std::move(id);
    response.status = ResponseStatus::Ok;
    response.result = std::move(result);
    return response;
}

Response
Response::error(std::string id, const SimError &error)
{
    Response response;
    response.id = std::move(id);
    response.status = ResponseStatus::Error;
    response.code = error.code;
    response.message = error.message;
    return response;
}

Response
Response::rejected(std::string id, std::string reason,
                   std::uint64_t retry_after_ms)
{
    Response response;
    response.id = std::move(id);
    response.status = ResponseStatus::Rejected;
    response.message = std::move(reason);
    response.retryAfterMs = retry_after_ms;
    return response;
}

std::string
Response::encode() const
{
    JsonValue doc = JsonValue::object();
    doc.set("id", id);
    switch (status) {
      case ResponseStatus::Ok:
        doc.set("status", "ok");
        doc.set("result", result);
        break;
      case ResponseStatus::Error:
        doc.set("status", "error");
        doc.set("code", errCodeName(code));
        doc.set("message", message);
        break;
      case ResponseStatus::Rejected:
        doc.set("status", "rejected");
        doc.set("message", message);
        if (retryAfterMs != 0)
            doc.set("retry-after-ms",
                    static_cast<double>(retryAfterMs));
        break;
    }
    return doc.dumpCompact();
}

Result<Response>
parseResponse(const std::string &line)
{
    std::optional<JsonValue> doc = parseJson(line);
    if (!doc || !doc->isObject())
        return SimError::parse("response is not a JSON object");
    Response response;
    const JsonValue *id = doc->find("id");
    if (id != nullptr && id->isString())
        response.id = id->asString();
    const JsonValue *status = doc->find("status");
    if (status == nullptr || !status->isString())
        return SimError::parse("response lacks a 'status' field");
    const std::string &name = status->asString();
    if (name == "ok") {
        response.status = ResponseStatus::Ok;
        if (const JsonValue *result = doc->find("result"))
            response.result = *result;
    } else if (name == "error" || name == "rejected") {
        response.status = name == "error" ? ResponseStatus::Error
                                          : ResponseStatus::Rejected;
        const JsonValue *message = doc->find("message");
        if (message != nullptr && message->isString())
            response.message = message->asString();
        const JsonValue *code = doc->find("code");
        if (code != nullptr && code->isString()) {
            for (ErrCode candidate :
                 {ErrCode::Config, ErrCode::Io, ErrCode::Parse,
                  ErrCode::Timeout, ErrCode::InjectedFault,
                  ErrCode::Unavailable, ErrCode::Poisoned,
                  ErrCode::Internal}) {
                if (code->asString() == errCodeName(candidate)) {
                    response.code = candidate;
                    break;
                }
            }
        }
        const JsonValue *retry = doc->find("retry-after-ms");
        if (retry != nullptr && retry->isNumber() &&
            retry->asNumber() >= 0.0) {
            response.retryAfterMs =
                static_cast<std::uint64_t>(retry->asNumber());
        }
    } else {
        return SimError::parse("unknown response status '" + name +
                               "'");
    }
    return response;
}

std::string
encodeHexDouble(double value)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%a", value);
    return buffer;
}

bool
decodeHexDouble(const JsonValue *value, double &out)
{
    if (value == nullptr || !value->isString())
        return false;
    const std::string &text = value->asString();
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return !text.empty() && end == text.c_str() + text.size();
}

JsonValue
encodeOutcome(const harness::RunOutcome &outcome)
{
    const sim::PerfResult &perf = outcome.perf;
    const joule::EnergyBreakdown &energy = outcome.energy;
    JsonValue doc = JsonValue::object();
    doc.set("config", perf.configName);
    doc.set("workload", perf.workloadName);
    doc.set("exec-seconds", encodeHexDouble(perf.execSeconds));
    doc.set("exec-cycles", encodeHexDouble(perf.execCycles));
    doc.set("ipc", perf.ipc());
    doc.set("remote-fraction", perf.remoteFraction());
    JsonValue e = JsonValue::object();
    e.set("sm-busy", encodeHexDouble(energy.smBusy));
    e.set("sm-idle", encodeHexDouble(energy.smIdle));
    e.set("constant", encodeHexDouble(energy.constant));
    e.set("shm-to-reg", encodeHexDouble(energy.shmToReg));
    e.set("l1-to-reg", encodeHexDouble(energy.l1ToReg));
    e.set("l2-to-l1", encodeHexDouble(energy.l2ToL1));
    e.set("dram-to-l2", encodeHexDouble(energy.dramToL2));
    e.set("inter-module", encodeHexDouble(energy.interModule));
    e.set("total", encodeHexDouble(energy.total()));
    doc.set("energy-joules", std::move(e));
    return doc;
}

JsonValue
encodeStudy(const sim::GpuConfig &config,
            const std::vector<harness::ScalingPoint> &points)
{
    JsonValue doc = JsonValue::object();
    doc.set("config", config.name);
    doc.set("gpms", config.gpmCount);
    JsonValue list = JsonValue::array();
    for (const harness::ScalingPoint &point : points) {
        JsonValue p = JsonValue::object();
        p.set("workload", point.workload);
        p.set("class", trace::workloadClassName(point.cls));
        p.set("speedup", encodeHexDouble(point.speedup));
        p.set("energy-ratio", encodeHexDouble(point.energyRatio));
        p.set("edpse", encodeHexDouble(point.edpse));
        p.set("ed2pse", encodeHexDouble(point.ed2pse));
        p.set("perf-per-watt-se",
              encodeHexDouble(point.perfPerWattSE));
        list.push(std::move(p));
    }
    doc.set("points", std::move(list));
    return doc;
}

} // namespace mmgpu::serve
