/**
 * @file
 * Client side of the mmgpu_serve socket protocol.
 *
 * A thin blocking connection: connect to the daemon's unix socket,
 * send request lines, read response lines. Used by the mmgpu_client
 * binary, the service tests, and the serve bench. Each ServeClient
 * is single-threaded (no internal locking); open several clients for
 * concurrent traffic.
 */

#ifndef MMGPU_SERVE_CLIENT_HH
#define MMGPU_SERVE_CLIENT_HH

#include <string>

#include "common/result.hh"
#include "serve/request.hh"

namespace mmgpu::serve
{

/** One blocking client connection. */
class ServeClient
{
  public:
    ServeClient() = default;

    /** Closes the connection if open. */
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Connect to the daemon at @p socket_path, retrying for up to
     * @p timeout_ms (the daemon may still be binding).
     */
    Result<void> connect(const std::string &socket_path,
                         std::int64_t timeout_ms = 5000);

    /** True while the connection is usable. */
    bool connected() const { return fd_ >= 0; }

    /** Close the connection (idempotent). */
    void close();

    /** Send one raw line (newline appended). */
    Result<void> sendLine(const std::string &line);

    /**
     * Read one response line, waiting up to @p timeout_ms.
     * Times out as SimError::timeout, EOF as SimError::io.
     */
    Result<std::string> recvLine(std::int64_t timeout_ms = 60000);

    /** sendLine + recvLine + parseResponse, for serial callers. */
    Result<Response> roundTrip(const Request &request,
                               std::int64_t timeout_ms = 60000);

  private:
    int fd_ = -1;
    std::string pending_; //!< bytes read past the last newline
};

} // namespace mmgpu::serve

#endif // MMGPU_SERVE_CLIENT_HH
