/**
 * @file
 * Client side of the mmgpu_serve socket protocol.
 *
 * A thin blocking connection: connect to the daemon's unix socket,
 * send request lines, read response lines. Used by the mmgpu_client
 * binary, the service tests, and the serve bench. Each ServeClient
 * is single-threaded (no internal locking); open several clients for
 * concurrent traffic.
 *
 * On top of the raw transport sits call(): a retrying round trip
 * that classifies failures the way the daemon's self-healing layer
 * intends them to be handled —
 *
 *   - "rejected" responses (quota, shedding, breaker open) retry
 *     after the daemon's retry-after-ms hint, or an exponential
 *     backoff when no hint is given;
 *   - "unavailable" errors (a shard crashed mid-job and the work is
 *     being re-run) retry — the daemon already requeued or can
 *     re-admit the work, and dedup attaches the re-ask to any rerun
 *     still in flight;
 *   - broken transport (EPIPE, EOF, injected connection reset)
 *     reconnects and retries — the daemon memoizes results, so the
 *     re-sent request is answered from cache if it already finished;
 *   - "timeout", "poisoned", "config", and "parse" never retry:
 *     poisoned work is quarantined precisely because retrying it
 *     kills shards, and the rest are caller mistakes or deliberate
 *     watchdog verdicts.
 *
 * Backoff jitter draws from a deterministic seeded stream
 * (common/rng.hh), so a soak that replays the same request sequence
 * with the same seed paces identically — chaos runs are comparable
 * across revisions.
 */

#ifndef MMGPU_SERVE_CLIENT_HH
#define MMGPU_SERVE_CLIENT_HH

#include <cstdint>
#include <string>

#include "common/result.hh"
#include "serve/request.hh"

namespace mmgpu::serve
{

/** How call() paces its attempts. */
struct RetryPolicy
{
    /** Attempts in total (first try included). */
    int maxAttempts = 4;

    /** Per-attempt response timeout. */
    std::int64_t perTryTimeoutMs = 60000;

    /** Total budget across attempts and backoff pauses; call()
     *  returns the last result rather than start an attempt it
     *  cannot finish. */
    std::int64_t deadlineMs = 120000;

    /** First backoff pause; doubles per retry up to the cap. */
    std::uint64_t backoffBaseMs = 50;
    std::uint64_t backoffCapMs = 2000;

    /** Seed of the jitter stream (mixed with the request's work
     *  identity, so concurrent clients with distinct seeds do not
     *  thunder in lockstep yet every run is reproducible). */
    std::uint64_t seed = 0;

    /**
     * When > 0, an attempt with no response after this many ms
     * opens a second connection and re-sends the same request (a
     * hedged read); whichever connection answers first wins. Safe
     * because the daemon dedups identical work: the hedge attaches
     * to the in-flight simulation instead of starting another. Only
     * worth it for long study requests; leave 0 for quick runs.
     */
    std::int64_t hedgeAfterMs = 0;
};

/** What a client did across its call()s, for the soak summary. */
struct ClientCounters
{
    std::uint64_t requests = 0;       //!< logical call()s issued
    std::uint64_t retries = 0;        //!< extra attempts made
    std::uint64_t reconnects = 0;     //!< transport re-establishments
    std::uint64_t hedgesLaunched = 0; //!< second connections opened
    std::uint64_t hedgesWon = 0;      //!< hedge answered first
    std::uint64_t rejectedQuota = 0;  //!< per-client quota rejects
    std::uint64_t rejectedShed = 0;   //!< overload-shedding rejects
    std::uint64_t rejectedOther = 0;  //!< full queue, shutdown, ...
};

/** One blocking client connection. */
class ServeClient
{
  public:
    ServeClient() = default;

    /** Closes the connection if open. */
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Connect to the daemon at @p socket_path, retrying for up to
     * @p timeout_ms (the daemon may still be binding). The path is
     * remembered so call() can reconnect after a broken socket.
     */
    Result<void> connect(const std::string &socket_path,
                         std::int64_t timeout_ms = 5000);

    /** True while the connection is usable. */
    bool connected() const { return fd_ >= 0; }

    /** Close the connection (idempotent). */
    void close();

    /** Send one raw line (newline appended). */
    Result<void> sendLine(const std::string &line);

    /**
     * Read one response line, waiting up to @p timeout_ms.
     * Times out as SimError::timeout, EOF as SimError::io.
     */
    Result<std::string> recvLine(std::int64_t timeout_ms = 60000);

    /** sendLine + recvLine + parseResponse, for serial callers. */
    Result<Response> roundTrip(const Request &request,
                               std::int64_t timeout_ms = 60000);

    /**
     * Resilient round trip: retry/backoff/reconnect/hedge per
     * @p policy (see the file comment for the failure taxonomy).
     * Returns the final response or the last non-retryable failure.
     */
    Result<Response> call(const Request &request,
                          const RetryPolicy &policy = {});

    /** Running totals across call()s on this client. */
    const ClientCounters &counters() const { return counters_; }

  private:
    /**
     * One attempt: a plain round trip, or a hedged one when the
     * policy enables hedging. A hedge win leaves a stale in-flight
     * response on the primary connection, so the primary is closed
     * (call() reconnects before the next use).
     */
    Result<Response> attemptOnce(const Request &request,
                                 std::int64_t timeout_ms,
                                 const RetryPolicy &policy);

    /**
     * Decide whether @p result warrants another attempt; fills
     * @p wait_ms with the daemon's retry-after hint (0 = none) and
     * closes the connection when the transport is what failed.
     * Counts rejects by reason as a side effect.
     */
    bool shouldRetry(const Result<Response> &result,
                     std::uint64_t &wait_ms);

    int fd_ = -1;
    std::string pending_; //!< bytes read past the last newline
    std::string path_;    //!< remembered for reconnects
    ClientCounters counters_;
};

} // namespace mmgpu::serve

#endif // MMGPU_SERVE_CLIENT_HH
