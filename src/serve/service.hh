/**
 * @file
 * The long-lived simulation service behind mmgpu_serve.
 *
 * A SimService owns what a bench binary normally rebuilds per
 * process — the calibrated StudyContext, the memoizing ScalingRunner
 * with its build-once machine pool, and the persistent run cache —
 * and serves simulation requests against them indefinitely. Request
 * lifecycle (DESIGN.md §10):
 *
 *   RECEIVED -> ADMITTED | REJECTED            (bounded queue)
 *   ADMITTED -> ATTACHED | ROUTED              (in-flight dedup)
 *   ROUTED   -> RUNNING -> COMPLETED | FAILED  (shard worker)
 *
 * Duplicate work never simulates twice: a request whose work
 * identity matches an in-flight job *attaches* to it as an extra
 * subscriber, and completed work is served from the runner's memo
 * cache (and the persistent cache across restarts). A housekeeper
 * thread samples service health into a bounded timeseries, arms the
 * per-shard watchdog that cancels hung points, and the attached run
 * cache's background flush persists warm entries between requests.
 *
 * Threading: submit() is safe from any thread (socket connection
 * handlers call it concurrently); responses are delivered on worker
 * threads via the callback passed to submit(). start() before the
 * first submit(); beginShutdown() may be called from any thread
 * (including a response path); join() from the owning thread only.
 */

#ifndef MMGPU_SERVE_SERVICE_HH
#define MMGPU_SERVE_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/lockdep.hh"
#include "common/prof.hh"
#include "common/thread_safety.hh"
#include "fault/fault_plan.hh"
#include "harness/study.hh"
#include "serve/admission.hh"
#include "serve/request.hh"
#include "serve/router.hh"
#include "serve/supervisor.hh"
#include "telemetry/telemetry.hh"

namespace mmgpu::serve
{

/** Service tuning knobs (all have serviceable defaults). */
struct ServeOptions
{
    std::size_t shards = 2;        //!< worker shard count
    std::size_t queueDepth = 64;   //!< admission bound
    double watchdogSeconds = 30.0; //!< per-job budget; 0 disables
    double cacheFlushSec = 0.0;    //!< run-cache background flush; 0
                                   //!< defers to MMGPU_CACHE_FLUSH_SEC
    std::int64_t sampleMs = 200;   //!< health-sample period
    std::size_t timeseriesCap = 512; //!< health samples retained
    std::size_t routerSlack = 2;   //!< affinity load headroom (jobs)

    // Self-healing knobs (DESIGN.md "Failure model & self-healing").
    SupervisorOptions supervisor; //!< strikes / quarantine / backoff
    BreakerOptions breaker;       //!< per-class circuit breaking
    double quotaRatePerSec = 0.0; //!< per-client admission quota;
                                  //!< 0 disables quotas
    double quotaBurst = 16.0;     //!< per-client burst allowance
    double shedWatermark = 0.85;  //!< overload shed point (fraction
                                  //!< of queueDepth)

    /** Chaos plan for the serve-layer fault knobs (not owned; may be
     *  null, and a disabled plan injects nothing). */
    const fault::FaultPlan *faultPlan = nullptr;
};

/** One health sample of the running service. */
struct StatsSample
{
    std::int64_t tMs = 0;        //!< wallclock of the sample
    std::size_t queueDepth = 0;  //!< admission queue depth
    std::size_t busyShards = 0;  //!< shards mid-simulation
    std::size_t inflight = 0;    //!< distinct in-flight identities
    double cacheHitRate = 0.0;   //!< persistent-cache hit fraction
    std::uint64_t crashes = 0;   //!< supervised shard crashes so far
};

/** Aggregate service statistics (the "stats" request payload). */
struct ServiceStats
{
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t dedupAttached = 0; //!< subscribers on in-flight work
    std::uint64_t simulationsStarted = 0; //!< genuinely uncached points
    std::uint64_t affinityHits = 0;
    std::size_t queueDepth = 0;
    std::size_t inflight = 0;
    std::size_t busyShards = 0;
    std::size_t shards = 0;
    double cacheHitRate = 0.0;
    double latencyP50Ms = 0.0; //!< admission -> response, recent
    double latencyP95Ms = 0.0;

    // Self-healing counters.
    std::uint64_t quotaRejected = 0; //!< per-client quota rejects
    std::uint64_t shed = 0;          //!< overload sheds
    std::uint64_t crashes = 0;       //!< supervised shard crashes
    std::uint64_t requeues = 0;      //!< crashes retried invisibly
    std::uint64_t poisonings = 0;    //!< fingerprints quarantined
    std::size_t quarantined = 0;     //!< quarantine set size
    std::uint64_t breakerTrips = 0;  //!< circuit-breaker opens
};

/** Response sink; invoked exactly once per submitted request. */
using ResponseCallback = std::function<void(const Response &)>;

/** The daemon's request engine. */
class SimService
{
  public:
    /**
     * @param options Tuning knobs.
     * @param context Calibrated study context (not owned; outlives
     *        the service).
     */
    SimService(const ServeOptions &options,
               const harness::StudyContext &context);

    /** Joins every service thread (beginShutdown() + join()). */
    ~SimService();

    SimService(const SimService &) = delete;
    SimService &operator=(const SimService &) = delete;

    /** Spawn dispatcher, shard workers, and housekeeper. */
    void start();

    /**
     * Submit a parsed request. @p done fires exactly once, on a
     * worker thread (run/study) or inline (ping/stats/shutdown and
     * every reject path).
     */
    void submit(Request request, ResponseCallback done)
        MMGPU_EXCLUDES(inflightMutex_);

    /**
     * Submit a raw protocol line: parse errors become error
     * responses addressed to whatever id could be salvaged. A
     * request that names no "client" is accounted against
     * @p default_client (the socket front end passes its
     * per-connection identity).
     */
    void submitLine(const std::string &line, ResponseCallback done,
                    const std::string &default_client = {});

    /** Synchronous submit() — blocks until the response lands. */
    Response call(Request request);

    /**
     * Stop admitting new work and let queued work drain; safe from
     * any thread, including a response callback. Idempotent.
     */
    void beginShutdown();

    /** True once a shutdown request / beginShutdown() happened. */
    bool shuttingDown() const { return shutdown_.load(); }

    /** Block until shuttingDown() (the daemon's run loop). */
    void waitShutdown();

    /** Join all service threads (after beginShutdown()). */
    void join();

    /** Aggregate statistics snapshot. */
    ServiceStats stats() const MMGPU_EXCLUDES(statsMutex_);

    /** The bounded health timeseries (oldest first). */
    std::vector<StatsSample> timeseries() const
        MMGPU_EXCLUDES(statsMutex_);

    /** The shard supervisor (tests inspect quarantine/strikes). */
    const ShardSupervisor &supervisor() const { return supervisor_; }

    /**
     * Attach a front-end description (socket path, line cap, write
     * budget) echoed verbatim under "frontend" in stats responses,
     * so `--stats` shows the knobs the daemon actually runs with.
     */
    void setFrontendInfo(JsonValue info)
        MMGPU_EXCLUDES(frontendMutex_);

    /** Service telemetry (serve/... counters and gauges). */
    const telemetry::Telemetry &serviceTelemetry() const
    {
        return tel_;
    }

    /** The underlying runner (tests compare against direct runs). */
    harness::ScalingRunner &runner() { return runner_; }

  private:
    /** Subscribers awaiting one in-flight piece of work. */
    struct InFlight
    {
        std::vector<std::pair<std::string, ResponseCallback>> sinks;
    };

    /** A job plus its routing/accounting context. */
    struct RoutedJob
    {
        Job job;
        std::size_t shard = 0;
    };

    void dispatchLoop();
    void workerLoop(std::size_t shard);
    void housekeepLoop();

    /** Execute one admitted job and fan its response out. */
    void execute(std::size_t shard, const Job &job);

    /**
     * Run the job body inside a CrashTrap (panic -> siglongjmp back
     * here instead of aborting the daemon). @return true when the
     * job crashed; @p crash_msg then holds the panic text, otherwise
     * @p response holds the answer.
     */
    bool runGuarded(std::size_t shard, const Job &job,
                    Response &response, std::string &crash_msg);

    /** Injected chaos: panic when the fault plan targets this job. */
    void maybeInjectCrash(std::uint64_t job_index,
                          const Request &request);

    /**
     * Supervised crash recovery: retire the job's machines, consult
     * the supervisor, re-queue or poison, and sleep the shard's
     * restart backoff. The job's sinks stay attached on re-queue —
     * server-side recovery is invisible to clients.
     */
    void crashRecover(std::size_t shard, const Job &job,
                      const std::string &crash_msg);

    /** Detach and answer every sink of @p identity with @p response
     *  (each sink sees its own request id). */
    void answerSinks(std::uint64_t identity, const Response &response)
        MMGPU_EXCLUDES(inflightMutex_);

    /** Run/Study bodies; @p cancel is the shard watchdog flag. */
    Response executeRun(const Request &request,
                        const std::atomic<bool> *cancel);
    Response executeStudy(const Request &request,
                          const std::atomic<bool> *cancel);
    Response statsResponse(const std::string &id);
    Response profResponse(const std::string &id);

    /** Record an admission->response latency observation. */
    void recordLatency(double ms) MMGPU_EXCLUDES(statsMutex_);

    double cacheHitRate() const;
    std::size_t busyShardCount() const;

    const ServeOptions options_;
    const harness::StudyContext &context_;
    harness::ScalingRunner runner_;
    AdmissionQueue queue_;
    Router router_;
    ShardSupervisor supervisor_;
    CircuitBreaker breaker_;
    telemetry::Telemetry tel_;

    // Chaos accounting: global job/dispatch indices for the
    // counter-driven serve fault knobs (1-based; see ServeFaultSpec).
    std::atomic<std::uint64_t> jobsExecuted_{0};
    std::atomic<std::uint64_t> jobsDispatched_{0};
    std::atomic<bool> dispatcherStalled_{false};

    // In-flight dedup table, keyed on Request::workIdentity().
    // Lock order: the dedup lock is outermost — telemetry updates
    // nest inside it on the attach-or-admit path.
    mutable sync::Mutex inflightMutex_
        MMGPU_ACQUIRED_BEFORE(telMutex_);
    std::map<std::uint64_t, InFlight> inflight_
        MMGPU_GUARDED_BY(inflightMutex_);

    // Per-shard feed queues (dispatcher -> worker).
    struct ShardQueue
    {
        sync::Mutex mutex;
        sync::ConditionVariable cv MMGPU_GUARDED_BY(mutex);
        std::deque<RoutedJob> jobs MMGPU_GUARDED_BY(mutex);
        bool closed MMGPU_GUARDED_BY(mutex) = false;
    };
    std::vector<std::unique_ptr<ShardQueue>> shardQueues_;

    // Shard prefetch-slot occupancy (slotMutex_). The dispatcher
    // delivers only to shards with a free slot — one full shard must
    // not block delivery to idle ones — and waits on slotCv_ only
    // when every slot is taken; workers signal as they drain.
    sync::Mutex slotMutex_;
    sync::ConditionVariable slotCv_ MMGPU_GUARDED_BY(slotMutex_);
    std::vector<std::size_t> shardPending_
        MMGPU_GUARDED_BY(slotMutex_);

    // Per-shard job timers ("serve/shard<N>" profiler sites).
    // Sampled unconditionally — shard job-time aggregates are cheap
    // (one clock pair per job, not per event) and the stats/prof
    // verbs report them whether or not MMGPU_PROFILE is set.
    std::vector<prof::Site *> shardSites_;

    // Per-shard watchdog state: busySinceMs_ == 0 means idle.
    // generation_ stamps job epochs (bumped at job start and end) so
    // the watchdog only cancels the job it actually observed as
    // over-budget, never a fresh one that took the shard since.
    std::vector<std::unique_ptr<std::atomic<std::int64_t>>> busySinceMs_;
    std::vector<std::unique_ptr<std::atomic<bool>>> cancel_;
    std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> generation_;

    // Health timeseries + latency ring (statsMutex_).
    mutable sync::Mutex statsMutex_;
    std::deque<StatsSample> samples_ MMGPU_GUARDED_BY(statsMutex_);
    std::vector<double> latencyRing_ MMGPU_GUARDED_BY(statsMutex_);
    std::size_t latencyNext_ MMGPU_GUARDED_BY(statsMutex_) = 0;
    std::uint64_t latencyCount_ MMGPU_GUARDED_BY(statsMutex_) = 0;

    // Cached telemetry handles (registered in the constructor).
    telemetry::Counter *cAccepted_ = nullptr;
    telemetry::Counter *cRejected_ = nullptr;
    telemetry::Counter *cCompleted_ = nullptr;
    telemetry::Counter *cFailed_ = nullptr;
    telemetry::Counter *cDedup_ = nullptr;
    telemetry::Counter *cSims_ = nullptr;
    telemetry::Counter *cCrashes_ = nullptr;
    telemetry::Counter *cPoisonedAnswers_ = nullptr;
    telemetry::Gauge *gQueueDepth_ = nullptr;
    telemetry::Gauge *gInflight_ = nullptr;
    telemetry::Gauge *gBusyShards_ = nullptr;
    telemetry::Gauge *gHitRate_ = nullptr;
    mutable sync::Mutex telMutex_; //!< guards all counter/gauge
                                   //!< updates (through the cached
                                   //!< pointers above, so the fields
                                   //!< themselves stay const-ish)

    // Front-end self-description (frontendMutex_); see
    // setFrontendInfo().
    mutable sync::Mutex frontendMutex_;
    JsonValue frontendInfo_ MMGPU_GUARDED_BY(frontendMutex_);

    std::thread dispatcher_;
    std::vector<std::thread> workers_;
    std::thread housekeeper_;
    std::atomic<bool> shutdown_{false};
    std::atomic<bool> stopHousekeeper_{false};
    sync::Mutex shutdownMutex_;
    sync::ConditionVariable shutdownCv_
        MMGPU_GUARDED_BY(shutdownMutex_);
    bool started_ = false;
    bool joined_ = false;
};

} // namespace mmgpu::serve

#endif // MMGPU_SERVE_SERVICE_HH
