/**
 * @file
 * Wire protocol of the mmgpu_serve daemon.
 *
 * One JSON document per line, request and response alike. Requests
 * name a design point (workload x configuration) or a service verb
 * (ping/stats/shutdown); responses echo the request id so clients
 * may pipeline. Parsing reuses the hardened common/json.hh parser —
 * the same one the fuzz corpus hammers — and every malformed,
 * oversized, or truncated request degrades to an error response,
 * never a daemon crash.
 *
 * Request fields (all but "type" optional; defaults in brackets):
 *
 *   {"type": "run" | "study" | "stats" | "prof" | "ping" |
 *            "shutdown",
 *    "id": "client tag echoed in the response" [""],
 *    "client": "quota identity for admission" [the connection],
 *    "workload": "<Table II name>" | "all" (study only) ["Stream"],
 *    "gpms": 1|2|4|8|16|32 [4],
 *    "bw": "1x"|"2x"|"4x" ["2x"],
 *    "topology": "ring"|"switch"|"fullmesh"|"ocs" ["ring"],
 *    "domain": "package"|"board" [follows bw],
 *    "placement": "first-touch"|"striped"|"locality"
 *                 ["first-touch"],
 *    "cta-sched": "distributed"|"round-robin" ["distributed"],
 *    "link-energy-scale": <f> [1.0],
 *    "const-growth-override": <f> [-1.0],
 *    "priority": 0 (high) | 1 (normal) | 2 (batch) [1]}
 *
 * Responses:
 *
 *   {"id": ..., "status": "ok", "result": {...}}
 *   {"id": ..., "status": "error", "code": "...", "message": "..."}
 *   {"id": ..., "status": "rejected", "message": "...",
 *    "retry-after-ms": <n, optional backoff hint>}
 *
 * Numeric results that feed bit-identity checks (exec seconds,
 * energy terms, scaling metrics) are carried as C99 hexfloat strings
 * exactly like the persistent run cache, so "daemon == in-process"
 * comparisons are exact, not epsilon-based.
 */

#ifndef MMGPU_SERVE_REQUEST_HH
#define MMGPU_SERVE_REQUEST_HH

#include <cstdint>
#include <string>

#include "common/json.hh"
#include "common/result.hh"
#include "harness/study.hh"
#include "sim/gpu_config.hh"

namespace mmgpu::serve
{

/**
 * Hard cap on one request line. Anything longer is rejected before
 * parsing (oversized-framing containment); the socket reader also
 * drops connections that exceed it mid-line so a client streaming
 * garbage cannot balloon daemon memory.
 */
constexpr std::size_t maxRequestBytes = 64 * 1024;

/** Request verbs the daemon understands. */
enum class RequestType : std::uint8_t
{
    Ping,     //!< liveness probe; responds with "pong"
    Run,      //!< one (workload x configuration) design point
    Study,    //!< full scaling study vs. the 1-GPM baseline
    Stats,    //!< service statistics snapshot
    Prof,     //!< profiler aggregates snapshot (common/prof.hh)
    Shutdown, //!< stop accepting, drain, exit the serve loop
};

/** @return stable protocol name ("run", "study", ...). */
const char *requestTypeName(RequestType type);

/** The design point a run/study request names. */
struct RunSpec
{
    std::string workload = "Stream"; //!< name, or "all" (study)
    unsigned gpms = 4;
    sim::BwSetting bw = sim::BwSetting::Bw2x;
    noc::Topology topology = noc::Topology::Ring;
    int domain = -1; //!< -1 follows the bandwidth setting
    sim::PlacementPolicy placement =
        sim::PlacementPolicy::FirstTouchOwner;
    sm::CtaSchedPolicy ctaSched = sm::CtaSchedPolicy::Distributed;
    double linkEnergyScale = 1.0;
    double constGrowthOverride = -1.0;

    /** The machine configuration this spec names (baseline when
     *  gpms <= 1). Does not validate; GpuConfig::check() does. */
    sim::GpuConfig config() const;

    /**
     * Identity of the *machine* the spec needs — config name, NUMA
     * policies — ignoring workload and energy knobs. The router uses
     * this for shard affinity: requests that can reuse a pooled
     * machine should land on the shard already holding one.
     */
    std::uint64_t machineIdentity() const;
};

/** One parsed request. */
struct Request
{
    RequestType type = RequestType::Ping;
    std::string id;
    RunSpec spec;
    int priority = 1; //!< 0 = high, 1 = normal, 2 = batch

    /**
     * Quota identity for per-client admission accounting. The socket
     * front end fills in a per-connection default when the request
     * does not name one, so quotas work without client cooperation
     * but cooperating clients can pool connections under one bucket.
     * Never part of workIdentity(): two clients asking for the same
     * design point still share one simulation.
     */
    std::string client;

    /**
     * Dedup identity of the *work* the request names: type, spec,
     * energy knobs — everything that changes the answer, nothing
     * that doesn't (id, priority). Two requests with equal identity
     * share one simulation.
     */
    std::uint64_t workIdentity() const;

    /** Re-encode as a protocol line (tests round-trip through this). */
    std::string encode() const;
};

/**
 * Parse one request line. Errors (oversized, malformed JSON, wrong
 * types, unknown enum values) come back as SimError::parse/config —
 * the daemon turns them into error responses addressed to whatever
 * "id" could be salvaged (parseRequestId below).
 */
Result<Request> parseRequest(const std::string &line);

/**
 * Best-effort id extraction from an unparseable request, so error
 * responses stay correlatable. Returns "" when nothing is salvable.
 */
std::string parseRequestId(const std::string &line);

/** Response status. */
enum class ResponseStatus : std::uint8_t
{
    Ok,
    Error,    //!< the work failed (bad config, fault, timeout)
    Rejected, //!< admission refused (queue full, shutting down)
};

/** One response, encodable as a protocol line. */
struct Response
{
    std::string id;
    ResponseStatus status = ResponseStatus::Ok;
    ErrCode code = ErrCode::Internal; //!< when status == Error
    std::string message;              //!< error/reject detail
    JsonValue result;                 //!< when status == Ok

    /** Backoff hint for rejected requests; 0 means "none given".
     *  Clients honoring it retry no sooner than this. */
    std::uint64_t retryAfterMs = 0;

    static Response ok(std::string id, JsonValue result);
    static Response error(std::string id, const SimError &error);
    static Response rejected(std::string id, std::string reason,
                             std::uint64_t retry_after_ms = 0);

    /** Encode as one newline-free JSON line. */
    std::string encode() const;
};

/**
 * Parse a response line (client side). Malformed lines come back as
 * SimError::parse.
 */
Result<Response> parseResponse(const std::string &line);

/**
 * Encode a finished run outcome: exec time/cycles and the Eq. 4
 * energy terms as hexfloat strings (exact), plus a few convenience
 * decimals (ipc, remote fraction) for human consumers.
 */
JsonValue encodeOutcome(const harness::RunOutcome &outcome);

/** Encode a scaling study: per-workload metrics, hexfloat-exact. */
JsonValue
encodeStudy(const sim::GpuConfig &config,
            const std::vector<harness::ScalingPoint> &points);

/** Exact hexfloat codec shared by the encoders and the verifier. */
std::string encodeHexDouble(double value);

/** Decode a hexfloat string; false on malformed text. */
bool decodeHexDouble(const JsonValue *value, double &out);

} // namespace mmgpu::serve

#endif // MMGPU_SERVE_REQUEST_HH
