#include "serve/supervisor.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mmgpu::serve
{

ShardSupervisor::ShardSupervisor(const SupervisorOptions &options)
    : options_(options)
{
    if (options_.maxStrikes == 0)
        options_.maxStrikes = 1;
    if (options_.backoffBaseMs == 0)
        options_.backoffBaseMs = 1;
    if (options_.backoffCapMs < options_.backoffBaseMs)
        options_.backoffCapMs = options_.backoffBaseMs;
}

ShardSupervisor::Outcome
ShardSupervisor::onCrash(unsigned shard, std::uint64_t fingerprint,
                         const std::string &message,
                         std::uint64_t wall_ms)
{
    std::lock_guard<sync::Mutex> lock(mutex_);
    ++crashes_;

    unsigned strike = ++strikes_[fingerprint];

    Outcome outcome;
    outcome.strike = strike;
    if (strike >= options_.maxStrikes) {
        outcome.verdict = CrashVerdict::Poison;
        quarantine_.insert(fingerprint);
        ++poisonings_;
    } else {
        outcome.verdict = CrashVerdict::Requeue;
        ++requeues_;
    }

    // Per-shard exponential backoff: doubles per consecutive crash,
    // reset by the first clean job (onHealthy).
    std::uint64_t &backoff = shardBackoffMs_[shard];
    backoff = backoff == 0
                  ? options_.backoffBaseMs
                  : std::min(backoff * 2, options_.backoffCapMs);
    outcome.backoffMs = backoff;
    backoffMsTotal_ += backoff;

    SupervisorEvent event;
    event.wallMs = wall_ms;
    event.shard = shard;
    event.fingerprint = fingerprint;
    event.strike = strike;
    event.verdict = outcome.verdict;
    event.message = message;
    events_.push_back(std::move(event));
    while (events_.size() > options_.eventLogCap)
        events_.pop_front();

    return outcome;
}

void
ShardSupervisor::onHealthy(unsigned shard)
{
    std::lock_guard<sync::Mutex> lock(mutex_);
    shardBackoffMs_.erase(shard);
}

bool
ShardSupervisor::quarantined(std::uint64_t fingerprint) const
{
    std::lock_guard<sync::Mutex> lock(mutex_);
    return quarantine_.count(fingerprint) != 0;
}

SupervisorStats
ShardSupervisor::stats() const
{
    std::lock_guard<sync::Mutex> lock(mutex_);
    SupervisorStats stats;
    stats.crashes = crashes_;
    stats.requeues = requeues_;
    stats.poisonings = poisonings_;
    stats.quarantined = quarantine_.size();
    stats.backoffMsTotal = backoffMsTotal_;
    return stats;
}

std::vector<SupervisorEvent>
ShardSupervisor::events() const
{
    std::lock_guard<sync::Mutex> lock(mutex_);
    return {events_.begin(), events_.end()};
}

CircuitBreaker::CircuitBreaker(std::size_t classes,
                               const BreakerOptions &options)
    : options_(options), classes_(classes)
{
    if (options_.window == 0)
        options_.window = 1;
    if (options_.minSamples == 0)
        options_.minSamples = 1;
    for (ClassState &state : classes_)
        state.ring.assign(options_.window, 0);
}

void
CircuitBreaker::resetLocked(ClassState &state) const
{
    state.ring.assign(options_.window, 0);
    state.head = 0;
    state.count = 0;
    state.errors = 0;
    state.openUntilMs = 0;
}

void
CircuitBreaker::record(std::size_t cls, bool ok,
                       std::uint64_t wall_ms)
{
    std::lock_guard<sync::Mutex> lock(mutex_);
    if (cls >= classes_.size())
        return;
    ClassState &state = classes_[cls];

    // Close (with a clean slate) once the cooldown elapsed; while
    // open, in-flight stragglers must not re-trip the fresh window.
    if (state.openUntilMs != 0) {
        if (wall_ms < state.openUntilMs)
            return;
        resetLocked(state);
    }

    std::uint8_t leaving = state.ring[state.head];
    std::uint8_t entering = ok ? 0 : 1;
    if (state.count == options_.window)
        state.errors -= leaving;
    else
        ++state.count;
    state.ring[state.head] = entering;
    state.head = (state.head + 1) % options_.window;
    state.errors += entering;

    if (state.count >= options_.minSamples &&
        static_cast<double>(state.errors) >=
            options_.tripRatio * static_cast<double>(state.count)) {
        state.openUntilMs = wall_ms + options_.cooldownMs;
        ++trips_;
    }
}

bool
CircuitBreaker::open(std::size_t cls, std::uint64_t wall_ms) const
{
    std::lock_guard<sync::Mutex> lock(mutex_);
    if (cls >= classes_.size())
        return false;
    const ClassState &state = classes_[cls];
    return state.openUntilMs != 0 && wall_ms < state.openUntilMs;
}

std::uint64_t
CircuitBreaker::retryAfterMs(std::size_t cls,
                             std::uint64_t wall_ms) const
{
    std::lock_guard<sync::Mutex> lock(mutex_);
    if (cls >= classes_.size())
        return 0;
    const ClassState &state = classes_[cls];
    if (state.openUntilMs == 0 || wall_ms >= state.openUntilMs)
        return 0;
    return state.openUntilMs - wall_ms;
}

std::uint64_t
CircuitBreaker::trips() const
{
    std::lock_guard<sync::Mutex> lock(mutex_);
    return trips_;
}

} // namespace mmgpu::serve
