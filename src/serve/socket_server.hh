/**
 * @file
 * Unix-domain-socket front end of the simulation service.
 *
 * One JSON document per line, both directions (serve/request.hh).
 * Each accepted connection gets a reader thread that frames lines,
 * enforces the per-request size cap mid-line, and hands complete
 * lines to SimService::submitLine(); responses are written back on
 * whatever worker thread completes them, serialized per connection
 * by a write mutex — so clients may pipeline requests and receive
 * responses out of order (correlate by "id").
 *
 * Failure containment: a malformed line gets an error response, an
 * oversized line gets an error response and the connection dropped,
 * and a client that disappears mid-request (EOF, EPIPE) just has its
 * pending responses discarded — the daemon and the simulation keep
 * running, and the memoized result still serves the next asker. A
 * client that pipelines requests but never reads responses cannot
 * wedge a worker either: response writes are non-blocking with a
 * bounded stall budget, after which the connection is dropped.
 * Finished reader threads are reaped by the accept loop as it runs,
 * so a long-lived daemon serving many short connections does not
 * accumulate joinable threads.
 */

#ifndef MMGPU_SERVE_SOCKET_SERVER_HH
#define MMGPU_SERVE_SOCKET_SERVER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/lockdep.hh"
#include "common/result.hh"
#include "common/thread_safety.hh"
#include "fault/fault_plan.hh"
#include "serve/service.hh"

namespace mmgpu::serve
{

/**
 * Front-end tuning knobs, overridable from the environment so an
 * operator can tighten containment without a rebuild. Both knobs are
 * validated (malformed/out-of-range values warn and keep defaults)
 * and echoed under "frontend" in `--stats`, so the running daemon
 * always reports the caps it actually enforces.
 */
struct SocketServerOptions
{
    /**
     * Per-request line cap enforced by the framing loop, including
     * mid-line (a client streaming garbage without a newline is cut
     * off at this size). Clamped to [512, maxRequestBytes] — the
     * protocol parser enforces maxRequestBytes regardless, so only
     * tightening is meaningful.
     */
    std::size_t lineCap = maxRequestBytes;

    /** Longest a response write may stall on a full socket buffer (a
     *  client that pipelines but never reads) before the connection
     *  is dropped instead of blocking a worker thread. */
    int writeBudgetMs = 10000;

    /** Chaos plan for connection-reset injection (not owned; may be
     *  null). */
    const fault::FaultPlan *faultPlan = nullptr;

    /**
     * Defaults overridden by `MMGPU_SERVE_LINE_CAP` (bytes) and
     * `MMGPU_SERVE_WRITE_BUDGET_SEC` (seconds, converted to ms).
     * Invalid values warn and keep the default.
     */
    static SocketServerOptions fromEnv();
};

/** Accept loop + per-connection line framing over AF_UNIX. */
class SocketServer
{
  public:
    /**
     * @param service Request engine (not owned; outlives the server).
     * @param path Socket filesystem path (< ~100 chars; a stale file
     *        at the path is unlinked on start()).
     * @param options Front-end knobs (validated in the constructor).
     */
    SocketServer(SimService &service, std::string path,
                 SocketServerOptions options = {});

    /** Stops and joins if still running. */
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Bind, listen, and spawn the accept loop. */
    Result<void> start();

    /**
     * Stop accepting, shut every live connection, join all threads,
     * and unlink the socket file. Idempotent.
     */
    void stop();

    /** The socket path. */
    const std::string &path() const { return path_; }

    /** Connections accepted since start(). */
    std::uint64_t connectionsAccepted() const
    {
        return accepted_.load();
    }

    /** Reader threads currently tracked (finished ones are reaped
     *  lazily by the accept loop; tests poll this). */
    std::size_t trackedConnectionThreads() const;

    /** The validated knobs this server runs with. */
    const SocketServerOptions &options() const { return options_; }

    /** Injected connection resets performed so far (chaos). */
    std::uint64_t injectedResets() const
    {
        return chaos_->resets.load();
    }

  private:
    /** Per-connection shared state; the fd closes when the last
     *  holder (reader thread or pending response) lets go. */
    struct ConnState
    {
        ConnState(int fd, int write_budget_ms)
            : fd(fd), writeBudgetMs(write_budget_ms)
        {
        }
        ~ConnState();

        /**
         * Write one line; false (and dead) on a broken peer or a
         * client stalled past the write budget. Never blocks
         * indefinitely: sends are non-blocking, waits are bounded
         * poll() slices, and a concurrent shutdown() of the fd (see
         * stop()) wakes the writer immediately.
         */
        bool writeLine(const std::string &line);

        const int fd;
        const int writeBudgetMs;       //!< stall budget (options)
        sync::Mutex writeMutex;        //!< serializes writers only
        std::atomic<bool> alive{true}; //!< cleared outside the mutex
    };

    void acceptLoop();
    void connectionLoop(std::uint64_t id,
                        std::shared_ptr<ConnState> conn);

    /** Join reader threads that announced exit; prune dead conns. */
    void reapFinished();

    /**
     * Connection-reset chaos state, shared (by shared_ptr) with
     * every response callback: callbacks may outlive the server (a
     * worker can deliver after stop()), so they must never touch
     * `this` — only `conn` and this little block.
     */
    struct ChaosState
    {
        std::uint64_t resetEveryWrites = 0; //!< 0 = disabled
        std::atomic<std::uint64_t> writes{0};
        std::atomic<std::uint64_t> resets{0};
    };

    /** Chaos: hard-close @p conn when the plan says so. */
    static void maybeInjectReset(ChaosState &chaos,
                                 const std::shared_ptr<ConnState> &conn);

    SimService &service_;
    const std::string path_;
    SocketServerOptions options_;
    std::shared_ptr<ChaosState> chaos_;
    int listenFd_ = -1;
    std::thread acceptor_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> accepted_{0};
    bool running_ = false;

    mutable sync::Mutex connMutex_;
    std::uint64_t nextConnId_ MMGPU_GUARDED_BY(connMutex_) = 0;
    std::map<std::uint64_t, std::thread> connThreads_
        MMGPU_GUARDED_BY(connMutex_);
    /** Connection ids awaiting join. */
    std::vector<std::uint64_t> finishedConns_
        MMGPU_GUARDED_BY(connMutex_);
    std::vector<std::weak_ptr<ConnState>> conns_
        MMGPU_GUARDED_BY(connMutex_);
};

} // namespace mmgpu::serve

#endif // MMGPU_SERVE_SOCKET_SERVER_HH
