#include "isa/ptx_parser.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace mmgpu::isa
{

std::size_t
PtxKernel::countOf(Opcode op) const
{
    return static_cast<std::size_t>(
        std::count_if(body.begin(), body.end(),
                      [op](const PtxInstruction &i) {
                          return i.op == op;
                      }));
}

namespace
{

/** Strip leading/trailing whitespace. */
std::string
trim(const std::string &text)
{
    auto begin = text.find_first_not_of(" \t\r");
    auto end = text.find_last_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    return text.substr(begin, end - begin + 1);
}

/** Split "a, b, c" into trimmed pieces. */
std::vector<std::string>
splitOperands(const std::string &text)
{
    std::vector<std::string> out;
    std::string current;
    for (char ch : text) {
        if (ch == ',') {
            out.push_back(trim(current));
            current.clear();
        } else {
            current += ch;
        }
    }
    if (!trim(current).empty())
        out.push_back(trim(current));
    return out;
}

PtxParseResult
fail(int line_no, const std::string &msg)
{
    PtxParseResult result;
    result.ok = false;
    std::ostringstream os;
    os << "line " << line_no << ": " << msg;
    result.error = os.str();
    return result;
}

} // namespace

PtxParseResult
parsePtx(const std::string &source)
{
    PtxParseResult result;
    PtxKernel &kernel = result.kernel;

    std::istringstream stream(source);
    std::string raw_line;
    int line_no = 0;
    while (std::getline(stream, raw_line)) {
        ++line_no;
        // Drop comments.
        auto comment = raw_line.find("//");
        if (comment != std::string::npos)
            raw_line = raw_line.substr(0, comment);
        std::string line = trim(raw_line);
        if (line.empty())
            continue;

        if (line.back() != ';')
            return fail(line_no, "missing ';'");
        line = trim(line.substr(0, line.size() - 1));
        if (line.empty())
            return fail(line_no, "empty statement");

        if (line[0] == '.') {
            // Declaration: .reg .f32 %r1 [, %r2 ...]
            std::istringstream decl(line);
            std::string directive, type, rest;
            decl >> directive >> type;
            if (directive != ".reg")
                return fail(line_no,
                            "unknown directive '" + directive + "'");
            std::getline(decl, rest);
            auto regs = splitOperands(rest);
            if (regs.empty())
                return fail(line_no, ".reg declares no registers");
            for (const auto &reg : regs) {
                if (reg.empty() || reg[0] != '%')
                    return fail(line_no,
                                "register name must start with '%': '" +
                                    reg + "'");
                if (!kernel.registers.insert(reg.substr(1)).second)
                    return fail(line_no,
                                "register redeclared: " + reg);
            }
            continue;
        }

        // Instruction: mnemonic operand, operand, ...
        auto space = line.find_first_of(" \t");
        std::string mnemonic_text =
            space == std::string::npos ? line : line.substr(0, space);
        std::string operand_text =
            space == std::string::npos ? "" : line.substr(space + 1);

        auto op = parseMnemonic(mnemonic_text);
        if (!op)
            return fail(line_no,
                        "unknown mnemonic '" + mnemonic_text + "'");

        PtxInstruction instr;
        instr.op = *op;
        instr.operands = splitOperands(operand_text);
        if (instr.operands.empty())
            return fail(line_no, "instruction has no operands");
        // Loads/stores use [%reg] addressing for one operand.
        for (const auto &operand : instr.operands) {
            std::string name = operand;
            if (name.size() >= 2 && name.front() == '[' &&
                name.back() == ']') {
                name = trim(name.substr(1, name.size() - 2));
            }
            if (!name.empty() && name[0] == '%') {
                if (!kernel.registers.count(name.substr(1)))
                    return fail(line_no,
                                "use of undeclared register " + name);
            }
        }
        kernel.body.push_back(std::move(instr));
    }

    result.ok = true;
    return result;
}

} // namespace mmgpu::isa
