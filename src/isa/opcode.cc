#include "isa/opcode.hh"

#include <array>
#include <unordered_map>

#include "common/logging.hh"

namespace mmgpu::isa
{

namespace
{

/** Static per-opcode properties, indexed densely by Opcode. */
struct OpInfo
{
    const char *name;
    FuncUnit unit;
    std::uint32_t latency;
    std::uint32_t issue;
};

constexpr std::array<OpInfo, numOpcodes> opTable = {{
    // name                unit             latency issue
    {"add.f32",            FuncUnit::FP32,  6,      1},   // FADD32
    {"mul.f32",            FuncUnit::FP32,  6,      1},   // FMUL32
    {"fma.rn.f32",         FuncUnit::FP32,  6,      1},   // FFMA32
    {"add.s32",            FuncUnit::INT32, 6,      1},   // IADD32
    {"sub.s32",            FuncUnit::INT32, 6,      1},   // ISUB32
    {"mul.lo.s32",         FuncUnit::INT32, 9,      2},   // IMUL32
    {"mad.lo.s32",         FuncUnit::INT32, 9,      2},   // IMAD32
    {"and.b32",            FuncUnit::INT32, 6,      1},   // AND32
    {"or.b32",             FuncUnit::INT32, 6,      1},   // OR32
    {"xor.b32",            FuncUnit::INT32, 6,      1},   // XOR32
    {"sin.approx.f32",     FuncUnit::SFU,   18,     8},   // SIN32
    {"cos.approx.f32",     FuncUnit::SFU,   18,     8},   // COS32
    {"sqrt.approx.f32",    FuncUnit::SFU,   18,     8},   // SQRT32
    {"lg2.approx.f32",     FuncUnit::SFU,   18,     8},   // LG232
    {"ex2.approx.f32",     FuncUnit::SFU,   18,     8},   // EX232
    {"rcp.approx.f32",     FuncUnit::SFU,   18,     8},   // RCP32
    {"add.f64",            FuncUnit::FP64,  10,     3},   // FADD64
    {"mul.f64",            FuncUnit::FP64,  10,     3},   // FMUL64
    {"fma.rn.f64",         FuncUnit::FP64,  10,     3},   // FFMA64
    {"mov.f32",            FuncUnit::MOVE,  4,      1},   // MOV32
    {"ld.global.f32",      FuncUnit::LDST,  4,      1},   // LD_GLOBAL
    {"st.global.f32",      FuncUnit::LDST,  4,      1},   // ST_GLOBAL
    {"ld.shared.f32",      FuncUnit::LDST,  4,      1},   // LD_SHARED
    {"st.shared.f32",      FuncUnit::LDST,  4,      1},   // ST_SHARED
}};

const OpInfo &
info(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    mmgpu_assert(idx < numOpcodes, "bad opcode ", idx);
    return opTable[idx];
}

} // namespace

const char *
mnemonic(Opcode op)
{
    return info(op).name;
}

FuncUnit
funcUnit(Opcode op)
{
    return info(op).unit;
}

OpClass
opClass(Opcode op)
{
    return funcUnit(op) == FuncUnit::LDST ? OpClass::Memory
                                          : OpClass::Compute;
}

bool
isLoad(Opcode op)
{
    return op == Opcode::LD_GLOBAL || op == Opcode::LD_SHARED;
}

bool
isStore(Opcode op)
{
    return op == Opcode::ST_GLOBAL || op == Opcode::ST_SHARED;
}

std::uint32_t
defaultLatency(Opcode op)
{
    return info(op).latency;
}

std::uint32_t
issueCost(Opcode op)
{
    return info(op).issue;
}

std::optional<Opcode>
parseMnemonic(const std::string &text)
{
    static const auto lookup = [] {
        std::unordered_map<std::string, Opcode> map;
        for (std::size_t i = 0; i < numOpcodes; ++i)
            map.emplace(opTable[i].name, static_cast<Opcode>(i));
        // Untyped/width-only aliases that PTX writers commonly use.
        map.emplace("mov.b32", Opcode::MOV32);
        map.emplace("ld.global.u32", Opcode::LD_GLOBAL);
        map.emplace("st.global.u32", Opcode::ST_GLOBAL);
        map.emplace("ld.shared.u32", Opcode::LD_SHARED);
        map.emplace("st.shared.u32", Opcode::ST_SHARED);
        return map;
    }();
    auto it = lookup.find(text);
    if (it == lookup.end())
        return std::nullopt;
    return it->second;
}

Opcode
opcodeFromIndex(std::size_t i)
{
    mmgpu_assert(i < numOpcodes, "opcode index out of range: ", i);
    return static_cast<Opcode>(i);
}

} // namespace mmgpu::isa
