/**
 * @file
 * Parser for the inline-PTX dialect the microbenchmarks are written in.
 *
 * GPUJoule's compute microbenchmarks (paper Algorithm 1) express their
 * region of interest as a short PTX fragment. This parser accepts the
 * subset those fragments need:
 *
 *     // comment
 *     .reg .f32 %r1;              register declaration
 *     mov.f32  %r1, 0f3F800000;   instruction with operands
 *     fma.rn.f32 %r3, %r1, %r3, %r2;
 *
 * Operands are registers (%name) or immediates (anything else); the
 * parser checks that registers are declared before use so malformed
 * microbenchmarks are rejected at construction time rather than
 * producing silently wrong energy measurements.
 */

#ifndef MMGPU_ISA_PTX_PARSER_HH
#define MMGPU_ISA_PTX_PARSER_HH

#include <string>
#include <unordered_set>
#include <vector>

#include "isa/opcode.hh"

namespace mmgpu::isa
{

/** One parsed PTX instruction. */
struct PtxInstruction
{
    Opcode op;
    std::vector<std::string> operands;
};

/** A parsed PTX fragment: declarations plus instruction sequence. */
struct PtxKernel
{
    /** Declared register names (without the leading '%'). */
    std::unordered_set<std::string> registers;

    /** Instructions in program order. */
    std::vector<PtxInstruction> body;

    /** Count instructions with opcode @p op. */
    std::size_t countOf(Opcode op) const;
};

/** Outcome of a parse; either a kernel or a diagnosed error. */
struct PtxParseResult
{
    bool ok = false;

    /** Valid only when ok. */
    PtxKernel kernel;

    /** "line N: message" diagnostic; valid only when !ok. */
    std::string error;
};

/**
 * Parse a PTX fragment.
 * @param source The fragment text.
 * @return the kernel or a diagnostic; never aborts.
 */
PtxParseResult parsePtx(const std::string &source);

} // namespace mmgpu::isa

#endif // MMGPU_ISA_PTX_PARSER_HH
