#include "isa/instruction.hh"

#include "common/logging.hh"

namespace mmgpu::isa
{

const char *
txnLevelName(TxnLevel level)
{
    switch (level) {
      case TxnLevel::SharedToReg:
        return "shm_to_reg";
      case TxnLevel::L1ToReg:
        return "l1_to_reg";
      case TxnLevel::L2ToL1:
        return "l2_to_l1";
      case TxnLevel::DramToL2:
        return "dram_to_l2";
      default:
        mmgpu_panic("bad TxnLevel");
    }
}

Bytes
txnBytes(TxnLevel level)
{
    switch (level) {
      case TxnLevel::SharedToReg:
      case TxnLevel::L1ToReg:
        return cacheLineBytes;
      case TxnLevel::L2ToL1:
      case TxnLevel::DramToL2:
        return sectorBytes;
      default:
        mmgpu_panic("bad TxnLevel");
    }
}

} // namespace mmgpu::isa
