/**
 * @file
 * Warp-level trace operations.
 *
 * The performance simulator is trace driven: each warp consumes a
 * stream of TraceOps. A TraceOp is a *warp-level* event — one compute
 * instruction issued for all 32 lanes, or one (possibly divergent)
 * memory access described by the set of 32 B sectors it touches.
 *
 * SYNC marks a point where the warp must wait for all of its
 * outstanding loads, which is how the generator expresses the
 * load-use dependency distance (memory-level parallelism).
 */

#ifndef MMGPU_ISA_INSTRUCTION_HH
#define MMGPU_ISA_INSTRUCTION_HH

#include <cstdint>

#include "common/units.hh"
#include "isa/opcode.hh"

namespace mmgpu::isa
{

/** Number of threads per warp (fixed across NVIDIA generations). */
inline constexpr unsigned warpSize = 32;

/** Memory transaction granularities (see DESIGN.md §4). */
inline constexpr Bytes sectorBytes = 32;    //!< L2/DRAM sector
inline constexpr Bytes cacheLineBytes = 128; //!< L1 line (4 sectors)

/** Kind of warp-level trace event. */
enum class TraceOpKind : std::uint8_t
{
    Compute,      //!< one ALU/SFU instruction
    ComputeBlock, //!< a dependent chain of compute instructions,
                  //!< pre-aggregated for simulation efficiency
    Load,         //!< global or shared load
    Store,        //!< global or shared store
    Sync,         //!< wait for all outstanding memory ops of this warp
    Exit,         //!< warp terminates
};

/** One warp-level trace event. */
struct TraceOp
{
    TraceOpKind kind = TraceOpKind::Exit;

    /** Opcode (valid for Compute/Load/Store). */
    Opcode op = Opcode::FADD32;

    /**
     * First byte address of the access (valid for global Load/Store).
     * Sector-aligned by the generator.
     */
    std::uint64_t addr = 0;

    /**
     * Number of distinct 32 B sectors this warp access touches after
     * coalescing: 1 for fully coalesced within a sector, 4 for a full
     * 128 B line, up to 8 to model memory divergence. Divergent
     * accesses touch consecutive sector-strided addresses starting at
     * @c addr (a modelling simplification that preserves bandwidth
     * and energy cost).
     */
    std::uint8_t sectors = 1;

    /**
     * ComputeBlock only: total issue slots of the chain (low 32 bits
     * of @c addr) and total dependent-chain latency in cycles (high
     * 32 bits). Per-opcode instruction counts are taken from the
     * kernel profile's compute mix, which the block stands for.
     */
    std::uint32_t blockSlots() const
    {
        return static_cast<std::uint32_t>(addr);
    }
    std::uint32_t blockLatency() const
    {
        return static_cast<std::uint32_t>(addr >> 32);
    }

    /** Build a compute op. */
    static TraceOp
    compute(Opcode op)
    {
        return {TraceOpKind::Compute, op, 0, 0};
    }

    /** Build a compute block with @p slots issue slots and @p latency
     *  cycles of dependent-chain latency. */
    static TraceOp
    computeBlock(std::uint32_t slots, std::uint32_t latency)
    {
        std::uint64_t packed =
            static_cast<std::uint64_t>(latency) << 32 | slots;
        return {TraceOpKind::ComputeBlock, Opcode::MOV32, packed, 0};
    }

    /** Build a global load touching @p sectors sectors at @p addr. */
    static TraceOp
    loadGlobal(std::uint64_t addr, std::uint8_t sectors = 1)
    {
        return {TraceOpKind::Load, Opcode::LD_GLOBAL, addr, sectors};
    }

    /** Build a global store touching @p sectors sectors at @p addr. */
    static TraceOp
    storeGlobal(std::uint64_t addr, std::uint8_t sectors = 1)
    {
        return {TraceOpKind::Store, Opcode::ST_GLOBAL, addr, sectors};
    }

    /** Build a shared-memory load (no address: SRAM, always local). */
    static TraceOp
    loadShared()
    {
        return {TraceOpKind::Load, Opcode::LD_SHARED, 0, 1};
    }

    /** Build a SYNC (wait-for-outstanding-loads) marker. */
    static TraceOp
    sync()
    {
        return {TraceOpKind::Sync, Opcode::MOV32, 0, 0};
    }

    /** Build the warp-exit marker. */
    static TraceOp
    exit()
    {
        return {TraceOpKind::Exit, Opcode::MOV32, 0, 0};
    }
};

/**
 * Memory transaction levels used by the EPT table (Table Ib rows).
 * These name the *edge* of the hierarchy a transfer crosses.
 */
enum class TxnLevel : std::uint8_t
{
    SharedToReg,  //!< shared memory SRAM -> register file, 128 B
    L1ToReg,      //!< L1 cache -> register file, 128 B
    L2ToL1,       //!< L2 cache -> L1, 32 B sector
    DramToL2,     //!< DRAM -> L2, 32 B sector
    NumLevels
};

/** Number of transaction levels (for dense EPT tables). */
inline constexpr std::size_t numTxnLevels =
    static_cast<std::size_t>(TxnLevel::NumLevels);

/** @return human-readable name for @p level. */
const char *txnLevelName(TxnLevel level);

/** @return transfer size in bytes for @p level (128 B or 32 B). */
Bytes txnBytes(TxnLevel level);

} // namespace mmgpu::isa

#endif // MMGPU_ISA_INSTRUCTION_HH
