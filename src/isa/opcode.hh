/**
 * @file
 * PTX-subset opcode definitions.
 *
 * The opcode set mirrors the instructions the paper characterises in
 * Table Ib, plus the data-movement operations (loads/stores) and the
 * bookkeeping MOV used by microbenchmark prologues. GPUJoule's EPI
 * table is keyed by these opcodes; the performance simulator uses the
 * same opcodes so event counts and energy costs can never diverge.
 */

#ifndef MMGPU_ISA_OPCODE_HH
#define MMGPU_ISA_OPCODE_HH

#include <cstdint>
#include <optional>
#include <string>

namespace mmgpu::isa
{

/** Compute and memory opcodes of the modelled PTX subset. */
enum class Opcode : std::uint8_t
{
    // 32-bit float pipeline.
    FADD32,
    FMUL32,
    FFMA32,
    // 32-bit integer pipeline.
    IADD32,
    ISUB32,
    IMUL32,
    IMAD32,
    // 32-bit bitwise.
    AND32,
    OR32,
    XOR32,
    // Special function unit.
    SIN32,
    COS32,
    SQRT32,
    LG232,
    EX232,
    RCP32,
    // 64-bit float pipeline.
    FADD64,
    FMUL64,
    FFMA64,
    // Register bookkeeping.
    MOV32,
    // Memory operations (the EPT table keys off the transaction
    // level, but the trace carries the opcode).
    LD_GLOBAL,
    ST_GLOBAL,
    LD_SHARED,
    ST_SHARED,

    NumOpcodes
};

/** Number of opcodes (for dense tables keyed by opcode). */
inline constexpr std::size_t numOpcodes =
    static_cast<std::size_t>(Opcode::NumOpcodes);

/** Execution-unit class an opcode dispatches to. */
enum class FuncUnit : std::uint8_t
{
    FP32,   //!< single-precision float pipe
    FP64,   //!< double-precision float pipe
    INT32,  //!< integer pipe
    SFU,    //!< special function unit
    MOVE,   //!< register move
    LDST,   //!< load/store unit
};

/** Coarse category used for reporting and workload mixes. */
enum class OpClass : std::uint8_t
{
    Compute,  //!< any ALU/SFU instruction
    Memory,   //!< load/store
};

/** @return the PTX-style mnemonic, e.g. "fma.rn.f32". */
const char *mnemonic(Opcode op);

/** @return execution unit for @p op. */
FuncUnit funcUnit(Opcode op);

/** @return Compute or Memory. */
OpClass opClass(Opcode op);

/** @return true for load opcodes. */
bool isLoad(Opcode op);

/** @return true for store opcodes. */
bool isStore(Opcode op);

/** @return true for any memory opcode. */
inline bool isMemory(Opcode op) { return opClass(op) == OpClass::Memory; }

/**
 * Default pipeline latency of @p op in core cycles, used by the
 * performance simulator for dependent-issue spacing. Values follow
 * published Kepler instruction-latency measurements to first order.
 */
std::uint32_t defaultLatency(Opcode op);

/**
 * Issue-slot cost of @p op relative to an FP32 instruction. Kepler
 * executes FP64 at 1/3 rate and SFU ops at 1/8 rate per SM; the
 * simulator charges extra issue slots instead of modelling separate
 * unit pools.
 */
std::uint32_t issueCost(Opcode op);

/**
 * Parse a PTX-style mnemonic (e.g. "add.f32", "ld.global.f32")
 * into an opcode.
 * @return std::nullopt when the mnemonic is not in the subset.
 */
std::optional<Opcode> parseMnemonic(const std::string &text);

/** Iteration helper: opcode from dense index. @pre i < numOpcodes. */
Opcode opcodeFromIndex(std::size_t i);

} // namespace mmgpu::isa

#endif // MMGPU_ISA_OPCODE_HH
