/**
 * @file
 * Virtual silicon: the "real GPU" the GPUJoule methodology measures.
 *
 * The paper calibrates and validates GPUJoule against an NVIDIA Tesla
 * K40 with an on-board power sensor. Here the K40 is replaced by a
 * virtual device with *hidden* ground-truth energy coefficients: the
 * calibration pipeline may only observe it through the NVML-like
 * power sensor (power/sensor.hh), never read the coefficients
 * directly. This preserves the paper's measurement problem — the
 * model must recover per-instruction energies from noisy, quantized,
 * time-averaged power readings — and lets us quantify the protocol's
 * error exactly (Figures 4a/4b).
 *
 * The ground truth also carries effects the GPUJoule model class
 * deliberately omits, reproducing the paper's documented validation
 * outliers: a memory-subsystem active floor (burned whenever a kernel
 * runs, even at near-zero traffic — RSBench/CoMD underestimation)
 * and kernel-length sensitivity through the sensor model (BFS/MiniAMR
 * misprediction).
 */

#ifndef MMGPU_POWER_SILICON_HH
#define MMGPU_POWER_SILICON_HH

#include <array>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "isa/instruction.hh"
#include "isa/opcode.hh"

namespace mmgpu::power
{

/** Hidden per-device energy coefficients. */
struct GroundTruth
{
    /** Joules per thread-level instruction, per opcode. */
    std::array<Joules, isa::numOpcodes> epi{};

    /** Joules per memory transaction, per TxnLevel. */
    std::array<Joules, isa::numTxnLevels> ept{};

    /** Device idle power (VRs, PDN, host I/O, leakage). */
    Watts idlePower = 0.0;

    /**
     * Memory-subsystem background power: once there is *any* DRAM
     * traffic the DRAM exits self-refresh and burns a background
     * power that per-transaction accounting cannot see. The
     * background is fully exposed at very low utilization and
     * amortized into per-transaction costs as traffic grows:
     *   P_floor(u) = memActiveFloor * exp(-u / memFloorKnee)
     * for u > 0, with u = DRAM sector rate / dramSectorRateMax.
     * The sharp knee means only applications that keep the DRAM
     * *nearly* idle expose the background — the nonlinearity behind
     * GPUJoule's documented underestimation for low-memory-
     * utilization applications (paper §IV-B2: RSBench, CoMD).
     */
    Watts memActiveFloor = 0.0;

    /** Utilization scale of the background's decay. */
    double memFloorKnee = 0.08;

    /** DRAM sector rate (32 B transactions/s) at peak bandwidth,
     *  used to compute the utilization u above. */
    double dramSectorRateMax = 1.0;

    /** Joules per SM-cycle spent stalled with resident work. */
    Joules stallEnergyPerSmCycle = 0.0;
};

/**
 * Steady-state activity of the device while a kernel runs.
 * Rates are per second of wall-clock time.
 */
struct ActivityRates
{
    /** Thread-level instructions per second, per opcode. */
    std::array<double, isa::numOpcodes> instrRates{};

    /** Memory transactions per second, per TxnLevel. */
    std::array<double, isa::numTxnLevels> txnRates{};

    /** SM stall cycles per second (summed over SMs). */
    double stallRate = 0.0;
};

/**
 * A piecewise-constant power-versus-time trace with O(log n) lookup
 * and integration (prefix sums over phase boundaries).
 */
class PowerTimeline
{
  public:
    /** Append a phase of @p duration seconds at @p watts. */
    void
    addPhase(Seconds duration, Watts watts)
    {
        if (duration <= 0.0)
            return;
        watts_.push_back(watts);
        endTimes.push_back((endTimes.empty() ? 0.0 : endTimes.back()) +
                           duration);
        cumEnergy.push_back(
            (cumEnergy.empty() ? 0.0 : cumEnergy.back()) +
            watts * duration);
    }

    /** Total duration. */
    Seconds
    duration() const
    {
        return endTimes.empty() ? 0.0 : endTimes.back();
    }

    /** Number of phases. */
    std::size_t phaseCount() const { return watts_.size(); }

    /** Instantaneous power at time @p t (0 past the end). */
    Watts powerAt(Seconds t) const;

    /** Exact energy over [t0, t1] (ground truth integration). */
    Joules integrate(Seconds t0, Seconds t1) const;

    /** Exact total energy. */
    Joules totalEnergy() const { return integrate(0.0, duration()); }

  private:
    /** Cumulative energy from 0 to @p t. */
    Joules cumulativeTo(Seconds t) const;

    std::vector<Watts> watts_;
    std::vector<Seconds> endTimes;  //!< end time of each phase
    std::vector<Joules> cumEnergy;  //!< energy from 0 to each end
};

/** The virtual device. */
class SiliconGpu
{
  public:
    /** @param truth Hidden coefficients (calibration code must not
     *         retain access to them; only tests may). */
    explicit SiliconGpu(GroundTruth truth) : truth_(std::move(truth)) {}

    /** True steady-state power for a running kernel with @p rates. */
    Watts kernelPower(const ActivityRates &rates) const;

    /** True idle power. */
    Watts idlePower() const { return truth_.idlePower; }

    /**
     * Ground truth accessor — for tests and oracle comparisons only
     * (the calibration pipeline never calls this).
     */
    const GroundTruth &oracle() const { return truth_; }

  private:
    GroundTruth truth_;
};

} // namespace mmgpu::power

#endif // MMGPU_POWER_SILICON_HH
