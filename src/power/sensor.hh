/**
 * @file
 * NVML-like on-board power sensor model.
 *
 * The paper's measurements use the K40's on-board sensor through
 * NVML. Its documented properties drive GPUJoule's validation
 * behaviour (paper §IV-B2): a ~15 ms refresh period, time-averaged
 * readings (the sensor integrates over its refresh window and lags
 * behind fast transients), coarse quantization, and small reading
 * noise. Long, steady microbenchmarks measure accurately; workloads
 * with kernels much shorter than the refresh period (BFS, MiniAMR)
 * are mispredicted — exactly the outliers of Figure 4b.
 */

#ifndef MMGPU_POWER_SENSOR_HH
#define MMGPU_POWER_SENSOR_HH

#include "common/rng.hh"
#include "common/units.hh"
#include "power/silicon.hh"

namespace mmgpu::power
{

/** Sensor characteristics. */
struct SensorSpec
{
    /** Refresh period (paper cites 15 ms for the K40 sensor). */
    Seconds refreshPeriod = 15e-3;

    /** First-order response time constant: the reported value tracks
     *  an exponentially weighted average of true power. */
    Seconds responseTau = 45e-3;

    /** Reading quantization step (NVML reports milliwatts but the
     *  K40 sensor is only ~1 W accurate). */
    Watts quantization = 1.0;

    /** Relative Gaussian reading noise (sigma). */
    double noiseSigma = 0.005;
};

/** Samples a PowerTimeline the way the on-board sensor would. */
class PowerSensor
{
  public:
    /**
     * @param spec Sensor characteristics.
     * @param seed Noise stream seed.
     */
    explicit PowerSensor(SensorSpec spec = {},
                         std::uint64_t seed = 0x5e4507);

    /**
     * The value the sensor would report at time @p t into
     * @p timeline: the exponentially weighted average of true power
     * (time constant responseTau), held since the last refresh tick,
     * quantized and noisy.
     */
    Watts read(const PowerTimeline &timeline, Seconds t);

    /** The spec in use. */
    const SensorSpec &spec() const { return spec_; }

  private:
    /** EWA of true power at time @p t (continuous model). */
    double filteredPower(const PowerTimeline &timeline,
                         Seconds t) const;

    SensorSpec spec_;
    Rng rng;
};

} // namespace mmgpu::power

#endif // MMGPU_POWER_SENSOR_HH
