/**
 * @file
 * NVML-like on-board power sensor model.
 *
 * The paper's measurements use the K40's on-board sensor through
 * NVML. Its documented properties drive GPUJoule's validation
 * behaviour (paper §IV-B2): a ~15 ms refresh period, time-averaged
 * readings (the sensor integrates over its refresh window and lags
 * behind fast transients), coarse quantization, and small reading
 * noise. Long, steady microbenchmarks measure accurately; workloads
 * with kernels much shorter than the refresh period (BFS, MiniAMR)
 * are mispredicted — exactly the outliers of Figure 4b.
 */

#ifndef MMGPU_POWER_SENSOR_HH
#define MMGPU_POWER_SENSOR_HH

#include <optional>

#include "common/rng.hh"
#include "common/units.hh"
#include "fault/fault_plan.hh"
#include "power/silicon.hh"

namespace mmgpu::power
{

/** Sensor characteristics. */
struct SensorSpec
{
    /** Refresh period (paper cites 15 ms for the K40 sensor). */
    Seconds refreshPeriod = 15e-3;

    /** First-order response time constant: the reported value tracks
     *  an exponentially weighted average of true power. */
    Seconds responseTau = 45e-3;

    /** Reading quantization step (NVML reports milliwatts but the
     *  K40 sensor is only ~1 W accurate). */
    Watts quantization = 1.0;

    /** Relative Gaussian reading noise (sigma). */
    double noiseSigma = 0.005;
};

/** One sensor read with its fault annotations. */
struct SensorSample
{
    /** Reported value; 0 when the read dropped out. */
    Watts value = 0.0;

    /** False when the read returned no sample (an NVML error). */
    bool valid = true;

    /** The read was an injected outlier spike. */
    bool spiked = false;

    /** The read was offset by an injected quantization glitch. */
    bool glitched = false;
};

/** Injected-fault accounting since construction. */
struct SensorFaultStats
{
    Count reads = 0;
    Count dropouts = 0;
    Count spikes = 0;
    Count glitches = 0;
};

/** Samples a PowerTimeline the way the on-board sensor would. */
class PowerSensor
{
  public:
    /**
     * @param spec Sensor characteristics.
     * @param seed Noise stream seed.
     */
    explicit PowerSensor(SensorSpec spec = {},
                         std::uint64_t seed = 0x5e4507);

    /**
     * The value the sensor would report at time @p t into
     * @p timeline: the exponentially weighted average of true power
     * (time constant responseTau), held since the last refresh tick,
     * quantized and noisy. With faults attached, a dropped-out read
     * reports 0 — callers that must distinguish use sample().
     */
    Watts read(const PowerTimeline &timeline, Seconds t);

    /** Like read(), but reporting dropout/spike/glitch status. */
    SensorSample sample(const PowerTimeline &timeline, Seconds t);

    /**
     * Inject faults per @p faults into every subsequent read, drawn
     * from a stream seeded by @p seed (independent of the noise
     * stream, so the underlying noise sequence is unchanged).
     * Detached sensors behave exactly as before — the fault path
     * costs nothing when never attached.
     */
    void attachFaults(const fault::SensorFaultSpec &faults,
                      std::uint64_t seed);

    /** Injected-fault counters (zero when faults never attached). */
    const SensorFaultStats &faultStats() const { return faultStats_; }

    /** The spec in use. */
    const SensorSpec &spec() const { return spec_; }

  private:
    /** EWA of true power at time @p t (continuous model). */
    double filteredPower(const PowerTimeline &timeline,
                         Seconds t) const;

    SensorSpec spec_;
    Rng rng;
    std::optional<fault::SensorFaultSpec> faults_;
    Rng faultRng_{0};
    SensorFaultStats faultStats_;
};

} // namespace mmgpu::power

#endif // MMGPU_POWER_SENSOR_HH
