#include "power/sensor.hh"

#include <cmath>

#include "common/logging.hh"

namespace mmgpu::power
{

PowerSensor::PowerSensor(SensorSpec spec, std::uint64_t seed)
    : spec_(spec), rng(seed)
{
    if (spec_.refreshPeriod <= 0.0 || spec_.responseTau <= 0.0)
        mmgpu_fatal("sensor with non-positive time constants");
}

double
PowerSensor::filteredPower(const PowerTimeline &timeline,
                           Seconds t) const
{
    // Exponentially weighted average of the piecewise-constant true
    // power, computed analytically phase by phase:
    //   Pf(t) = P(0) e^{-t/tau}
    //         + sum_i w_i (e^{-(t-hi)/tau} - e^{-(t-lo)/tau})
    // where [lo, hi] is phase i clipped to [0, t].
    // Contributions older than ~12 tau are below 1e-5 of the result;
    // approximate pre-history by its average power and integrate the
    // recent window in slices much finer than tau. Slicing a
    // piecewise-constant signal with integrate()-averaged slices is
    // the correct first-order-filter behaviour at sub-slice scale.
    const double tau = spec_.responseTau;
    const Seconds window = 12.0 * tau;
    Seconds start = t > window ? t - window : 0.0;

    double history;
    if (start > 0.0) {
        Seconds h0 = start > 2.0 * tau ? start - 2.0 * tau : 0.0;
        history = start > h0
                      ? timeline.integrate(h0, start) / (start - h0)
                      : timeline.powerAt(0.0);
    } else {
        history = timeline.powerAt(0.0);
    }
    double filtered = history * std::exp(-(t - start) / tau);

    const Seconds slice = tau / 16.0;
    Seconds cursor = start;
    while (cursor < t) {
        Seconds hi = cursor + slice < t ? cursor + slice : t;
        double avg = timeline.integrate(cursor, hi) / (hi - cursor);
        filtered += avg * (std::exp(-(t - hi) / tau) -
                           std::exp(-(t - cursor) / tau));
        cursor = hi;
    }
    return filtered;
}

void
PowerSensor::attachFaults(const fault::SensorFaultSpec &faults,
                          std::uint64_t seed)
{
    faults_ = faults;
    faultRng_ = Rng(seed);
}

Watts
PowerSensor::read(const PowerTimeline &timeline, Seconds t)
{
    return sample(timeline, t).value;
}

SensorSample
PowerSensor::sample(const PowerTimeline &timeline, Seconds t)
{
    mmgpu_assert(t >= 0.0, "sensor read before time zero");
    // The register updates every refreshPeriod; a read returns the
    // value latched at the most recent refresh tick. floor(t/T) can
    // round the quotient below the integer when t is an exact
    // multiple of T (t/T lands one ulp under the integer), so bump k
    // whenever the next tick is still <= t: a read landing exactly
    // on a refresh boundary sees that boundary's latch.
    double k = std::floor(t / spec_.refreshPeriod);
    if ((k + 1.0) * spec_.refreshPeriod <= t)
        k += 1.0;
    Seconds latch = k * spec_.refreshPeriod;

    SensorSample out;
    if (faults_) {
        ++faultStats_.reads;
        // Latch jitter: the refresh tick lands late, so a read just
        // after a nominal tick can still see the previous latch.
        if (faults_->jitterFraction > 0.0 && latch > 0.0) {
            Seconds late = faults_->jitterFraction *
                           spec_.refreshPeriod * faultRng_.uniform();
            if (latch + late > t)
                latch -= spec_.refreshPeriod;
            if (latch < 0.0)
                latch = 0.0;
        }
        if (faultRng_.chance(faults_->dropoutRate)) {
            ++faultStats_.dropouts;
            out.valid = false;
            out.value = 0.0;
            return out;
        }
        out.spiked = faultRng_.chance(faults_->spikeRate);
        out.glitched =
            !out.spiked && faultRng_.chance(faults_->glitchRate);
    }

    double value = filteredPower(timeline, latch);
    value *= 1.0 + spec_.noiseSigma * rng.gaussian();
    if (out.spiked) {
        ++faultStats_.spikes;
        value *= 1.0 + faults_->spikeMagnitude;
    }
    if (out.glitched) {
        ++faultStats_.glitches;
        double step = spec_.quantization > 0.0 ? spec_.quantization
                                               : 1.0;
        double sign = faultRng_.chance(0.5) ? 1.0 : -1.0;
        value += sign * faults_->glitchSteps * step;
    }
    if (spec_.quantization > 0.0)
        value = std::round(value / spec_.quantization) *
                spec_.quantization;
    out.value = value < 0.0 ? 0.0 : value;
    return out;
}

} // namespace mmgpu::power
