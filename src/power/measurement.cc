#include "power/measurement.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace mmgpu::power
{

Watts
PowerMeter::measureSteadyPower(const PowerTimeline &timeline,
                               Seconds roi_start, Seconds roi_end)
{
    mmgpu_assert(roi_end >= roi_start, "inverted measurement ROI");
    const Seconds period = sensor->spec().refreshPeriod;
    double sum = 0.0;
    unsigned samples = 0;
    for (Seconds t = roi_start + period; t <= roi_end; t += period) {
        sum += sensor->read(timeline, t);
        ++samples;
    }
    if (samples == 0) {
        // ROI shorter than one refresh period: best the tool can do
        // is a single read at the end.
        return sensor->read(timeline, roi_end);
    }
    return sum / samples;
}

SteadyMeasurement
PowerMeter::measureSteadyPowerRobust(const PowerTimeline &timeline,
                                     Seconds roi_start,
                                     Seconds roi_end,
                                     double min_valid_fraction)
{
    mmgpu_assert(roi_end >= roi_start, "inverted measurement ROI");
    const Seconds period = sensor->spec().refreshPeriod;

    std::vector<double> values;
    unsigned polls = 0;
    SteadyMeasurement out;
    for (Seconds t = roi_start + period; t <= roi_end; t += period) {
        ++polls;
        SensorSample s = sensor->sample(timeline, t);
        if (!s.valid) {
            ++out.dropped;
            continue;
        }
        values.push_back(s.value);
    }
    if (polls == 0) {
        // ROI shorter than one refresh period: a single read is all
        // the protocol can offer.
        SensorSample s = sensor->sample(timeline, roi_end);
        polls = 1;
        if (s.valid)
            values.push_back(s.value);
        else
            ++out.dropped;
    }
    out.samples = static_cast<unsigned>(values.size());
    if (values.empty()) {
        out.ok = false;
        return out;
    }

    // Median of contiguous-window means: split the surviving samples
    // into up to five windows; a spike inflates at most one window's
    // mean and the median rejects it. With fewer than five samples
    // this degrades to the plain median of the reads.
    const std::size_t window_count =
        std::min<std::size_t>(5, values.size());
    std::vector<double> means;
    means.reserve(window_count);
    const std::size_t base = values.size() / window_count;
    const std::size_t extra = values.size() % window_count;
    std::size_t cursor = 0;
    for (std::size_t w = 0; w < window_count; ++w) {
        std::size_t len = base + (w < extra ? 1 : 0);
        double sum = 0.0;
        for (std::size_t i = 0; i < len; ++i)
            sum += values[cursor + i];
        means.push_back(sum / static_cast<double>(len));
        cursor += len;
    }
    std::sort(means.begin(), means.end());
    const std::size_t mid = means.size() / 2;
    out.power = means.size() % 2 == 1
                    ? means[mid]
                    : 0.5 * (means[mid - 1] + means[mid]);
    out.ok = static_cast<double>(out.samples) >=
             min_valid_fraction * static_cast<double>(polls);
    return out;
}

Joules
PowerMeter::attributeKernelEnergy(
    const PowerTimeline &timeline,
    const std::vector<KernelWindow> &windows)
{
    Joules total = 0.0;
    for (const auto &window : windows) {
        mmgpu_assert(window.end >= window.start,
                     "inverted kernel window");
        Watts at_end = sensor->read(timeline, window.end);
        total += at_end * (window.end - window.start);
    }
    return total;
}

} // namespace mmgpu::power
