#include "power/measurement.hh"

#include "common/logging.hh"

namespace mmgpu::power
{

Watts
PowerMeter::measureSteadyPower(const PowerTimeline &timeline,
                               Seconds roi_start, Seconds roi_end)
{
    mmgpu_assert(roi_end > roi_start, "empty measurement ROI");
    const Seconds period = sensor->spec().refreshPeriod;
    double sum = 0.0;
    unsigned samples = 0;
    for (Seconds t = roi_start + period; t <= roi_end; t += period) {
        sum += sensor->read(timeline, t);
        ++samples;
    }
    if (samples == 0) {
        // ROI shorter than one refresh period: best the tool can do
        // is a single read at the end.
        return sensor->read(timeline, roi_end);
    }
    return sum / samples;
}

Joules
PowerMeter::attributeKernelEnergy(
    const PowerTimeline &timeline,
    const std::vector<KernelWindow> &windows)
{
    Joules total = 0.0;
    for (const auto &window : windows) {
        mmgpu_assert(window.end >= window.start,
                     "inverted kernel window");
        Watts at_end = sensor->read(timeline, window.end);
        total += at_end * (window.end - window.start);
    }
    return total;
}

} // namespace mmgpu::power
