#include "power/silicon.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mmgpu::power
{

Watts
PowerTimeline::powerAt(Seconds t) const
{
    if (t < 0.0 || endTimes.empty() || t >= endTimes.back())
        return 0.0;
    auto it = std::upper_bound(endTimes.begin(), endTimes.end(), t);
    return watts_[static_cast<std::size_t>(it - endTimes.begin())];
}

Joules
PowerTimeline::cumulativeTo(Seconds t) const
{
    if (t <= 0.0 || endTimes.empty())
        return 0.0;
    if (t >= endTimes.back())
        return cumEnergy.back();
    auto it = std::upper_bound(endTimes.begin(), endTimes.end(), t);
    auto idx = static_cast<std::size_t>(it - endTimes.begin());
    Joules before = idx == 0 ? 0.0 : cumEnergy[idx - 1];
    Seconds phase_start = idx == 0 ? 0.0 : endTimes[idx - 1];
    return before + watts_[idx] * (t - phase_start);
}

Joules
PowerTimeline::integrate(Seconds t0, Seconds t1) const
{
    mmgpu_assert(t1 >= t0, "inverted integration bounds");
    return cumulativeTo(t1) - cumulativeTo(t0);
}

Watts
SiliconGpu::kernelPower(const ActivityRates &rates) const
{
    Watts power = truth_.idlePower;
    for (std::size_t i = 0; i < isa::numOpcodes; ++i)
        power += rates.instrRates[i] * truth_.epi[i];
    for (std::size_t i = 0; i < isa::numTxnLevels; ++i)
        power += rates.txnRates[i] * truth_.ept[i];
    power += rates.stallRate * truth_.stallEnergyPerSmCycle;

    // DRAM background: exposed at low utilization, amortized into
    // per-transaction energy near peak (see GroundTruth docs).
    double dram_rate = rates.txnRates[static_cast<std::size_t>(
        isa::TxnLevel::DramToL2)];
    if (dram_rate > 0.0 && truth_.dramSectorRateMax > 0.0 &&
        truth_.memFloorKnee > 0.0) {
        double u = dram_rate / truth_.dramSectorRateMax;
        if (u > 1.0)
            u = 1.0;
        power += truth_.memActiveFloor *
                 std::exp(-u / truth_.memFloorKnee);
    }
    return power;
}

} // namespace mmgpu::power
