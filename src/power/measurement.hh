/**
 * @file
 * Power-measurement protocols over the sensor.
 *
 * These reproduce how the paper's measurements are actually taken on
 * hardware: polling the NVML-like sensor while a benchmark runs.
 * Two protocols are provided:
 *
 *  - steady-state power (microbenchmarks, Eq. 5): average the
 *    sensor over the steady region of a long-running benchmark;
 *  - per-kernel energy attribution (application validation):
 *    attribute to each kernel window the sensor reading observed at
 *    its end times its duration — accurate for kernels much longer
 *    than the sensor response, systematically off for sub-refresh
 *    kernels, reproducing the paper's BFS/MiniAMR outliers.
 */

#ifndef MMGPU_POWER_MEASUREMENT_HH
#define MMGPU_POWER_MEASUREMENT_HH

#include <vector>

#include "power/sensor.hh"
#include "power/silicon.hh"

namespace mmgpu::power
{

/** A kernel-execution window within a timeline. */
struct KernelWindow
{
    Seconds start = 0.0;
    Seconds end = 0.0;
};

/** Outcome of a fault-aware steady-state measurement. */
struct SteadyMeasurement
{
    /** Robust steady-power estimate over the ROI. */
    Watts power = 0.0;

    /** Valid samples that went into the estimate. */
    unsigned samples = 0;

    /** Dropped-out reads (NVML errors) within the ROI. */
    unsigned dropped = 0;

    /** True when enough reads survived to trust the estimate. */
    bool ok = false;
};

/** Measurement protocols. */
class PowerMeter
{
  public:
    /** @param sensor Sensor to poll (not owned). */
    explicit PowerMeter(PowerSensor &sensor) : sensor(&sensor) {}

    /**
     * Average sensor reading over [roi_start, roi_end], polling at
     * the sensor's refresh period (the paper's steady-state
     * microbenchmark protocol). A zero-length ROI degrades to a
     * single read at roi_end.
     */
    Watts measureSteadyPower(const PowerTimeline &timeline,
                             Seconds roi_start, Seconds roi_end);

    /**
     * Outlier-robust variant for faulty sensors: polls like
     * measureSteadyPower but discards dropped-out reads, then
     * estimates steady power as the median of window means (the
     * samples are split into up to five contiguous windows; a spike
     * inflates one window's mean and the median rejects it). The
     * result is flagged not-ok when fewer than
     * @p min_valid_fraction of the polls survived — callers retry
     * with a longer ROI (per-microbench retry-with-backoff).
     */
    SteadyMeasurement
    measureSteadyPowerRobust(const PowerTimeline &timeline,
                             Seconds roi_start, Seconds roi_end,
                             double min_valid_fraction = 0.5);

    /**
     * Per-kernel energy attribution: for each window, energy is the
     * sensor value at the window's end times the window duration,
     * summed over all windows (how per-kernel power tooling
     * attributes energy on real hardware).
     */
    Joules attributeKernelEnergy(
        const PowerTimeline &timeline,
        const std::vector<KernelWindow> &windows);

    /**
     * Energy-per-instruction per Eq. 5:
     *   (P_active - P_idle) * exec_time / instruction_count.
     */
    static Joules
    energyPerEvent(Watts active, Watts idle, Seconds exec_time,
                   double event_count)
    {
        if (event_count <= 0.0)
            return 0.0;
        return (active - idle) * exec_time / event_count;
    }

  private:
    PowerSensor *sensor;
};

} // namespace mmgpu::power

#endif // MMGPU_POWER_MEASUREMENT_HH
