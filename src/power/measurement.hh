/**
 * @file
 * Power-measurement protocols over the sensor.
 *
 * These reproduce how the paper's measurements are actually taken on
 * hardware: polling the NVML-like sensor while a benchmark runs.
 * Two protocols are provided:
 *
 *  - steady-state power (microbenchmarks, Eq. 5): average the
 *    sensor over the steady region of a long-running benchmark;
 *  - per-kernel energy attribution (application validation):
 *    attribute to each kernel window the sensor reading observed at
 *    its end times its duration — accurate for kernels much longer
 *    than the sensor response, systematically off for sub-refresh
 *    kernels, reproducing the paper's BFS/MiniAMR outliers.
 */

#ifndef MMGPU_POWER_MEASUREMENT_HH
#define MMGPU_POWER_MEASUREMENT_HH

#include <vector>

#include "power/sensor.hh"
#include "power/silicon.hh"

namespace mmgpu::power
{

/** A kernel-execution window within a timeline. */
struct KernelWindow
{
    Seconds start = 0.0;
    Seconds end = 0.0;
};

/** Measurement protocols. */
class PowerMeter
{
  public:
    /** @param sensor Sensor to poll (not owned). */
    explicit PowerMeter(PowerSensor &sensor) : sensor(&sensor) {}

    /**
     * Average sensor reading over [roi_start, roi_end], polling at
     * the sensor's refresh period (the paper's steady-state
     * microbenchmark protocol).
     */
    Watts measureSteadyPower(const PowerTimeline &timeline,
                             Seconds roi_start, Seconds roi_end);

    /**
     * Per-kernel energy attribution: for each window, energy is the
     * sensor value at the window's end times the window duration,
     * summed over all windows (how per-kernel power tooling
     * attributes energy on real hardware).
     */
    Joules attributeKernelEnergy(
        const PowerTimeline &timeline,
        const std::vector<KernelWindow> &windows);

    /**
     * Energy-per-instruction per Eq. 5:
     *   (P_active - P_idle) * exec_time / instruction_count.
     */
    static Joules
    energyPerEvent(Watts active, Watts idle, Seconds exec_time,
                   double event_count)
    {
        if (event_count <= 0.0)
            return 0.0;
        return (active - idle) * exec_time / event_count;
    }

  private:
    PowerSensor *sensor;
};

} // namespace mmgpu::power

#endif // MMGPU_POWER_MEASUREMENT_HH
