#include "trace/warp_trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mmgpu::trace
{

namespace
{

/** Round @p v up to a multiple of @p align. */
std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) / align * align;
}

} // namespace

SegmentLayout::SegmentLayout(const KernelProfile &profile)
{
    // Start at one page so that address 0 is never a valid address.
    std::uint64_t cursor = pageBytes;
    for (const auto &segment : profile.segments) {
        bases.push_back(cursor);
        Bytes size = alignUp(segment.bytes, pageBytes);
        sizes.push_back(size);
        cursor += size;
    }
    end_ = cursor;
}

std::uint64_t
SegmentLayout::base(unsigned index) const
{
    mmgpu_assert(index < bases.size(), "segment index out of range");
    return bases[index];
}

Bytes
SegmentLayout::size(unsigned index) const
{
    mmgpu_assert(index < sizes.size(), "segment index out of range");
    return sizes[index];
}

unsigned
chunkOwnerCta(const KernelProfile &profile, const SegmentLayout &layout,
              unsigned seg, std::uint64_t addr)
{
    std::uint64_t base = layout.base(seg);
    Bytes size = layout.size(seg);
    mmgpu_assert(addr >= base && addr < base + size,
                 "address outside segment");
    Bytes chunk = alignUp(
        std::max<Bytes>(size / profile.ctaCount, isa::cacheLineBytes),
        isa::cacheLineBytes);
    std::uint64_t cta = (addr - base) / chunk;
    return static_cast<unsigned>(
        std::min<std::uint64_t>(cta, profile.ctaCount - 1));
}

WarpTrace::WarpTrace(const KernelProfile &prof,
                     const SegmentLayout &layout, unsigned launch,
                     unsigned cta, unsigned warp)
    : profile(&prof)
{
    reset(prof, layout, launch, cta, warp);
}

void
WarpTrace::reset(const KernelProfile &prof, const SegmentLayout &layout,
                 unsigned launch, unsigned cta, unsigned warp)
{
    profile = &prof;
    rng = Rng(prof.seed)
              .fork(0x1000003ull * launch + 1)
              .fork(0x9E370001ull * cta + 3)
              .fork(0x85EBCA77ull * warp + 7);
    schedKinds.clear();
    schedOps.clear();
    schedAccess.clear();
    loadLanes.clear();
    storeLanes.clear();
    iteration = 0;
    cursor = 0;
    drained_ = false;
    finished_ = false;

    mmgpu_assert(cta < prof.ctaCount && warp < prof.warpsPerCta,
                 "warp identifiers out of range");

    // Build per-access streaming state.
    auto push_state = [&](const SegmentAccess &access,
                          AccessLanes &lanes) {
        std::uint64_t seg_base = layout.base(access.segment);
        Bytes seg_size = layout.size(access.segment);

        // CTA-partitioned chunk, line aligned.
        Bytes chunk = alignUp(
            std::max<Bytes>(seg_size / prof.ctaCount,
                            isa::cacheLineBytes),
            isa::cacheLineBytes);
        std::uint64_t cta_offset = static_cast<std::uint64_t>(cta) * chunk;
        cta_offset %= seg_size; // wrap tiny segments
        std::uint64_t cta_base = seg_base + cta_offset;

        unsigned stride = std::max(1u, access.haloStride);
        unsigned up = (cta + stride) % prof.ctaCount;
        unsigned down = (cta + prof.ctaCount - stride % prof.ctaCount)
                        % prof.ctaCount;
        lanes.haloUpBase.push_back(
            seg_base +
            (static_cast<std::uint64_t>(up) * chunk) % seg_size);
        lanes.haloDownBase.push_back(
            seg_base +
            (static_cast<std::uint64_t>(down) * chunk) % seg_size);

        // Warp slice within the chunk.
        Bytes slice = alignUp(
            std::max<Bytes>(chunk / prof.warpsPerCta,
                            isa::cacheLineBytes),
            isa::cacheLineBytes);
        cta_base += static_cast<std::uint64_t>(warp % prof.warpsPerCta)
                    * slice;

        lanes.ctaBase.push_back(cta_base);
        lanes.span.push_back(slice);
        lanes.segBase.push_back(seg_base);
        lanes.segSize.push_back(seg_size);
        // Iterative apps: every launch re-walks the same bytes, so
        // position restarts at 0 for all launches by construction.
        lanes.position.push_back(0);
    };

    for (const auto &access : prof.loads)
        push_state(access, loadLanes);
    for (const auto &access : prof.stores)
        push_state(access, storeLanes);

    // Build the per-iteration schedule: global loads (memory-level
    // parallelism is enforced by the simulator's per-warp outstanding
    // window, not by explicit syncs), shared loads, one aggregated
    // compute block, stores.
    auto push_op = [&](SchedKind kind, isa::Opcode op,
                       std::uint32_t access_index) {
        schedKinds.push_back(kind);
        schedOps.push_back(op);
        schedAccess.push_back(access_index);
    };

    for (unsigned i = 0; i < prof.loads.size(); ++i) {
        for (unsigned n = 0; n < prof.loads[i].perIteration; ++n)
            push_op(SchedKind::GlobalLoad, isa::Opcode::LD_GLOBAL, i);
    }

    for (unsigned n = 0; n < prof.sharedLoadsPerIter; ++n)
        push_op(SchedKind::SharedLoad, isa::Opcode::LD_SHARED, 0);

    // Aggregate the compute mix into one dependent-chain block: the
    // block charges the SM issue pipeline for every instruction and
    // delays the warp by the serial chain latency.
    std::uint32_t block_slots = 0;
    std::uint32_t block_latency = 0;
    for (const auto &mix : prof.compute) {
        block_slots += mix.perIteration * isa::issueCost(mix.op);
        block_latency += mix.perIteration * isa::defaultLatency(mix.op);
    }
    if (block_slots > 0) {
        push_op(SchedKind::ComputeBlock, isa::Opcode::MOV32, 0);
        blockOp = isa::TraceOp::computeBlock(block_slots, block_latency);
    }

    for (unsigned i = 0; i < prof.stores.size(); ++i)
        for (unsigned n = 0; n < prof.stores[i].perIteration; ++n)
            push_op(SchedKind::GlobalStore, isa::Opcode::ST_GLOBAL, i);

    mmgpu_assert(!schedKinds.empty(),
                 "profile '", prof.name, "' generates empty warps");
    (void)launch;
}

namespace
{

/**
 * (pos + step) % limit for the streaming walks, where pos < limit
 * and step <= limit always hold — so the modulo is a single
 * compare-and-subtract instead of a hardware 64-bit division.
 */
inline std::uint64_t
wrapAdvance(std::uint64_t pos, std::uint64_t step, std::uint64_t limit)
{
    pos += step;
    return pos >= limit ? pos - limit : pos;
}

} // namespace

isa::TraceOp
WarpTrace::makeAccess(const SegmentAccess &access, AccessLanes &lanes,
                      unsigned index, bool is_store)
{
    std::uint64_t addr = 0;
    std::uint8_t sectors = 4; // fully coalesced 128 B line

    const Bytes line = isa::cacheLineBytes;
    std::uint64_t seg_base = lanes.segBase[index];
    Bytes seg_size = lanes.segSize[index];
    AccessPattern pattern = access.pattern;
    if (access.irregular > 0.0 && rng.chance(access.irregular))
        pattern = AccessPattern::Random;
    switch (pattern) {
      case AccessPattern::BlockStream:
        addr = lanes.ctaBase[index] + lanes.position[index];
        lanes.position[index] = wrapAdvance(lanes.position[index],
                                            line, lanes.span[index]);
        break;
      case AccessPattern::Stencil:
        if (rng.chance(access.haloFraction)) {
            std::uint64_t base = rng.chance(0.5)
                                     ? lanes.haloUpBase[index]
                                     : lanes.haloDownBase[index];
            addr = base + rng.below(lanes.span[index] / line) * line;
        } else {
            addr = lanes.ctaBase[index] + lanes.position[index];
            lanes.position[index] = wrapAdvance(
                lanes.position[index], line, lanes.span[index]);
        }
        break;
      case AccessPattern::Random:
      case AccessPattern::Chase:
        addr = seg_base + rng.below(seg_size / line) * line;
        break;
      case AccessPattern::Broadcast:
        addr = seg_base + lanes.position[index];
        lanes.position[index] =
            wrapAdvance(lanes.position[index], line, seg_size);
        break;
      default:
        mmgpu_panic("bad access pattern");
    }

    if (access.divergence > 0.0 && rng.chance(access.divergence))
        sectors = 8;

    // Keep divergent footprints inside the segment.
    std::uint64_t span_end = seg_base + seg_size;
    if (addr + sectors * isa::sectorBytes > span_end)
        addr = span_end - sectors * isa::sectorBytes;

    if (is_store)
        return isa::TraceOp::storeGlobal(addr, sectors);
    return isa::TraceOp::loadGlobal(addr, sectors);
}

isa::TraceOp
WarpTrace::materialize(std::size_t slot)
{
    std::uint32_t access = schedAccess[slot];
    switch (schedKinds[slot]) {
      case SchedKind::Compute:
        return isa::TraceOp::compute(schedOps[slot]);
      case SchedKind::ComputeBlock:
        return blockOp;
      case SchedKind::SharedLoad:
        return isa::TraceOp::loadShared();
      case SchedKind::GlobalLoad:
        return makeAccess(profile->loads[access], loadLanes, access,
                          false);
      case SchedKind::GlobalStore:
        return makeAccess(profile->stores[access], storeLanes, access,
                          true);
      case SchedKind::Sync:
        return isa::TraceOp::sync();
      default:
        mmgpu_panic("bad schedule op");
    }
}

} // namespace mmgpu::trace
