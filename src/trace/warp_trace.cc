#include "trace/warp_trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mmgpu::trace
{

namespace
{

/** Round @p v up to a multiple of @p align. */
std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) / align * align;
}

} // namespace

SegmentLayout::SegmentLayout(const KernelProfile &profile)
{
    // Start at one page so that address 0 is never a valid address.
    std::uint64_t cursor = pageBytes;
    for (const auto &segment : profile.segments) {
        bases.push_back(cursor);
        Bytes size = alignUp(segment.bytes, pageBytes);
        sizes.push_back(size);
        cursor += size;
    }
    end_ = cursor;
}

std::uint64_t
SegmentLayout::base(unsigned index) const
{
    mmgpu_assert(index < bases.size(), "segment index out of range");
    return bases[index];
}

Bytes
SegmentLayout::size(unsigned index) const
{
    mmgpu_assert(index < sizes.size(), "segment index out of range");
    return sizes[index];
}

unsigned
chunkOwnerCta(const KernelProfile &profile, const SegmentLayout &layout,
              unsigned seg, std::uint64_t addr)
{
    std::uint64_t base = layout.base(seg);
    Bytes size = layout.size(seg);
    mmgpu_assert(addr >= base && addr < base + size,
                 "address outside segment");
    Bytes chunk = alignUp(
        std::max<Bytes>(size / profile.ctaCount, isa::cacheLineBytes),
        isa::cacheLineBytes);
    std::uint64_t cta = (addr - base) / chunk;
    return static_cast<unsigned>(
        std::min<std::uint64_t>(cta, profile.ctaCount - 1));
}

WarpTrace::WarpTrace(const KernelProfile &prof,
                     const SegmentLayout &layout, unsigned launch,
                     unsigned cta, unsigned warp)
    : profile(&prof)
{
    reset(prof, layout, launch, cta, warp);
}

void
WarpTrace::reset(const KernelProfile &prof, const SegmentLayout &layout,
                 unsigned launch, unsigned cta, unsigned warp)
{
    profile = &prof;
    rng = Rng(prof.seed)
              .fork(0x1000003ull * launch + 1)
              .fork(0x9E370001ull * cta + 3)
              .fork(0x85EBCA77ull * warp + 7);
    schedule.clear();
    loadState.clear();
    storeState.clear();
    iteration = 0;
    cursor = 0;
    drained_ = false;
    finished_ = false;

    mmgpu_assert(cta < prof.ctaCount && warp < prof.warpsPerCta,
                 "warp identifiers out of range");

    // Build per-access streaming state.
    auto make_state = [&](const SegmentAccess &access) {
        AccessState state;
        state.segBase = layout.base(access.segment);
        state.segSize = layout.size(access.segment);

        // CTA-partitioned chunk, line aligned.
        Bytes chunk = alignUp(
            std::max<Bytes>(state.segSize / prof.ctaCount,
                            isa::cacheLineBytes),
            isa::cacheLineBytes);
        std::uint64_t cta_offset = static_cast<std::uint64_t>(cta) * chunk;
        cta_offset %= state.segSize; // wrap tiny segments
        state.ctaBase = state.segBase + cta_offset;

        unsigned stride = std::max(1u, access.haloStride);
        unsigned up = (cta + stride) % prof.ctaCount;
        unsigned down = (cta + prof.ctaCount - stride % prof.ctaCount)
                        % prof.ctaCount;
        state.haloUpBase =
            state.segBase +
            (static_cast<std::uint64_t>(up) * chunk) % state.segSize;
        state.haloDownBase =
            state.segBase +
            (static_cast<std::uint64_t>(down) * chunk) % state.segSize;

        // Warp slice within the chunk.
        Bytes slice = alignUp(
            std::max<Bytes>(chunk / prof.warpsPerCta,
                            isa::cacheLineBytes),
            isa::cacheLineBytes);
        state.ctaBase += static_cast<std::uint64_t>(warp % prof.warpsPerCta)
                         * slice;
        state.span = slice;

        // Iterative apps: every launch re-walks the same bytes, so
        // position restarts at 0 for all launches by construction.
        state.position = 0;
        return state;
    };

    for (const auto &access : prof.loads)
        loadState.push_back(make_state(access));
    for (const auto &access : prof.stores)
        storeState.push_back(make_state(access));

    // Build the per-iteration schedule: global loads (memory-level
    // parallelism is enforced by the simulator's per-warp outstanding
    // window, not by explicit syncs), shared loads, one aggregated
    // compute block, stores.
    for (unsigned i = 0; i < prof.loads.size(); ++i) {
        for (unsigned n = 0; n < prof.loads[i].perIteration; ++n) {
            schedule.push_back(
                {SchedOp::Kind::GlobalLoad, isa::Opcode::LD_GLOBAL, i});
        }
    }

    for (unsigned n = 0; n < prof.sharedLoadsPerIter; ++n)
        schedule.push_back(
            {SchedOp::Kind::SharedLoad, isa::Opcode::LD_SHARED, 0});

    // Aggregate the compute mix into one dependent-chain block: the
    // block charges the SM issue pipeline for every instruction and
    // delays the warp by the serial chain latency.
    std::uint32_t block_slots = 0;
    std::uint32_t block_latency = 0;
    for (const auto &mix : prof.compute) {
        block_slots += mix.perIteration * isa::issueCost(mix.op);
        block_latency += mix.perIteration * isa::defaultLatency(mix.op);
    }
    if (block_slots > 0) {
        schedule.push_back(
            {SchedOp::Kind::ComputeBlock, isa::Opcode::MOV32, 0});
        blockOp = isa::TraceOp::computeBlock(block_slots, block_latency);
    }

    for (unsigned i = 0; i < prof.stores.size(); ++i)
        for (unsigned n = 0; n < prof.stores[i].perIteration; ++n)
            schedule.push_back(
                {SchedOp::Kind::GlobalStore, isa::Opcode::ST_GLOBAL, i});

    mmgpu_assert(!schedule.empty(),
                 "profile '", prof.name, "' generates empty warps");
    (void)launch;
}

isa::TraceOp
WarpTrace::makeAccess(const SegmentAccess &access, AccessState &state,
                      bool is_store)
{
    std::uint64_t addr = 0;
    std::uint8_t sectors = 4; // fully coalesced 128 B line

    const Bytes line = isa::cacheLineBytes;
    AccessPattern pattern = access.pattern;
    if (access.irregular > 0.0 && rng.chance(access.irregular))
        pattern = AccessPattern::Random;
    switch (pattern) {
      case AccessPattern::BlockStream:
        addr = state.ctaBase + state.position;
        state.position = (state.position + line) % state.span;
        break;
      case AccessPattern::Stencil:
        if (rng.chance(access.haloFraction)) {
            std::uint64_t base = rng.chance(0.5) ? state.haloUpBase
                                                 : state.haloDownBase;
            addr = base + rng.below(state.span / line) * line;
        } else {
            addr = state.ctaBase + state.position;
            state.position = (state.position + line) % state.span;
        }
        break;
      case AccessPattern::Random:
      case AccessPattern::Chase:
        addr = state.segBase + rng.below(state.segSize / line) * line;
        break;
      case AccessPattern::Broadcast:
        addr = state.segBase + state.position;
        state.position = (state.position + line) % state.segSize;
        break;
      default:
        mmgpu_panic("bad access pattern");
    }

    if (access.divergence > 0.0 && rng.chance(access.divergence))
        sectors = 8;

    // Keep divergent footprints inside the segment.
    std::uint64_t span_end = state.segBase + state.segSize;
    if (addr + sectors * isa::sectorBytes > span_end)
        addr = span_end - sectors * isa::sectorBytes;

    if (is_store)
        return isa::TraceOp::storeGlobal(addr, sectors);
    return isa::TraceOp::loadGlobal(addr, sectors);
}

isa::TraceOp
WarpTrace::materialize(const SchedOp &slot)
{
    switch (slot.kind) {
      case SchedOp::Kind::Compute:
        return isa::TraceOp::compute(slot.op);
      case SchedOp::Kind::ComputeBlock:
        return blockOp;
      case SchedOp::Kind::SharedLoad:
        return isa::TraceOp::loadShared();
      case SchedOp::Kind::GlobalLoad:
        return makeAccess(profile->loads[slot.accessIndex],
                          loadState[slot.accessIndex], false);
      case SchedOp::Kind::GlobalStore:
        return makeAccess(profile->stores[slot.accessIndex],
                          storeState[slot.accessIndex], true);
      case SchedOp::Kind::Sync:
        return isa::TraceOp::sync();
      default:
        mmgpu_panic("bad schedule op");
    }
}

isa::TraceOp
WarpTrace::next()
{
    if (finished_)
        return isa::TraceOp::exit();
    if (iteration >= profile->iterations) {
        if (!drained_) {
            // Wait for all in-flight loads before retiring.
            drained_ = true;
            return isa::TraceOp::sync();
        }
        finished_ = true;
        return isa::TraceOp::exit();
    }
    isa::TraceOp op = materialize(schedule[cursor]);
    if (++cursor >= schedule.size()) {
        cursor = 0;
        ++iteration;
    }
    return op;
}

} // namespace mmgpu::trace
