/**
 * @file
 * Statistical kernel descriptions.
 *
 * The performance simulator is trace driven, but traces are not stored
 * on disk: each workload is described by a KernelProfile — data
 * segments, access patterns, per-iteration instruction mix — and
 * per-warp traces are generated on the fly, deterministically, from
 * (profile seed, CTA id, warp id). This reproduces the role of the
 * application traces used by the paper's proprietary simulator while
 * remaining fully self-contained (see DESIGN.md substitution table).
 */

#ifndef MMGPU_TRACE_KERNEL_PROFILE_HH
#define MMGPU_TRACE_KERNEL_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "isa/opcode.hh"

namespace mmgpu::trace
{

/** Paper Table II workload category. */
enum class WorkloadClass : std::uint8_t
{
    Compute,  //!< "C" — compute intensive
    Memory,   //!< "M" — memory bandwidth intensive
};

/** @return "C" or "M". */
const char *workloadClassName(WorkloadClass cls);

/**
 * How a warp walks a data segment.
 *
 * The patterns are the minimal basis needed to reproduce the paper's
 * locality behaviours under first-touch page placement:
 *  - BlockStream: CTA-partitioned streaming; stays GPM-local.
 *  - Stencil:     BlockStream plus halo accesses into neighbouring
 *                 CTA chunks; halos become remote at GPM boundaries.
 *  - Random:      uniform over the segment; (N-1)/N remote at N GPMs.
 *  - Chase:       Random, but serially dependent (pointer chasing);
 *                 combined with mlp=1 this models latency-bound code.
 *  - Broadcast:   all CTAs walk the same small region (lookup tables);
 *                 caches absorb it after first touch.
 */
enum class AccessPattern : std::uint8_t
{
    BlockStream,
    Stencil,
    Random,
    Chase,
    Broadcast,
};

/** A named data array with a fixed byte footprint. */
struct DataSegment
{
    std::string name;
    Bytes bytes = 0;
};

/** Per-iteration access behaviour against one segment. */
struct SegmentAccess
{
    /** Index into KernelProfile::segments. */
    unsigned segment = 0;

    AccessPattern pattern = AccessPattern::BlockStream;

    /** Warp-level accesses per loop iteration. */
    unsigned perIteration = 1;

    /**
     * Probability an access is memory divergent (touches 8 sectors
     * instead of a coalesced line's 4).
     */
    double divergence = 0.0;

    /**
     * Probability an access ignores the pattern and hits a uniformly
     * random line of the segment. Models the residual irregularity
     * real kernels carry even under first-touch placement and
     * distributed CTA scheduling — boundary/page sharing, indexed
     * reads, reductions, parameter tables — which the MCM-GPU
     * studies report as ~20% non-local traffic on average.
     */
    double irregular = 0.0;

    /** Stencil only: probability an access lands in a neighbour
     *  CTA's chunk. */
    double haloFraction = 0.1;

    /**
     * Stencil only: CTA-id distance to the halo neighbour. For a 2D
     * domain decomposed row-major into CTAs, the vertical neighbour
     * is a whole row of CTAs away — so halo traffic crosses GPM
     * boundaries once CTAs-per-GPM approaches this stride, which is
     * how surface-to-volume remote traffic grows with GPM count.
     */
    unsigned haloStride = 64;
};

/** (opcode, count-per-iteration) pair of the compute mix. */
struct ComputeMix
{
    isa::Opcode op;
    unsigned perIteration;
};

/**
 * Full statistical description of one GPU kernel.
 *
 * Problem size (ctaCount, segment bytes) is *fixed* across GPM counts:
 * every scaling experiment in the paper is a strong-scaling
 * experiment.
 */
struct KernelProfile
{
    std::string name;
    WorkloadClass cls = WorkloadClass::Compute;

    /** Total thread blocks per launch (strong-scaling constant). */
    unsigned ctaCount = 2048;

    /** Warps per thread block. */
    unsigned warpsPerCta = 4;

    /** Main-loop iterations per warp. */
    unsigned iterations = 8;

    /** Sequential launches of this kernel (iterative apps). */
    unsigned launches = 1;

    /**
     * Maximum loads in flight per warp (memory-level parallelism /
     * per-warp MSHR budget). Streaming code keeps deep windows;
     * pointer-chasing code is expressed with small values.
     */
    unsigned mlp = 24;

    /** Compute instructions per iteration. */
    std::vector<ComputeMix> compute;

    /** Shared-memory loads per iteration. */
    unsigned sharedLoadsPerIter = 0;

    /** Global-load behaviour. */
    std::vector<SegmentAccess> loads;

    /** Global-store behaviour. */
    std::vector<SegmentAccess> stores;

    /** Data arrays. */
    std::vector<DataSegment> segments;

    /** Master seed; every warp derives its own stream from this. */
    std::uint64_t seed = 1;

    /**
     * Hardware-replay characteristics for energy validation: the
     * real application's typical kernel duration and inter-kernel
     * gap on the calibration GPU. Our simulated kernels are
     * miniatures; validation replays them at the real durations
     * (activity rates preserved) so the power sensor sees realistic
     * time scales. Applications with sub-refresh kernels (BFS,
     * MiniAMR) set hwKernelSeconds well below the sensor's 15 ms
     * period.
     */
    Seconds hwKernelSeconds = 0.05;
    Seconds hwGapSeconds = 2e-3;

    /** Total warps per launch. */
    unsigned totalWarps() const { return ctaCount * warpsPerCta; }

    /** Warp-level trace operations per warp per launch (approx.). */
    Count approxOpsPerWarp() const;

    /** Total byte footprint across segments. */
    Bytes footprint() const;

    /**
     * Validate internal consistency (segment indices in range,
     * non-zero shapes). Calls fatal() on user error per the logging
     * contract — a bad profile is a configuration mistake.
     */
    void validate() const;
};

} // namespace mmgpu::trace

#endif // MMGPU_TRACE_KERNEL_PROFILE_HH
