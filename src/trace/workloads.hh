/**
 * @file
 * The paper's workload suite (Table II) as kernel profiles.
 *
 * Since the Rodinia/CORAL binaries cannot be traced on real hardware
 * here, each application is represented by a synthetic profile that
 * preserves the characteristics the study depends on: compute- vs
 * memory-intensity (Table II's C/M categories), single vs double
 * precision mix, access locality (block-partitioned, stencil halo,
 * irregular), memory divergence, working-set sizes relative to the
 * 2 MB/GPM L2, and kernel-launch granularity. Footprints are scaled
 * to the simulated trace length with ratios preserved (see DESIGN.md
 * substitution table).
 *
 * The scaling study uses the 14-workload subset with enough inherent
 * parallelism to fill a 32-GPM machine (paper §V-A: all but BFS,
 * LuleshUns, MnCtct, Srad-v1); validation uses all 18.
 */

#ifndef MMGPU_TRACE_WORKLOADS_HH
#define MMGPU_TRACE_WORKLOADS_HH

#include <optional>
#include <string>
#include <vector>

#include "trace/kernel_profile.hh"

namespace mmgpu::trace
{

/** All 18 Table II workloads. */
const std::vector<KernelProfile> &allWorkloads();

/** The 14-workload strong-scaling subset (paper §V-A). */
const std::vector<KernelProfile> &scalingWorkloads();

/** Look up one workload by its Table II abbreviation. */
std::optional<KernelProfile> findWorkload(const std::string &name);

/**
 * Applications whose energy the paper reports as mispredicted by
 * >30% for known reasons (Fig. 4b): RSBench and CoMD (memory
 * subsystem nearly idle, model underestimates its static energy),
 * BFS and MiniAMR (kernels shorter than the power sensor's 15 ms
 * refresh period).
 */
bool isValidationOutlier(const std::string &name);

} // namespace mmgpu::trace

#endif // MMGPU_TRACE_WORKLOADS_HH
