#include "trace/kernel_profile.hh"

#include "common/logging.hh"
#include "isa/instruction.hh"

namespace mmgpu::trace
{

const char *
workloadClassName(WorkloadClass cls)
{
    return cls == WorkloadClass::Compute ? "C" : "M";
}

Count
KernelProfile::approxOpsPerWarp() const
{
    Count per_iter = 0;
    for (const auto &mix : compute)
        per_iter += mix.perIteration;
    per_iter += sharedLoadsPerIter;
    for (const auto &access : loads)
        per_iter += access.perIteration;
    for (const auto &access : stores)
        per_iter += access.perIteration;
    // One SYNC per MLP burst, at least one per iteration with loads.
    Count warp_loads = 0;
    for (const auto &access : loads)
        warp_loads += access.perIteration;
    if (warp_loads > 0)
        per_iter += (warp_loads + mlp - 1) / mlp;
    return per_iter * iterations + 1; // +1 for Exit
}

Bytes
KernelProfile::footprint() const
{
    Bytes total = 0;
    for (const auto &segment : segments)
        total += segment.bytes;
    return total;
}

void
KernelProfile::validate() const
{
    if (name.empty())
        mmgpu_fatal("kernel profile has no name");
    if (ctaCount == 0 || warpsPerCta == 0 || iterations == 0 ||
        launches == 0) {
        mmgpu_fatal("profile '", name, "': zero-sized shape (ctas=",
                    ctaCount, " warps=", warpsPerCta, " iters=",
                    iterations, " launches=", launches, ")");
    }
    if (mlp == 0)
        mmgpu_fatal("profile '", name, "': mlp must be >= 1");
    auto check_access = [&](const SegmentAccess &access,
                            const char *what) {
        if (access.segment >= segments.size())
            mmgpu_fatal("profile '", name, "': ", what,
                        " references segment ", access.segment,
                        " but only ", segments.size(), " exist");
        if (access.perIteration == 0)
            mmgpu_fatal("profile '", name, "': ", what,
                        " with zero perIteration");
        if (access.divergence < 0.0 || access.divergence > 1.0)
            mmgpu_fatal("profile '", name, "': divergence out of [0,1]");
        const auto &segment = segments[access.segment];
        if (segment.bytes < isa::cacheLineBytes)
            mmgpu_fatal("profile '", name, "': segment '", segment.name,
                        "' smaller than one cache line");
    };
    for (const auto &access : loads)
        check_access(access, "load");
    for (const auto &access : stores)
        check_access(access, "store");
}

} // namespace mmgpu::trace
