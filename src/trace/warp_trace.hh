/**
 * @file
 * On-the-fly, deterministic warp trace generation.
 *
 * A WarpTrace turns a KernelProfile into the concrete TraceOp stream
 * of one warp. The stream for (profile, launch, cta, warp) depends
 * only on those identifiers — never on simulation interleaving — so
 * every GPM-count/bandwidth/topology configuration of an experiment
 * replays the *same* application, which is what makes the scaling
 * comparisons meaningful.
 */

#ifndef MMGPU_TRACE_WARP_TRACE_HH
#define MMGPU_TRACE_WARP_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "isa/instruction.hh"
#include "trace/kernel_profile.hh"

namespace mmgpu::trace
{

/**
 * Byte layout of a profile's segments in the simulated global address
 * space. Segments are laid out contiguously, each aligned to a page,
 * starting at a non-zero base so that address 0 stays invalid.
 */
class SegmentLayout
{
  public:
    /** Page size used for alignment and first-touch placement. */
    static constexpr Bytes pageBytes = 4096;

    /** Compute the layout for @p profile. */
    explicit SegmentLayout(const KernelProfile &profile);

    /** Base byte address of segment @p index. */
    std::uint64_t base(unsigned index) const;

    /** Size of segment @p index in bytes (page aligned up). */
    Bytes size(unsigned index) const;

    /** One past the highest mapped address. */
    std::uint64_t end() const { return end_; }

  private:
    std::vector<std::uint64_t> bases;
    std::vector<Bytes> sizes;
    std::uint64_t end_ = 0;
};

/**
 * The CTA that owns the chunk containing @p addr of segment @p seg
 * under the CTA-partitioned layout WarpTrace uses. Owner-CTA page
 * placement (= idealized first touch) and locality tests build on
 * this.
 */
unsigned chunkOwnerCta(const KernelProfile &profile,
                       const SegmentLayout &layout, unsigned seg,
                       std::uint64_t addr);

/** Generates the TraceOp stream of a single warp. */
class WarpTrace
{
  public:
    /**
     * @param profile Kernel description (must outlive this object).
     * @param layout Segment layout (must outlive this object).
     * @param launch Kernel launch index (affects nothing but the
     *               random streams of Random/Chase patterns, so
     *               iterative apps re-touch the same pages).
     * @param cta Thread block id within the launch.
     * @param warp Warp id within the block.
     */
    WarpTrace(const KernelProfile &profile, const SegmentLayout &layout,
              unsigned launch, unsigned cta, unsigned warp);

    /**
     * Re-bind this object to a (possibly different) warp identity,
     * exactly as if freshly constructed with the same arguments but
     * reusing the schedule/state vector allocations. The simulator's
     * warp-slot pool calls this on every CTA dispatch, which keeps
     * trace setup off the allocator in the steady state.
     */
    void reset(const KernelProfile &profile,
               const SegmentLayout &layout, unsigned launch,
               unsigned cta, unsigned warp);

    /**
     * Produce the next trace operation.
     * @return the op; TraceOpKind::Exit once the warp is finished
     *         (and forever after).
     *
     * Inline: the bookkeeping half (finish/drain checks, cursor
     * walk) folds into the warp engine's step loop; only the
     * per-kind materialization stays out of line.
     */
    isa::TraceOp
    next()
    {
        if (finished_)
            return isa::TraceOp::exit();
        if (iteration >= profile->iterations) {
            if (!drained_) {
                // Wait for all in-flight loads before retiring.
                drained_ = true;
                return isa::TraceOp::sync();
            }
            finished_ = true;
            return isa::TraceOp::exit();
        }
        isa::TraceOp op = materialize(cursor);
        if (++cursor >= schedKinds.size()) {
            cursor = 0;
            ++iteration;
        }
        return op;
    }

    /** @return true once Exit has been produced. */
    bool finished() const { return finished_; }

  private:
    /** Kind of one slot of the per-iteration schedule. */
    enum class SchedKind : std::uint8_t
    {
        Compute,
        ComputeBlock,
        SharedLoad,
        GlobalLoad,
        GlobalStore,
        Sync,
    };

    /**
     * Streaming state against the SegmentAccesses of one direction
     * (loads or stores), laid out struct-of-arrays: the schedule
     * walk is a sequential scan over the one-byte kind lane, and an
     * access touches its per-field lanes — the frequently-written
     * stream position lives apart from the read-only geometry.
     */
    struct AccessLanes
    {
        std::vector<std::uint64_t> ctaBase;  //!< warp's chunk base
        std::vector<Bytes> span;        //!< bytes streamed over
        std::vector<std::uint64_t> position; //!< current offset
        std::vector<std::uint64_t> segBase;  //!< whole-segment base
        std::vector<Bytes> segSize;     //!< whole-segment size
        std::vector<std::uint64_t> haloUpBase;   //!< +stride chunk
        std::vector<std::uint64_t> haloDownBase; //!< -stride chunk

        void
        clear()
        {
            ctaBase.clear();
            span.clear();
            position.clear();
            segBase.clear();
            segSize.clear();
            haloUpBase.clear();
            haloDownBase.clear();
        }
    };

    isa::TraceOp materialize(std::size_t slot);
    isa::TraceOp makeAccess(const SegmentAccess &access,
                            AccessLanes &lanes, unsigned index,
                            bool is_store);

    // Pointer rather than a reference so reset() can re-bind the
    // object (and so WarpTrace stays assignable for pooling).
    const KernelProfile *profile;

    // The per-iteration schedule, struct-of-arrays (parallel lanes
    // indexed by the cursor).
    std::vector<SchedKind> schedKinds;
    std::vector<isa::Opcode> schedOps;       //!< for Compute
    std::vector<std::uint32_t> schedAccess;  //!< load/store index

    AccessLanes loadLanes;
    AccessLanes storeLanes;
    isa::TraceOp blockOp; //!< the shared per-iteration compute block
    Rng rng;
    unsigned iteration = 0;
    std::size_t cursor = 0;
    bool drained_ = false;
    bool finished_ = false;
};

} // namespace mmgpu::trace

#endif // MMGPU_TRACE_WARP_TRACE_HH
