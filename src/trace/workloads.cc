#include "trace/workloads.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace mmgpu::trace
{

namespace
{

using isa::Opcode;

/** Fluent profile builder to keep the catalog readable. */
class Builder
{
  public:
    Builder(std::string name, WorkloadClass cls, std::uint64_t seed)
    {
        p.name = std::move(name);
        p.cls = cls;
        p.seed = seed;
        p.ctaCount = 4096;
        p.warpsPerCta = 4;
    }

    Builder &iters(unsigned n) { p.iterations = n; return *this; }
    Builder &launches(unsigned n) { p.launches = n; return *this; }
    Builder &mlp(unsigned n) { p.mlp = n; return *this; }
    Builder &shared(unsigned n) { p.sharedLoadsPerIter = n; return *this; }

    /** Hardware-replay kernel/gap durations (validation). */
    Builder &
    hwTiming(Seconds kernel, Seconds gap)
    {
        p.hwKernelSeconds = kernel;
        p.hwGapSeconds = gap;
        return *this;
    }

    Builder &
    compute(Opcode op, unsigned per_iter)
    {
        p.compute.push_back({op, per_iter});
        return *this;
    }

    /** Add a segment; returns its index for access descriptors. */
    unsigned
    segment(const char *name, Bytes bytes)
    {
        p.segments.push_back({name, bytes});
        return static_cast<unsigned>(p.segments.size() - 1);
    }

    static SegmentAccess
    makeAccess(unsigned seg, AccessPattern pattern, unsigned per_iter,
               double divergence, double halo, unsigned halo_stride,
               double irregular)
    {
        SegmentAccess access;
        access.segment = seg;
        access.pattern = pattern;
        access.perIteration = per_iter;
        access.divergence = divergence;
        access.irregular = irregular;
        access.haloFraction = halo;
        access.haloStride = halo_stride;
        return access;
    }

    Builder &
    load(unsigned seg, AccessPattern pattern, unsigned per_iter,
         double divergence = 0.0, double halo = 0.1,
         unsigned halo_stride = 64, double irregular = 0.0)
    {
        p.loads.push_back(makeAccess(seg, pattern, per_iter,
                                     divergence, halo, halo_stride,
                                     irregular));
        return *this;
    }

    Builder &
    store(unsigned seg, AccessPattern pattern, unsigned per_iter,
          double divergence = 0.0, double halo = 0.1,
          unsigned halo_stride = 64, double irregular = 0.0)
    {
        p.stores.push_back(makeAccess(seg, pattern, per_iter,
                                      divergence, halo, halo_stride,
                                      irregular));
        return *this;
    }

    KernelProfile
    build()
    {
        p.validate();
        return p;
    }

  private:
    KernelProfile p;
};

std::vector<KernelProfile>
buildCatalog()
{
    std::vector<KernelProfile> catalog;
    const Bytes MB = units::MiB;
    const Bytes KB = units::KiB;

    // ---- Compute-intensive (Table II category C) ----

    {
        // Back Propagation: dense layers, FMA-heavy with sigmoid
        // activations (SFU), weight matrix re-walked every launch.
        Builder b("BPROP", WorkloadClass::Compute, 101);
        unsigned weights = b.segment("weights", 12 * MB);
        b.iters(16).launches(2).shared(2)
            .compute(Opcode::FFMA32, 8)
            .compute(Opcode::EX232, 1)
            .compute(Opcode::RCP32, 1)
            .load(weights, AccessPattern::BlockStream, 1, 0.0, 0.1, 64, 0.02);
        catalog.push_back(b.build());
    }
    {
        // B+Tree search: integer comparisons over cached inner nodes
        // plus irregular leaf accesses; shallow MLP (tree descent).
        Builder b("BTREE", WorkloadClass::Compute, 102);
        unsigned inner = b.segment("inner_nodes", 1 * MB);
        unsigned leaves = b.segment("leaves", 4 * MB);
        b.iters(16).mlp(2)
            .compute(Opcode::IADD32, 10)
            .compute(Opcode::IMAD32, 4)
            .compute(Opcode::AND32, 2)
            .load(inner, AccessPattern::Broadcast, 1)
            .load(leaves, AccessPattern::Random, 1);
        catalog.push_back(b.build());
    }
    {
        // CoMD molecular dynamics: double-precision force loops with
        // near-neighbour lists; memory subsystem mostly idle
        // (validation outlier class: low memory utilization).
        Builder b("CoMD", WorkloadClass::Compute, 103);
        unsigned atoms = b.segment("atoms", 1536 * KB);
        b.iters(12)
            .compute(Opcode::FADD64, 2)
            .compute(Opcode::FMUL64, 2)
            .compute(Opcode::FFMA64, 3)
            .compute(Opcode::SQRT32, 1)
            .compute(Opcode::RCP32, 1)
            .load(atoms, AccessPattern::Stencil, 1, 0.1, 0.15, 8, 0.04);
        catalog.push_back(b.build());
    }
    {
        // Hotspot: 2D thermal stencil, iterative; both grids fit the
        // aggregate L2 once enough GPMs contribute capacity.
        Builder b("Hotspot", WorkloadClass::Compute, 104);
        unsigned temp = b.segment("temp", 6 * MB);
        unsigned power = b.segment("power", 6 * MB);
        b.iters(12).launches(3)
            .compute(Opcode::FFMA32, 20)
            .compute(Opcode::FADD32, 10)
            .load(temp, AccessPattern::Stencil, 1, 0.0, 0.15, 64, 0.03)
            .load(power, AccessPattern::BlockStream, 1, 0.0, 0.1, 64, 0.02)
            .store(temp, AccessPattern::BlockStream, 1);
        catalog.push_back(b.build());
    }
    {
        // Lulesh (unstructured mesh variant): double precision with
        // irregular gathers. Validation-only (limited parallelism).
        Builder b("LuleshUns", WorkloadClass::Compute, 105);
        unsigned mesh = b.segment("mesh", 16 * MB);
        b.iters(10)
            .compute(Opcode::FFMA64, 6)
            .compute(Opcode::FADD64, 3)
            .load(mesh, AccessPattern::Random, 2, 0.3);
        catalog.push_back(b.build());
    }
    {
        // PathFinder: dynamic-programming row sweep, integer ALU
        // dominated, strong row-neighbour locality.
        Builder b("PathF", WorkloadClass::Compute, 106);
        unsigned grid = b.segment("grid", 8 * MB);
        b.iters(16).launches(2)
            .compute(Opcode::IADD32, 12)
            .compute(Opcode::IMAD32, 2)
            .load(grid, AccessPattern::Stencil, 1, 0.0, 0.3, 1, 0.03);
        catalog.push_back(b.build());
    }
    {
        // RSBench: cross-section lookup, compute dominated, lookup
        // tables largely cache resident (low memory utilization —
        // validation outlier class).
        Builder b("RSBench", WorkloadClass::Compute, 107);
        unsigned tables = b.segment("xs_tables", 512 * KB);
        b.iters(16)
            .compute(Opcode::FFMA32, 6)
            .compute(Opcode::FADD32, 2)
            .compute(Opcode::SIN32, 1)
            .compute(Opcode::EX232, 1)
            .compute(Opcode::RCP32, 1)
            .load(tables, AccessPattern::Random, 2);
        catalog.push_back(b.build());
    }
    {
        // SRAD v1 (small input): speckle-reducing diffusion on a
        // sub-megabyte image — cache resident, compute bound.
        // Validation-only.
        Builder b("Srad-v1", WorkloadClass::Compute, 108);
        unsigned img = b.segment("image", 3 * MB);
        unsigned coeff = b.segment("coeff", 3 * MB);
        b.iters(12).launches(4)
            .compute(Opcode::FFMA32, 12)
            .compute(Opcode::FADD32, 4)
            .compute(Opcode::EX232, 1)
            .load(img, AccessPattern::Stencil, 1, 0.0, 0.15, 32)
            .load(coeff, AccessPattern::BlockStream, 1)
            .store(coeff, AccessPattern::BlockStream, 1);
        catalog.push_back(b.build());
    }

    // ---- Memory-bandwidth-intensive (Table II category M) ----

    {
        // MiniAMR: adaptive mesh refinement — divergent stencil over
        // refined blocks, many short kernel launches (validation
        // outlier class: sensor resolution).
        Builder b("MiniAMR", WorkloadClass::Memory, 201);
        unsigned blocks = b.segment("amr_blocks", 16 * MB);
        unsigned flux = b.segment("flux", 8 * MB);
        b.iters(4).launches(4).hwTiming(3.0e-3, 4.0e-3)
            .compute(Opcode::FADD32, 4)
            .compute(Opcode::FFMA32, 2)
            .load(blocks, AccessPattern::Stencil, 2, 0.25, 0.25, 64, 0.08)
            .store(flux, AccessPattern::BlockStream, 1);
        catalog.push_back(b.build());
    }
    {
        // BFS: irregular frontier expansion, divergent, very short
        // kernels (validation outlier class). Validation-only.
        Builder b("BFS", WorkloadClass::Memory, 202);
        unsigned graph = b.segment("graph", 24 * MB);
        b.iters(3).launches(8).hwTiming(2.0e-3, 3.0e-3)
            .compute(Opcode::IADD32, 4)
            .load(graph, AccessPattern::Random, 2, 0.5);
        catalog.push_back(b.build());
    }
    {
        // K-means: streaming point reads against broadcast centroid
        // table, iterative relabeling.
        Builder b("Kmeans", WorkloadClass::Memory, 203);
        unsigned points = b.segment("points", 16 * MB);
        unsigned centroids = b.segment("centroids", 128 * KB);
        unsigned labels = b.segment("labels", 2 * MB);
        b.iters(12).launches(2)
            .compute(Opcode::FFMA32, 6)
            .compute(Opcode::FADD32, 2)
            .load(points, AccessPattern::BlockStream, 2, 0.15, 0.1, 64, 0.05)
            .load(centroids, AccessPattern::Broadcast, 1)
            .store(labels, AccessPattern::BlockStream, 1);
        catalog.push_back(b.build());
    }
    {
        // Lulesh size 150: structured-mesh hydrodynamics, double
        // precision, bandwidth bound with moderate halo traffic.
        Builder b("Lulesh-150", WorkloadClass::Memory, 204);
        unsigned nodes = b.segment("nodes", 24 * MB);
        unsigned elems = b.segment("elems", 8 * MB);
        b.iters(8)
            .compute(Opcode::FFMA64, 3)
            .compute(Opcode::FADD64, 2)
            .load(nodes, AccessPattern::Stencil, 3, 0.15, 0.15, 64, 0.12)
            .store(elems, AccessPattern::BlockStream, 1);
        catalog.push_back(b.build());
    }
    {
        // Lulesh size 190: the same kernels on a larger mesh.
        Builder b("Lulesh-190", WorkloadClass::Memory, 205);
        unsigned nodes = b.segment("nodes", 40 * MB);
        unsigned elems = b.segment("elems", 12 * MB);
        b.iters(8)
            .compute(Opcode::FFMA64, 3)
            .compute(Opcode::FADD64, 2)
            .load(nodes, AccessPattern::Stencil, 3, 0.15, 0.15, 64, 0.12)
            .store(elems, AccessPattern::BlockStream, 1);
        catalog.push_back(b.build());
    }
    {
        // Nekbone size 12: spectral-element solver, streaming
        // double-precision with small gather tables.
        Builder b("Nekbone-12", WorkloadClass::Memory, 206);
        unsigned elements = b.segment("elements", 12 * MB);
        unsigned gather = b.segment("gather_idx", 1 * MB);
        b.iters(10)
            .compute(Opcode::FFMA64, 4)
            .load(elements, AccessPattern::BlockStream, 2, 0.0, 0.1, 64, 0.06)
            .load(gather, AccessPattern::Random, 1);
        catalog.push_back(b.build());
    }
    {
        // Nekbone size 18: larger polynomial order.
        Builder b("Nekbone-18", WorkloadClass::Memory, 207);
        unsigned elements = b.segment("elements", 24 * MB);
        unsigned gather = b.segment("gather_idx", 2 * MB);
        b.iters(10)
            .compute(Opcode::FFMA64, 4)
            .load(elements, AccessPattern::BlockStream, 2, 0.0, 0.1, 64, 0.06)
            .load(gather, AccessPattern::Random, 1);
        catalog.push_back(b.build());
    }
    {
        // Mini Contact: contact search mixing irregular candidate
        // pairs with neighbour sweeps. Validation-only.
        Builder b("MnCtct", WorkloadClass::Memory, 208);
        unsigned pairs = b.segment("pairs", 16 * MB);
        unsigned surf = b.segment("surfaces", 8 * MB);
        b.iters(8)
            .compute(Opcode::IADD32, 4)
            .compute(Opcode::FFMA64, 2)
            .load(pairs, AccessPattern::Random, 1, 0.2)
            .load(surf, AccessPattern::Stencil, 1, 0.0, 0.3, 32);
        catalog.push_back(b.build());
    }
    {
        // SRAD v2 (2048x2048): diffusion stencil at bandwidth-bound
        // image sizes, iterative.
        Builder b("Srad-v2", WorkloadClass::Memory, 209);
        unsigned img = b.segment("image", 16 * MB);
        unsigned coeff = b.segment("coeff", 16 * MB);
        b.iters(12).launches(2)
            .compute(Opcode::FFMA32, 4)
            .compute(Opcode::FADD32, 2)
            .load(img, AccessPattern::Stencil, 1, 0.1, 0.2, 96, 0.06)
            .load(coeff, AccessPattern::BlockStream, 1, 0.0, 0.1, 64, 0.02)
            .store(img, AccessPattern::BlockStream, 1);
        catalog.push_back(b.build());
    }
    {
        // STREAM triad: a[i] = b[i] + s*c[i]; the canonical
        // bandwidth benchmark.
        Builder b("Stream", WorkloadClass::Memory, 210);
        unsigned a = b.segment("a", 12 * MB);
        unsigned bb = b.segment("b", 12 * MB);
        unsigned c = b.segment("c", 12 * MB);
        b.iters(12)
            .compute(Opcode::FFMA32, 1)
            .load(bb, AccessPattern::BlockStream, 1, 0.0, 0.1, 64, 0.02)
            .load(c, AccessPattern::BlockStream, 1, 0.0, 0.1, 64, 0.02)
            .store(a, AccessPattern::BlockStream, 1);
        catalog.push_back(b.build());
    }

    return catalog;
}

/** Workloads excluded from the scaling study (paper §V-A). */
bool
isValidationOnly(const std::string &name)
{
    return name == "BFS" || name == "LuleshUns" || name == "MnCtct" ||
           name == "Srad-v1";
}

} // namespace

const std::vector<KernelProfile> &
allWorkloads()
{
    static const std::vector<KernelProfile> catalog = buildCatalog();
    return catalog;
}

const std::vector<KernelProfile> &
scalingWorkloads()
{
    static const std::vector<KernelProfile> subset = [] {
        std::vector<KernelProfile> out;
        for (const auto &profile : allWorkloads())
            if (!isValidationOnly(profile.name))
                out.push_back(profile);
        mmgpu_assert(out.size() == 14,
                     "scaling subset must have 14 workloads, has ",
                     out.size());
        return out;
    }();
    return subset;
}

std::optional<KernelProfile>
findWorkload(const std::string &name)
{
    for (const auto &profile : allWorkloads())
        if (profile.name == name)
            return profile;
    return std::nullopt;
}

bool
isValidationOutlier(const std::string &name)
{
    return name == "RSBench" || name == "CoMD" || name == "BFS" ||
           name == "MiniAMR";
}

} // namespace mmgpu::trace
