#include "engine/mem_pipeline.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mmgpu::engine
{

namespace
{

/** Bytes of a read-request header on the inter-GPM network. */
constexpr double requestHeaderBytes = 8.0;

} // namespace

MemPipeline::MemPipeline(const mem::MemConfig &config,
                         mem::MemSystem &memory,
                         noc::InterGpmNetwork *network,
                         Calendar &calendar)
    : cfg_(config), memory_(memory), network_(network),
      calendar_(calendar)
{
}

void
MemPipeline::resetRun()
{
    // Pool storage survives; the cursors rewind so allocation order
    // restarts from a fixed state every run, and generations advance
    // so stale handles from the previous run stay invalid.
    tasks_.resetRun();
    accesses_.resetRun();
    counters_.reset();
}

std::string
MemPipeline::auditDrained() const
{
    if (tasks_.inFlight() != 0) {
        return "leaked memory tasks: " +
               std::to_string(tasks_.inFlight()) + " of " +
               std::to_string(tasks_.highWater()) +
               " still in flight";
    }
    if (accesses_.inFlight() != 0) {
        return "leaked access records: " +
               std::to_string(accesses_.inFlight()) + " of " +
               std::to_string(accesses_.highWater()) +
               " still outstanding";
    }
    return {};
}

void
MemPipeline::pushMem(noc::Tick when, std::uint32_t task_handle)
{
    calendar_.schedule(when, task_handle, /*is_mem=*/true);
}

void
MemPipeline::startGlobalAccess(noc::Tick t, std::uint32_t warp_slot,
                               unsigned sm, unsigned gpm,
                               std::uint64_t addr,
                               unsigned sector_count, bool is_store)
{
    mmgpu_assert(sector_count >= 1 && sector_count <= 8,
                 "bad sector count ", sector_count);
    mmgpu_assert(addr % isa::sectorBytes == 0, "unaligned address");

    if (!is_store) {
        counters_.txns[static_cast<std::size_t>(
            isa::TxnLevel::L1ToReg)] += 1;
        noteTxn(t, isa::TxnLevel::L1ToReg, 1.0);
    }

    std::uint32_t access_handle = invalidIndex;
    if (!is_store && warp_slot != invalidIndex) {
        access_handle = accesses_.alloc();
        accesses_.at(access_handle) = {warp_slot, 0};
    }

    // Walk the touched lines.
    std::uint64_t first_sector = addr / isa::sectorBytes;
    std::uint64_t end_sector = first_sector + sector_count;
    while (first_sector < end_sector) {
        std::uint64_t line_addr = first_sector /
                                  mem::sectorsPerLine *
                                  isa::cacheLineBytes;
        unsigned lane0 =
            static_cast<unsigned>(first_sector % mem::sectorsPerLine);
        unsigned in_line =
            static_cast<unsigned>(std::min<std::uint64_t>(
                mem::sectorsPerLine - lane0,
                end_sector - first_sector));
        auto mask = static_cast<mem::SectorMask>(
            ((1u << in_line) - 1u) << lane0);
        first_sector += in_line;

        if (is_store) {
            // Write-through L1 (no allocate): the data crosses the
            // L1<->L2 wires toward the local L2.
            unsigned n = mem::sectorCount(mask);
            double bytes = n * static_cast<double>(isa::sectorBytes);
            memory_.nocAcquire(gpm, t, bytes);
            counters_.txns[static_cast<std::size_t>(
                isa::TxnLevel::L2ToL1)] += n;
            noteTxn(t, isa::TxnLevel::L2ToL1, n);

            std::uint32_t task_handle = tasks_.alloc();
            MemTask &task = tasks_.at(task_handle);
            task.stage = MemStage::L2Lookup;
            task.mask = mask;
            task.store = true;
            task.node = gpm;
            task.reqGpm = gpm;
            task.lineAddr = line_addr;
            task.access = invalidIndex;
            pushMem(t + static_cast<double>(cfg_.nocLatency),
                    task_handle);
            continue;
        }

        mem::CacheAccessResult l1r =
            memory_.l1Access(sm, line_addr, mask, false);
        mmgpu_assert(l1r.writebackMask == 0, "dirty L1 eviction");

        if (access_handle != invalidIndex)
            accesses_.at(access_handle).partsLeft += 1;

        if (l1r.missMask == 0) {
            // L1 hit: complete after the L1 latency.
            std::uint32_t task_handle = tasks_.alloc();
            MemTask &task = tasks_.at(task_handle);
            task.stage = MemStage::Complete;
            task.access = access_handle;
            pushMem(t + static_cast<double>(cfg_.l1Latency),
                    task_handle);
            continue;
        }

        unsigned miss = mem::sectorCount(l1r.missMask);
        counters_.l1SectorMisses += miss;
        counters_.txns[static_cast<std::size_t>(
            isa::TxnLevel::L2ToL1)] += miss;
        noteTxn(t, isa::TxnLevel::L2ToL1, miss);
        double bytes = miss * static_cast<double>(isa::sectorBytes);
        memory_.nocAcquire(gpm, t, bytes);

        std::uint32_t task_handle = tasks_.alloc();
        MemTask &task = tasks_.at(task_handle);
        task.stage = MemStage::L2Lookup;
        task.mask = l1r.missMask;
        task.store = false;
        task.node = gpm;
        task.reqGpm = gpm;
        task.lineAddr = line_addr;
        task.access = access_handle;
        pushMem(t + static_cast<double>(cfg_.nocLatency), task_handle);
    }
}

void
MemPipeline::startWriteback(noc::Tick t, unsigned gpm,
                            std::uint64_t line_addr,
                            std::uint8_t dirty)
{
    unsigned sectors = mem::sectorCount(dirty);
    if (sectors == 0)
        return;
    counters_.txns[static_cast<std::size_t>(
        isa::TxnLevel::DramToL2)] += sectors;
    counters_.writebackSectors += sectors;
    noteTxn(t, isa::TxnLevel::DramToL2, sectors);

    unsigned home = memory_.pageTouch(line_addr, gpm);
    if (home == gpm || network_ == nullptr) {
        counters_.localSectors += sectors;
        memory_.dramAcquire(
            home, t,
            sectors * static_cast<double>(isa::sectorBytes));
        return;
    }

    counters_.remoteSectors += sectors;
    network_->noteTransfer(sectors *
                           static_cast<double>(isa::sectorBytes));
    std::uint32_t task_handle = tasks_.alloc();
    MemTask &task = tasks_.at(task_handle);
    task.stage = MemStage::WbHop;
    task.mask = dirty;
    task.store = true;
    task.node = gpm;
    task.homeGpm = home;
    task.reqGpm = gpm;
    task.lineAddr = line_addr;
    task.access = invalidIndex;
    pushMem(t, task_handle);
}

void
MemPipeline::completePart(std::uint32_t access_handle, noc::Tick t)
{
    if (access_handle == invalidIndex)
        return;
    AccessRec &access = accesses_.at(access_handle);
    mmgpu_assert(access.partsLeft > 0, "access part underflow");
    if (--access.partsLeft > 0)
        return;

    std::uint32_t warp_slot = access.warpSlot;
    accesses_.release(access_handle);
    if (warp_slot == invalidIndex)
        return;

    mmgpu_assert(waker_ != nullptr, "load completed with no waker");
    waker_->loadDone(warp_slot, t);
}

void
MemPipeline::step(std::uint32_t task_handle, noc::Tick t)
{
    // tasks_.at() generation-checks the handle under MMGPU_CONTRACTS=2:
    // an event aimed at a task slot that was freed and recycled since
    // the event was scheduled dies here with a diagnostic.
    MemTask &task = tasks_.at(task_handle);
    switch (task.stage) {
      case MemStage::L2Lookup:
        stageL2Lookup(task, task_handle, t);
        break;
      case MemStage::ReqHop:
        stageReqHop(task, task_handle, t);
        break;
      case MemStage::HomeDram:
        stageHomeDram(task, task_handle, t);
        break;
      case MemStage::RespHop:
        stageRespHop(task, task_handle, t);
        break;
      case MemStage::Complete:
        stageComplete(task, task_handle, t);
        break;
      case MemStage::WbHop:
        stageWbHop(task, task_handle, t);
        break;
      case MemStage::WbDram:
        stageWbDram(task, task_handle, t);
        break;
      default:
        mmgpu_panic("bad memory stage");
    }
}

void
MemPipeline::stageL2Lookup(MemTask &task, std::uint32_t task_handle,
                           noc::Tick t)
{
    mem::CacheAccessResult l2r = memory_.l2Access(
        task.reqGpm, task.lineAddr, task.mask, task.store);
    if (l2r.writebackMask)
        startWriteback(t, task.reqGpm, l2r.writebackAddr,
                       l2r.writebackMask);

    if (task.store) {
        // Write-allocate without fetch (full-sector writes): the
        // store is complete once it lands in the L2.
        tasks_.release(task_handle);
        return;
    }

    if (l2r.missMask == 0) {
        task.stage = MemStage::Complete;
        pushMem(t + static_cast<double>(cfg_.l2Latency), task_handle);
        return;
    }

    // Fetch missed sectors from the home DRAM.
    unsigned miss = mem::sectorCount(l2r.missMask);
    task.mask = l2r.missMask;
    counters_.l2SectorMisses += miss;
    counters_.txns[static_cast<std::size_t>(
        isa::TxnLevel::DramToL2)] += miss;
    noteTxn(t, isa::TxnLevel::DramToL2, miss);

    task.homeGpm = memory_.pageTouch(task.lineAddr, task.reqGpm);
    if (task.homeGpm == task.reqGpm || network_ == nullptr) {
        counters_.localSectors += miss;
        noc::Tick served = memory_.dramAcquire(
            task.homeGpm, t,
            miss * static_cast<double>(isa::sectorBytes));
        task.stage = MemStage::Complete;
        pushMem(served + static_cast<double>(cfg_.dramLatency) +
                    static_cast<double>(cfg_.l2Latency),
                task_handle);
        return;
    }

    counters_.remoteSectors += miss;
    network_->noteTransfer(requestHeaderBytes);
    task.stage = MemStage::ReqHop;
    task.node = task.reqGpm;
    pushMem(t, task_handle);
}

void
MemPipeline::stageReqHop(MemTask &task, std::uint32_t task_handle,
                         noc::Tick t)
{
    noc::HopOutcome hop = network_->step(task.node, task.homeGpm, t,
                                         requestHeaderBytes);
    task.node = hop.next;
    task.stage = hop.arrived ? MemStage::HomeDram : MemStage::ReqHop;
    pushMem(hop.ready, task_handle);
}

void
MemPipeline::stageHomeDram(MemTask &task, std::uint32_t task_handle,
                           noc::Tick t)
{
    unsigned miss = mem::sectorCount(task.mask);
    network_->noteTransfer(miss *
                           static_cast<double>(isa::sectorBytes));
    noc::Tick served = memory_.dramAcquire(
        task.homeGpm, t,
        miss * static_cast<double>(isa::sectorBytes));
    task.stage = MemStage::RespHop;
    task.node = task.homeGpm;
    pushMem(served + static_cast<double>(cfg_.dramLatency),
            task_handle);
}

void
MemPipeline::stageRespHop(MemTask &task, std::uint32_t task_handle,
                          noc::Tick t)
{
    unsigned miss = mem::sectorCount(task.mask);
    noc::HopOutcome hop = network_->step(
        task.node, task.reqGpm, t,
        miss * static_cast<double>(isa::sectorBytes));
    task.node = hop.next;
    if (hop.arrived) {
        task.stage = MemStage::Complete;
        pushMem(hop.ready + static_cast<double>(cfg_.l2Latency),
                task_handle);
    } else {
        pushMem(hop.ready, task_handle);
    }
}

void
MemPipeline::stageComplete(MemTask &task, std::uint32_t task_handle,
                           noc::Tick t)
{
    std::uint32_t access = task.access;
    tasks_.release(task_handle);
    completePart(access, t);
}

void
MemPipeline::stageWbHop(MemTask &task, std::uint32_t task_handle,
                        noc::Tick t)
{
    unsigned sectors = mem::sectorCount(task.mask);
    noc::HopOutcome hop = network_->step(
        task.node, task.homeGpm, t,
        sectors * static_cast<double>(isa::sectorBytes));
    task.node = hop.next;
    if (hop.arrived)
        task.stage = MemStage::WbDram;
    pushMem(hop.ready, task_handle);
}

void
MemPipeline::stageWbDram(MemTask &task, std::uint32_t task_handle,
                         noc::Tick t)
{
    unsigned sectors = mem::sectorCount(task.mask);
    memory_.dramAcquire(
        task.homeGpm, t,
        sectors * static_cast<double>(isa::sectorBytes));
    tasks_.release(task_handle);
}

} // namespace mmgpu::engine
