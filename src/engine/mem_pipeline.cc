#include "engine/mem_pipeline.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace mmgpu::engine
{

namespace
{

/** Bytes of a read-request header on the inter-GPM network. */
constexpr double requestHeaderBytes = 8.0;

} // namespace

const std::array<MemPipeline::Handler, numMemStages>
    MemPipeline::stageHandlers = {
        &MemPipeline::stageL2Lookup, // MemStage::L2Lookup
        &MemPipeline::stageReqHop,   // MemStage::ReqHop
        &MemPipeline::stageHomeDram, // MemStage::HomeDram
        &MemPipeline::stageRespHop,  // MemStage::RespHop
        &MemPipeline::stageComplete, // MemStage::Complete
        &MemPipeline::stageWbHop,    // MemStage::WbHop
        &MemPipeline::stageWbDram,   // MemStage::WbDram
};

MemPipeline::MemPipeline(const mem::MemConfig &config,
                         mem::MemSystem &memory,
                         noc::InterGpmNetwork *network,
                         Calendar &calendar)
    : cfg_(config), memory_(memory), network_(network),
      calendar_(calendar)
{
}

void
MemPipeline::resetRun()
{
    // Pool capacity (and the vectors' backing storage) survives; the
    // free lists are rebuilt to cover the whole pool so allocation
    // order restarts from a fixed state every run.
    taskPool_.clear();
    freeTasks_.clear();
    accessPool_.clear();
    freeAccesses_.clear();
    counters_.reset();
}

std::string
MemPipeline::auditDrained() const
{
    if (freeTasks_.size() != taskPool_.size()) {
        return "leaked memory tasks: " +
               std::to_string(taskPool_.size() - freeTasks_.size()) +
               " of " + std::to_string(taskPool_.size()) +
               " still in flight";
    }
    if (freeAccesses_.size() != accessPool_.size()) {
        return "leaked access records: " +
               std::to_string(accessPool_.size() -
                              freeAccesses_.size()) +
               " of " + std::to_string(accessPool_.size()) +
               " still outstanding";
    }
    return {};
}

void
MemPipeline::pushMem(noc::Tick when, std::uint32_t task)
{
    calendar_.schedule(when, task, /*is_mem=*/true);
}

std::uint32_t
MemPipeline::allocTask()
{
    if (freeTasks_.empty()) {
        taskPool_.emplace_back();
        return static_cast<std::uint32_t>(taskPool_.size() - 1);
    }
    std::uint32_t index = freeTasks_.back();
    freeTasks_.pop_back();
    return index;
}

void
MemPipeline::freeTask(std::uint32_t index)
{
    freeTasks_.push_back(index);
}

std::uint32_t
MemPipeline::allocAccess()
{
    if (freeAccesses_.empty()) {
        accessPool_.emplace_back();
        return static_cast<std::uint32_t>(accessPool_.size() - 1);
    }
    std::uint32_t index = freeAccesses_.back();
    freeAccesses_.pop_back();
    return index;
}

void
MemPipeline::freeAccess(std::uint32_t index)
{
    freeAccesses_.push_back(index);
}

void
MemPipeline::startGlobalAccess(noc::Tick t, std::uint32_t warp_slot,
                               unsigned sm, unsigned gpm,
                               std::uint64_t addr,
                               unsigned sector_count, bool is_store)
{
    mmgpu_assert(sector_count >= 1 && sector_count <= 8,
                 "bad sector count ", sector_count);
    mmgpu_assert(addr % isa::sectorBytes == 0, "unaligned address");

    if (!is_store) {
        counters_.txns[static_cast<std::size_t>(
            isa::TxnLevel::L1ToReg)] += 1;
        noteTxn(t, isa::TxnLevel::L1ToReg, 1.0);
    }

    std::uint32_t access_index = invalidIndex;
    if (!is_store && warp_slot != invalidIndex) {
        access_index = allocAccess();
        accessPool_[access_index] = {warp_slot, 0};
    }

    // Walk the touched lines.
    std::uint64_t first_sector = addr / isa::sectorBytes;
    std::uint64_t end_sector = first_sector + sector_count;
    while (first_sector < end_sector) {
        std::uint64_t line_addr = first_sector /
                                  mem::sectorsPerLine *
                                  isa::cacheLineBytes;
        unsigned lane0 =
            static_cast<unsigned>(first_sector % mem::sectorsPerLine);
        unsigned in_line =
            static_cast<unsigned>(std::min<std::uint64_t>(
                mem::sectorsPerLine - lane0,
                end_sector - first_sector));
        auto mask = static_cast<mem::SectorMask>(
            ((1u << in_line) - 1u) << lane0);
        first_sector += in_line;

        if (is_store) {
            // Write-through L1 (no allocate): the data crosses the
            // L1<->L2 wires toward the local L2.
            unsigned n = std::popcount(mask);
            double bytes = n * static_cast<double>(isa::sectorBytes);
            memory_.nocAcquire(gpm, t, bytes);
            counters_.txns[static_cast<std::size_t>(
                isa::TxnLevel::L2ToL1)] += n;
            noteTxn(t, isa::TxnLevel::L2ToL1, n);

            std::uint32_t task_index = allocTask();
            MemTask &task = taskPool_[task_index];
            task.stage = MemStage::L2Lookup;
            task.mask = mask;
            task.store = true;
            task.node = gpm;
            task.reqGpm = gpm;
            task.lineAddr = line_addr;
            task.access = invalidIndex;
            pushMem(t + static_cast<double>(cfg_.nocLatency),
                    task_index);
            continue;
        }

        mem::CacheAccessResult l1r =
            memory_.l1Access(sm, line_addr, mask, false);
        mmgpu_assert(l1r.writebackMask == 0, "dirty L1 eviction");

        if (access_index != invalidIndex)
            accessPool_[access_index].partsLeft += 1;

        if (l1r.missMask == 0) {
            // L1 hit: complete after the L1 latency.
            std::uint32_t task_index = allocTask();
            MemTask &task = taskPool_[task_index];
            task.stage = MemStage::Complete;
            task.access = access_index;
            pushMem(t + static_cast<double>(cfg_.l1Latency),
                    task_index);
            continue;
        }

        unsigned miss = std::popcount(l1r.missMask);
        counters_.l1SectorMisses += miss;
        counters_.txns[static_cast<std::size_t>(
            isa::TxnLevel::L2ToL1)] += miss;
        noteTxn(t, isa::TxnLevel::L2ToL1, miss);
        double bytes = miss * static_cast<double>(isa::sectorBytes);
        memory_.nocAcquire(gpm, t, bytes);

        std::uint32_t task_index = allocTask();
        MemTask &task = taskPool_[task_index];
        task.stage = MemStage::L2Lookup;
        task.mask = l1r.missMask;
        task.store = false;
        task.node = gpm;
        task.reqGpm = gpm;
        task.lineAddr = line_addr;
        task.access = access_index;
        pushMem(t + static_cast<double>(cfg_.nocLatency), task_index);
    }
}

void
MemPipeline::startWriteback(noc::Tick t, unsigned gpm,
                            std::uint64_t line_addr,
                            std::uint8_t dirty)
{
    unsigned sectors = std::popcount(dirty);
    if (sectors == 0)
        return;
    counters_.txns[static_cast<std::size_t>(
        isa::TxnLevel::DramToL2)] += sectors;
    counters_.writebackSectors += sectors;
    noteTxn(t, isa::TxnLevel::DramToL2, sectors);

    unsigned home = memory_.pageTouch(line_addr, gpm);
    if (home == gpm || network_ == nullptr) {
        counters_.localSectors += sectors;
        memory_.dramAcquire(
            home, t,
            sectors * static_cast<double>(isa::sectorBytes));
        return;
    }

    counters_.remoteSectors += sectors;
    network_->noteTransfer(sectors *
                           static_cast<double>(isa::sectorBytes));
    std::uint32_t task_index = allocTask();
    MemTask &task = taskPool_[task_index];
    task.stage = MemStage::WbHop;
    task.mask = dirty;
    task.store = true;
    task.node = gpm;
    task.homeGpm = home;
    task.reqGpm = gpm;
    task.lineAddr = line_addr;
    task.access = invalidIndex;
    pushMem(t, task_index);
}

void
MemPipeline::completePart(std::uint32_t access_index, noc::Tick t)
{
    if (access_index == invalidIndex)
        return;
    AccessRec &access = accessPool_[access_index];
    mmgpu_assert(access.partsLeft > 0, "access part underflow");
    if (--access.partsLeft > 0)
        return;

    std::uint32_t warp_slot = access.warpSlot;
    freeAccess(access_index);
    if (warp_slot == invalidIndex)
        return;

    mmgpu_assert(waker_ != nullptr, "load completed with no waker");
    waker_->loadDone(warp_slot, t);
}

void
MemPipeline::step(std::uint32_t task_index, noc::Tick t)
{
    MemTask &task = taskPool_[task_index];
    auto stage = static_cast<std::size_t>(task.stage);
    mmgpu_assert(stage < numMemStages, "bad memory stage");
    (this->*stageHandlers[stage])(task, task_index, t);
}

void
MemPipeline::stageL2Lookup(MemTask &task, std::uint32_t task_index,
                           noc::Tick t)
{
    mem::CacheAccessResult l2r = memory_.l2Access(
        task.reqGpm, task.lineAddr, task.mask, task.store);
    if (l2r.writebackMask)
        startWriteback(t, task.reqGpm, l2r.writebackAddr,
                       l2r.writebackMask);

    if (task.store) {
        // Write-allocate without fetch (full-sector writes): the
        // store is complete once it lands in the L2.
        freeTask(task_index);
        return;
    }

    if (l2r.missMask == 0) {
        task.stage = MemStage::Complete;
        pushMem(t + static_cast<double>(cfg_.l2Latency), task_index);
        return;
    }

    // Fetch missed sectors from the home DRAM.
    unsigned miss = std::popcount(l2r.missMask);
    task.mask = l2r.missMask;
    counters_.l2SectorMisses += miss;
    counters_.txns[static_cast<std::size_t>(
        isa::TxnLevel::DramToL2)] += miss;
    noteTxn(t, isa::TxnLevel::DramToL2, miss);

    task.homeGpm = memory_.pageTouch(task.lineAddr, task.reqGpm);
    if (task.homeGpm == task.reqGpm || network_ == nullptr) {
        counters_.localSectors += miss;
        noc::Tick served = memory_.dramAcquire(
            task.homeGpm, t,
            miss * static_cast<double>(isa::sectorBytes));
        task.stage = MemStage::Complete;
        pushMem(served + static_cast<double>(cfg_.dramLatency) +
                    static_cast<double>(cfg_.l2Latency),
                task_index);
        return;
    }

    counters_.remoteSectors += miss;
    network_->noteTransfer(requestHeaderBytes);
    task.stage = MemStage::ReqHop;
    task.node = task.reqGpm;
    pushMem(t, task_index);
}

void
MemPipeline::stageReqHop(MemTask &task, std::uint32_t task_index,
                         noc::Tick t)
{
    noc::HopOutcome hop = network_->step(task.node, task.homeGpm, t,
                                         requestHeaderBytes);
    task.node = hop.next;
    task.stage = hop.arrived ? MemStage::HomeDram : MemStage::ReqHop;
    pushMem(hop.ready, task_index);
}

void
MemPipeline::stageHomeDram(MemTask &task, std::uint32_t task_index,
                           noc::Tick t)
{
    unsigned miss = std::popcount(task.mask);
    network_->noteTransfer(miss *
                           static_cast<double>(isa::sectorBytes));
    noc::Tick served = memory_.dramAcquire(
        task.homeGpm, t,
        miss * static_cast<double>(isa::sectorBytes));
    task.stage = MemStage::RespHop;
    task.node = task.homeGpm;
    pushMem(served + static_cast<double>(cfg_.dramLatency),
            task_index);
}

void
MemPipeline::stageRespHop(MemTask &task, std::uint32_t task_index,
                          noc::Tick t)
{
    unsigned miss = std::popcount(task.mask);
    noc::HopOutcome hop = network_->step(
        task.node, task.reqGpm, t,
        miss * static_cast<double>(isa::sectorBytes));
    task.node = hop.next;
    if (hop.arrived) {
        task.stage = MemStage::Complete;
        pushMem(hop.ready + static_cast<double>(cfg_.l2Latency),
                task_index);
    } else {
        pushMem(hop.ready, task_index);
    }
}

void
MemPipeline::stageComplete(MemTask &task, std::uint32_t task_index,
                           noc::Tick t)
{
    std::uint32_t access = task.access;
    freeTask(task_index);
    completePart(access, t);
}

void
MemPipeline::stageWbHop(MemTask &task, std::uint32_t task_index,
                        noc::Tick t)
{
    unsigned sectors = std::popcount(task.mask);
    noc::HopOutcome hop = network_->step(
        task.node, task.homeGpm, t,
        sectors * static_cast<double>(isa::sectorBytes));
    task.node = hop.next;
    if (hop.arrived)
        task.stage = MemStage::WbDram;
    pushMem(hop.ready, task_index);
}

void
MemPipeline::stageWbDram(MemTask &task, std::uint32_t task_index,
                         noc::Tick t)
{
    unsigned sectors = std::popcount(task.mask);
    memory_.dramAcquire(
        task.homeGpm, t,
        sectors * static_cast<double>(isa::sectorBytes));
    freeTask(task_index);
}

} // namespace mmgpu::engine
