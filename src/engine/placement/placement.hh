/**
 * @file
 * Page-placement strategy layer.
 *
 * A PlacementStrategy bundles the two launch-time decisions that
 * jointly determine NUMA locality on a multi-module GPU:
 *  - CTA-to-GPM assignment (inherited from CtaPolicy), and
 *  - the home GPM of every page the kernel touches.
 *
 * The machine consults homePage() once per page before a launch (the
 * simulator's idealized first-touch pre-placement); the warp engine
 * consults assign() to build dispatch queues. Strategies plug in
 * behind this interface without touching the warp engine or the
 * memory pipeline, exactly like interconnect topologies plug in
 * behind noc::TopologyDesc.
 *
 * Built-in strategies:
 *  - FirstTouch: the baseline — pages home on the GPM of the CTA
 *    owning their byte range, CTA assignment follows the configured
 *    sm::CtaSchedPolicy. Bit-identical to the historical inline
 *    logic.
 *  - Striped: pages round-robin across GPMs regardless of use (the
 *    locality-oblivious strawman).
 *  - Locality: traffic-matrix-driven — CTAs are always assigned in
 *    contiguous chunks (co-locating communicating neighbours), and
 *    each page homes on the GPM with the largest estimated access
 *    weight mined from the profile's access patterns (stencil halos
 *    pull boundary pages toward the neighbour that shares them).
 */

#ifndef MMGPU_ENGINE_PLACEMENT_PLACEMENT_HH
#define MMGPU_ENGINE_PLACEMENT_PLACEMENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/cta_policy.hh"
#include "trace/warp_trace.hh"

namespace mmgpu::engine
{

/** Which built-in placement strategy to construct. */
enum class PlacementKind : std::uint8_t
{
    FirstTouch, //!< owner-CTA homing (idealized first touch)
    Striped,    //!< page i -> GPM i mod N
    Locality,   //!< profile-mined traffic-matrix argmax homing
};

/** @return human-readable strategy name. */
const char *placementKindName(PlacementKind kind);

/** Launch-wide context handed to homePage() for every page. */
struct PageContext
{
    /** Kernel being launched. */
    const trace::KernelProfile *profile = nullptr;

    /** Its segment layout in the global address space. */
    const trace::SegmentLayout *layout = nullptr;

    /** CTA id -> GPM id, flattened from this strategy's assign(). */
    const std::vector<unsigned> *ctaToGpm = nullptr;

    /** GPM count of the machine. */
    unsigned gpmCount = 1;
};

/** CTA assignment plus page homing behind one interface. */
class PlacementStrategy : public CtaPolicy
{
  public:
    /**
     * Home GPM for one page.
     *
     * @param ctx Launch context (profile, layout, CTA map).
     * @param segment Segment the page belongs to.
     * @param page_addr Page base byte address (within the segment).
     * @param page_index Global page ordinal across all segments.
     * @return GPM id in [0, ctx.gpmCount). Must be deterministic in
     *         its arguments — page homing happens before simulation
     *         and must not depend on event interleaving.
     */
    virtual unsigned homePage(const PageContext &ctx, unsigned segment,
                              std::uint64_t page_addr,
                              std::uint64_t page_index) const = 0;
};

/**
 * Build a built-in strategy.
 *
 * @param kind Strategy selector.
 * @param scheduling CTA scheduling policy honoured by FirstTouch and
 *        Striped; Locality always assigns contiguous chunks (its
 *        homing model assumes neighbouring CTAs are co-located).
 */
std::unique_ptr<PlacementStrategy>
makePlacementStrategy(PlacementKind kind,
                      sm::CtaSchedPolicy scheduling);

} // namespace mmgpu::engine

#endif // MMGPU_ENGINE_PLACEMENT_PLACEMENT_HH
