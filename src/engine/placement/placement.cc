#include "engine/placement/placement.hh"

#include "common/logging.hh"

namespace mmgpu::engine
{

namespace
{

/**
 * Baseline: idealized first touch. Pages home on the GPM of the CTA
 * owning their byte range — that CTA is the page's first toucher
 * under distributed CTA scheduling, and doing it up front avoids
 * simulation-order races with halo accesses.
 */
class FirstTouchStrategy : public PlacementStrategy
{
  public:
    explicit FirstTouchStrategy(sm::CtaSchedPolicy scheduling)
        : scheduling_(scheduling)
    {
    }

    const char *
    name() const override
    {
        return "first-touch";
    }

    std::vector<std::vector<unsigned>>
    assign(unsigned cta_count, unsigned gpm_count) const override
    {
        return sm::assignCtas(cta_count, gpm_count, scheduling_);
    }

    unsigned
    homePage(const PageContext &ctx, unsigned segment,
             std::uint64_t page_addr, std::uint64_t) const override
    {
        unsigned cta = trace::chunkOwnerCta(*ctx.profile, *ctx.layout,
                                            segment, page_addr);
        return (*ctx.ctaToGpm)[cta];
    }

  private:
    sm::CtaSchedPolicy scheduling_;
};

/** Round-robin pages across GPMs regardless of use. */
class StripedStrategy : public PlacementStrategy
{
  public:
    explicit StripedStrategy(sm::CtaSchedPolicy scheduling)
        : scheduling_(scheduling)
    {
    }

    const char *
    name() const override
    {
        return "striped";
    }

    std::vector<std::vector<unsigned>>
    assign(unsigned cta_count, unsigned gpm_count) const override
    {
        return sm::assignCtas(cta_count, gpm_count, scheduling_);
    }

    unsigned
    homePage(const PageContext &ctx, unsigned,
             std::uint64_t, std::uint64_t page_index) const override
    {
        return static_cast<unsigned>(page_index % ctx.gpmCount);
    }

  private:
    sm::CtaSchedPolicy scheduling_;
};

/**
 * Traffic-matrix-driven homing. The strategy mines the profile's
 * access entries for the estimated per-GPM access weight of each
 * page and homes the page on the argmax:
 *  - BlockStream credits the owner CTA's GPM with the non-irregular
 *    fraction of the entry's accesses;
 *  - Stencil splits its halo fraction between the two neighbour
 *    CTAs at +-haloStride, so boundary pages whose halo partner sits
 *    on another GPM can migrate toward the heavier side;
 *  - Random/Chase/Broadcast accesses carry no per-GPM affinity and
 *    contribute nothing.
 * CTA assignment is always contiguous (sm::CtaSchedPolicy is
 * ignored): the homing model assumes neighbouring CTAs are
 * co-located, and contiguous chunks are what makes that true.
 */
class LocalityStrategy : public PlacementStrategy
{
  public:
    const char *
    name() const override
    {
        return "locality";
    }

    std::vector<std::vector<unsigned>>
    assign(unsigned cta_count, unsigned gpm_count) const override
    {
        return sm::assignCtas(cta_count, gpm_count,
                              sm::CtaSchedPolicy::Distributed);
    }

    unsigned
    homePage(const PageContext &ctx, unsigned segment,
             std::uint64_t page_addr, std::uint64_t) const override
    {
        const trace::KernelProfile &profile = *ctx.profile;
        const std::vector<unsigned> &cta_to_gpm = *ctx.ctaToGpm;
        unsigned owner = trace::chunkOwnerCta(profile, *ctx.layout,
                                              segment, page_addr);
        unsigned owner_gpm = cta_to_gpm[owner];

        weights_.assign(ctx.gpmCount, 0.0);
        auto credit = [&](unsigned cta, double w) {
            weights_[cta_to_gpm[cta]] += w;
        };
        auto scan = [&](const std::vector<trace::SegmentAccess>
                            &accesses) {
            for (const trace::SegmentAccess &a : accesses) {
                if (a.segment != segment)
                    continue;
                double per = static_cast<double>(a.perIteration);
                switch (a.pattern) {
                case trace::AccessPattern::BlockStream:
                    credit(owner, (1.0 - a.irregular) * per);
                    break;
                case trace::AccessPattern::Stencil: {
                    credit(owner,
                           (1.0 - a.haloFraction - a.irregular) * per);
                    double halo = 0.5 * a.haloFraction * per;
                    if (owner >= a.haloStride)
                        credit(owner - a.haloStride, halo);
                    if (owner + a.haloStride < profile.ctaCount)
                        credit(owner + a.haloStride, halo);
                    break;
                }
                case trace::AccessPattern::Random:
                case trace::AccessPattern::Chase:
                case trace::AccessPattern::Broadcast:
                    break;
                }
            }
        };
        scan(profile.loads);
        scan(profile.stores);

        // Strictly-greater comparison in ascending GPM order: ties
        // resolve to the lowest GPM, and an all-zero matrix (page
        // only touched by affinity-free patterns) falls back to the
        // owner's GPM — never worse than first touch.
        unsigned best = owner_gpm;
        double best_weight = 0.0;
        for (unsigned g = 0; g < ctx.gpmCount; ++g) {
            if (weights_[g] > best_weight) {
                best = g;
                best_weight = weights_[g];
            }
        }
        return best;
    }

  private:
    /** Scratch reused across the per-page calls of one launch. */
    mutable std::vector<double> weights_;
};

} // namespace

const char *
placementKindName(PlacementKind kind)
{
    switch (kind) {
    case PlacementKind::FirstTouch:
        return "first-touch";
    case PlacementKind::Striped:
        return "striped";
    case PlacementKind::Locality:
        return "locality";
    }
    mmgpu_panic("bad placement kind");
}

std::unique_ptr<PlacementStrategy>
makePlacementStrategy(PlacementKind kind, sm::CtaSchedPolicy scheduling)
{
    switch (kind) {
    case PlacementKind::FirstTouch:
        return std::make_unique<FirstTouchStrategy>(scheduling);
    case PlacementKind::Striped:
        return std::make_unique<StripedStrategy>(scheduling);
    case PlacementKind::Locality:
        return std::make_unique<LocalityStrategy>();
    }
    mmgpu_panic("bad placement kind");
}

} // namespace mmgpu::engine
