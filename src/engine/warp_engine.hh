/**
 * @file
 * The warp-scheduling half of the simulation engine.
 *
 * WarpEngine owns the resident warp contexts (slots), dispatches
 * CTAs to SMs through a pluggable CtaPolicy, replays each warp's
 * trace operation by operation against SM issue bandwidth, and
 * enforces the memory-level-parallelism window. Global loads and
 * stores are handed to the MemPipeline; completions come back
 * through the WarpWaker interface, which wakes parked warps.
 *
 * The slot vector persists across launches and runs (the SM
 * geometry is fixed at construction): a launch leaves every slot
 * dead but keeps its WarpTrace allocation, which fillSm() rebinds in
 * place on the next dispatch. The free-slot lists are rebuilt in
 * slot order each launch so dispatch order never depends on the
 * previous launch's completion order — a prerequisite for
 * bit-identical machine reuse.
 */

#ifndef MMGPU_ENGINE_WARP_ENGINE_HH
#define MMGPU_ENGINE_WARP_ENGINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hh"
#include "engine/calendar.hh"
#include "engine/component.hh"
#include "engine/cta_policy.hh"
#include "engine/mem_pipeline.hh"
#include "sm/sm_core.hh"
#include "telemetry/telemetry.hh"
#include "trace/kernel_profile.hh"
#include "trace/warp_trace.hh"

namespace mmgpu::engine
{

/** The warp-scheduling engine of one machine. */
class WarpEngine : public Component, public WarpWaker
{
  public:
    /** Index value meaning "no warp slot". */
    static constexpr std::uint32_t invalidIndex =
        MemPipeline::invalidIndex;

    /**
     * Telemetry hooks, null while detached. Counter hooks are
     * branch-free in the hot path: setTelemetryHooks() redirects a
     * null Counter to a per-engine discard sink, so step()/loadDone()
     * always add unconditionally. Sampler hooks stay branch-on-null —
     * addAt() does real binning work that a sink could not absorb.
     */
    struct TelemetryHooks
    {
        telemetry::Counter *blockWindow = nullptr;
        telemetry::Counter *blockDrain = nullptr;
        telemetry::Counter *warpWakes = nullptr;
        telemetry::ActivitySampler *instr = nullptr;
        telemetry::ActivitySampler *txn = nullptr;
    };

    /**
     * @param config Latency slice of the machine config (shared-
     *        memory latency).
     * @param warp_slots_per_sm Resident warp contexts per SM.
     * @param sms The machine's SM cores (not owned; geometry fixed).
     * @param calendar The machine's event calendar (not owned).
     * @param pipeline Memory pipeline global accesses issue into.
     * @param policy CTA-to-GPM scheduling policy (not owned).
     * @param gpm_count Number of GPU modules.
     */
    WarpEngine(const mem::MemConfig &config,
               unsigned warp_slots_per_sm,
               std::vector<sm::SmCore> &sms, Calendar &calendar,
               MemPipeline &pipeline, const CtaPolicy &policy,
               unsigned gpm_count);

    /**
     * Prepare launch @p launch of @p profile starting at @p start:
     * rebuild the free-slot lists, fill the per-GPM CTA queues via
     * the policy, and dispatch the initial CTAs (pushing each
     * resident warp's first event at @p start). @p profile and
     * @p layout must stay alive until endLaunch().
     */
    void beginLaunch(const trace::KernelProfile &profile,
                     const trace::SegmentLayout &layout,
                     unsigned launch, noc::Tick start);

    /** Drop the launch-scoped profile/layout references. */
    void endLaunch();

    /** Process one warp continuation for @p slot_index at @p t. */
    void step(std::uint32_t slot_index, noc::Tick t);

    // WarpWaker: a warp's load completed; wake it if parked.
    void loadDone(std::uint32_t warp_slot, noc::Tick t) override;

    /** Per-opcode warp instruction counts accumulated this run. */
    const std::array<Count, isa::numOpcodes> &
    instrs() const
    {
        return instrs_;
    }

    /** Refresh the telemetry hooks (default-constructed detaches). */
    void setTelemetryHooks(const TelemetryHooks &hooks)
    {
        hooks_ = hooks;
        if (!hooks_.blockWindow)
            hooks_.blockWindow = &nullCounter_;
        if (!hooks_.blockDrain)
            hooks_.blockDrain = &nullCounter_;
        if (!hooks_.warpWakes)
            hooks_.warpWakes = &nullCounter_;
    }

    // Component protocol.
    const char *componentName() const override { return "warp-engine"; }
    void resetRun() override;
    std::string auditDrained() const override;

  private:
    /** Why a warp is not schedulable right now. */
    enum class WarpBlock : std::uint8_t
    {
        None,   //!< runnable (an event is pending for it)
        Window, //!< MLP window full; woken by a load completion
        Drain,  //!< waiting for all outstanding loads (final sync)
    };

    /** A resident warp context bound to an SM warp slot. */
    struct WarpSlot
    {
        std::unique_ptr<trace::WarpTrace> trace;
        unsigned sm = 0; //!< flat SM id
        unsigned cta = 0;
        unsigned outstanding = 0; //!< loads in flight
        WarpBlock blocked = WarpBlock::None;
        std::optional<isa::TraceOp> replay;
        bool live = false;
    };

    void pushWarp(noc::Tick when, std::uint32_t slot);

    /** Dispatch CTAs to @p sm while it has room; pushes warp events. */
    void fillSm(unsigned sm_id, noc::Tick t);

    /** Record one warp instruction of @p op at time @p t (hook). */
    void
    noteInstr(noc::Tick t, isa::Opcode op, double amount = 1.0)
    {
        if (hooks_.instr)
            hooks_.instr->addAt(t, static_cast<std::size_t>(op),
                                amount);
    }

    const mem::MemConfig &cfg_;
    unsigned warpSlotsPerSm_;
    std::vector<sm::SmCore> &sms_;
    Calendar &calendar_;
    MemPipeline &pipeline_;
    const CtaPolicy &policy_;
    unsigned gpmCount_;

    // Per-launch transient state. The containers persist across
    // launches and runs so their backing storage (and the WarpTrace
    // objects inside the slots) is allocated once and reused;
    // beginLaunch() re-initializes the *contents* each launch.
    std::vector<WarpSlot> slots_;
    std::vector<std::vector<unsigned>> freeSlotsPerSm_;
    std::vector<sm::GpmCtaQueue> ctaQueues_;
    std::vector<unsigned> ctaWarpsLeft_;
    std::vector<Event> batchScratch_; //!< fillSm's per-CTA batch

    /** Launch-scoped context for CTA backfill from step(). */
    const trace::KernelProfile *profile_ = nullptr;
    const trace::SegmentLayout *launchLayout_ = nullptr;
    unsigned launchIndex_ = 0;

    std::array<Count, isa::numOpcodes> instrs_{};

    /** Discard sink the Counter hooks point at while detached —
     *  per-engine, never shared, so parallel machines can't race. */
    telemetry::Counter nullCounter_;

    TelemetryHooks hooks_{&nullCounter_, &nullCounter_, &nullCounter_,
                          nullptr, nullptr};
};

} // namespace mmgpu::engine

#endif // MMGPU_ENGINE_WARP_ENGINE_HH
