/**
 * @file
 * The component protocol of build-once machines.
 *
 * A machine (sim::GpuSim) is constructed once and then run any number
 * of times; everything with run-scoped state registers with a
 * ComponentRegistry and follows the protocol:
 *
 *  - resetRun() restores the component to its freshly-constructed
 *    state before every run (structural state — geometry, capacity,
 *    reusable allocations — survives; accumulators and in-flight
 *    state are zeroed);
 *  - auditDrained() reports whether the component still holds
 *    in-flight work, as a diagnostic string (empty = drained).
 *
 * The registry fires every component's drain audit at two points
 * when conservation audits are armed (MMGPU_CONTRACTS=2): at the end
 * of a run (the machine must be quiescent once the calendar drains)
 * and again inside resetAll() — so a machine reused across sweep
 * points cannot silently carry in-flight state from a previous
 * workload into the next one.
 */

#ifndef MMGPU_ENGINE_COMPONENT_HH
#define MMGPU_ENGINE_COMPONENT_HH

#include <functional>
#include <string>
#include <vector>

namespace mmgpu::engine
{

/** A machine part with run-scoped state. */
class Component
{
  public:
    virtual ~Component() = default;

    /** Stable diagnostic name (audit messages are prefixed by it). */
    virtual const char *componentName() const = 0;

    /** Zero all run-scoped state; called before every run. */
    virtual void resetRun() = 0;

    /**
     * Drain audit: every in-flight quantity must be back at zero at
     * a quiescent point.
     * @return empty when drained, else a diagnostic.
     */
    virtual std::string auditDrained() const { return {}; }
};

/**
 * Registration order is reset order. Components are not owned; they
 * must outlive the registry (in a machine, both live for the
 * machine's lifetime).
 */
class ComponentRegistry
{
  public:
    /** Register @p component (resets fire in registration order). */
    void add(Component &component);

    /**
     * Register an ad-hoc component from callables, for machine parts
     * below the engine layer (the interconnect, the memory system)
     * that should not inherit an engine interface. @p audit may be
     * null (no drain state to check).
     */
    void add(std::string name, std::function<void()> reset,
             std::function<std::string()> audit = nullptr);

    /**
     * Reset every component in registration order. When audits are
     * armed (MMGPU_CONTRACTS=2) each component's drain audit runs
     * first and a non-empty verdict is an invariant violation: a
     * reused machine must be quiescent before it is zeroed.
     */
    void resetAll();

    /**
     * Run every drain audit.
     * @return the first non-empty verdict, prefixed with the
     *         component's name; empty when all components drained.
     */
    std::string auditAll() const;

  private:
    struct Entry
    {
        std::string name;
        std::function<void()> reset;
        std::function<std::string()> audit;
    };

    std::vector<Entry> entries_;
};

} // namespace mmgpu::engine

#endif // MMGPU_ENGINE_COMPONENT_HH
