/**
 * @file
 * The staged memory pipeline of the simulation engine.
 *
 * A warp-level global access fans out into line-granular MemTasks
 * that advance through the pipeline one calendar event per stage:
 *
 *   L1 miss -> intra-GPM NoC -> L2 lookup -> (remote request hop(s)
 *   -> home DRAM -> response hop(s) | local DRAM) -> completion,
 *
 * with dirty L2 evictions taking the writeback stages (WbHop ->
 * WbDram). Stage dispatch is a direct switch on MemStage inside
 * step(): with every handler in this translation unit the compiler
 * inlines the short stages into the event loop, where the earlier
 * member-function-pointer dispatch table cost an indirect call per
 * event (measurably so — stage dispatch was one of the profiler's
 * top engine lines).
 *
 * Staging matters: every bandwidth server (NoC, HBM channel, ring
 * link, switch port) is acquired at the calendar time the request
 * actually reaches it, so servers see arrivals in time order and
 * congestion — the paper's central mechanism, inter-GPM bandwidth
 * pressure idling GPMs — emerges without ordering artifacts.
 *
 * Tasks and access records live in generation-checked bump pools
 * (engine/pool.hh): steady-state simulation allocates nothing, a
 * build-once machine keeps pool capacity across runs, and under
 * MMGPU_CONTRACTS=2 a calendar event aimed at a recycled task slot
 * dies loudly instead of corrupting an unrelated task. The
 * Component drain audit checks that every pooled object is free at
 * quiescent points.
 */

#ifndef MMGPU_ENGINE_MEM_PIPELINE_HH
#define MMGPU_ENGINE_MEM_PIPELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "engine/calendar.hh"
#include "engine/component.hh"
#include "engine/pool.hh"
#include "mem/mem_system.hh"
#include "noc/interconnect.hh"
#include "telemetry/telemetry.hh"

namespace mmgpu::engine
{

/** Stage of an in-flight memory task. */
enum class MemStage : std::uint8_t
{
    L2Lookup, //!< arrived at the local L2 slice
    ReqHop,   //!< request header travelling to the home GPM
    HomeDram, //!< arrived at the home GPM's memory controller
    RespHop,  //!< data travelling back to the requester
    Complete, //!< data available; notify the parent access
    WbHop,    //!< eviction writeback travelling to its home
    WbDram,   //!< eviction writeback at the home controller
};

/** Number of pipeline stages (dispatch-table size). */
inline constexpr std::size_t numMemStages = 7;

/**
 * Warp-side notification interface: the pipeline tells the warp
 * engine when a warp's last outstanding load part has completed.
 * Narrow by design — the pipeline knows nothing else about warps.
 */
class WarpWaker
{
  public:
    virtual ~WarpWaker() = default;

    /** All parts of one of @p warp_slot's loads completed at @p t. */
    virtual void loadDone(std::uint32_t warp_slot, noc::Tick t) = 0;
};

/** The staged memory pipeline of one machine. */
class MemPipeline : public Component
{
  public:
    /** Handle value meaning "no access record / no warp slot". */
    static constexpr std::uint32_t invalidIndex =
        GenPool<int>::invalidHandle;

    /**
     * @param config Latency/geometry slice of the machine config.
     * @param memory Passive memory hierarchy (not owned).
     * @param network Inter-GPM network; nullptr when monolithic.
     * @param calendar The machine's event calendar (not owned).
     *
     * The warp side attaches afterwards via bindWaker() (the warp
     * engine is constructed after the pipeline it issues into).
     */
    MemPipeline(const mem::MemConfig &config, mem::MemSystem &memory,
                noc::InterGpmNetwork *network, Calendar &calendar);

    /** Attach the warp-side completion sink (required for loads). */
    void bindWaker(WarpWaker &waker) { waker_ = &waker; }

    /**
     * Begin a warp-level global access at time @p t, fanning it out
     * into per-line tasks.
     *
     * @param warp_slot Owning warp slot for loads (its wake arrives
     *        through the WarpWaker); invalidIndex for stores and
     *        warp-less accesses.
     * @param sm Flat SM id issuing the access.
     * @param gpm GPM of that SM.
     * @param addr Sector-aligned byte address.
     * @param sector_count 1..8 consecutive 32 B sectors.
     * @param is_store Write-through store (no completion event).
     */
    void startGlobalAccess(noc::Tick t, std::uint32_t warp_slot,
                           unsigned sm, unsigned gpm,
                           std::uint64_t addr, unsigned sector_count,
                           bool is_store);

    /** Advance the task behind handle @p task_handle one stage at
     *  time @p t (handles come back out of the calendar). */
    void step(std::uint32_t task_handle, noc::Tick t);

    /** Event counters the energy model consumes (shared with the
     *  kernel-boundary writeback drain and the warp engine's
     *  shared-memory accounting). */
    mem::MemCounters &counters() { return counters_; }
    const mem::MemCounters &counters() const { return counters_; }

    /** Mirror transaction activity into @p sampler (nullptr
     *  detaches). */
    void setTxnSampler(telemetry::ActivitySampler *sampler)
    {
        txnSampler_ = sampler;
    }

    // Component protocol.
    const char *componentName() const override { return "mem-pipeline"; }
    void resetRun() override;
    std::string auditDrained() const override;

  private:
    /** One line-granular memory task moving through the pipeline. */
    struct MemTask
    {
        MemStage stage = MemStage::Complete;
        std::uint8_t mask = 0; //!< sectors requested of this line
        bool store = false;
        unsigned node = 0; //!< current network node
        unsigned homeGpm = 0;
        unsigned reqGpm = 0;
        std::uint64_t lineAddr = 0;
        std::uint32_t access = invalidIndex; //!< parent AccessRec
    };

    /** A warp-level access fanned out into per-line tasks. */
    struct AccessRec
    {
        std::uint32_t warpSlot = invalidIndex;
        std::uint32_t partsLeft = 0;
    };

    // Stage handlers, one per MemStage value, dispatched by the
    // switch in step() (all in mem_pipeline.cc, so the hot short
    // ones inline into it). Each takes the task's pool handle so it
    // can reschedule or release the task.
    void stageL2Lookup(MemTask &task, std::uint32_t task_handle,
                       noc::Tick t);
    void stageReqHop(MemTask &task, std::uint32_t task_handle,
                     noc::Tick t);
    void stageHomeDram(MemTask &task, std::uint32_t task_handle,
                       noc::Tick t);
    void stageRespHop(MemTask &task, std::uint32_t task_handle,
                      noc::Tick t);
    void stageComplete(MemTask &task, std::uint32_t task_handle,
                       noc::Tick t);
    void stageWbHop(MemTask &task, std::uint32_t task_handle,
                    noc::Tick t);
    void stageWbDram(MemTask &task, std::uint32_t task_handle,
                     noc::Tick t);

    void pushMem(noc::Tick when, std::uint32_t task_handle);

    /** Schedule an eviction writeback toward its home GPM. */
    void startWriteback(noc::Tick t, unsigned gpm,
                        std::uint64_t line_addr, std::uint8_t dirty);

    /** A load part finished; notify its access, maybe its warp. */
    void completePart(std::uint32_t access_handle, noc::Tick t);

    /** Record @p amount txns of @p level at time @p t (hook). */
    void
    noteTxn(noc::Tick t, isa::TxnLevel level, double amount)
    {
        if (txnSampler_)
            txnSampler_->addAt(t, static_cast<std::size_t>(level),
                               amount);
    }

    const mem::MemConfig &cfg_;
    mem::MemSystem &memory_;
    noc::InterGpmNetwork *network_; //!< nullptr when monolithic
    Calendar &calendar_;
    WarpWaker *waker_ = nullptr;

    GenPool<MemTask> tasks_;
    GenPool<AccessRec> accesses_;

    mem::MemCounters counters_;

    telemetry::ActivitySampler *txnSampler_ = nullptr;
};

} // namespace mmgpu::engine

#endif // MMGPU_ENGINE_MEM_PIPELINE_HH
