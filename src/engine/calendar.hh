/**
 * @file
 * The event calendar and simulation clock of the engine layer.
 *
 * Every machine in this repository advances by draining one global
 * calendar of timestamped events. The calendar is a binary min-heap
 * (std::push_heap / std::pop_heap over Event::operator>) on an
 * explicit vector rather than a std::priority_queue: the heap
 * operations are exactly the ones priority_queue is specified to
 * perform, so event ordering is bit-identical, while owning the
 * vector lets a build-once machine keep the backing capacity across
 * launches and runs instead of reallocating it every time.
 *
 * Determinism contract: events are ordered by `when` only. Two
 * events due at the same tick pop in an order determined solely by
 * the heap's structure, which in turn is determined solely by the
 * sequence of schedule()/pop() calls — never by allocation addresses
 * or hashing. Callers that need a specific tie order must encode it
 * in the schedule sequence.
 *
 * The push side is a hand-rolled hole-based sift-up that performs
 * exactly the moves of libstdc++'s __push_heap with std::greater
 * (move the parent down while it compares greater than the new
 * value, then store the value) — so its element placement, and
 * therefore every same-tick pop order, is bit-identical to the
 * std::push_heap the seed used. The strict `>` comparison is also
 * the same-tick fast path: an event due no earlier than its parent
 * (ties included) is placed with a single comparison and no element
 * moves. scheduleBatch() appends a burst then sifts each element in
 * append order; a sift only reads and writes the element's ancestor
 * chain (strictly smaller indices), so later appends are invisible
 * to earlier sifts and the resulting heap is identical to that of
 * element-wise schedule() calls — proven by test, not just argued.
 * The pop side stays on std::pop_heap: its bottom-up hole-adjust
 * places equal keys differently from a naive sift-down, so
 * reimplementing it would silently change tie order.
 */

#ifndef MMGPU_ENGINE_CALENDAR_HH
#define MMGPU_ENGINE_CALENDAR_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.hh"
#include "noc/bandwidth_server.hh"

namespace mmgpu::engine
{

/**
 * One calendar entry: a due time plus a payload index the owning
 * engine interprets (a warp slot or a memory-task pool index,
 * discriminated by isMem).
 */
struct Event
{
    noc::Tick when;
    std::uint32_t index; //!< warp slot or mem task index
    bool isMem;          //!< dispatch lane: memory pipeline vs warp

    bool
    operator>(const Event &other) const
    {
        return when > other.when;
    }
};

/**
 * The event calendar plus the simulation clock it implies.
 *
 * The clock (now()) is the latest event time ever popped, clamped
 * from below by advanceTo() — which run loops call at each launch
 * start so that a launch with no events still ends no earlier than
 * it began.
 */
class Calendar
{
  public:
    /** Queue an event for @p index's lane at time @p when. */
    void
    schedule(noc::Tick when, std::uint32_t index, bool is_mem)
    {
        heap_.push_back({when, index, is_mem});
        siftUp(heap_.size() - 1);
    }

    /**
     * Queue @p count events in one append. Equivalent to calling
     * schedule() for each event in order — same final heap layout,
     * same subsequent pop order — but grows the vector once and
     * keeps the sift loop hot for same-call-site bursts (CTA
     * dispatch, per-line access fan-out).
     */
    void
    scheduleBatch(const Event *events, std::size_t count)
    {
        heap_.insert(heap_.end(), events, events + count);
        std::size_t size = heap_.size();
        for (std::size_t i = size - count; i < size; ++i)
            siftUp(i);
    }

    /** True when no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events (diagnostics and audits). */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Pop the earliest event and advance the clock to its time.
     * @pre !empty().
     */
    Event
    pop()
    {
        mmgpu_assert(!heap_.empty(), "pop from empty calendar");
        Event event = heap_.front();
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
        heap_.pop_back();
        now_ = std::max(now_, event.when);
        return event;
    }

    /** The simulation clock: latest popped/advanced time. */
    noc::Tick now() const { return now_; }

    /** Clamp the clock from below (start of a launch). */
    void advanceTo(noc::Tick t) { now_ = std::max(now_, t); }

    /** Pre-size the backing vector (capacity survives reset()). */
    void reserve(std::size_t events) { heap_.reserve(events); }

    /** Drop all pending events and rewind the clock to zero. */
    void
    reset()
    {
        heap_.clear();
        now_ = 0.0;
    }

  private:
    /**
     * Hole-based sift-up, exactly __push_heap's element placement
     * (see the file comment's determinism argument). The first
     * comparison doubles as the fast path: events due at or after
     * their parent — the common future-event case and every
     * same-tick tie — cost one comparison and zero moves.
     */
    void
    siftUp(std::size_t hole)
    {
        if (hole == 0)
            return;
        std::size_t parent = (hole - 1) / 2;
        if (!(heap_[parent].when > heap_[hole].when))
            return;
        Event value = heap_[hole];
        do {
            heap_[hole] = heap_[parent];
            hole = parent;
            parent = (hole - 1) / 2;
        } while (hole > 0 && heap_[parent].when > value.when);
        heap_[hole] = value;
    }

    std::vector<Event> heap_;
    noc::Tick now_ = 0.0;
};

} // namespace mmgpu::engine

#endif // MMGPU_ENGINE_CALENDAR_HH
