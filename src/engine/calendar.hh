/**
 * @file
 * The event calendar and simulation clock of the engine layer.
 *
 * Every machine in this repository advances by draining one global
 * calendar of timestamped events. The calendar is a binary min-heap
 * (std::push_heap / std::pop_heap over Event::operator>) on an
 * explicit vector rather than a std::priority_queue: the heap
 * operations are exactly the ones priority_queue is specified to
 * perform, so event ordering is bit-identical, while owning the
 * vector lets a build-once machine keep the backing capacity across
 * launches and runs instead of reallocating it every time.
 *
 * Determinism contract: events are ordered by `when` only. Two
 * events due at the same tick pop in an order determined solely by
 * the heap's structure, which in turn is determined solely by the
 * sequence of schedule()/pop() calls — never by allocation addresses
 * or hashing. Callers that need a specific tie order must encode it
 * in the schedule sequence.
 */

#ifndef MMGPU_ENGINE_CALENDAR_HH
#define MMGPU_ENGINE_CALENDAR_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.hh"
#include "noc/bandwidth_server.hh"

namespace mmgpu::engine
{

/**
 * One calendar entry: a due time plus a payload index the owning
 * engine interprets (a warp slot or a memory-task pool index,
 * discriminated by isMem).
 */
struct Event
{
    noc::Tick when;
    std::uint32_t index; //!< warp slot or mem task index
    bool isMem;          //!< dispatch lane: memory pipeline vs warp

    bool
    operator>(const Event &other) const
    {
        return when > other.when;
    }
};

/**
 * The event calendar plus the simulation clock it implies.
 *
 * The clock (now()) is the latest event time ever popped, clamped
 * from below by advanceTo() — which run loops call at each launch
 * start so that a launch with no events still ends no earlier than
 * it began.
 */
class Calendar
{
  public:
    /** Queue an event for @p index's lane at time @p when. */
    void
    schedule(noc::Tick when, std::uint32_t index, bool is_mem)
    {
        heap_.push_back({when, index, is_mem});
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    }

    /** True when no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events (diagnostics and audits). */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Pop the earliest event and advance the clock to its time.
     * @pre !empty().
     */
    Event
    pop()
    {
        mmgpu_assert(!heap_.empty(), "pop from empty calendar");
        Event event = heap_.front();
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
        heap_.pop_back();
        now_ = std::max(now_, event.when);
        return event;
    }

    /** The simulation clock: latest popped/advanced time. */
    noc::Tick now() const { return now_; }

    /** Clamp the clock from below (start of a launch). */
    void advanceTo(noc::Tick t) { now_ = std::max(now_, t); }

    /** Pre-size the backing vector (capacity survives reset()). */
    void reserve(std::size_t events) { heap_.reserve(events); }

    /** Drop all pending events and rewind the clock to zero. */
    void
    reset()
    {
        heap_.clear();
        now_ = 0.0;
    }

  private:
    std::vector<Event> heap_;
    noc::Tick now_ = 0.0;
};

} // namespace mmgpu::engine

#endif // MMGPU_ENGINE_CALENDAR_HH
