#include "engine/warp_engine.hh"

#include "common/contract.hh"
#include "common/logging.hh"

namespace mmgpu::engine
{

WarpEngine::WarpEngine(const mem::MemConfig &config,
                       unsigned warp_slots_per_sm,
                       std::vector<sm::SmCore> &sms,
                       Calendar &calendar, MemPipeline &pipeline,
                       const CtaPolicy &policy, unsigned gpm_count)
    : cfg_(config), warpSlotsPerSm_(warp_slots_per_sm), sms_(sms),
      calendar_(calendar), pipeline_(pipeline), policy_(policy),
      gpmCount_(gpm_count)
{
}

void
WarpEngine::resetRun()
{
    instrs_.fill(0);
    profile_ = nullptr;
    launchLayout_ = nullptr;
    launchIndex_ = 0;
}

std::string
WarpEngine::auditDrained() const
{
    for (const WarpSlot &slot : slots_) {
        if (slot.live)
            return "warp slot live after calendar drain";
        if (slot.outstanding != 0) {
            return "warp slot retains " +
                   std::to_string(slot.outstanding) +
                   " outstanding accesses";
        }
    }
    for (unsigned left : ctaWarpsLeft_) {
        if (left != 0)
            return "undrained CTA";
    }
    return {};
}

void
WarpEngine::pushWarp(noc::Tick when, std::uint32_t slot)
{
    calendar_.schedule(when, slot, /*is_mem=*/false);
}

void
WarpEngine::beginLaunch(const trace::KernelProfile &profile,
                        const trace::SegmentLayout &layout,
                        unsigned launch, noc::Tick start)
{
    unsigned total_sms = static_cast<unsigned>(sms_.size());
    unsigned total_slots = total_sms * warpSlotsPerSm_;
    slots_.resize(total_slots);
    calendar_.reserve(total_slots);
    freeSlotsPerSm_.resize(total_sms);
    for (unsigned s = 0; s < total_sms; ++s) {
        freeSlotsPerSm_[s].clear();
        for (unsigned k = 0; k < warpSlotsPerSm_; ++k)
            freeSlotsPerSm_[s].push_back(s * warpSlotsPerSm_ + k);
    }

    ctaQueues_.clear();
    for (auto &list : policy_.assign(profile.ctaCount, gpmCount_))
        ctaQueues_.emplace_back(std::move(list));
    ctaWarpsLeft_.assign(profile.ctaCount, 0);

    profile_ = &profile;
    launchLayout_ = &layout;
    launchIndex_ = launch;

    for (unsigned s = 0; s < total_sms; ++s)
        fillSm(s, start);
}

void
WarpEngine::endLaunch()
{
    profile_ = nullptr;
    launchLayout_ = nullptr;
}

void
WarpEngine::fillSm(unsigned sm_id, noc::Tick t)
{
    const trace::KernelProfile &profile = *profile_;
    sm::SmCore &core = sms_[sm_id];
    unsigned gpm = core.gpm();
    while (core.freeSlots() >= profile.warpsPerCta &&
           ctaQueues_[gpm].hasWork()) {
        unsigned cta = ctaQueues_[gpm].pop();
        core.reserveSlots(profile.warpsPerCta);
        ctaWarpsLeft_[cta] = profile.warpsPerCta;
        // One calendar batch per CTA: every warp's first event lands
        // at the same tick t, in slot order — scheduleBatch() places
        // them exactly as warp-by-warp schedule() calls would.
        batchScratch_.clear();
        for (unsigned w = 0; w < profile.warpsPerCta; ++w) {
            mmgpu_assert(!freeSlotsPerSm_[sm_id].empty(),
                         "free-slot list disagrees with SmCore");
            unsigned slot_id = freeSlotsPerSm_[sm_id].back();
            freeSlotsPerSm_[sm_id].pop_back();
            WarpSlot &slot = slots_[slot_id];
            if (slot.trace)
                slot.trace->reset(profile, *launchLayout_,
                                  launchIndex_, cta, w);
            else
                slot.trace = std::make_unique<trace::WarpTrace>(
                    profile, *launchLayout_, launchIndex_, cta, w);
            slot.sm = sm_id;
            slot.cta = cta;
            slot.outstanding = 0;
            slot.blocked = WarpBlock::None;
            slot.replay.reset();
            slot.live = true;
            batchScratch_.push_back({t, slot_id, /*isMem=*/false});
        }
        calendar_.scheduleBatch(batchScratch_.data(),
                                batchScratch_.size());
    }
}

void
WarpEngine::loadDone(std::uint32_t warp_slot, noc::Tick t)
{
    WarpSlot &slot = slots_[warp_slot];
    mmgpu_assert(slot.outstanding > 0, "warp outstanding underflow");
    slot.outstanding -= 1;

    if (slot.blocked == WarpBlock::Window) {
        slot.blocked = WarpBlock::None;
        hooks_.warpWakes->add();
        pushWarp(t, warp_slot);
    } else if (slot.blocked == WarpBlock::Drain &&
               slot.outstanding == 0) {
        slot.blocked = WarpBlock::None;
        hooks_.warpWakes->add();
        pushWarp(t, warp_slot);
    }
}

void
WarpEngine::step(std::uint32_t slot_index, noc::Tick t)
{
    const trace::KernelProfile &profile = *profile_;
    WarpSlot &slot = slots_[slot_index];
    mmgpu_assert(slot.live, "event for dead warp slot");
    sm::SmCore &core = sms_[slot.sm];
    unsigned gpm = core.gpm();

    isa::TraceOp op;
    if (slot.replay) {
        op = *slot.replay;
        slot.replay.reset();
    } else {
        op = slot.trace->next();
    }

    switch (op.kind) {
      case isa::TraceOpKind::Compute: {
        instrs_[static_cast<std::size_t>(op.op)] += 1;
        noteInstr(t, op.op);
        noc::Tick issued = core.acquireIssue(t, isa::issueCost(op.op));
        pushWarp(issued +
                     static_cast<double>(isa::defaultLatency(op.op)),
                 slot_index);
        break;
      }
      case isa::TraceOpKind::ComputeBlock: {
        for (const auto &mix : profile.compute) {
            instrs_[static_cast<std::size_t>(mix.op)] +=
                mix.perIteration;
            noteInstr(t, mix.op,
                      static_cast<double>(mix.perIteration));
        }
        noc::Tick issued = core.acquireIssue(t, op.blockSlots());
        pushWarp(issued + static_cast<double>(op.blockLatency()),
                 slot_index);
        break;
      }
      case isa::TraceOpKind::Load: {
        if (op.op == isa::Opcode::LD_SHARED) {
            instrs_[static_cast<std::size_t>(op.op)] += 1;
            pipeline_.counters().txns[static_cast<std::size_t>(
                isa::TxnLevel::SharedToReg)] += 1;
            noteInstr(t, op.op);
            if (hooks_.txn) {
                hooks_.txn->addAt(
                    t,
                    static_cast<std::size_t>(
                        isa::TxnLevel::SharedToReg),
                    1.0);
            }
            noc::Tick issued = core.acquireIssue(t, 1);
            pushWarp(issued +
                         static_cast<double>(cfg_.sharedLatency),
                     slot_index);
            break;
        }
        // Enforce the memory-level-parallelism window: if full, park
        // the warp; a load completion wakes it and the op replays.
        if (slot.outstanding >= profile.mlp) {
            slot.replay = op;
            slot.blocked = WarpBlock::Window;
            core.noteActive(t);
            hooks_.blockWindow->add();
            break;
        }
        MMGPU_INVARIANT(slot.outstanding < profile.mlp,
                        "MLP window bound violated");
        instrs_[static_cast<std::size_t>(op.op)] += 1;
        noteInstr(t, op.op);
        noc::Tick issued = core.acquireIssue(t, 1);
        slot.outstanding += 1;
        pipeline_.startGlobalAccess(issued, slot_index, slot.sm, gpm,
                                    op.addr, op.sectors, false);
        pushWarp(issued, slot_index);
        break;
      }
      case isa::TraceOpKind::Store: {
        instrs_[static_cast<std::size_t>(op.op)] += 1;
        noteInstr(t, op.op);
        noc::Tick issued = core.acquireIssue(t, 1);
        pipeline_.startGlobalAccess(issued, invalidIndex, slot.sm,
                                    gpm, op.addr, op.sectors, true);
        pushWarp(issued, slot_index);
        break;
      }
      case isa::TraceOpKind::Sync: {
        if (slot.outstanding > 0) {
            slot.blocked = WarpBlock::Drain;
            core.noteActive(t);
            hooks_.blockDrain->add();
        } else {
            pushWarp(t, slot_index);
        }
        break;
      }
      case isa::TraceOpKind::Exit: {
        // The trace object is kept (dead but allocated) so the next
        // dispatch into this slot can rebind it without allocating.
        slot.live = false;
        core.releaseSlot(t);
        freeSlotsPerSm_[slot.sm].push_back(slot_index);
        mmgpu_assert(ctaWarpsLeft_[slot.cta] > 0, "CTA underflow");
        if (--ctaWarpsLeft_[slot.cta] == 0) {
            // CTA complete: backfill this SM.
            fillSm(slot.sm, t);
        }
        break;
      }
      default:
        mmgpu_panic("bad trace op kind");
    }
}

} // namespace mmgpu::engine
