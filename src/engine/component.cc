#include "engine/component.hh"

#include <utility>

#include "common/contract.hh"

namespace mmgpu::engine
{

void
ComponentRegistry::add(Component &component)
{
    entries_.push_back({component.componentName(),
                        [&component] { component.resetRun(); },
                        [&component] {
                            return component.auditDrained();
                        }});
}

void
ComponentRegistry::add(std::string name, std::function<void()> reset,
                       std::function<std::string()> audit)
{
    entries_.push_back(
        {std::move(name), std::move(reset), std::move(audit)});
}

void
ComponentRegistry::resetAll()
{
    if constexpr (contract::auditsEnabled) {
        std::string verdict = auditAll();
        MMGPU_INVARIANT(verdict.empty(),
                        "machine reused while not quiescent: ",
                        verdict);
    }
    for (const Entry &entry : entries_)
        entry.reset();
}

std::string
ComponentRegistry::auditAll() const
{
    for (const Entry &entry : entries_) {
        if (!entry.audit)
            continue;
        std::string verdict = entry.audit();
        if (!verdict.empty())
            return entry.name + ": " + verdict;
    }
    return {};
}

} // namespace mmgpu::engine
