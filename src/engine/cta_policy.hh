/**
 * @file
 * Pluggable CTA-to-GPM scheduling policy.
 *
 * The engine consults one narrow interface when a launch begins (to
 * build the per-GPM dispatch queues) and when the machine pre-places
 * pages (first-touch homing follows the CTA owning each byte range).
 * The built-in policies wrap sm::assignCtas; new schedulers plug in
 * by implementing assign() without touching the warp engine or the
 * memory pipeline.
 */

#ifndef MMGPU_ENGINE_CTA_POLICY_HH
#define MMGPU_ENGINE_CTA_POLICY_HH

#include <memory>
#include <vector>

#include "sm/cta_scheduler.hh"

namespace mmgpu::engine
{

/** CTA-to-GPM assignment policy consulted once per launch. */
class CtaPolicy
{
  public:
    virtual ~CtaPolicy() = default;

    /** Human-readable policy name (diagnostics). */
    virtual const char *name() const = 0;

    /**
     * Per-GPM CTA dispatch lists for one launch. List g holds the
     * CTA ids GPM g runs, in dispatch order. Must be deterministic:
     * the same (cta_count, gpm_count) must always produce the same
     * lists.
     */
    virtual std::vector<std::vector<unsigned>>
    assign(unsigned cta_count, unsigned gpm_count) const = 0;
};

/** The built-in policies (sm::CtaSchedPolicy) behind the interface. */
std::unique_ptr<CtaPolicy> makeCtaPolicy(sm::CtaSchedPolicy policy);

} // namespace mmgpu::engine

#endif // MMGPU_ENGINE_CTA_POLICY_HH
