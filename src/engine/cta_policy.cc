#include "engine/cta_policy.hh"

namespace mmgpu::engine
{

namespace
{

/** sm::assignCtas behind the CtaPolicy interface. */
class BuiltinCtaPolicy : public CtaPolicy
{
  public:
    explicit BuiltinCtaPolicy(sm::CtaSchedPolicy policy)
        : policy_(policy)
    {
    }

    const char *
    name() const override
    {
        return sm::ctaSchedPolicyName(policy_);
    }

    std::vector<std::vector<unsigned>>
    assign(unsigned cta_count, unsigned gpm_count) const override
    {
        return sm::assignCtas(cta_count, gpm_count, policy_);
    }

  private:
    sm::CtaSchedPolicy policy_;
};

} // namespace

std::unique_ptr<CtaPolicy>
makeCtaPolicy(sm::CtaSchedPolicy policy)
{
    return std::make_unique<BuiltinCtaPolicy>(policy);
}

} // namespace mmgpu::engine
