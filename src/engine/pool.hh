/**
 * @file
 * Generation-checked bump pools for index-addressed engine objects.
 *
 * The engine's in-flight objects (memory tasks, access records) are
 * addressed by pool index rather than pointer, so calendar events and
 * cross-object links stay valid when the backing vector grows. A
 * GenPool hands out *handles*: the low 24 bits are the pool index,
 * the high 8 bits a per-slot generation that increments on every
 * release. Under MMGPU_CONTRACTS=2 every dereference checks the
 * handle's generation against the slot's — a stale event aimed at a
 * recycled slot (the index-pool version of use-after-free) dies with
 * a diagnostic instead of silently corrupting an unrelated task.
 *
 * Allocation is bump-first: a cursor walks a pre-sized vector, and
 * only exhausted cursors grow it (geometric, capacity survives
 * resetRun()). Released slots go on a free list that is preferred
 * over the cursor, so allocation order — and therefore handle values
 * — is a pure function of the alloc/release sequence, never of
 * addresses. resetRun() rewinds the cursor instead of clearing the
 * vector, which keeps slot storage warm across runs.
 *
 * Generations deliberately wrap at 256: the check is probabilistic
 * (a stale handle escapes detection with probability 1/256 per
 * recycle), which is the usual trade for keeping handles in 32 bits.
 */

#ifndef MMGPU_ENGINE_POOL_HH
#define MMGPU_ENGINE_POOL_HH

#include <cstdint>
#include <vector>

#include "common/contract.hh"
#include "common/logging.hh"

namespace mmgpu::engine
{

/** Index-addressed object pool with generation-checked handles. */
template <typename T>
class GenPool
{
  public:
    /** Bits of a handle holding the pool index. */
    static constexpr unsigned indexBits = 24;

    /** Mask extracting the index from a handle. */
    static constexpr std::uint32_t indexMask = (1u << indexBits) - 1u;

    /** Reserved handle meaning "none" (also all-ones index). */
    static constexpr std::uint32_t invalidHandle = 0xffffffffu;

    /**
     * Allocate a slot and return its handle. The slot's contents are
     * whatever the previous user left (or value-initialized T for a
     * never-used slot); callers assign every field they later read.
     */
    std::uint32_t
    alloc()
    {
        std::uint32_t index;
        if (!free_.empty()) {
            index = free_.back();
            free_.pop_back();
        } else {
            if (top_ == items_.size()) {
                std::size_t grown = items_.size() * 2 + 64;
                items_.resize(grown);
                gens_.resize(grown, 0);
            }
            index = top_++;
        }
        mmgpu_assert(index < indexMask, "pool index space exhausted");
        return index |
               (static_cast<std::uint32_t>(gens_[index]) << indexBits);
    }

    /** Dereference @p handle (generation-checked at CONTRACTS>=2). */
    T &
    at(std::uint32_t handle)
    {
        std::uint32_t index = handle & indexMask;
        MMGPU_INVARIANT(
            gens_[index] ==
                static_cast<std::uint8_t>(handle >> indexBits),
            "stale pool handle: generation mismatch on slot ", index);
        return items_[index];
    }

    /** Return @p handle's slot to the free list. */
    void
    release(std::uint32_t handle)
    {
        std::uint32_t index = handle & indexMask;
        MMGPU_INVARIANT(
            gens_[index] ==
                static_cast<std::uint8_t>(handle >> indexBits),
            "stale pool handle released: slot ", index);
        gens_[index] += 1; // invalidates every outstanding handle
        free_.push_back(index);
    }

    /** Slots handed out and not yet released. */
    std::size_t
    inFlight() const
    {
        return top_ - free_.size();
    }

    /** High-water slot count this run (diagnostics). */
    std::size_t highWater() const { return top_; }

    /**
     * Rewind to the all-free state. Slot storage and capacity
     * survive; generations deliberately do NOT reset, so handles
     * from a previous run stay invalid.
     */
    void
    resetRun()
    {
        for (std::uint32_t i = 0; i < top_; ++i)
            gens_[i] += 1;
        top_ = 0;
        free_.clear();
    }

  private:
    std::vector<T> items_;
    std::vector<std::uint8_t> gens_;
    std::vector<std::uint32_t> free_;
    std::uint32_t top_ = 0;
};

} // namespace mmgpu::engine

#endif // MMGPU_ENGINE_POOL_HH
