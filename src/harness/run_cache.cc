#include "harness/run_cache.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/hash.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/wallclock.hh"

namespace mmgpu::harness
{

namespace
{

// ---- exact scalar <-> string codecs ----

/** Doubles as C99 hexfloats: bit-exact through strtod. */
std::string
encodeDouble(double value)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%a", value);
    return buffer;
}

std::string
encodeCount(Count value)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64,
                  static_cast<std::uint64_t>(value));
    return buffer;
}

bool
decodeDouble(const JsonValue *value, double &out)
{
    if (value == nullptr || !value->isString())
        return false;
    const std::string &text = value->asString();
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end == text.c_str() + text.size() && !text.empty();
}

bool
decodeCount(const JsonValue *value, Count &out)
{
    if (value == nullptr || !value->isString())
        return false;
    const std::string &text = value->asString();
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return end == text.c_str() + text.size() && !text.empty();
}

template <std::size_t N>
JsonValue
encodeCountArray(const std::array<Count, N> &values)
{
    JsonValue array = JsonValue::array();
    for (Count value : values)
        array.push(encodeCount(value));
    return array;
}

template <std::size_t N>
bool
decodeCountArray(const JsonValue *value, std::array<Count, N> &out)
{
    if (value == nullptr || !value->isArray() || value->size() != N)
        return false;
    for (std::size_t i = 0; i < N; ++i) {
        if (!decodeCount(value->at(i), out[i]))
            return false;
    }
    return true;
}

// ---- run payload <-> JSON ----

JsonValue
encodePerf(const sim::PerfResult &perf)
{
    JsonValue v = JsonValue::object();
    v.set("configName", perf.configName);
    v.set("workloadName", perf.workloadName);
    v.set("execCycles", encodeDouble(perf.execCycles));
    v.set("execSeconds", encodeDouble(perf.execSeconds));
    v.set("instrs", encodeCountArray(perf.instrs));
    v.set("memTxns", encodeCountArray(perf.mem.txns));
    v.set("l1SectorMisses", encodeCount(perf.mem.l1SectorMisses));
    v.set("l2SectorMisses", encodeCount(perf.mem.l2SectorMisses));
    v.set("remoteSectors", encodeCount(perf.mem.remoteSectors));
    v.set("localSectors", encodeCount(perf.mem.localSectors));
    v.set("writebackSectors", encodeCount(perf.mem.writebackSectors));
    v.set("linkByteHops", encodeCount(perf.link.byteHops));
    v.set("linkMessageBytes", encodeCount(perf.link.messageBytes));
    v.set("linkSwitchBytes", encodeCount(perf.link.switchBytes));
    v.set("linkTransfers", encodeCount(perf.link.transfers));
    v.set("linkRerouted", encodeCount(perf.link.rerouted));
    v.set("linkReconfigs", encodeCount(perf.link.reconfigs));
    v.set("smBusyCycles", encodeDouble(perf.smBusyCycles));
    v.set("smStallCycles", encodeDouble(perf.smStallCycles));
    v.set("smOccupiedCycles", encodeDouble(perf.smOccupiedCycles));
    v.set("l1Accesses", encodeCount(perf.l1Accesses));
    v.set("l1SectorHits", encodeCount(perf.l1SectorHits));
    v.set("l2Accesses", encodeCount(perf.l2Accesses));
    v.set("l2SectorHits", encodeCount(perf.l2SectorHits));
    v.set("dramQueueing", encodeDouble(perf.dramQueueing));
    v.set("linkQueueing", encodeDouble(perf.linkQueueing));
    v.set("linkBusy", encodeDouble(perf.linkBusy));
    v.set("dramBusy", encodeDouble(perf.dramBusy));
    return v;
}

bool
decodePerf(const JsonValue *v, sim::PerfResult &perf)
{
    if (v == nullptr || !v->isObject())
        return false;
    const JsonValue *config = v->find("configName");
    const JsonValue *workload = v->find("workloadName");
    if (config == nullptr || !config->isString() ||
        workload == nullptr || !workload->isString())
        return false;
    perf.configName = config->asString();
    perf.workloadName = workload->asString();
    return decodeDouble(v->find("execCycles"), perf.execCycles) &&
           decodeDouble(v->find("execSeconds"), perf.execSeconds) &&
           decodeCountArray(v->find("instrs"), perf.instrs) &&
           decodeCountArray(v->find("memTxns"), perf.mem.txns) &&
           decodeCount(v->find("l1SectorMisses"),
                       perf.mem.l1SectorMisses) &&
           decodeCount(v->find("l2SectorMisses"),
                       perf.mem.l2SectorMisses) &&
           decodeCount(v->find("remoteSectors"),
                       perf.mem.remoteSectors) &&
           decodeCount(v->find("localSectors"),
                       perf.mem.localSectors) &&
           decodeCount(v->find("writebackSectors"),
                       perf.mem.writebackSectors) &&
           decodeCount(v->find("linkByteHops"), perf.link.byteHops) &&
           decodeCount(v->find("linkMessageBytes"),
                       perf.link.messageBytes) &&
           decodeCount(v->find("linkSwitchBytes"),
                       perf.link.switchBytes) &&
           decodeCount(v->find("linkTransfers"),
                       perf.link.transfers) &&
           decodeCount(v->find("linkRerouted"),
                       perf.link.rerouted) &&
           decodeCount(v->find("linkReconfigs"),
                       perf.link.reconfigs) &&
           decodeDouble(v->find("smBusyCycles"), perf.smBusyCycles) &&
           decodeDouble(v->find("smStallCycles"),
                        perf.smStallCycles) &&
           decodeDouble(v->find("smOccupiedCycles"),
                        perf.smOccupiedCycles) &&
           decodeCount(v->find("l1Accesses"), perf.l1Accesses) &&
           decodeCount(v->find("l1SectorHits"), perf.l1SectorHits) &&
           decodeCount(v->find("l2Accesses"), perf.l2Accesses) &&
           decodeCount(v->find("l2SectorHits"), perf.l2SectorHits) &&
           decodeDouble(v->find("dramQueueing"), perf.dramQueueing) &&
           decodeDouble(v->find("linkQueueing"), perf.linkQueueing) &&
           decodeDouble(v->find("linkBusy"), perf.linkBusy) &&
           decodeDouble(v->find("dramBusy"), perf.dramBusy);
}

JsonValue
encodeEnergy(const joule::EnergyBreakdown &energy)
{
    JsonValue v = JsonValue::object();
    v.set("smBusy", encodeDouble(energy.smBusy));
    v.set("smIdle", encodeDouble(energy.smIdle));
    v.set("constant", encodeDouble(energy.constant));
    v.set("shmToReg", encodeDouble(energy.shmToReg));
    v.set("l1ToReg", encodeDouble(energy.l1ToReg));
    v.set("l2ToL1", encodeDouble(energy.l2ToL1));
    v.set("dramToL2", encodeDouble(energy.dramToL2));
    v.set("interModule", encodeDouble(energy.interModule));
    return v;
}

bool
decodeEnergy(const JsonValue *v, joule::EnergyBreakdown &energy)
{
    if (v == nullptr || !v->isObject())
        return false;
    return decodeDouble(v->find("smBusy"), energy.smBusy) &&
           decodeDouble(v->find("smIdle"), energy.smIdle) &&
           decodeDouble(v->find("constant"), energy.constant) &&
           decodeDouble(v->find("shmToReg"), energy.shmToReg) &&
           decodeDouble(v->find("l1ToReg"), energy.l1ToReg) &&
           decodeDouble(v->find("l2ToL1"), energy.l2ToL1) &&
           decodeDouble(v->find("dramToL2"), energy.dramToL2) &&
           decodeDouble(v->find("interModule"), energy.interModule);
}

std::string
keyName(std::uint64_t key)
{
    char buffer[20];
    std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, key);
    return buffer;
}

bool
parseKeyName(const std::string &name, std::uint64_t &key)
{
    if (name.size() != 16)
        return false;
    char *end = nullptr;
    key = std::strtoull(name.c_str(), &end, 16);
    return end == name.c_str() + name.size();
}

/** fsync the journal every this many appends; in between, write()
 *  into the page cache is enough to survive process death. */
constexpr std::uint64_t walSyncBatch = 32;

/** runs.json -> runs.wal (or append .wal to unconventional paths). */
std::string
walPathFor(const std::string &path)
{
    const std::string ext = ".json";
    if (path.size() > ext.size() &&
        path.compare(path.size() - ext.size(), ext.size(), ext) == 0)
        return path.substr(0, path.size() - ext.size()) + ".wal";
    return path + ".wal";
}

} // namespace

std::uint64_t
calibrationFingerprint(const joule::CalibrationResult &calib)
{
    Fnv1a hash(runCacheSchemaVersion);
    for (double epi : calib.table.epi)
        hash.add(epi);
    for (double ept : calib.table.ept)
        hash.add(ept);
    hash.add(calib.constPower);
    hash.add(calib.stallEnergy);
    hash.add(calib.converged);
    return hash.digest();
}

std::uint64_t
runFingerprint(const sim::GpuConfig &config,
               const trace::KernelProfile &profile,
               double link_energy_scale, double const_growth_override,
               std::uint64_t calib_fingerprint)
{
    Fnv1a hash(runCacheSchemaVersion);
    hash.add(calib_fingerprint);

    // Configuration: every field the simulator or the energy model
    // reads, not just the display name (ablations rename nothing).
    hash.add(config.name);
    hash.add(config.gpmCount);
    hash.add(config.smsPerGpm);
    hash.add(config.warpSlotsPerSm);
    hash.add(config.issueSlotsPerCycle);
    hash.add(config.memory.gpmCount);
    hash.add(config.memory.smsPerGpm);
    hash.add(static_cast<std::uint64_t>(config.memory.l1BytesPerSm));
    hash.add(config.memory.l1Assoc);
    hash.add(static_cast<std::uint64_t>(config.memory.l2BytesPerGpm));
    hash.add(config.memory.l2Assoc);
    hash.add(config.memory.dramBytesPerCycle);
    hash.add(config.memory.nocBytesPerCycle);
    hash.add(static_cast<std::uint64_t>(config.memory.l1Latency));
    hash.add(static_cast<std::uint64_t>(config.memory.l2Latency));
    hash.add(static_cast<std::uint64_t>(config.memory.dramLatency));
    hash.add(static_cast<std::uint64_t>(config.memory.nocLatency));
    hash.add(static_cast<std::uint64_t>(config.memory.sharedLatency));
    hash.add(config.topology);
    hash.add(config.domain);
    hash.add(config.placement);
    hash.add(config.ctaScheduling);
    hash.add(config.interGpmBytesPerCycle);
    hash.add(static_cast<std::uint64_t>(config.hopLatency));
    hash.add(static_cast<std::uint64_t>(config.switchLatency));
    hash.add(static_cast<std::uint64_t>(config.launchOverhead));
    hash.add(config.clock.frequency());

    // Workload: the full statistical description.
    hash.add(profile.name);
    hash.add(profile.cls);
    hash.add(profile.ctaCount);
    hash.add(profile.warpsPerCta);
    hash.add(profile.iterations);
    hash.add(profile.launches);
    hash.add(profile.mlp);
    hash.add(static_cast<std::uint64_t>(profile.compute.size()));
    for (const auto &mix : profile.compute) {
        hash.add(mix.op);
        hash.add(mix.perIteration);
    }
    hash.add(profile.sharedLoadsPerIter);
    auto add_accesses =
        [&hash](const std::vector<trace::SegmentAccess> &accesses) {
            hash.add(static_cast<std::uint64_t>(accesses.size()));
            for (const auto &access : accesses) {
                hash.add(access.segment);
                hash.add(access.pattern);
                hash.add(access.perIteration);
                hash.add(access.divergence);
                hash.add(access.irregular);
                hash.add(access.haloFraction);
                hash.add(access.haloStride);
            }
        };
    add_accesses(profile.loads);
    add_accesses(profile.stores);
    hash.add(static_cast<std::uint64_t>(profile.segments.size()));
    for (const auto &segment : profile.segments) {
        hash.add(segment.name);
        hash.add(static_cast<std::uint64_t>(segment.bytes));
    }
    hash.add(profile.seed);
    hash.add(profile.hwKernelSeconds);
    hash.add(profile.hwGapSeconds);

    // Link faults change routing and link capacities; healthy
    // configurations contribute nothing (fingerprints unchanged).
    if (!config.linkFaults.empty())
        hash.add(config.linkFaults.digest());

    // Energy-parameter overrides.
    hash.add(link_energy_scale);
    hash.add(const_growth_override);
    return hash.digest();
}

RunCache::RunCache(std::string path)
    : path_(std::move(path)), walPath_(walPathFor(path_))
{
    const char *wal = std::getenv("MMGPU_CACHE_WAL");
    walEnabled_ = !(wal != nullptr && std::string(wal) == "0");
    std::lock_guard<std::mutex> lock(mutex_);
    loadLocked();
    replayWalLocked();
}

RunCache::~RunCache()
{
    stopAutoFlush();
    if (walFd_ >= 0)
        ::close(walFd_);
}

void
RunCache::startAutoFlush(double seconds)
{
    if (seconds <= 0.0)
        return;
    flushPeriodMs_.store(
        static_cast<std::int64_t>(seconds * 1000.0),
        std::memory_order_release);
    if (flusher_.joinable())
        return; // already running; it picks up the new period
    flusherStop_.store(false, std::memory_order_release);
    flusher_ = std::thread([this] {
        std::int64_t last = wallclock::nowMs();
        while (!flusherStop_.load(std::memory_order_acquire)) {
            wallclock::sleepMs(20);
            const std::int64_t period =
                flushPeriodMs_.load(std::memory_order_acquire);
            if (wallclock::nowMs() - last < period)
                continue;
            // flush() is a no-op unless inserts happened; the
            // counter still ticks so tests can await a pass.
            flush();
            autoFlushes_.fetch_add(1, std::memory_order_relaxed);
            last = wallclock::nowMs();
        }
    });
}

void
RunCache::stopAutoFlush()
{
    if (!flusher_.joinable())
        return;
    flusherStop_.store(true, std::memory_order_release);
    flusher_.join();
    // One final pass so an orderly shutdown never leans on journal
    // replay: the snapshot lands atomically and the WAL truncates.
    flush();
}

double
RunCache::autoFlushSecondsFromEnv()
{
    const char *text = std::getenv("MMGPU_CACHE_FLUSH_SEC");
    if (text == nullptr || *text == '\0')
        return 0.0;
    char *end = nullptr;
    double seconds = std::strtod(text, &end);
    if (end == text || *end != '\0' || seconds <= 0.0) {
        warn("ignoring malformed MMGPU_CACHE_FLUSH_SEC='", text, "'");
        return 0.0;
    }
    return seconds;
}

void
RunCache::loadLocked()
{
    std::ifstream in(path_, std::ios::binary);
    if (!in.is_open())
        return; // cold cache
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();

    std::optional<JsonValue> doc = parseJson(text);
    if (!doc || !doc->isObject()) {
        warn("run cache ", path_, " is corrupt; ignoring it");
        return;
    }
    const JsonValue *schema = doc->find("schema");
    if (schema == nullptr || !schema->isNumber() ||
        schema->asNumber() !=
            static_cast<double>(runCacheSchemaVersion))
        return; // stale schema: silently recompute
    const JsonValue *entries = doc->find("entries");
    if (entries == nullptr || !entries->isArray()) {
        warn("run cache ", path_, " has no entry table; ignoring it");
        return;
    }
    std::size_t bad = 0;
    for (std::size_t i = 0; i < entries->size(); ++i) {
        const JsonValue *record = entries->at(i);
        const JsonValue *name =
            record ? record->find("key") : nullptr;
        std::uint64_t key = 0;
        Entry decoded;
        if (name == nullptr || !name->isString() ||
            !parseKeyName(name->asString(), key) ||
            !decodePerf(record->find("perf"), decoded.perf) ||
            !decodeEnergy(record->find("energy"), decoded.energy)) {
            ++bad;
            continue;
        }
        entries_.emplace(key, std::move(decoded));
    }
    if (bad > 0)
        warn("run cache ", path_, ": skipped ", bad,
             " undecodable entries");
}

bool
RunCache::lookup(std::uint64_t key, sim::PerfResult &perf,
                 joule::EnergyBreakdown &energy)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    perf = it->second.perf;
    energy = it->second.energy;
    return true;
}

void
RunCache::insert(std::uint64_t key, const sim::PerfResult &perf,
                 const joule::EnergyBreakdown &energy)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &slot = entries_[key];
    slot = Entry{perf, energy};
    dirty_ = true;
    appendWalLocked(key, slot);
}

void
RunCache::armWalTear(std::uint64_t nth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    walTearAt_ = nth == 0 ? 0 : walAppends_ + nth;
}

void
RunCache::appendWalLocked(std::uint64_t key, const Entry &entry)
{
    if (!walEnabled_)
        return;
    if (walFd_ < 0 && !walOpenFailed_) {
        namespace fs = std::filesystem;
        std::error_code ec;
        fs::path target(walPath_);
        if (target.has_parent_path())
            fs::create_directories(target.parent_path(), ec);
        walFd_ = ::open(walPath_.c_str(),
                        O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                        0644);
        if (walFd_ < 0) {
            walOpenFailed_ = true;
            warn("run cache: cannot open journal ", walPath_,
                 "; inserts are only as durable as the next flush");
        }
    }
    if (walFd_ < 0)
        return;

    JsonValue record = JsonValue::object();
    record.set("key", keyName(key));
    record.set("perf", encodePerf(entry.perf));
    record.set("energy", encodeEnergy(entry.energy));
    std::string payload = record.dumpCompact();
    Fnv1a sum;
    sum.add(payload);

    // Leading-newline framing: this append terminates any torn tail
    // a previous crash (or injected tear) left behind, confining the
    // damage to that one record.
    std::string line = "\nR " + keyName(sum.digest()) + " " + payload;
    ++walAppends_;
    if (walTearAt_ != 0 && walAppends_ == walTearAt_) {
        line.resize(line.size() / 2); // injected torn write
        walTearAt_ = 0;
    }
    std::size_t off = 0;
    while (off < line.size()) {
        ssize_t n =
            ::write(walFd_, line.data() + off, line.size() - off);
        if (n <= 0) {
            warn("run cache: journal append to ", walPath_,
                 " failed");
            return;
        }
        off += static_cast<std::size_t>(n);
    }
    if (++walUnsynced_ >= walSyncBatch) {
        // Deliberate: the journal IS the durability story — syncing
        // outside mutex_ would let an insert report success before
        // its record is on disk. Batched (1 fsync per walSyncBatch
        // appends) to bound the stall.
        ::fsync(walFd_); // mmgpu-lint: allow(no-blocking-under-lock)
        walUnsynced_ = 0;
    }
}

void
RunCache::replayWalLocked()
{
    if (!walEnabled_)
        return;
    std::ifstream in(walPath_, std::ios::binary);
    if (!in.is_open())
        return; // no journal: clean shutdown or cold cache
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();

    std::size_t dropped = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string record = text.substr(pos, end - pos);
        pos = end + 1;
        if (record.empty())
            continue;

        // "R <16-hex FNV-1a of payload> <compact JSON payload>"
        bool ok = false;
        std::uint64_t sum = 0;
        if (record.size() > 20 && record[0] == 'R' &&
            record[1] == ' ' && record[18] == ' ' &&
            parseKeyName(record.substr(2, 16), sum)) {
            std::string payload = record.substr(19);
            Fnv1a check;
            check.add(payload);
            if (check.digest() == sum) {
                std::optional<JsonValue> doc = parseJson(payload);
                const JsonValue *name =
                    doc && doc->isObject() ? doc->find("key")
                                           : nullptr;
                std::uint64_t key = 0;
                Entry decoded;
                if (name != nullptr && name->isString() &&
                    parseKeyName(name->asString(), key) &&
                    decodePerf(doc->find("perf"), decoded.perf) &&
                    decodeEnergy(doc->find("energy"),
                                 decoded.energy)) {
                    entries_[key] = std::move(decoded); // WAL wins
                    ++walReplayed_;
                    ok = true;
                }
            }
        }
        if (!ok)
            ++dropped;
    }
    if (dropped > 0)
        warn("run cache journal ", walPath_, ": dropped ", dropped,
             " torn or corrupt record(s)");
    if (walReplayed_ > 0)
        dirty_ = true; // fold replayed work into the next snapshot
}

void
RunCache::truncateWalLocked()
{
    if (!walEnabled_)
        return;
    walUnsynced_ = 0;
    if (walFd_ >= 0 && ::ftruncate(walFd_, 0) == 0)
        return;
    std::error_code ec;
    std::filesystem::resize_file(walPath_, 0, ec);
}

std::size_t
RunCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

bool
RunCache::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!dirty_)
        return true;

    // Merge entries a sibling process may have written since load:
    // ours win on key collision (they are newer). The fresh load
    // replays the shared journal too, so truncating it below cannot
    // drop a sibling's not-yet-flushed records.
    {
        RunCache fresh(path_);
        for (auto &[key, entry] : fresh.entries_)
            entries_.emplace(key, std::move(entry));
    }

    JsonValue doc = JsonValue::object();
    doc.set("schema",
            static_cast<unsigned long long>(runCacheSchemaVersion));
    JsonValue entries = JsonValue::array();
    for (const auto &[key, entry] : entries_) {
        JsonValue record = JsonValue::object();
        record.set("key", keyName(key));
        record.set("perf", encodePerf(entry.perf));
        record.set("energy", encodeEnergy(entry.energy));
        entries.push(std::move(record));
    }
    doc.set("entries", std::move(entries));

    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path target(path_);
    if (target.has_parent_path())
        fs::create_directories(target.parent_path(), ec);
    std::string tmp = path_ + ".tmp";

    // Write + atomic rename, retried with bounded backoff: a
    // transient failure (filesystem pressure, a racing sibling on
    // some platforms) should not lose a sweep's worth of results.
    constexpr unsigned attempts = 3;
    for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
        if (attempt > 1) {
            // Deliberate: flush() owns mutex_ for its whole critical
            // section and the backoff is bounded (<= 9 ms total);
            // writers block briefly rather than observe a torn file.
            wallclock::sleepMs(attempt == 2 ? 1 : 8); // mmgpu-lint: allow(no-blocking-under-lock)
        }
        bool wrote = false;
        {
            std::ofstream out(tmp,
                              std::ios::binary | std::ios::trunc);
            if (out.is_open()) {
                doc.write(out);
                out << "\n";
                wrote = out.good();
            }
        }
        if (!wrote)
            continue;
        ec.clear();
        fs::rename(tmp, target, ec);
        if (!ec) {
            dirty_ = false;
            truncateWalLocked(); // snapshot now covers the journal
            return true;
        }
    }
    warn("run cache: flushing ", path_, " failed after ", attempts,
         " attempts");
    return false;
}

RunCache *
RunCache::processCache()
{
    static RunCache *instance = []() -> RunCache * {
        const char *off = std::getenv("MMGPU_NO_CACHE");
        if (off != nullptr && *off != '\0' &&
            std::string(off) != "0")
            return nullptr;
        const char *dir = std::getenv("MMGPU_CACHE_DIR");
        std::string base = (dir != nullptr && *dir != '\0')
                               ? dir
                               : ".mmgpu-cache";
        auto *cache = new RunCache(base + "/runs.json");
        if (double seconds = autoFlushSecondsFromEnv();
            seconds > 0.0)
            cache->startAutoFlush(seconds);
        std::atexit([] {
            if (RunCache *c = processCache()) {
                c->stopAutoFlush();
                c->flush();
            }
        });
        return cache;
    }();
    return instance;
}

} // namespace mmgpu::harness
