/**
 * @file
 * Parallel batch executor for independent simulation runs.
 *
 * The paper's evaluation is a large (workload x configuration)
 * sweep, and every point is an independent single-threaded
 * simulation: each run builds its own GpuSim against an immutable
 * StudyContext. The ParallelRunner exploits that: benches (and
 * scalingStudy()) enqueue whole sweeps up front, drain() executes
 * them on a worker pool — one worker per hardware thread by default,
 * `MMGPU_JOBS=<n>` overrides — and every outcome lands in the
 * ScalingRunner's memo cache, where the subsequent (serial)
 * aggregation passes find it. Execution order never affects results:
 * the simulator is deterministic per point, so parallel and serial
 * sweeps are bit-identical (asserted by tests/test_parallel_runner).
 */

#ifndef MMGPU_HARNESS_PARALLEL_RUNNER_HH
#define MMGPU_HARNESS_PARALLEL_RUNNER_HH

#include <cstddef>
#include <set>
#include <vector>

#include "common/result.hh"
#include "harness/study.hh"

namespace mmgpu::harness
{

/** One sweep point that failed to compute. */
struct PointFailure
{
    RunKey key;
    SimError error;
};

/** What a drain() pass accomplished. */
struct DrainReport
{
    /** Points that completed (fresh or memoized). */
    std::size_t completed = 0;

    /** Points that failed, with their errors; the rest of the batch
     *  still ran to completion (failed-point isolation). */
    std::vector<PointFailure> failures;

    /** Every point completed. */
    bool ok() const { return failures.empty(); }
};

/** Batch executor filling a ScalingRunner's memo cache. */
class ParallelRunner
{
  public:
    /**
     * @param runner Thread-safe memoizing runner (not owned).
     * @param workers Worker-thread cap; 0 = defaultWorkers().
     */
    explicit ParallelRunner(ScalingRunner &runner,
                            unsigned workers = 0);

    /**
     * Worker count used when none is requested: the `MMGPU_JOBS`
     * environment override if set (clamped to >= 1), else
     * std::thread::hardware_concurrency().
     */
    static unsigned defaultWorkers();

    /**
     * Queue one run. Points already memoized by the runner — or
     * already queued in this batch (e.g. the shared 1-GPM baseline
     * of several enqueueStudy() calls) — are skipped. The
     * config/profile are copied — the batch owns its inputs until
     * drain() returns.
     */
    void enqueue(const sim::GpuConfig &config,
                 const trace::KernelProfile &profile,
                 double link_energy_scale = 1.0,
                 double const_growth_override = -1.0);

    /**
     * Queue a whole scaling study: every workload on the 1-GPM
     * baseline (no overrides) and on @p config (with overrides) —
     * the exact point set scalingStudy() reads.
     */
    void enqueueStudy(const sim::GpuConfig &config,
                      const std::vector<trace::KernelProfile> &workloads,
                      double link_energy_scale = 1.0,
                      double const_growth_override = -1.0);

    /** Queued, not-yet-drained run count. */
    std::size_t pending() const { return jobs_.size(); }

    /** The effective worker count drain() will use. */
    unsigned workers() const { return workers_; }

    /**
     * Cancel any point still running @p seconds after it started
     * (0 disables, the default). A monitor thread polls per-point
     * start times and raises that point's cooperative cancel flag;
     * the point then reports a timeout SimError instead of stalling
     * the whole sweep. Cancellation is cooperative — it interrupts
     * the waits that poll the flag (injected hangs), not arbitrary
     * compute loops.
     */
    void setWatchdog(double seconds) { watchdogSeconds_ = seconds; }

    /**
     * Checkpoint partial progress: flush the runner's persistent
     * cache after every @p n completed points (0 disables, the
     * default). An interrupted sweep then resumes from the last
     * checkpoint instead of recomputing from scratch.
     */
    void setCheckpointEvery(std::size_t n) { checkpointEvery_ = n; }

    /**
     * Execute every queued run and block until all complete. Jobs
     * are claimed off a shared atomic cursor; with one worker (or a
     * single job) everything runs inline on the calling thread.
     * The queue is empty afterwards; the runner's memo cache holds
     * the outcomes.
     *
     * A failing point (invalid config, injected fault, watchdog
     * timeout) is isolated: the remaining points still execute, and
     * the failure is reported in the returned DrainReport.
     */
    DrainReport drain();

  private:
    struct Job
    {
        sim::GpuConfig config;
        trace::KernelProfile profile;
        double linkEnergyScale;
        double constGrowthOverride;
    };

    ScalingRunner *runner_;
    unsigned workers_;
    double watchdogSeconds_ = 0.0;
    std::size_t checkpointEvery_ = 0;
    std::vector<Job> jobs_;
    std::set<RunKey> queued_; //!< duplicate suppression per batch
};

} // namespace mmgpu::harness

#endif // MMGPU_HARNESS_PARALLEL_RUNNER_HH
