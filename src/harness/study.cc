#include "harness/study.hh"

#include <sstream>

#include "common/logging.hh"
#include "gpujoule/reference_device.hh"

namespace mmgpu::harness
{

joule::EnergyInputs
inputsFrom(const sim::PerfResult &perf, unsigned gpm_count,
           unsigned total_sms)
{
    joule::EnergyInputs inputs;
    inputs.warpInstrs = perf.instrs;
    inputs.txns = perf.mem.txns;
    inputs.smStallCycles = perf.smStallCycles;
    inputs.execTime = perf.execSeconds;
    inputs.gpmCount = gpm_count;
    inputs.linkBytes = perf.link.messageBytes;
    inputs.switchBytes = perf.link.switchBytes;
    inputs.smOccupiedCycles = perf.smOccupiedCycles;
    inputs.smCycleCapacity =
        static_cast<double>(total_sms) * perf.execCycles;
    return inputs;
}

StudyContext::StudyContext()
{
    device_ = std::make_unique<power::SiliconGpu>(
        joule::referenceK40Truth(spec));
    joule::Calibrator calibrator(*device_, spec);
    calib = calibrator.calibrate();
    if (!calib.converged)
        warn("study proceeding with unconverged calibration");
}

joule::EnergyParams
StudyContext::paramsFor(const sim::GpuConfig &config,
                        double link_energy_scale,
                        double const_growth_override) const
{
    joule::MultiModuleOptions options;
    options.onPackage =
        config.domain == sim::IntegrationDomain::OnPackage;
    options.switched = config.topology == noc::Topology::Switch;
    options.linkEnergyScale = link_energy_scale;
    options.constGrowthOverride = const_growth_override;
    return joule::multiModuleParams(calib.table, calib.stallEnergy,
                                    calib.constPower, options);
}

const RunOutcome &
ScalingRunner::run(const sim::GpuConfig &config,
                   const trace::KernelProfile &profile,
                   double link_energy_scale,
                   double const_growth_override)
{
    std::ostringstream key;
    key << config.name << "|"
        << sim::placementPolicyName(config.placement) << "|"
        << sm::ctaSchedPolicyName(config.ctaScheduling) << "|"
        << profile.name << "|" << link_energy_scale << "|"
        << const_growth_override;
    auto it = cache.find(key.str());
    if (it != cache.end())
        return it->second;

    sim::GpuSim machine(config);
    RunOutcome outcome;
    outcome.perf = machine.run(profile);
    joule::EnergyParams params = context_->paramsFor(
        config, link_energy_scale, const_growth_override);
    outcome.energy = joule::estimate(
        inputsFrom(outcome.perf, config.gpmCount, config.totalSms()),
        params);
    return cache.emplace(key.str(), std::move(outcome)).first->second;
}

std::vector<ScalingPoint>
scalingStudy(ScalingRunner &runner, const sim::GpuConfig &config,
             const std::vector<trace::KernelProfile> &workloads,
             double link_energy_scale, double const_growth_override)
{
    const sim::GpuConfig baseline = sim::baselineConfig();
    std::vector<ScalingPoint> points;
    points.reserve(workloads.size());
    for (const auto &profile : workloads) {
        const RunOutcome &one = runner.run(baseline, profile);
        const RunOutcome &scaled =
            runner.run(config, profile, link_energy_scale,
                       const_growth_override);

        ScalingPoint point;
        point.workload = profile.name;
        point.cls = profile.cls;
        point.speedup = metrics::speedup(one.perf.execSeconds,
                                         scaled.perf.execSeconds);
        point.energyRatio =
            scaled.energy.total() / one.energy.total();
        point.edpse = metrics::edpse(one.point(), scaled.point(),
                                     config.gpmCount);
        point.ed2pse = metrics::edipse(one.point(), scaled.point(),
                                       config.gpmCount, 2);
        // Performance-per-watt scaling efficiency: the fraction of
        // linear perf/W scaling realized (paper §V-D argues the
        // trends agree across these metric choices).
        double power_one = one.energy.total() / one.perf.execSeconds;
        double power_scaled =
            scaled.energy.total() / scaled.perf.execSeconds;
        point.perfPerWattSE = point.speedup /
                              (power_scaled / power_one) /
                              config.gpmCount * 100.0;
        points.push_back(point);
    }
    return points;
}

double
meanOf(const std::vector<ScalingPoint> &points,
       double ScalingPoint::*field)
{
    mmgpu_assert(!points.empty(), "mean of empty scaling study");
    double sum = 0.0;
    for (const auto &point : points)
        sum += point.*field;
    return sum / static_cast<double>(points.size());
}

double
meanOf(const std::vector<ScalingPoint> &points,
       double ScalingPoint::*field, trace::WorkloadClass cls)
{
    double sum = 0.0;
    unsigned count = 0;
    for (const auto &point : points) {
        if (point.cls == cls) {
            sum += point.*field;
            ++count;
        }
    }
    mmgpu_assert(count > 0, "no workloads in class");
    return sum / count;
}

} // namespace mmgpu::harness
