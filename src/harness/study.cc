#include "harness/study.hh"

#include <algorithm>
#include <array>
#include <map>
#include <mutex>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "common/contract.hh"
#include "common/crash_guard.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/thread_safety.hh"
#include "common/wallclock.hh"
#include "gpujoule/reference_device.hh"
#include "harness/parallel_runner.hh"
#include "noc/topology_registry.hh"
#include "power/sensor.hh"

namespace mmgpu::harness
{

namespace
{

/**
 * Containers whose element references survive insertion of other
 * elements. The memo cache hands out references into its map while
 * worker threads keep inserting, so node stability is load-bearing;
 * this trait turns a casual container swap (e.g. to a flat/vector-
 * backed map, whose elements relocate) into a compile error instead
 * of a silent dangling reference. std::map and std::unordered_map
 * both qualify ([associative.reqmts]/[unord.req]: insertion never
 * invalidates references to existing elements — unordered rehash
 * invalidates iterators, not references).
 */
template <typename M>
struct is_node_stable_map : std::false_type
{
};
template <typename K, typename V, typename C, typename A>
struct is_node_stable_map<std::map<K, V, C, A>> : std::true_type
{
};
template <typename K, typename V, typename H, typename E, typename A>
struct is_node_stable_map<std::unordered_map<K, V, H, E, A>>
    : std::true_type
{
};

} // namespace

/**
 * Sharded memo cache. A shard is a mutex-protected map; the mutex
 * covers only entry lookup/insertion (microseconds), while the
 * per-entry once_flag serializes the actual simulation of one key
 * (seconds) without blocking other keys in the same shard.
 */
/**
 * One memoized point: exactly one thread computes it (per-entry
 * once_flag); the outcome or the failure is then shared by every
 * caller. A failed point stays failed for the runner's lifetime —
 * re-querying fails fast instead of re-simulating.
 */
struct ScalingRunner::Entry
{
    std::once_flag once;
    std::atomic<bool> done{false};
    RunOutcome outcome;
    std::optional<SimError> error;
};

struct ScalingRunner::Cache
{
    using ShardMap = std::map<RunKey, Entry>;
    static_assert(is_node_stable_map<ShardMap>::value,
                  "run() returns references into this map while "
                  "other threads insert; the container must keep "
                  "element addresses stable under insertion");

    struct Shard
    {
        std::mutex mutex;
        ShardMap entries MMGPU_GUARDED_BY(mutex);
    };

    static constexpr std::size_t shardCount = 8;
    std::array<Shard, shardCount> shards;

    static std::uint64_t
    hashOf(const RunKey &key)
    {
        Fnv1a hash;
        hash.add(key.config);
        hash.add(key.workload);
        hash.add(key.topology);
        hash.add(key.placement);
        hash.add(key.ctaScheduling);
        hash.add(key.linkEnergyScale);
        hash.add(key.constGrowthOverride);
        hash.add(key.linkFaultDigest);
        return hash.digest();
    }

    Shard &
    shardFor(const RunKey &key)
    {
        return shards[hashOf(key) % shardCount];
    }
};

/**
 * Pool of idle build-once machines. GpuSim resets every component
 * before each run, so a pooled machine produces bit-identical
 * results to a freshly constructed one (test_gpu_sim.cc proves
 * this); pooling removes the per-point hierarchy construction from
 * sweeps. Keyed by machine identity — the same convention the memo
 * key uses (the config name stands in for the full configuration),
 * narrowed to the fields that shape the machine itself; energy
 * overrides don't build different machines.
 */
struct ScalingRunner::MachinePool
{
    struct MachineKey
    {
        std::string config;
        std::uint8_t topology = 0;
        std::uint8_t placement = 0;
        std::uint8_t ctaScheduling = 0;
        std::uint64_t linkFaultDigest = 0;

        friend bool
        operator<(const MachineKey &a, const MachineKey &b)
        {
            if (int c = a.config.compare(b.config))
                return c < 0;
            if (a.topology != b.topology)
                return a.topology < b.topology;
            if (a.placement != b.placement)
                return a.placement < b.placement;
            if (a.ctaScheduling != b.ctaScheduling)
                return a.ctaScheduling < b.ctaScheduling;
            return a.linkFaultDigest < b.linkFaultDigest;
        }
    };

    static MachineKey
    keyOf(const sim::GpuConfig &config)
    {
        return {config.name,
                static_cast<std::uint8_t>(config.topology),
                static_cast<std::uint8_t>(config.placement),
                static_cast<std::uint8_t>(config.ctaScheduling),
                config.linkFaults.digest()};
    }

    /** Reuse an idle machine for @p config, or build one. */
    std::unique_ptr<sim::GpuSim>
    acquire(const sim::GpuConfig &config)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            auto it = idle.find(keyOf(config));
            if (it != idle.end() && !it->second.empty()) {
                std::unique_ptr<sim::GpuSim> machine =
                    std::move(it->second.back());
                it->second.pop_back();
                return machine;
            }
        }
        // Construction builds the whole hierarchy; keep it outside
        // the lock so a miss doesn't stall other workers.
        return std::make_unique<sim::GpuSim>(config);
    }

    /** Return @p machine to the idle pool (telemetry detached). */
    void
    release(std::unique_ptr<sim::GpuSim> machine)
    {
        std::lock_guard<std::mutex> lock(mutex);
        idle[keyOf(machine->config())].push_back(std::move(machine));
    }

    /** Destroy every idle machine under @p key. @return count. */
    std::size_t
    retire(const MachineKey &key)
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = idle.find(key);
        if (it == idle.end())
            return 0;
        std::size_t count = it->second.size();
        idle.erase(it);
        return count;
    }

    /** Destroy every idle machine in the pool. @return count. */
    std::size_t
    retireAll()
    {
        std::lock_guard<std::mutex> lock(mutex);
        std::size_t count = 0;
        for (auto &[key, machines] : idle)
            count += machines.size();
        idle.clear();
        return count;
    }

    std::mutex mutex;
    std::map<MachineKey, std::vector<std::unique_ptr<sim::GpuSim>>>
        idle MMGPU_GUARDED_BY(mutex);
};

namespace
{

RunKey
makeKey(const sim::GpuConfig &config,
        const trace::KernelProfile &profile, double link_energy_scale,
        double const_growth_override)
{
    return RunKey{config.name, profile.name,
                  static_cast<std::uint8_t>(config.topology),
                  static_cast<std::uint8_t>(config.placement),
                  static_cast<std::uint8_t>(config.ctaScheduling),
                  link_energy_scale, const_growth_override,
                  config.linkFaults.digest()};
}

} // namespace

std::string
runKeyName(const RunKey &key)
{
    return key.config + "|" + key.workload;
}

joule::EnergyInputs
inputsFrom(const sim::PerfResult &perf, unsigned gpm_count,
           unsigned total_sms)
{
    joule::EnergyInputs inputs;
    inputs.warpInstrs = perf.instrs;
    inputs.txns = perf.mem.txns;
    inputs.smStallCycles = perf.smStallCycles;
    inputs.execTime = perf.execSeconds;
    inputs.gpmCount = gpm_count;
    inputs.linkBytes = perf.link.messageBytes;
    inputs.switchBytes = perf.link.switchBytes;
    inputs.reconfigs = perf.link.reconfigs;
    inputs.smOccupiedCycles = perf.smOccupiedCycles;
    inputs.smCycleCapacity =
        static_cast<double>(total_sms) * perf.execCycles;
    return inputs;
}

StudyContext::StudyContext() : StudyContext(fault::FaultPlan{}) {}

StudyContext::StudyContext(const fault::FaultPlan &plan)
{
    device_ = std::make_unique<power::SiliconGpu>(
        joule::referenceK40Truth(spec));
    joule::Calibrator calibrator(*device_, spec);
    calibrator.attachFaults(plan);
    calib = calibrator.calibrate();
    if (!calib.converged)
        warn("study proceeding with unconverged calibration");
    calibFp_ = ::mmgpu::harness::calibrationFingerprint(calib);
    if (plan.sensor.enabled()) {
        // Salt the fingerprint with the plan so a degraded campaign
        // never shares persistent-cache entries with a healthy one,
        // even if the recovered tables happen to coincide.
        Fnv1a salted(calibFp_);
        salted.add(plan.fingerprint());
        calibFp_ = salted.digest();
    }
}

joule::EnergyParams
StudyContext::paramsFor(const sim::GpuConfig &config,
                        double link_energy_scale,
                        double const_growth_override) const
{
    joule::MultiModuleOptions options;
    options.onPackage =
        config.domain == sim::IntegrationDomain::OnPackage;
    const noc::TopologyDesc &topo = noc::topologyDesc(config.topology);
    options.switched = topo.usesSwitchFabric;
    options.circuitReconfig = topo.usesCircuitReconfig;
    options.linkEnergyScale = link_energy_scale;
    options.constGrowthOverride = const_growth_override;
    return joule::multiModuleParams(calib.table, calib.stallEnergy,
                                    calib.constPower, options);
}

ScalingRunner::ScalingRunner(const StudyContext &context)
    : context_(&context),
      cache_(std::make_unique<Cache>()),
      machines_(std::make_unique<MachinePool>()),
      persistent_(RunCache::processCache())
{
}

ScalingRunner::ScalingRunner(ScalingRunner &&) noexcept = default;
ScalingRunner &
ScalingRunner::operator=(ScalingRunner &&) noexcept = default;
ScalingRunner::~ScalingRunner() = default;

std::size_t
ScalingRunner::invalidateMachines(const sim::GpuConfig &config)
{
    return machines_->retire(MachinePool::keyOf(config));
}

std::size_t
ScalingRunner::invalidateAllMachines()
{
    return machines_->retireAll();
}

ScalingRunner::Entry &
ScalingRunner::ensure(const sim::GpuConfig &config,
                      const trace::KernelProfile &profile,
                      double link_energy_scale,
                      double const_growth_override,
                      const std::atomic<bool> *cancel)
{
    RunKey key = makeKey(config, profile, link_energy_scale,
                         const_growth_override);
    Cache::Shard &shard = cache_->shardFor(key);
    Entry *entry;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        entry = &shard.entries.try_emplace(std::move(key))
                     .first->second;
    }
    // First caller computes; concurrent callers of the same key
    // block here until the outcome is ready, then share the node.
    std::call_once(entry->once, [&] {
        Result<RunOutcome> computed =
            compute(config, profile, link_energy_scale,
                    const_growth_override, cancel);
        if (computed.ok())
            entry->outcome = std::move(computed.value());
        else
            entry->error = computed.error();
        entry->done.store(true, std::memory_order_release);
    });
    return *entry;
}

const RunOutcome &
ScalingRunner::run(const sim::GpuConfig &config,
                   const trace::KernelProfile &profile,
                   double link_energy_scale,
                   double const_growth_override)
{
    Entry &entry = ensure(config, profile, link_energy_scale,
                          const_growth_override, nullptr);
    if (entry.error) {
        mmgpu_fatal("run ", config.name, "|", profile.name,
                    " failed: ", entry.error->describe());
    }
    return entry.outcome;
}

Result<const RunOutcome *>
ScalingRunner::tryRun(const sim::GpuConfig &config,
                      const trace::KernelProfile &profile,
                      double link_energy_scale,
                      double const_growth_override,
                      const std::atomic<bool> *cancel)
{
    Entry &entry = ensure(config, profile, link_energy_scale,
                          const_growth_override, cancel);
    if (entry.error)
        return *entry.error;
    return Result<const RunOutcome *>(&entry.outcome);
}

bool
ScalingRunner::cached(const sim::GpuConfig &config,
                      const trace::KernelProfile &profile,
                      double link_energy_scale,
                      double const_growth_override) const
{
    RunKey key = makeKey(config, profile, link_energy_scale,
                         const_growth_override);
    Cache::Shard &shard = cache_->shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    return it != shard.entries.end() &&
           it->second.done.load(std::memory_order_acquire);
}

Result<RunOutcome>
ScalingRunner::compute(const sim::GpuConfig &config,
                       const trace::KernelProfile &profile,
                       double link_energy_scale,
                       double const_growth_override,
                       const std::atomic<bool> *cancel) const
{
    // Invalid configurations surface as errors instead of the fatal
    // GpuSim would raise, so one bad point cannot kill a sweep.
    if (Result<void> checked = config.check(); !checked.ok())
        return checked.error();

    // Injected harness faults, matched by point name: a forced
    // failure reports immediately; a forced hang stalls until the
    // watchdog cancels it (or, with no watchdog, until the plan's
    // hang window elapses and the point proceeds normally).
    if (faultPlan_ != nullptr && faultPlan_->harness.enabled()) {
        const fault::HarnessFaultSpec &spec = faultPlan_->harness;
        if (fault::HarnessFaultSpec::matches(spec.failPoints,
                                             config.name,
                                             profile.name)) {
            return SimError::injectedFault(
                "fault plan failed point " + config.name + "|" +
                profile.name);
        }
        if (fault::HarnessFaultSpec::matches(spec.hangPoints,
                                             config.name,
                                             profile.name)) {
            const std::int64_t deadline =
                wallclock::nowMs() +
                static_cast<std::int64_t>(spec.hangSeconds * 1000.0);
            while (wallclock::nowMs() < deadline) {
                if (cancel != nullptr &&
                    cancel->load(std::memory_order_acquire)) {
                    return SimError::timeout(
                        "watchdog cancelled hung point " +
                        config.name + "|" + profile.name);
                }
                wallclock::sleepMs(10);
            }
        }
    }

    {
        RunOutcome outcome;
        std::uint64_t fingerprint = 0;
        if (persistent_ != nullptr) {
            fingerprint = runFingerprint(
                config, profile, link_energy_scale,
                const_growth_override,
                context_->calibrationFingerprint());
            // A disk hit cannot reconstruct telemetry timelines, so
            // telemetry-enabled runs always simulate.
            if (persistentReads_ && !telemetryEnabled_ &&
                persistent_->lookup(fingerprint, outcome.perf,
                                    outcome.energy))
                return outcome;
        }

        // A panic inside the simulator (contract audit, engine
        // assert) must become an error *here*: ensure() runs us
        // under a per-entry std::call_once, and a longjmp across a
        // once_flag is undefined (and deadlocks every waiter). The
        // guarded work lives in simulate()'s own frame, which the
        // jump abandons wholesale.
        CrashTrap trap;
        if (sigsetjmp(trap.jumpBuffer(), 0) == 0) {
            return simulate(config, profile, link_energy_scale,
                            const_growth_override, fingerprint);
        }
        return SimError::unavailable("simulation panicked: " +
                                     trap.message());
    }
}

Result<RunOutcome>
ScalingRunner::simulate(const sim::GpuConfig &config,
                        const trace::KernelProfile &profile,
                        double link_energy_scale,
                        double const_growth_override,
                        std::uint64_t fingerprint) const
{
    RunOutcome outcome;
    std::unique_ptr<sim::GpuSim> machine =
        machines_->acquire(config);
    if (telemetryEnabled_) {
        outcome.telemetry = std::make_shared<telemetry::Telemetry>(
            telemetry::TelemetryConfig{telemetryDt_});
        machine->attachTelemetry(outcome.telemetry.get());
    }
    outcome.perf = machine->run(profile);
    joule::EnergyParams params = context_->paramsFor(
        config, link_energy_scale, const_growth_override);
    joule::EnergyInputs inputs =
        inputsFrom(outcome.perf, config.gpmCount, config.totalSms());
    if (outcome.telemetry) {
        outcome.energy =
            joule::estimate(inputs, params, *outcome.telemetry);
        addPowerTracks(*outcome.telemetry, params);
        machine->attachTelemetry(nullptr);
    } else {
        outcome.energy = joule::estimate(inputs, params);
    }
    machines_->release(std::move(machine));
    if (persistent_ != nullptr)
        persistent_->insert(fingerprint, outcome.perf,
                            outcome.energy);
    return outcome;
}

void
addPowerTracks(telemetry::Telemetry &telemetry,
               const joule::EnergyParams &params)
{
    telemetry::Timeline *timeline = telemetry.timeline();
    if (timeline == nullptr || timeline->binCount() == 0)
        return;

    const telemetry::RunInfo &info = telemetry.runInfo();
    const telemetry::ActivitySampler *instr =
        telemetry.findActivity("instr");
    const telemetry::ActivitySampler *txn =
        telemetry.findActivity("txn");

    std::size_t bins = timeline->binCount();
    double dt_seconds = timeline->dt() / info.clockHz;
    double const_watts = params.constPowerPerGpm *
                         params.constScale(info.gpmCount);

    // Per-GPM SM activity tracks, for the EP_stall term: stall
    // cycles in a bin are the active-window cycles the SMs did not
    // spend issuing.
    std::vector<std::pair<const telemetry::TimelineTrack *,
                          const telemetry::TimelineTrack *>>
        sm_tracks;
    for (unsigned g = 0; g < info.gpmCount; ++g) {
        std::string prefix = "gpm" + std::to_string(g);
        sm_tracks.emplace_back(timeline->find(prefix + "/sm_busy"),
                               timeline->find(prefix + "/sm_active"));
    }

    using Kind = telemetry::TimelineTrack::Kind;
    telemetry::TimelineTrack &true_power =
        timeline->track("gpu/power_true_w", Kind::Level);
    power::PowerTimeline series;
    for (std::size_t b = 0; b < bins; ++b) {
        double joules = 0.0;
        if (instr) {
            for (std::size_t c = 0; c < instr->channels(); ++c) {
                joules += params.table.epi[c] * instr->at(b, c) *
                          isa::warpSize;
            }
        }
        if (txn) {
            for (std::size_t c = 0; c < txn->channels(); ++c)
                joules += params.table.ept[c] * txn->at(b, c);
        }
        double stall_cycles = 0.0;
        for (const auto &[busy, active] : sm_tracks) {
            if (busy && active) {
                stall_cycles += std::max(0.0, active->rawBin(b) -
                                                  busy->rawBin(b));
            }
        }
        joules += params.stallEnergyPerSmCycle * stall_cycles;

        double watts = const_watts + joules / dt_seconds;
        true_power.setBin(b, watts);
        series.addPhase(dt_seconds, watts);
    }

    // Replay the series through the on-board sensor model: what an
    // NVML poll at each bin midpoint would have reported.
    power::PowerSensor sensor;
    telemetry::TimelineTrack &sensed =
        timeline->track("gpu/power_sensor_w", Kind::Level);
    for (std::size_t b = 0; b < bins; ++b) {
        double t = (static_cast<double>(b) + 0.5) * dt_seconds;
        sensed.setBin(b, sensor.read(series, t));
    }
}

std::vector<ScalingPoint>
scalingStudy(ScalingRunner &runner, const sim::GpuConfig &config,
             const std::vector<trace::KernelProfile> &workloads,
             double link_energy_scale, double const_growth_override)
{
    // Submit the whole sweep up front: every uncached point runs
    // concurrently, and the aggregation loop below reads memoized
    // outcomes only.
    ParallelRunner pool(runner);
    pool.enqueueStudy(config, workloads, link_energy_scale,
                      const_growth_override);
    pool.drain();

    const sim::GpuConfig baseline = sim::baselineConfig();
    std::vector<ScalingPoint> points;
    points.reserve(workloads.size());
    for (const auto &profile : workloads) {
        const RunOutcome &one = runner.run(baseline, profile);
        const RunOutcome &scaled =
            runner.run(config, profile, link_energy_scale,
                       const_growth_override);

        ScalingPoint point;
        point.workload = profile.name;
        point.cls = profile.cls;
        point.speedup = metrics::speedup(one.perf.execSeconds,
                                         scaled.perf.execSeconds);
        point.energyRatio =
            scaled.energy.total() / one.energy.total();
        point.edpse = metrics::edpse(one.point(), scaled.point(),
                                     config.gpmCount);
        point.ed2pse = metrics::edipse(one.point(), scaled.point(),
                                       config.gpmCount, 2);
        // Performance-per-watt scaling efficiency: the fraction of
        // linear perf/W scaling realized (paper §V-D argues the
        // trends agree across these metric choices).
        double power_one = one.energy.total() / one.perf.execSeconds;
        double power_scaled =
            scaled.energy.total() / scaled.perf.execSeconds;
        point.perfPerWattSE = point.speedup /
                              (power_scaled / power_one) /
                              config.gpmCount * 100.0;
        points.push_back(point);
    }
    return points;
}

double
meanOf(const std::vector<ScalingPoint> &points,
       double ScalingPoint::*field)
{
    mmgpu_assert(!points.empty(), "mean of empty scaling study");
    double sum = 0.0;
    for (const auto &point : points)
        sum += point.*field;
    return sum / static_cast<double>(points.size());
}

double
meanOf(const std::vector<ScalingPoint> &points,
       double ScalingPoint::*field, trace::WorkloadClass cls)
{
    double sum = 0.0;
    unsigned count = 0;
    for (const auto &point : points) {
        if (point.cls == cls) {
            sum += point.*field;
            ++count;
        }
    }
    mmgpu_assert(count > 0, "no workloads in class");
    return sum / count;
}

} // namespace mmgpu::harness
