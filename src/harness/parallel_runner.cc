#include "harness/parallel_runner.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "common/wallclock.hh"

namespace mmgpu::harness
{

namespace
{

RunKey
keyFor(const sim::GpuConfig &config,
       const trace::KernelProfile &profile, double link_energy_scale,
       double const_growth_override)
{
    return RunKey{config.name, profile.name,
                  static_cast<std::uint8_t>(config.placement),
                  static_cast<std::uint8_t>(config.ctaScheduling),
                  link_energy_scale, const_growth_override,
                  config.linkFaults.digest()};
}

} // namespace

ParallelRunner::ParallelRunner(ScalingRunner &runner, unsigned workers)
    : runner_(&runner),
      workers_(workers > 0 ? workers : defaultWorkers())
{
}

unsigned
ParallelRunner::defaultWorkers()
{
    if (const char *jobs = std::getenv("MMGPU_JOBS");
        jobs != nullptr && *jobs != '\0') {
        char *end = nullptr;
        long parsed = std::strtol(jobs, &end, 10);
        if (end != jobs && *end == '\0' && parsed >= 1)
            return static_cast<unsigned>(parsed);
        warn("ignoring malformed MMGPU_JOBS='", jobs, "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
ParallelRunner::enqueue(const sim::GpuConfig &config,
                        const trace::KernelProfile &profile,
                        double link_energy_scale,
                        double const_growth_override)
{
    if (runner_->cached(config, profile, link_energy_scale,
                        const_growth_override))
        return;
    RunKey key = keyFor(config, profile, link_energy_scale,
                        const_growth_override);
    if (!queued_.insert(std::move(key)).second)
        return;
    jobs_.push_back(Job{config, profile, link_energy_scale,
                        const_growth_override});
}

void
ParallelRunner::enqueueStudy(
    const sim::GpuConfig &config,
    const std::vector<trace::KernelProfile> &workloads,
    double link_energy_scale, double const_growth_override)
{
    const sim::GpuConfig baseline = sim::baselineConfig();
    for (const auto &profile : workloads) {
        enqueue(baseline, profile);
        enqueue(config, profile, link_energy_scale,
                const_growth_override);
    }
}

DrainReport
ParallelRunner::drain()
{
    std::vector<Job> jobs = std::move(jobs_);
    jobs_.clear();
    queued_.clear();
    DrainReport report;
    if (jobs.empty())
        return report;

    // Per-point watchdog bookkeeping: start time in milliseconds
    // since the drain began (-1 = not started, -2 = finished) and a
    // cooperative cancel flag the point's computation polls.
    struct JobState
    {
        std::atomic<std::int64_t> startMs{-1};
        std::atomic<bool> cancel{false};
    };
    std::vector<JobState> states(jobs.size());
    const std::int64_t epoch = wallclock::nowMs();
    auto now_ms = [epoch] { return wallclock::nowMs() - epoch; };

    std::mutex report_mutex;
    std::atomic<std::size_t> completed{0};
    auto work = [&](std::size_t index) {
        JobState &state = states[index];
        state.startMs.store(now_ms(), std::memory_order_release);
        const Job &job = jobs[index];
        Result<const RunOutcome *> result = runner_->tryRun(
            job.config, job.profile, job.linkEnergyScale,
            job.constGrowthOverride, &state.cancel);
        state.startMs.store(-2, std::memory_order_release);
        if (result.ok()) {
            std::size_t done =
                completed.fetch_add(1, std::memory_order_relaxed) + 1;
            if (checkpointEvery_ > 0 &&
                done % checkpointEvery_ == 0) {
                if (RunCache *cache = runner_->persistentCache())
                    cache->flush();
            }
        } else {
            std::lock_guard<std::mutex> lock(report_mutex);
            report.failures.push_back(PointFailure{
                keyFor(job.config, job.profile, job.linkEnergyScale,
                       job.constGrowthOverride),
                result.error()});
        }
    };

    // The watchdog monitor raises cancel flags on overdue points;
    // workers stay joinable because cancellation is cooperative.
    std::atomic<bool> monitor_stop{false};
    std::thread monitor;
    if (watchdogSeconds_ > 0.0) {
        const auto budget_ms =
            static_cast<std::int64_t>(watchdogSeconds_ * 1000.0);
        // budget_ms by value: it dies with this block, but the
        // monitor thread runs until after the workers join.
        monitor = std::thread([&, budget_ms] {
            while (!monitor_stop.load(std::memory_order_acquire)) {
                std::int64_t now = now_ms();
                for (JobState &state : states) {
                    std::int64_t started =
                        state.startMs.load(std::memory_order_acquire);
                    if (started >= 0 && now - started > budget_ms)
                        state.cancel.store(
                            true, std::memory_order_release);
                }
                wallclock::sleepMs(50);
            }
        });
    }

    unsigned threads = static_cast<unsigned>(
        std::min<std::size_t>(workers_, jobs.size()));
    if (threads <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            work(i);
    } else {
        std::atomic<std::size_t> cursor{0};
        auto worker = [&] {
            while (true) {
                std::size_t index =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (index >= jobs.size())
                    return;
                work(index);
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
    }

    if (monitor.joinable()) {
        monitor_stop.store(true, std::memory_order_release);
        monitor.join();
    }

    report.completed = completed.load(std::memory_order_relaxed);
    for (const PointFailure &failure : report.failures) {
        warn("sweep point ", runKeyName(failure.key), " failed: ",
             failure.error.describe());
    }
    return report;
}

} // namespace mmgpu::harness
