#include "harness/parallel_runner.hh"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/logging.hh"

namespace mmgpu::harness
{

ParallelRunner::ParallelRunner(ScalingRunner &runner, unsigned workers)
    : runner_(&runner),
      workers_(workers > 0 ? workers : defaultWorkers())
{
}

unsigned
ParallelRunner::defaultWorkers()
{
    if (const char *jobs = std::getenv("MMGPU_JOBS");
        jobs != nullptr && *jobs != '\0') {
        char *end = nullptr;
        long parsed = std::strtol(jobs, &end, 10);
        if (end != jobs && *end == '\0' && parsed >= 1)
            return static_cast<unsigned>(parsed);
        warn("ignoring malformed MMGPU_JOBS='", jobs, "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
ParallelRunner::enqueue(const sim::GpuConfig &config,
                        const trace::KernelProfile &profile,
                        double link_energy_scale,
                        double const_growth_override)
{
    if (runner_->cached(config, profile, link_energy_scale,
                        const_growth_override))
        return;
    RunKey key{config.name, profile.name,
               static_cast<std::uint8_t>(config.placement),
               static_cast<std::uint8_t>(config.ctaScheduling),
               link_energy_scale, const_growth_override};
    if (!queued_.insert(std::move(key)).second)
        return;
    jobs_.push_back(Job{config, profile, link_energy_scale,
                        const_growth_override});
}

void
ParallelRunner::enqueueStudy(
    const sim::GpuConfig &config,
    const std::vector<trace::KernelProfile> &workloads,
    double link_energy_scale, double const_growth_override)
{
    const sim::GpuConfig baseline = sim::baselineConfig();
    for (const auto &profile : workloads) {
        enqueue(baseline, profile);
        enqueue(config, profile, link_energy_scale,
                const_growth_override);
    }
}

void
ParallelRunner::drain()
{
    std::vector<Job> jobs = std::move(jobs_);
    jobs_.clear();
    queued_.clear();
    if (jobs.empty())
        return;

    auto work = [this, &jobs](std::size_t index) {
        const Job &job = jobs[index];
        runner_->run(job.config, job.profile, job.linkEnergyScale,
                     job.constGrowthOverride);
    };

    unsigned threads = static_cast<unsigned>(
        std::min<std::size_t>(workers_, jobs.size()));
    if (threads <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            work(i);
        return;
    }

    std::atomic<std::size_t> cursor{0};
    auto worker = [&] {
        while (true) {
            std::size_t index =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (index >= jobs.size())
                return;
            work(index);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &thread : pool)
        thread.join();
}

} // namespace mmgpu::harness
