/**
 * @file
 * Persistent cross-process cache of simulated runs.
 *
 * Every bench binary replays overlapping slices of the same
 * (workload x configuration) sweep: the 1-GPM baseline alone is
 * recomputed by each of the 17 binaries. The RunCache persists
 * finished `PerfResult` + `EnergyBreakdown` pairs to
 * `.mmgpu-cache/runs.json` (relative to the working directory, i.e.
 * next to the build tree the benches run from) so the sweep one
 * binary computes is free for the next.
 *
 * Keys are a 64-bit FNV-1a fingerprint over *every* input that can
 * change a result: the full GpuConfig (including the derived memory
 * configuration), the full KernelProfile (mixes, segments, seeds,
 * access descriptors), the link-energy scale and constant-growth
 * overrides, the calibration outcome the energy model used, and a
 * schema-version salt. Bumping `runCacheSchemaVersion` invalidates
 * every existing cache file; stale or corrupt files degrade to a
 * cache miss, never an error.
 *
 * Serialization is exact: doubles are stored as C99 hexfloat strings
 * ("%a") and event counts as decimal strings, so a cache round-trip
 * is bit-identical to the freshly computed result — the determinism
 * tests assert this.
 *
 * Escape hatches: `MMGPU_NO_CACHE=1` disables the process-wide cache
 * entirely; `MMGPU_CACHE_DIR=<dir>` relocates it (used by the test
 * suite for isolation); `MMGPU_CACHE_FLUSH_SEC=<s>` arms a periodic
 * background flush so a long-lived process (the mmgpu_serve daemon)
 * persists warm entries without waiting for shutdown. Flushes are
 * atomic (tmp + rename), so a crash between flushes leaves the last
 * flushed file intact.
 *
 * Durability between flushes comes from a write-ahead journal: every
 * insert appends one checksummed, hexfloat-exact record to
 * `runs.wal` next to the cache file before it becomes visible to
 * lookups of a restarted process. The journal is replayed on open
 * (newest record wins over the snapshot) and truncated after a
 * successful atomic flush, so a `kill -9` at any point loses zero
 * completed simulations — at worst a torn final record, which the
 * per-record FNV-1a checksum rejects on replay. Records are framed
 * by a *leading* newline, so a torn tail is terminated (and
 * invalidated) by the next append instead of corrupting it. fsync is
 * batched (process death alone never loses page-cache writes; only
 * power loss needs sync). `MMGPU_CACHE_WAL=0` disables the journal,
 * restoring the flush-only durability story.
 */

#ifndef MMGPU_HARNESS_RUN_CACHE_HH
#define MMGPU_HARNESS_RUN_CACHE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/thread_safety.hh"
#include "gpujoule/calibration.hh"
#include "gpujoule/energy_model.hh"
#include "sim/gpu_config.hh"
#include "sim/perf_result.hh"
#include "trace/kernel_profile.hh"

namespace mmgpu::harness
{

/**
 * Version salt folded into every cache key and written to the file
 * header. Bump when the simulator, the energy model, or the
 * serialized layout changes meaning.
 */
constexpr std::uint64_t runCacheSchemaVersion = 3;

/** Fingerprint of a calibration outcome (energy-param inputs). */
std::uint64_t
calibrationFingerprint(const joule::CalibrationResult &calib);

/**
 * Cache key of one run. @p calib_fingerprint comes from
 * calibrationFingerprint() (the StudyContext caches it).
 */
std::uint64_t runFingerprint(const sim::GpuConfig &config,
                             const trace::KernelProfile &profile,
                             double link_energy_scale,
                             double const_growth_override,
                             std::uint64_t calib_fingerprint);

/** On-disk run cache; all methods are thread-safe. */
class RunCache
{
  public:
    /**
     * Bind to @p path, load whatever valid entries it holds, and
     * replay the write-ahead journal on top (journal records win).
     * Missing, corrupt, or version-mismatched files yield an empty
     * cache (a warning is emitted for corrupt ones).
     */
    explicit RunCache(std::string path);

    /** Stops the auto-flush thread (final flush included if it was
     *  running, see stopAutoFlush()) and closes the journal. */
    ~RunCache();

    RunCache(const RunCache &) = delete;
    RunCache &operator=(const RunCache &) = delete;

    /**
     * Look up @p key.
     * @return true and fill @p perf / @p energy on a hit.
     */
    bool lookup(std::uint64_t key, sim::PerfResult &perf,
                joule::EnergyBreakdown &energy);

    /** Record a finished run under @p key. */
    void insert(std::uint64_t key, const sim::PerfResult &perf,
                const joule::EnergyBreakdown &energy);

    /**
     * Write back to disk if any insert happened since the last
     * flush. Entries written by other processes in the meantime are
     * merged, not clobbered. Failures warn and return false.
     */
    bool flush();

    /** The bound file path. */
    const std::string &path() const { return path_; }

    /** The write-ahead journal path (`runs.wal` beside `path()`). */
    const std::string &walPath() const { return walPath_; }

    /** True unless `MMGPU_CACHE_WAL=0` disabled the journal. */
    bool walEnabled() const { return walEnabled_; }

    /** Journal records replayed by the constructor (torn or corrupt
     *  records are excluded — they are dropped with a warning). */
    std::size_t walReplayed() const { return walReplayed_; }

    /**
     * Chaos hook: tear the @p nth journal append from now (1-based);
     * the record is written truncated mid-payload, exactly as a
     * crash between write() and completion would leave it. 0 disarms.
     * Wired to `MMGPU_FAULT_SERVE_WAL_TEAR_AT` by the serve daemon.
     */
    void armWalTear(std::uint64_t nth);

    /** Entries currently held (loaded + inserted). */
    std::size_t size() const;

    /** Lookup hits since construction. */
    std::uint64_t hits() const { return hits_.load(); }

    /** Lookup misses since construction. */
    std::uint64_t misses() const { return misses_.load(); }

    /**
     * Start a background thread that flushes every @p seconds (> 0)
     * while the cache is alive — the persistence story of a
     * long-lived daemon, where "at process exit" may be days away.
     * Idempotent: a second call retunes the period. The thread only
     * writes when inserts happened since the last flush.
     */
    void startAutoFlush(double seconds);

    /**
     * Stop the background flush thread: joins it, then performs one
     * final flush (which also truncates the journal) so a daemon's
     * orderly shutdown leaves a clean snapshot and an empty WAL.
     * No-op — and no flush — when the flusher was never started, so
     * scratch caches still discard unflushed inserts on destruction.
     */
    void stopAutoFlush();

    /** Background flushes performed since construction. */
    std::uint64_t autoFlushes() const { return autoFlushes_.load(); }

    /**
     * The `MMGPU_CACHE_FLUSH_SEC` environment knob: seconds between
     * background flushes, or 0 when unset/malformed/non-positive
     * (auto-flush disabled).
     */
    static double autoFlushSecondsFromEnv();

    /**
     * The process-wide cache at `$MMGPU_CACHE_DIR/runs.json`
     * (default `.mmgpu-cache/runs.json`), created on first use and
     * flushed automatically at process exit. Returns nullptr when
     * `MMGPU_NO_CACHE=1` is set.
     */
    static RunCache *processCache();

  private:
    struct Entry
    {
        sim::PerfResult perf;
        joule::EnergyBreakdown energy;
    };

    void loadLocked() MMGPU_REQUIRES(mutex_);
    void replayWalLocked() MMGPU_REQUIRES(mutex_);
    void appendWalLocked(std::uint64_t key, const Entry &entry)
        MMGPU_REQUIRES(mutex_);
    void truncateWalLocked() MMGPU_REQUIRES(mutex_);

    std::string path_;
    std::string walPath_;
    mutable std::mutex mutex_;
    std::map<std::uint64_t, Entry> entries_ MMGPU_GUARDED_BY(mutex_);
    bool dirty_ MMGPU_GUARDED_BY(mutex_) = false;
    bool walEnabled_ = true; //!< set once in the ctor, then read-only
    int walFd_ MMGPU_GUARDED_BY(mutex_) = -1;
    bool walOpenFailed_ MMGPU_GUARDED_BY(mutex_) = false;
    std::size_t walReplayed_ = 0; //!< ctor-only writes
    std::uint64_t walAppends_ MMGPU_GUARDED_BY(mutex_) = 0;
    std::uint64_t walUnsynced_ MMGPU_GUARDED_BY(mutex_) = 0;
    std::uint64_t walTearAt_ MMGPU_GUARDED_BY(mutex_) = 0;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};

    // Auto-flush thread state. flusherStop_ is polled between short
    // sleeps so stopAutoFlush() returns promptly even with a long
    // flush period.
    std::thread flusher_;
    std::atomic<bool> flusherStop_{false};
    std::atomic<std::int64_t> flushPeriodMs_{0};
    std::atomic<std::uint64_t> autoFlushes_{0};
};

} // namespace mmgpu::harness

#endif // MMGPU_HARNESS_RUN_CACHE_HH
