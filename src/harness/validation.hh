/**
 * @file
 * Application-level validation of GPUJoule (paper §IV-B2, Fig. 4b).
 *
 * Each Table II application is simulated on the 1-GPM (K40-class)
 * configuration, its per-kernel activity rates are replayed on the
 * virtual silicon at the application's real kernel durations, and
 * the replay is "measured" through the NVML-like sensor exactly as
 * the paper measures real hardware. The modeled energy (Eq. 4 with
 * the calibrated table) is compared against that measurement.
 *
 * The two documented outlier classes emerge mechanically:
 *  - BFS and MiniAMR run kernels far shorter than the sensor's
 *    refresh period, so per-kernel attribution mis-measures them;
 *  - RSBench and CoMD keep the DRAM barely utilized, exposing the
 *    background power Eq. 4's linear accounting cannot represent.
 */

#ifndef MMGPU_HARNESS_VALIDATION_HH
#define MMGPU_HARNESS_VALIDATION_HH

#include <string>
#include <vector>

#include "harness/study.hh"

namespace mmgpu::harness
{

/** One application's modeled-vs-measured energy comparison. */
struct AppValidationPoint
{
    std::string workload;
    trace::WorkloadClass cls = trace::WorkloadClass::Compute;
    Joules modeled = 0.0;
    Joules measured = 0.0;

    /** True if the paper reports this app as a >30% outlier. */
    bool expectedOutlier = false;

    /** Signed relative error in percent. */
    double
    errorPercent() const
    {
        return measured != 0.0
                   ? (modeled - measured) / measured * 100.0
                   : 0.0;
    }
};

/**
 * Run the Fig. 4b validation for @p apps.
 * @param runner Memoizing runner (provides the 1-GPM simulations).
 * @param apps Applications to validate (defaults: all 18).
 */
std::vector<AppValidationPoint> validateApplications(
    ScalingRunner &runner,
    const std::vector<trace::KernelProfile> &apps);

/** Mean absolute error (percent) over @p points. */
double meanAbsoluteErrorPercent(
    const std::vector<AppValidationPoint> &points);

} // namespace mmgpu::harness

#endif // MMGPU_HARNESS_VALIDATION_HH
