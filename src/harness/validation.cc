#include "harness/validation.hh"

#include <cmath>

#include "common/logging.hh"
#include "power/measurement.hh"

namespace mmgpu::harness
{

namespace
{

/** Minimum replay length so the sensor sees plenty of samples. */
constexpr Seconds minReplaySeconds = 3.0;

/** Deterministic per-app sensor seed. */
std::uint64_t
seedFor(const std::string &name)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (char c : name)
        hash = (hash ^ static_cast<unsigned char>(c)) *
               0x100000001b3ull;
    return hash;
}

} // namespace

std::vector<AppValidationPoint>
validateApplications(ScalingRunner &runner,
                     const std::vector<trace::KernelProfile> &apps)
{
    const StudyContext &context = runner.context();
    const power::SiliconGpu &device = context.device();
    const auto &calib = context.calibration();

    std::vector<AppValidationPoint> points;
    points.reserve(apps.size());

    for (const auto &profile : apps) {
        const RunOutcome &run =
            runner.run(sim::baselineConfig(), profile);
        const sim::PerfResult &perf = run.perf;

        // Per-launch activity rates from the simulation (kernel time
        // excludes launch gaps; gaps are sub-cycle-accurate enough
        // to neglect at this granularity).
        Seconds sim_kernel =
            perf.execSeconds / static_cast<double>(profile.launches);
        mmgpu_assert(sim_kernel > 0.0, "zero-length kernel");

        power::ActivityRates rates;
        for (std::size_t i = 0; i < isa::numOpcodes; ++i) {
            rates.instrRates[i] =
                static_cast<double>(perf.instrs[i]) * isa::warpSize /
                profile.launches / sim_kernel;
        }
        for (std::size_t i = 0; i < isa::numTxnLevels; ++i) {
            rates.txnRates[i] =
                static_cast<double>(perf.mem.txns[i]) /
                profile.launches / sim_kernel;
        }
        rates.stallRate =
            perf.smStallCycles / profile.launches / sim_kernel;

        Watts kernel_power = device.kernelPower(rates);

        // Replay at the application's real kernel/gap durations.
        Seconds kernel_s = profile.hwKernelSeconds;
        Seconds gap_s = profile.hwGapSeconds;
        auto repetitions = static_cast<unsigned>(
            std::ceil(minReplaySeconds / (kernel_s + gap_s)));

        power::PowerTimeline timeline;
        std::vector<power::KernelWindow> windows;
        timeline.addPhase(0.5, device.idlePower()); // warm-up idle
        Seconds cursor = 0.5;
        for (unsigned r = 0; r < repetitions; ++r) {
            timeline.addPhase(kernel_s, kernel_power);
            windows.push_back({cursor, cursor + kernel_s});
            cursor += kernel_s;
            timeline.addPhase(gap_s, device.idlePower());
            cursor += gap_s;
        }
        timeline.addPhase(0.5, device.idlePower()); // cool-down

        // "Measured": per-kernel attribution through the sensor.
        power::PowerSensor sensor(power::SensorSpec{},
                                  seedFor(profile.name));
        power::PowerMeter meter(sensor);
        Joules measured =
            meter.attributeKernelEnergy(timeline, windows);

        // Modeled: Eq. 4 over the same total kernel time with the
        // calibrated (K40/GDDR5) table.
        Seconds total_kernel = kernel_s * repetitions;
        joule::EnergyInputs inputs;
        for (std::size_t i = 0; i < isa::numOpcodes; ++i) {
            inputs.warpInstrs[i] = static_cast<Count>(
                rates.instrRates[i] * total_kernel / isa::warpSize);
        }
        for (std::size_t i = 0; i < isa::numTxnLevels; ++i) {
            inputs.txns[i] = static_cast<Count>(rates.txnRates[i] *
                                                total_kernel);
        }
        inputs.smStallCycles = rates.stallRate * total_kernel;
        inputs.execTime = total_kernel;
        inputs.gpmCount = 1;

        joule::EnergyParams params;
        params.table = calib.table;
        params.stallEnergyPerSmCycle = calib.stallEnergy;
        params.constPowerPerGpm = calib.constPower;

        AppValidationPoint point;
        point.workload = profile.name;
        point.cls = profile.cls;
        point.modeled = joule::estimate(inputs, params).total();
        point.measured = measured;
        point.expectedOutlier =
            trace::isValidationOutlier(profile.name);
        points.push_back(point);
    }
    return points;
}

double
meanAbsoluteErrorPercent(const std::vector<AppValidationPoint> &points)
{
    mmgpu_assert(!points.empty(), "MAE of empty validation");
    double sum = 0.0;
    for (const auto &point : points)
        sum += std::abs(point.errorPercent());
    return sum / static_cast<double>(points.size());
}

} // namespace mmgpu::harness
