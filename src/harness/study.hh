/**
 * @file
 * Experiment harness: glues the performance simulator, the GPUJoule
 * energy model, and the EDPSE metrics into the runs the paper's
 * evaluation section is made of.
 *
 * A StudyContext performs the calibration campaign once (Figure 3)
 * and then serves energy parameters for any simulated configuration.
 * A ScalingRunner executes (workload x configuration) runs with
 * memoization so a bench binary can assemble several views of the
 * same sweep cheaply.
 */

#ifndef MMGPU_HARNESS_STUDY_HH
#define MMGPU_HARNESS_STUDY_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hh"
#include "fault/fault_plan.hh"
#include "gpujoule/calibration.hh"
#include "gpujoule/energy_model.hh"
#include "gpujoule/multi_module.hh"
#include "harness/run_cache.hh"
#include "metrics/edpse.hh"
#include "sim/gpu_config.hh"
#include "sim/gpu_sim.hh"
#include "telemetry/telemetry.hh"
#include "trace/workloads.hh"

namespace mmgpu::harness
{

/** One simulated run with its energy estimate. */
struct RunOutcome
{
    sim::PerfResult perf;
    joule::EnergyBreakdown energy;

    /**
     * Telemetry recorded during the run: counters, per-GPM/per-link
     * timelines, and the derived power tracks. Null unless the
     * runner had telemetry enabled (ScalingRunner::enableTelemetry);
     * shared so memoized outcomes stay copyable.
     */
    std::shared_ptr<telemetry::Telemetry> telemetry;

    /** Energy/delay point for the metrics. */
    metrics::EnergyDelay
    point() const
    {
        return {energy.total(), perf.execSeconds};
    }
};

/**
 * Convert simulator counters into Eq. 4 inputs.
 * @param total_sms SM count of the configuration (for the gating
 *        extension's occupancy accounting; 0 leaves it untracked).
 */
joule::EnergyInputs inputsFrom(const sim::PerfResult &perf,
                               unsigned gpm_count,
                               unsigned total_sms = 0);

/**
 * Calibrated model shared by a whole study.
 *
 * Thread-safety: a StudyContext is strictly immutable once its
 * constructor returns — the calibration campaign runs inside the
 * constructor and every accessor (including paramsFor()) is const
 * and touches only that frozen state. Construct it before spawning
 * workers (bench::studyContext() guards this with std::call_once)
 * and any number of ParallelRunner threads may share it.
 */
class StudyContext
{
  public:
    /**
     * Build the reference device, calibrate GPUJoule against it, and
     * keep the result. Calibration runs once per process.
     */
    StudyContext();

    /**
     * Like the default constructor, but the calibration campaign
     * observes the device through a sensor degraded per @p plan
     * (fault studies and the CLI's --fault-seed path). The
     * calibrator switches to its outlier-robust protocol; the plan's
     * fingerprint is folded into calibrationFingerprint() so faulty
     * campaigns never share persistent-cache entries with healthy
     * ones.
     */
    explicit StudyContext(const fault::FaultPlan &plan);

    /** The calibration outcome (table, const power, EP_stall). */
    const joule::CalibrationResult &calibration() const { return calib; }

    /** The device spec used for calibration. */
    const joule::DeviceSpec &deviceSpec() const { return spec; }

    /** The virtual silicon the study calibrated against. */
    const power::SiliconGpu &device() const { return *device_; }

    /**
     * Energy parameters for @p config, honoring its integration
     * domain and topology.
     * @param link_energy_scale Multiplier on link pJ/bit (point
     *        studies).
     * @param const_growth_override Override of the constant-growth
     *        fraction; negative = domain default.
     */
    joule::EnergyParams
    paramsFor(const sim::GpuConfig &config,
              double link_energy_scale = 1.0,
              double const_growth_override = -1.0) const;

    /**
     * FNV-1a fingerprint of the calibration outcome, folded into
     * every persistent-cache key (a recalibrated energy model must
     * never serve stale cached energies).
     */
    std::uint64_t calibrationFingerprint() const { return calibFp_; }

  private:
    joule::DeviceSpec spec;
    std::unique_ptr<power::SiliconGpu> device_;
    joule::CalibrationResult calib;
    std::uint64_t calibFp_ = 0;
};

/**
 * Memoized lookup key of one run: everything that distinguishes two
 * (configuration, workload, energy-override) points of a sweep. A
 * plain struct with field-wise ordering — cheaper to build and
 * compare than the ostringstream-formatted string it replaced, and
 * hashable for shard selection.
 */
struct RunKey
{
    std::string config;
    std::string workload;
    std::uint8_t topology = 0;
    std::uint8_t placement = 0;
    std::uint8_t ctaScheduling = 0;
    double linkEnergyScale = 1.0;
    double constGrowthOverride = -1.0;

    /** LinkFaultSpec::digest() of the configuration (0 = healthy),
     *  so degraded-mode points never alias healthy ones. */
    std::uint64_t linkFaultDigest = 0;

    friend bool
    operator<(const RunKey &a, const RunKey &b)
    {
        if (int c = a.config.compare(b.config))
            return c < 0;
        if (int c = a.workload.compare(b.workload))
            return c < 0;
        if (a.topology != b.topology)
            return a.topology < b.topology;
        if (a.placement != b.placement)
            return a.placement < b.placement;
        if (a.ctaScheduling != b.ctaScheduling)
            return a.ctaScheduling < b.ctaScheduling;
        if (a.linkEnergyScale != b.linkEnergyScale)
            return a.linkEnergyScale < b.linkEnergyScale;
        if (a.constGrowthOverride != b.constGrowthOverride)
            return a.constGrowthOverride < b.constGrowthOverride;
        return a.linkFaultDigest < b.linkFaultDigest;
    }
};

/** "config|workload" display form of a RunKey (failure reports). */
std::string runKeyName(const RunKey &key);

/**
 * Memoizing (workload x configuration) runner.
 *
 * Thread-safety: run() may be called from any number of threads
 * concurrently (this is what ParallelRunner does). The memo cache is
 * sharded by key hash; each shard is a mutex-protected std::map whose
 * *node stability* is load-bearing — run() returns references into
 * the map while other threads keep inserting, and exactly one thread
 * computes any given key (per-entry std::call_once) while others
 * block until the outcome is ready. Telemetry/persistent-cache
 * configuration calls are not synchronized: make them before the
 * first concurrent run() (benches configure, then drain).
 *
 * Runs are additionally served from / recorded into the process-wide
 * persistent RunCache (attached by default unless MMGPU_NO_CACHE=1),
 * making finished sweeps free across bench binaries. Telemetry-
 * enabled runs always simulate (a disk hit cannot reconstruct
 * timelines) but still publish their perf/energy to the cache.
 *
 * Machines are pooled: GpuSim is build-once/reset-per-run, so
 * sweep points sharing a machine identity (config name, NUMA
 * policies, link-fault digest — the same convention the memo key
 * uses) reuse an idle machine instead of rebuilding the hierarchy,
 * with bit-identical results at any worker count.
 */
class ScalingRunner
{
  public:
    /** @param context Calibrated study context (not owned). */
    explicit ScalingRunner(const StudyContext &context);

    // Movable (bench::makeRunner returns by value); defined in
    // study.cc where the cache type is complete.
    ScalingRunner(ScalingRunner &&) noexcept;
    ScalingRunner &operator=(ScalingRunner &&) noexcept;
    ~ScalingRunner();

    /**
     * Simulate @p profile on @p config and estimate its energy.
     * Results are memoized on (config name, NUMA policies, workload
     * name, energy overrides); the returned reference stays valid
     * for the runner's lifetime, including under concurrent run()
     * calls on other threads.
     */
    const RunOutcome &run(const sim::GpuConfig &config,
                          const trace::KernelProfile &profile,
                          double link_energy_scale = 1.0,
                          double const_growth_override = -1.0);

    /**
     * Like run(), but failures (invalid configurations, injected
     * harness faults, watchdog cancellation) come back as a SimError
     * instead of killing the process — what ParallelRunner uses to
     * isolate a poisoned point from the rest of a sweep. The error
     * is memoized like an outcome (a failed point fails fast on
     * re-query); errors are never written to the persistent cache.
     *
     * @param cancel Optional cooperative cancellation flag (the
     *        watchdog sets it); polled while an injected hang waits.
     */
    Result<const RunOutcome *>
    tryRun(const sim::GpuConfig &config,
           const trace::KernelProfile &profile,
           double link_energy_scale = 1.0,
           double const_growth_override = -1.0,
           const std::atomic<bool> *cancel = nullptr);

    /**
     * Inject @p plan's harness faults (forced point failures and
     * hangs) into subsequent computations; nullptr detaches. The
     * plan must outlive the runner. Sensor faults are a calibration
     * concern (StudyContext); link faults ride in GpuConfig.
     */
    void setFaultPlan(const fault::FaultPlan *plan)
    {
        faultPlan_ = plan;
    }

    /**
     * Retire every idle pooled machine built for @p config's machine
     * identity (config name, NUMA policies, link-fault digest). The
     * serve supervisor calls this after a shard crash: a machine the
     * crash may have left in a corrupt half-run state must never be
     * reused, so the next run of that identity rebuilds from scratch.
     * A machine checked out by the crashing job is simply abandoned —
     * it is never released back into the pool.
     * @return machines destroyed.
     */
    std::size_t invalidateMachines(const sim::GpuConfig &config);

    /** Retire every idle pooled machine of every identity. */
    std::size_t invalidateAllMachines();

    /** @return true when the point is already memoized (completed). */
    bool cached(const sim::GpuConfig &config,
                const trace::KernelProfile &profile,
                double link_energy_scale = 1.0,
                double const_growth_override = -1.0) const;

    /**
     * Record telemetry on subsequent (non-memoized) runs.
     * @param timeline_dt_cycles Timeline bin width in core cycles;
     *        0 records counters/gauges only. Each outcome carries
     *        its own Telemetry instance (RunOutcome::telemetry),
     *        already finalized, with the energy breakdown gauges and
     *        — when the timeline is enabled — the derived
     *        "gpu/power_*" tracks filled in.
     */
    void
    enableTelemetry(double timeline_dt_cycles)
    {
        telemetryDt_ = timeline_dt_cycles;
        telemetryEnabled_ = true;
    }

    /** Stop recording telemetry on subsequent runs. */
    void disableTelemetry() { telemetryEnabled_ = false; }

    /**
     * Use @p cache instead of the process-wide persistent cache;
     * nullptr detaches persistence entirely. Tests use this for
     * isolation; benches use it to time cold passes.
     */
    void attachPersistentCache(RunCache *cache)
    {
        persistent_ = cache;
    }

    /** The persistent cache in use (nullptr when detached). */
    RunCache *persistentCache() const { return persistent_; }

    /**
     * Toggle persistent-cache *reads* (writes continue). Benches
     * disable reads to measure genuine simulation wall-clock while
     * still publishing results for later binaries.
     */
    void setPersistentReads(bool enabled)
    {
        persistentReads_ = enabled;
    }

    /** The study context. */
    const StudyContext &context() const { return *context_; }

  private:
    struct Cache;       // sharded memo cache; defined in study.cc
    struct MachinePool; // idle build-once machines; in study.cc

    /** Shared run()/tryRun() path: memoize outcome or error. */
    struct Entry;
    Entry &ensure(const sim::GpuConfig &config,
                  const trace::KernelProfile &profile,
                  double link_energy_scale,
                  double const_growth_override,
                  const std::atomic<bool> *cancel);

    Result<RunOutcome> compute(const sim::GpuConfig &config,
                               const trace::KernelProfile &profile,
                               double link_energy_scale,
                               double const_growth_override,
                               const std::atomic<bool> *cancel) const;

    /**
     * The machine-driving tail of compute(): acquire, run, estimate,
     * release, persist. Lives in its own frame so compute()'s panic
     * trap can abandon it wholesale — a panicking simulation must
     * not unwind past the per-entry call_once in ensure(), so it is
     * converted to an Unavailable error at the compute() boundary.
     * The machine being driven is simply never released; callers
     * (the serve supervisor) retire its pooled siblings.
     */
    Result<RunOutcome> simulate(const sim::GpuConfig &config,
                                const trace::KernelProfile &profile,
                                double link_energy_scale,
                                double const_growth_override,
                                std::uint64_t fingerprint) const;

    const StudyContext *context_;
    std::unique_ptr<Cache> cache_;
    std::unique_ptr<MachinePool> machines_;
    RunCache *persistent_ = nullptr;
    const fault::FaultPlan *faultPlan_ = nullptr;
    bool persistentReads_ = true;
    bool telemetryEnabled_ = false;
    double telemetryDt_ = 0.0;
};

/**
 * Derive instantaneous-power tracks from a finalized telemetry
 * timeline and the calibrated energy parameters:
 *
 *  - "gpu/power_true_w": per-bin average true power from Eq. 4's
 *    dynamic terms (EPI x per-bin instruction activity, EPT x
 *    per-bin transaction activity, EP_stall x per-bin stall cycles)
 *    plus the GPM-scaled constant power. Inter-GPM link energy is
 *    not time-resolved and is excluded (it is a small term; the
 *    totals in the "energy/..." gauges include it).
 *  - "gpu/power_sensor_w": the same series sampled through the
 *    NVML-like on-board sensor model (15 ms refresh, response lag,
 *    quantization), reproducing the sensor artifacts of §IV-B2.
 *
 * No-op when @p telemetry has no timeline or an empty run.
 */
void addPowerTracks(telemetry::Telemetry &telemetry,
                    const joule::EnergyParams &params);

/** Per-workload scaling observation against the 1-GPM baseline. */
struct ScalingPoint
{
    std::string workload;
    trace::WorkloadClass cls = trace::WorkloadClass::Compute;
    double speedup = 0.0;     //!< t1 / tN
    double energyRatio = 0.0; //!< EN / E1
    double edpse = 0.0;       //!< percent (Eq. 2)
    double ed2pse = 0.0;      //!< percent (Eq. 3 with i = 2)
    double perfPerWattSE = 0.0; //!< perf/W scaling efficiency, %
};

/**
 * Run every workload in @p workloads on the 1-GPM baseline and on
 * @p config; return per-workload EDPSE/speedup/energy observations.
 *
 * The whole (baseline + scaled) sweep is submitted to a
 * ParallelRunner up front, so uncached points execute concurrently
 * (one worker per hardware thread; MMGPU_JOBS overrides) before the
 * serial aggregation pass reads them back from the memo cache.
 * Results are bit-identical to a serial execution.
 */
std::vector<ScalingPoint>
scalingStudy(ScalingRunner &runner, const sim::GpuConfig &config,
             const std::vector<trace::KernelProfile> &workloads,
             double link_energy_scale = 1.0,
             double const_growth_override = -1.0);

/** Arithmetic mean of a ScalingPoint field over a class filter. */
double meanOf(const std::vector<ScalingPoint> &points,
              double ScalingPoint::*field);
double meanOf(const std::vector<ScalingPoint> &points,
              double ScalingPoint::*field, trace::WorkloadClass cls);

} // namespace mmgpu::harness

#endif // MMGPU_HARNESS_STUDY_HH
