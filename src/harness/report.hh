/**
 * @file
 * Machine-readable reports.
 *
 * Serializes run outcomes and scaling studies to JSON so downstream
 * tooling (plotting, regression tracking) consumes structured data
 * instead of scraping the benches' text tables.
 */

#ifndef MMGPU_HARNESS_REPORT_HH
#define MMGPU_HARNESS_REPORT_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "harness/study.hh"

namespace mmgpu::harness
{

/** Serialize one run (performance + energy decomposition). */
JsonValue toJson(const RunOutcome &outcome);

/** Serialize a scaling study's per-workload points. */
JsonValue toJson(const std::vector<ScalingPoint> &points);

/** Serialize a calibration result (table + scalars + validation). */
JsonValue toJson(const joule::CalibrationResult &calibration);

/**
 * Write @p value to @p path.
 * @return true on success; failures warn (never abort a study).
 */
bool writeJson(const std::string &path, const JsonValue &value);

} // namespace mmgpu::harness

#endif // MMGPU_HARNESS_REPORT_HH
