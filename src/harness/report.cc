#include "harness/report.hh"

#include <fstream>

#include "common/logging.hh"

namespace mmgpu::harness
{

JsonValue
toJson(const RunOutcome &outcome)
{
    const auto &perf = outcome.perf;
    const auto &energy = outcome.energy;

    JsonValue instrs = JsonValue::object();
    for (std::size_t i = 0; i < isa::numOpcodes; ++i) {
        if (perf.instrs[i] > 0)
            instrs.set(isa::mnemonic(static_cast<isa::Opcode>(i)),
                       perf.instrs[i]);
    }

    JsonValue txns = JsonValue::object();
    for (std::size_t i = 0; i < isa::numTxnLevels; ++i) {
        txns.set(isa::txnLevelName(static_cast<isa::TxnLevel>(i)),
                 perf.mem.txns[i]);
    }

    JsonValue breakdown = JsonValue::object();
    breakdown.set("sm_busy_J", energy.smBusy)
        .set("sm_idle_J", energy.smIdle)
        .set("constant_J", energy.constant)
        .set("shm_to_reg_J", energy.shmToReg)
        .set("l1_to_reg_J", energy.l1ToReg)
        .set("l2_to_l1_J", energy.l2ToL1)
        .set("dram_to_l2_J", energy.dramToL2)
        .set("inter_module_J", energy.interModule)
        .set("total_J", energy.total());

    JsonValue json = JsonValue::object();
    json.set("config", perf.configName)
        .set("workload", perf.workloadName)
        .set("exec_cycles", perf.execCycles)
        .set("exec_seconds", perf.execSeconds)
        .set("ipc", perf.ipc())
        .set("remote_fraction", perf.remoteFraction())
        .set("sm_busy_cycles", perf.smBusyCycles)
        .set("sm_stall_cycles", perf.smStallCycles)
        .set("link_byte_hops", perf.link.byteHops)
        .set("link_message_bytes", perf.link.messageBytes)
        .set("instructions", std::move(instrs))
        .set("transactions", std::move(txns))
        .set("energy", std::move(breakdown));
    return json;
}

JsonValue
toJson(const std::vector<ScalingPoint> &points)
{
    JsonValue array = JsonValue::array();
    for (const auto &point : points) {
        JsonValue json = JsonValue::object();
        json.set("workload", point.workload)
            .set("class", trace::workloadClassName(point.cls))
            .set("speedup", point.speedup)
            .set("energy_ratio", point.energyRatio)
            .set("edpse_pct", point.edpse)
            .set("ed2pse_pct", point.ed2pse)
            .set("perf_per_watt_se_pct", point.perfPerWattSE);
        array.push(std::move(json));
    }
    return array;
}

JsonValue
toJson(const joule::CalibrationResult &calibration)
{
    JsonValue epi = JsonValue::object();
    for (std::size_t i = 0; i < isa::numOpcodes; ++i) {
        epi.set(isa::mnemonic(static_cast<isa::Opcode>(i)),
                calibration.table.epi[i]);
    }
    JsonValue ept = JsonValue::object();
    for (std::size_t i = 0; i < isa::numTxnLevels; ++i) {
        ept.set(isa::txnLevelName(static_cast<isa::TxnLevel>(i)),
                calibration.table.ept[i]);
    }
    JsonValue validation = JsonValue::array();
    for (const auto &point : calibration.validation) {
        JsonValue entry = JsonValue::object();
        entry.set("bench", point.name)
            .set("modeled_J", point.modeled)
            .set("measured_J", point.measured)
            .set("error", point.relativeError());
        validation.push(std::move(entry));
    }

    JsonValue json = JsonValue::object();
    json.set("epi_J", std::move(epi))
        .set("ept_J", std::move(ept))
        .set("const_power_W", calibration.constPower)
        .set("stall_energy_J", calibration.stallEnergy)
        .set("iterations", calibration.iterations)
        .set("converged", calibration.converged)
        .set("validation", std::move(validation));
    return json;
}

bool
writeJson(const std::string &path, const JsonValue &value)
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot write JSON report to ", path);
        return false;
    }
    value.write(out);
    out << "\n";
    return static_cast<bool>(out);
}

} // namespace mmgpu::harness
