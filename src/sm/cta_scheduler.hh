/**
 * @file
 * Distributed thread-block (CTA) scheduling.
 *
 * Multi-module configurations assign each GPM a *contiguous* range of
 * CTA ids, as proposed by MCM-GPU: consecutive CTAs touch adjacent
 * data, so contiguous assignment plus first-touch page placement
 * localizes block-partitioned segments on the CTA's own GPM. Within
 * a GPM, CTAs are handed to SMs greedily as warp contexts free up.
 */

#ifndef MMGPU_SM_CTA_SCHEDULER_HH
#define MMGPU_SM_CTA_SCHEDULER_HH

#include <vector>

#include "common/logging.hh"

namespace mmgpu::sm
{

/** Half-open CTA id range [first, last). */
struct CtaRange
{
    unsigned first = 0;
    unsigned last = 0;

    unsigned size() const { return last - first; }
};

/**
 * Partition @p cta_count CTAs across @p gpm_count GPMs in contiguous
 * chunks, distributing the remainder one CTA at a time so no GPM gets
 * more than one extra.
 */
inline std::vector<CtaRange>
partitionCtas(unsigned cta_count, unsigned gpm_count)
{
    mmgpu_assert(gpm_count > 0, "no GPMs to partition over");
    std::vector<CtaRange> ranges(gpm_count);
    unsigned base = cta_count / gpm_count;
    unsigned extra = cta_count % gpm_count;
    unsigned cursor = 0;
    for (unsigned g = 0; g < gpm_count; ++g) {
        unsigned size = base + (g < extra ? 1 : 0);
        ranges[g] = {cursor, cursor + size};
        cursor += size;
    }
    mmgpu_assert(cursor == cta_count, "partition lost CTAs");
    return ranges;
}

/**
 * CTA-to-GPM assignment policy.
 *
 * Distributed (contiguous chunks) is the locality-aware scheme of
 * the multi-module proposals the paper follows; RoundRobin is the
 * locality-oblivious strawman used by the ablation study to show how
 * much of the NUMA behaviour the schedule is responsible for.
 */
enum class CtaSchedPolicy : std::uint8_t
{
    Distributed, //!< contiguous chunk per GPM (paper baseline)
    RoundRobin,  //!< cta i -> GPM i mod N
};

/** @return human-readable policy name. */
inline const char *
ctaSchedPolicyName(CtaSchedPolicy policy)
{
    return policy == CtaSchedPolicy::Distributed ? "distributed"
                                                 : "round-robin";
}

/** Materialize the per-GPM CTA lists for @p policy. */
inline std::vector<std::vector<unsigned>>
assignCtas(unsigned cta_count, unsigned gpm_count,
           CtaSchedPolicy policy)
{
    std::vector<std::vector<unsigned>> lists(gpm_count);
    switch (policy) {
      case CtaSchedPolicy::Distributed: {
        auto ranges = partitionCtas(cta_count, gpm_count);
        for (unsigned g = 0; g < gpm_count; ++g)
            for (unsigned c = ranges[g].first; c < ranges[g].last; ++c)
                lists[g].push_back(c);
        break;
      }
      case CtaSchedPolicy::RoundRobin:
        for (unsigned c = 0; c < cta_count; ++c)
            lists[c % gpm_count].push_back(c);
        break;
      default:
        mmgpu_panic("bad CTA scheduling policy");
    }
    return lists;
}

/** FIFO of CTAs a GPM still has to run. */
class GpmCtaQueue
{
  public:
    /** Initialize from a contiguous range. */
    explicit GpmCtaQueue(CtaRange range)
    {
        ctas.reserve(range.size());
        for (unsigned c = range.first; c < range.last; ++c)
            ctas.push_back(c);
    }

    /** Initialize from an explicit CTA list. */
    explicit GpmCtaQueue(std::vector<unsigned> cta_list)
        : ctas(std::move(cta_list))
    {
    }

    /** @return true if CTAs remain. */
    bool hasWork() const { return next < ctas.size(); }

    /** Pop the next CTA id. @pre hasWork(). */
    unsigned
    pop()
    {
        mmgpu_assert(hasWork(), "pop from empty CTA queue");
        return ctas[next++];
    }

    /** CTAs not yet dispatched. */
    unsigned
    remaining() const
    {
        return static_cast<unsigned>(ctas.size() - next);
    }

  private:
    std::vector<unsigned> ctas;
    std::size_t next = 0;
};

} // namespace mmgpu::sm

#endif // MMGPU_SM_CTA_SCHEDULER_HH
