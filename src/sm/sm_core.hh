/**
 * @file
 * Streaming multiprocessor model.
 *
 * The SM is modelled at the fidelity the paper's energy methodology
 * needs: a warp-issue bandwidth (slots/cycle) that compute
 * instructions contend for, a fixed number of resident warp
 * contexts providing latency tolerance, and busy/stall accounting
 * that feeds the EPStall and idle-time terms of Eq. 4. Individual
 * functional-unit pools are abstracted into per-opcode issue costs
 * (FP64 ops cost 3 slots, SFU ops 8 — the K40's throughput ratios),
 * which is exactly the level of microarchitectural agnosticism the
 * top-down GPUJoule model is designed for.
 */

#ifndef MMGPU_SM_SM_CORE_HH
#define MMGPU_SM_SM_CORE_HH

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"
#include "noc/bandwidth_server.hh"

namespace mmgpu::sm
{

/** Issue/occupancy state of one SM. */
class SmCore
{
  public:
    /**
     * @param sm_global Flat SM id.
     * @param gpm Owning GPM.
     * @param warp_slots Resident warp contexts.
     * @param issue_slots_per_cycle Warp-instruction issue bandwidth.
     */
    SmCore(unsigned sm_global, unsigned gpm, unsigned warp_slots,
           double issue_slots_per_cycle)
        : smGlobal_(sm_global), gpm_(gpm), warpSlots_(warp_slots),
          freeSlots_(warp_slots),
          issue("sm.issue", issue_slots_per_cycle)
    {
        if (warp_slots == 0)
            mmgpu_fatal("SM with zero warp slots");
    }

    /** Flat SM id across the GPU. */
    unsigned smGlobal() const { return smGlobal_; }

    /** Owning GPM id. */
    unsigned gpm() const { return gpm_; }

    /**
     * Contend for @p slots issue slots starting at @p t.
     * @return time the instruction has been issued.
     */
    noc::Tick
    acquireIssue(noc::Tick t, unsigned slots)
    {
        noteActive(t);
        return issue.acquire(t, static_cast<double>(slots));
    }

    /** Record activity for the occupancy window without issuing. */
    void
    noteActive(noc::Tick t)
    {
        if (!everActive_) {
            everActive_ = true;
            firstActive_ = t;
        }
        lastActive_ = std::max(lastActive_, t);
    }

    /** Free warp contexts available for new CTAs. */
    unsigned freeSlots() const { return freeSlots_; }

    /** Total warp contexts. */
    unsigned warpSlots() const { return warpSlots_; }

    /** Reserve @p n contexts for a newly dispatched CTA. */
    void
    reserveSlots(unsigned n)
    {
        mmgpu_assert(n <= freeSlots_, "SM over-subscribed");
        freeSlots_ -= n;
    }

    /** Release one context (a warp exited at time @p t). */
    void
    releaseSlot(noc::Tick t)
    {
        mmgpu_assert(freeSlots_ < warpSlots_, "slot double free");
        ++freeSlots_;
        noteActive(t);
    }

    /** Cycles the issue pipeline spent actually issuing. */
    double busyCycles() const { return issue.busyCycles(); }

    /**
     * Cycles inside the SM's active window during which the pipeline
     * had resident work but issued nothing — the "SM Pipeline (Idle)"
     * component of the paper's Figure 7 breakdown.
     */
    double
    stallCycles() const
    {
        if (!everActive_)
            return 0.0;
        double window = lastActive_ - firstActive_;
        return std::max(0.0, window - busyCycles());
    }

    /** Active-window length (first dispatch to last retire). */
    double
    occupiedCycles() const
    {
        return everActive_ ? lastActive_ - firstActive_ : 0.0;
    }

    /** True once the SM has seen any activity this launch. */
    bool everActive() const { return everActive_; }

    /** Start of the active window (valid when everActive()). */
    noc::Tick firstActiveAt() const { return firstActive_; }

    /** End of the active window (valid when everActive()). */
    noc::Tick lastActiveAt() const { return lastActive_; }

    /**
     * Mirror the issue pipeline's busy intervals into @p busy
     * (nullptr detaches). Several SMs of one GPM may share a track;
     * the engine attaches after building the machine each run.
     */
    void
    attachTelemetry(telemetry::TimelineTrack *busy)
    {
        issue.setTelemetrySink(busy);
    }

    /** Reset all timing state between launches/runs. */
    void
    reset()
    {
        issue.reset();
        freeSlots_ = warpSlots_;
        everActive_ = false;
        firstActive_ = 0.0;
        lastActive_ = 0.0;
    }

  private:
    unsigned smGlobal_;
    unsigned gpm_;
    unsigned warpSlots_;
    unsigned freeSlots_;
    noc::BandwidthServer issue;
    bool everActive_ = false;
    noc::Tick firstActive_ = 0.0;
    noc::Tick lastActive_ = 0.0;
};

} // namespace mmgpu::sm

#endif // MMGPU_SM_SM_CORE_HH
