/**
 * @file
 * Strong unit types and conversion helpers used across the framework.
 *
 * The simulator operates on an integer cycle clock; the energy model
 * operates on physical units (joules, seconds, bytes). Keeping the two
 * domains explicitly typed avoids the classic pJ-vs-nJ and
 * bit-vs-byte unit bugs that plague energy models.
 */

#ifndef MMGPU_COMMON_UNITS_HH
#define MMGPU_COMMON_UNITS_HH

#include <cstdint>

namespace mmgpu
{

/** Simulator time in cycles of the GPM core clock. */
using Cycles = std::uint64_t;

/** Event/transaction counts. */
using Count = std::uint64_t;

/** Byte quantities (footprints, traffic volumes). */
using Bytes = std::uint64_t;

/** Physical energy in joules. */
using Joules = double;

/** Physical power in watts. */
using Watts = double;

/** Physical time in seconds. */
using Seconds = double;

namespace units
{

/** Joules per nanojoule. */
inline constexpr double nJ = 1e-9;

/** Joules per picojoule. */
inline constexpr double pJ = 1e-12;

/** Joules per millijoule. */
inline constexpr double mJ = 1e-3;

/** Seconds per millisecond. */
inline constexpr double ms = 1e-3;

/** Seconds per microsecond. */
inline constexpr double us = 1e-6;

/** Bytes per kibibyte / mebibyte / gibibyte. */
inline constexpr Bytes KiB = 1024;
inline constexpr Bytes MiB = 1024 * KiB;
inline constexpr Bytes GiB = 1024 * MiB;

/** Bytes per second for a GB/s figure (decimal GB as vendors quote). */
inline constexpr double GBps = 1e9;

/**
 * Convert a per-bit energy (pJ/bit) and a transfer size in bytes into
 * joules. This is the canonical conversion for link and DRAM
 * interface energies quoted by the paper.
 *
 * @param pj_per_bit Energy cost in picojoules per bit.
 * @param bytes Transfer size in bytes.
 * @return Energy in joules.
 */
constexpr Joules
energyPerTransfer(double pj_per_bit, Bytes bytes)
{
    return pj_per_bit * pJ * 8.0 * static_cast<double>(bytes);
}

} // namespace units

/**
 * Frequency description of a clock domain, with cycle<->seconds
 * conversions. All GPMs share one core clock in this study.
 */
class ClockDomain
{
  public:
    /** @param freq_hz Clock frequency in hertz. */
    explicit constexpr ClockDomain(double freq_hz) : freqHz(freq_hz) {}

    /** Clock frequency in hertz. */
    constexpr double frequency() const { return freqHz; }

    /** Convert a cycle count into seconds. */
    constexpr Seconds
    toSeconds(Cycles cycles) const
    {
        return static_cast<double>(cycles) / freqHz;
    }

    /** Convert a physical duration into (truncated) cycles. */
    constexpr Cycles
    toCycles(Seconds seconds) const
    {
        return static_cast<Cycles>(seconds * freqHz);
    }

    /**
     * Bytes-per-cycle capacity of a channel quoted in bytes/second.
     * Used to configure bandwidth servers from GB/s datasheet values.
     */
    constexpr double
    bytesPerCycle(double bytes_per_second) const
    {
        return bytes_per_second / freqHz;
    }

  private:
    double freqHz;
};

} // namespace mmgpu

#endif // MMGPU_COMMON_UNITS_HH
