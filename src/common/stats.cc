#include "common/stats.hh"

namespace mmgpu
{

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : distributions_)
        kv.second.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << name_ << "." << kv.first << " " << kv.second.value() << "\n";
    for (const auto &kv : distributions_) {
        os << name_ << "." << kv.first << ".mean " << kv.second.mean()
           << "\n";
        os << name_ << "." << kv.first << ".count " << kv.second.count()
           << "\n";
    }
}

Count
sumCounter(const std::vector<const StatGroup *> &groups,
           const std::string &key)
{
    Count total = 0;
    for (const auto *group : groups) {
        mmgpu_assert(group != nullptr, "null StatGroup in aggregation");
        total += group->read(key);
    }
    return total;
}

} // namespace mmgpu
