/**
 * @file
 * ASCII table rendering for bench binaries.
 *
 * Every bench target prints its paper figure/table as an aligned text
 * table (plus CSV via csv.hh). Keeping the renderer here keeps all
 * figures visually consistent.
 */

#ifndef MMGPU_COMMON_TABLE_HH
#define MMGPU_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace mmgpu
{

/** Column-aligned text table with a title and header row. */
class TextTable
{
  public:
    /** @param title Caption printed above the table. */
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set the header row. Must be called before addRow(). */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format a percentage with one decimal. */
    static std::string pct(double v);

    /** Render the table. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mmgpu

#endif // MMGPU_COMMON_TABLE_HH
