/**
 * @file
 * Minimal JSON emission and parsing.
 *
 * Benches and the harness export machine-readable reports so results
 * can be post-processed without scraping text tables: the surface is
 * a small value-builder with correct escaping and deterministic key
 * order. The persistent run cache additionally needs to read its own
 * output back, so a strict recursive-descent parser and read
 * accessors round the API out. The parser accepts exactly what
 * write() emits (standard JSON); it is not a general validator for
 * hostile input beyond failing cleanly.
 */

#ifndef MMGPU_COMMON_JSON_HH
#define MMGPU_COMMON_JSON_HH

#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace mmgpu
{

/** An immutable JSON value tree. */
class JsonValue
{
  public:
    /** Construct null. */
    JsonValue() : value(nullptr) {}

    /** Construct from primitives. */
    JsonValue(std::nullptr_t) : value(nullptr) {}
    JsonValue(bool b) : value(b) {}
    JsonValue(double d) : value(d) {}
    JsonValue(int i) : value(static_cast<double>(i)) {}
    JsonValue(unsigned u) : value(static_cast<double>(u)) {}
    JsonValue(long long v) : value(static_cast<double>(v)) {}
    JsonValue(unsigned long v) : value(static_cast<double>(v)) {}
    JsonValue(unsigned long long v) : value(static_cast<double>(v)) {}
    JsonValue(const char *s) : value(std::string(s)) {}
    JsonValue(std::string s) : value(std::move(s)) {}

    /** Build an object incrementally. */
    static JsonValue
    object()
    {
        JsonValue v;
        v.value = Object{};
        return v;
    }

    /** Build an array incrementally. */
    static JsonValue
    array()
    {
        JsonValue v;
        v.value = Array{};
        return v;
    }

    /** Set a key on an object (fatal on non-objects). */
    JsonValue &set(const std::string &key, JsonValue child);

    /** Append to an array (fatal on non-arrays). */
    JsonValue &push(JsonValue child);

    /** Serialize with 2-space indentation. */
    void write(std::ostream &os, int indent = 0) const;

    /** Serialize to a string. */
    std::string dump() const;

    /**
     * Serialize without any whitespace or newlines — one line no
     * matter how nested. The service socket protocol frames one JSON
     * document per line, so embedded newlines would tear a message.
     */
    void writeCompact(std::ostream &os) const;

    /** Compact serialization to a string (newline-free). */
    std::string dumpCompact() const;

    // ---- read accessors (used by the persistent run cache) ----

    bool isNull() const;
    bool isObject() const;
    bool isArray() const;
    bool isString() const;
    bool isNumber() const;

    /**
     * Member lookup on an object; nullptr when absent or when this
     * value is not an object.
     */
    const JsonValue *find(const std::string &key) const;

    /** Element count of an array (0 for non-arrays). */
    std::size_t size() const;

    /** Array element; nullptr out of range or for non-arrays. */
    const JsonValue *at(std::size_t index) const;

    /** String payload; empty for non-strings. */
    const std::string &asString() const;

    /** Numeric payload; 0.0 for non-numbers. */
    double asNumber() const;

  private:
    using Object = std::map<std::string, JsonValue>;
    using Array = std::vector<JsonValue>;
    std::variant<std::nullptr_t, bool, double, std::string, Object,
                 Array>
        value;
};

/**
 * Parse @p text as one JSON document.
 * @return the value, or std::nullopt on any syntax error (the run
 *         cache treats malformed files as a cache miss, never a
 *         crash).
 */
std::optional<JsonValue> parseJson(const std::string &text);

} // namespace mmgpu

#endif // MMGPU_COMMON_JSON_HH
