/**
 * @file
 * Minimal JSON emission.
 *
 * Benches and the harness export machine-readable reports so results
 * can be post-processed without scraping text tables. Writing-only
 * (the framework never parses JSON), so the surface is a small
 * value-builder with correct escaping and deterministic key order.
 */

#ifndef MMGPU_COMMON_JSON_HH
#define MMGPU_COMMON_JSON_HH

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace mmgpu
{

/** An immutable JSON value tree. */
class JsonValue
{
  public:
    /** Construct null. */
    JsonValue() : value(nullptr) {}

    /** Construct from primitives. */
    JsonValue(std::nullptr_t) : value(nullptr) {}
    JsonValue(bool b) : value(b) {}
    JsonValue(double d) : value(d) {}
    JsonValue(int i) : value(static_cast<double>(i)) {}
    JsonValue(unsigned u) : value(static_cast<double>(u)) {}
    JsonValue(long long v) : value(static_cast<double>(v)) {}
    JsonValue(unsigned long v) : value(static_cast<double>(v)) {}
    JsonValue(unsigned long long v) : value(static_cast<double>(v)) {}
    JsonValue(const char *s) : value(std::string(s)) {}
    JsonValue(std::string s) : value(std::move(s)) {}

    /** Build an object incrementally. */
    static JsonValue
    object()
    {
        JsonValue v;
        v.value = Object{};
        return v;
    }

    /** Build an array incrementally. */
    static JsonValue
    array()
    {
        JsonValue v;
        v.value = Array{};
        return v;
    }

    /** Set a key on an object (fatal on non-objects). */
    JsonValue &set(const std::string &key, JsonValue child);

    /** Append to an array (fatal on non-arrays). */
    JsonValue &push(JsonValue child);

    /** Serialize with 2-space indentation. */
    void write(std::ostream &os, int indent = 0) const;

    /** Serialize to a string. */
    std::string dump() const;

  private:
    using Object = std::map<std::string, JsonValue>;
    using Array = std::vector<JsonValue>;
    std::variant<std::nullptr_t, bool, double, std::string, Object,
                 Array>
        value;
};

} // namespace mmgpu

#endif // MMGPU_COMMON_JSON_HH
