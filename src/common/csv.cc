#include "common/csv.hh"

#include <fstream>

#include "common/logging.hh"

namespace mmgpu
{

namespace
{

/** RFC-4180-ish escaping: quote cells containing separators/quotes. */
std::string
escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
CsvWriter::addRow(std::vector<std::string> cells)
{
    mmgpu_assert(cells.size() == header_.size(),
                 "CSV row width mismatch");
    rows_.push_back(std::move(cells));
}

bool
CsvWriter::writeTo(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot write CSV to ", path);
        return false;
    }
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                out << ",";
            out << escape(cells[c]);
        }
        out << "\n";
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return static_cast<bool>(out);
}

} // namespace mmgpu
