/**
 * @file
 * Runtime lock-order validation ("lockdep") — the dynamic half of the
 * concurrency discipline whose static half lives in mmgpu-lint's
 * lock-order rule and the thread_safety.hh annotations.
 *
 * sync::Mutex is a drop-in std::mutex replacement. At
 * MMGPU_CONTRACTS=0 it IS std::mutex (a type alias — zero cost, no
 * behavior change). At contract level >= 1 it is an instrumented
 * wrapper that, on every acquisition, records the edge
 * (top of this thread's held stack) -> (this mutex) into a global
 * lock-order graph and checks that the new edge closes no cycle.
 * A cycle means two code paths acquire the same pair of mutexes in
 * opposite orders — a deadlock waiting for the right interleaving,
 * reported *deterministically* on the first inconsistent nesting
 * even when the schedule never actually deadlocks:
 *
 *   level 1   warn() once per offending edge and count it
 *             (lockdepCycleCount() — tests assert on this)
 *   level 2   mmgpu_panic with both sides of the cycle — a death in
 *             tests, or a supervised shard crash where a thread
 *             panic trap is installed (serve tier)
 *
 * Graph nodes are mutex *instances* (monotonic ids, never reused);
 * a destroyed mutex removes its edges so short-lived locks (one per
 * connection, one per batch line) cannot grow the graph without
 * bound. Recording is O(1) amortized: each thread keeps a cache of
 * edges it has already published and takes the global registry mutex
 * only for a pair it has never seen.
 *
 * sync::ConditionVariable pairs with sync::Mutex: at level 0 it is
 * std::condition_variable; instrumented builds use
 * std::condition_variable_any, whose wait() releases and reacquires
 * through Mutex::unlock()/lock() so the held stack stays truthful
 * across blocking waits.
 *
 * The serve tier's mutexes live on these types, so every tier-2
 * serve/chaos run — including the TSan tree in scripts/ci.sh — is a
 * lockdep run too (the default contract level is 1).
 */

#ifndef MMGPU_COMMON_LOCKDEP_HH
#define MMGPU_COMMON_LOCKDEP_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/contract.hh"
#include "common/thread_safety.hh"

namespace mmgpu::sync
{

/** Inconsistent lock-order edges observed since start (or the last
 *  lockdepReset()). Always 0 when lockdep is compiled out. */
std::uint64_t lockdepCycleCount();

/** Forget recorded ordering and the cycle count (tests only: the
 *  graph spans every live sync::Mutex in the process). */
void lockdepReset();

#if MMGPU_CONTRACT_LEVEL == 0

/** Contracts off: sync::Mutex is std::mutex, not a wrapper. */
using Mutex = std::mutex;
using ConditionVariable = std::condition_variable;

inline constexpr bool lockdepEnabled = false;

#else

inline constexpr bool lockdepEnabled = true;

namespace detail
{
/** Acquisition bookkeeping behind Mutex; see lockdep.cc. */
std::uint32_t lockdepRegister();
void lockdepUnregister(std::uint32_t id);
void lockdepAcquired(std::uint32_t id);
void lockdepAcquiredNoOrder(std::uint32_t id);
void lockdepReleased(std::uint32_t id);
} // namespace detail

/**
 * Instrumented mutex: std::mutex semantics plus lock-order
 * recording. Satisfies Lockable, so std::lock_guard, std::unique_lock
 * and std::scoped_lock work unchanged.
 */
class MMGPU_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() : id_(detail::lockdepRegister()) {}
    ~Mutex() { detail::lockdepUnregister(id_); }

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() MMGPU_ACQUIRE()
    {
        m_.lock();
        detail::lockdepAcquired(id_);
    }

    bool try_lock() MMGPU_TRY_ACQUIRE(true)
    {
        if (!m_.try_lock())
            return false;
        // A try_lock cannot block, so it cannot deadlock and
        // contributes no ordering edge — but it is held, so the
        // stack must know about it for the *next* acquisition.
        detail::lockdepAcquiredNoOrder(id_);
        return true;
    }

    void unlock() MMGPU_RELEASE()
    {
        detail::lockdepReleased(id_);
        m_.unlock();
    }

  private:
    std::mutex m_;
    std::uint32_t id_;
};

using ConditionVariable = std::condition_variable_any;

#endif // MMGPU_CONTRACT_LEVEL == 0

} // namespace mmgpu::sync

#endif // MMGPU_COMMON_LOCKDEP_HH
