#include "common/wallclock.hh"

#include <chrono>
#include <thread>

#include "common/contract.hh"

namespace mmgpu::wallclock
{

std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
sleepMs(std::int64_t ms)
{
    MMGPU_EXPECT(ms >= 0, "negative sleep of ", ms, " ms");
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // namespace mmgpu::wallclock
