/**
 * @file
 * Structured error propagation for hot library code.
 *
 * The logging macros (mmgpu_panic/mmgpu_fatal) are right for
 * programmer errors and unusable configurations, but a sweep service
 * cannot afford one poisoned point killing a thousand-point batch.
 * Library code on the sweep hot path therefore reports recoverable
 * failures as Result<T> values: the harness isolates them per point,
 * reports them, and keeps the batch going. Conventions are spelled
 * out in DESIGN.md "Fault model & degraded modes".
 */

#ifndef MMGPU_COMMON_RESULT_HH
#define MMGPU_COMMON_RESULT_HH

#include <string>
#include <utility>
#include <variant>

#include "common/logging.hh"

namespace mmgpu
{

/** Coarse failure category; the message carries the detail. */
enum class ErrCode : std::uint8_t
{
    Config,        //!< invalid configuration / inputs
    Io,            //!< file-system or serialization failure
    Parse,         //!< malformed persisted data
    Timeout,       //!< watchdog cancelled the operation
    InjectedFault, //!< a FaultPlan deliberately failed the point
    Internal,      //!< invariant violation reported instead of abort
    Unavailable,   //!< transient capacity loss (shard crash mid-job,
                   //!< restart in progress); safe to retry
    Poisoned,      //!< work quarantined after repeatedly killing its
                   //!< shard; do NOT retry — the input is at fault
};

/** @return stable lower-case name ("config", "timeout", ...). */
inline const char *
errCodeName(ErrCode code)
{
    switch (code) {
      case ErrCode::Config:
        return "config";
      case ErrCode::Io:
        return "io";
      case ErrCode::Parse:
        return "parse";
      case ErrCode::Timeout:
        return "timeout";
      case ErrCode::InjectedFault:
        return "injected-fault";
      case ErrCode::Internal:
        return "internal";
      case ErrCode::Unavailable:
        return "unavailable";
      case ErrCode::Poisoned:
        return "poisoned";
      default:
        return "unknown";
    }
}

/** One structured failure: category plus human-actionable message. */
struct SimError
{
    ErrCode code = ErrCode::Internal;
    std::string message;

    static SimError
    config(std::string message)
    {
        return {ErrCode::Config, std::move(message)};
    }

    static SimError
    io(std::string message)
    {
        return {ErrCode::Io, std::move(message)};
    }

    static SimError
    parse(std::string message)
    {
        return {ErrCode::Parse, std::move(message)};
    }

    static SimError
    timeout(std::string message)
    {
        return {ErrCode::Timeout, std::move(message)};
    }

    static SimError
    injectedFault(std::string message)
    {
        return {ErrCode::InjectedFault, std::move(message)};
    }

    static SimError
    internal(std::string message)
    {
        return {ErrCode::Internal, std::move(message)};
    }

    static SimError
    unavailable(std::string message)
    {
        return {ErrCode::Unavailable, std::move(message)};
    }

    static SimError
    poisoned(std::string message)
    {
        return {ErrCode::Poisoned, std::move(message)};
    }

    /** "timeout: watchdog fired after 2s" style rendering. */
    std::string
    describe() const
    {
        return std::string(errCodeName(code)) + ": " + message;
    }
};

/**
 * Either a value or a SimError. Deliberately minimal: ok()/value()/
 * error() and valueOr(). Accessing the wrong alternative is a
 * programmer error and panics (it does not silently default).
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : state(std::move(value)) {}
    Result(SimError error) : state(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(state); }

    T &
    value()
    {
        mmgpu_assert(ok(), "value() on an error Result");
        return std::get<T>(state);
    }

    const T &
    value() const
    {
        mmgpu_assert(ok(), "value() on an error Result");
        return std::get<T>(state);
    }

    const SimError &
    error() const
    {
        mmgpu_assert(!ok(), "error() on an ok Result");
        return std::get<SimError>(state);
    }

    T
    valueOr(T fallback) const
    {
        return ok() ? std::get<T>(state) : std::move(fallback);
    }

  private:
    std::variant<T, SimError> state;
};

/** Result<void>: success carries no payload. */
template <>
class [[nodiscard]] Result<void>
{
  public:
    Result() = default;
    Result(SimError error) : error_(std::move(error)), ok_(false) {}

    /** Named constructor for explicit success. */
    static Result
    success()
    {
        return Result();
    }

    bool ok() const { return ok_; }

    const SimError &
    error() const
    {
        mmgpu_assert(!ok_, "error() on an ok Result");
        return error_;
    }

  private:
    SimError error_;
    bool ok_ = true;
};

} // namespace mmgpu

#endif // MMGPU_COMMON_RESULT_HH
