/**
 * @file
 * Incremental 64-bit FNV-1a hashing.
 *
 * The harness fingerprints experiment inputs (configurations,
 * workload profiles, calibration outcomes) so runs can be memoized
 * across threads and persisted across processes. The hash must be
 * stable across platforms and process invocations — std::hash gives
 * no such guarantee — so we fix the algorithm here. Not
 * cryptographic; cache keys only.
 */

#ifndef MMGPU_COMMON_HASH_HH
#define MMGPU_COMMON_HASH_HH

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace mmgpu
{

/** Accumulates a 64-bit FNV-1a digest over typed fields. */
class Fnv1a
{
  public:
    /** @param salt Optional domain-separation salt (schema version). */
    explicit Fnv1a(std::uint64_t salt = 0)
    {
        add(salt);
    }

    /** Mix raw bytes. */
    Fnv1a &
    addBytes(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            digest_ ^= bytes[i];
            digest_ *= prime;
        }
        return *this;
    }

    /** Mix one 64-bit word (little-endian byte order, fixed). */
    Fnv1a &
    add(std::uint64_t word)
    {
        for (int i = 0; i < 8; ++i) {
            digest_ ^= (word >> (8 * i)) & 0xffu;
            digest_ *= prime;
        }
        return *this;
    }

    /** Mix a double by its IEEE-754 bit pattern (exact). */
    Fnv1a &
    add(double value)
    {
        return add(std::bit_cast<std::uint64_t>(value));
    }

    /** Mix a string including its length (prefix-collision safe). */
    Fnv1a &
    add(std::string_view text)
    {
        add(static_cast<std::uint64_t>(text.size()));
        return addBytes(text.data(), text.size());
    }

    Fnv1a &add(const std::string &text)
    {
        return add(std::string_view(text));
    }

    Fnv1a &add(const char *text)
    {
        return add(std::string_view(text));
    }

    /** Mix any integral or enum value through uint64. */
    template <typename T>
        requires(std::is_integral_v<T> || std::is_enum_v<T>)
    Fnv1a &
    add(T value)
    {
        return add(static_cast<std::uint64_t>(value));
    }

    /** The current digest. */
    std::uint64_t digest() const { return digest_; }

  private:
    static constexpr std::uint64_t offsetBasis = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t prime = 0x100000001b3ull;

    std::uint64_t digest_ = offsetBasis;
};

} // namespace mmgpu

#endif // MMGPU_COMMON_HASH_HH
