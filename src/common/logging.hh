/**
 * @file
 * gem5-style status and error reporting.
 *
 * Severity contract (mirrors gem5's logging.hh):
 *  - panic():  an internal invariant was violated — a framework bug.
 *              Aborts so a debugger/core dump can catch it.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, impossible parameters). Exits(1).
 *  - warn():   something works, but not as well as it should.
 *  - inform(): plain status for the user.
 */

#ifndef MMGPU_COMMON_LOGGING_HH
#define MMGPU_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace mmgpu
{

namespace detail
{

/** Terminate with an internal-bug message; calls std::abort(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with a user-error message; calls std::exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Emit a warning to stderr. */
void warnImpl(const std::string &msg);

/** Emit an informational message to stderr. */
void informImpl(const std::string &msg);

/** Fold a variadic pack into one string via operator<<. */
template <typename... Args>
std::string
fold(Args &&...args)
{
    std::ostringstream os;
    // void-cast: an empty pack folds to plain `os`, which -Wall
    // flags as a statement with no effect.
    static_cast<void>((os << ... << args));
    return os.str();
}

} // namespace detail

/** Report an internal invariant violation and abort. */
template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, Args &&...args)
{
    detail::panicImpl(file, line,
                      detail::fold(std::forward<Args>(args)...));
}

/** Report an unrecoverable user/configuration error and exit. */
template <typename... Args>
[[noreturn]] void
fatalAt(const char *file, int line, Args &&...args)
{
    detail::fatalImpl(file, line,
                      detail::fold(std::forward<Args>(args)...));
}

/** Report a recoverable anomaly. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::fold(std::forward<Args>(args)...));
}

/** Report simulation status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::fold(std::forward<Args>(args)...));
}

/** Toggle inform() output (benches silence it for clean tables). */
void setInformEnabled(bool enabled);

/**
 * Install a thread-local trap consulted by panic() *before* it
 * aborts. When set, panicImpl logs the message and calls the trap
 * instead of std::abort(); the trap must not return — it unwinds to
 * a supervised scope (the serve tier's shard supervisor does this
 * via siglongjmp, downgrading a contract-audit death to a
 * recoverable shard crash). Pass nullptr to restore abort semantics.
 * Affects only the calling thread; panics on untrapped threads still
 * abort, so the debugger/core-dump contract holds everywhere else.
 */
void setThreadPanicTrap(void (*trap)(const std::string &msg));

} // namespace mmgpu

#define mmgpu_panic(...) ::mmgpu::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define mmgpu_fatal(...) ::mmgpu::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an invariant that indicates a framework bug when violated. */
#define mmgpu_assert(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::mmgpu::panicAt(__FILE__, __LINE__, "assertion failed: ",    \
                             #cond, " ", ##__VA_ARGS__);                  \
        }                                                                 \
    } while (0)

#endif // MMGPU_COMMON_LOGGING_HH
