/**
 * @file
 * Minimal CSV emission for bench outputs.
 *
 * Each bench writes its data series as CSV next to the human-readable
 * table so results can be re-plotted without re-running experiments.
 */

#ifndef MMGPU_COMMON_CSV_HH
#define MMGPU_COMMON_CSV_HH

#include <string>
#include <vector>

namespace mmgpu
{

/** Accumulates rows and writes them to a file on demand. */
class CsvWriter
{
  public:
    /** @param header Column names. */
    explicit CsvWriter(std::vector<std::string> header);

    /** Append a row; width must match the header. */
    void addRow(std::vector<std::string> cells);

    /**
     * Write the accumulated rows to @p path.
     * @return true on success; failure is reported via warn() so a
     *         read-only filesystem never aborts an experiment run.
     */
    bool writeTo(const std::string &path) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mmgpu

#endif // MMGPU_COMMON_CSV_HH
