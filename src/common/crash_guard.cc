#include "common/crash_guard.hh"

#include "common/logging.hh"

namespace mmgpu
{

namespace
{

// The panic trap carries no context argument, so the active trap of
// each thread is found through this thread-local.
thread_local CrashTrap *activeTrap = nullptr;

} // namespace

CrashTrap::CrashTrap()
{
    previous_ = activeTrap;
    activeTrap = this;
    setThreadPanicTrap(&CrashTrap::onPanic);
}

CrashTrap::~CrashTrap()
{
    activeTrap = previous_;
    setThreadPanicTrap(previous_ != nullptr ? &CrashTrap::onPanic
                                            : nullptr);
}

void
CrashTrap::onPanic(const std::string &msg)
{
    // panicImpl cleared the thread trap before calling us; reinstall
    // for the outer scope the jump lands in (its own panics should
    // reach *its* trap), not for the code between here and there.
    CrashTrap *trap = activeTrap;
    activeTrap = trap->previous_;
    setThreadPanicTrap(activeTrap != nullptr ? &CrashTrap::onPanic
                                             : nullptr);
    trap->message_ = msg;
    trap->tripped_ = true;
    siglongjmp(trap->jump_, 1);
}

} // namespace mmgpu
