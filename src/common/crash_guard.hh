/**
 * @file
 * RAII supervised scope around code that may panic.
 *
 * Installs the thread panic trap (logging.hh) so a panic on the
 * calling thread — contract audit, mmgpu_assert, injected chaos
 * crash — siglongjmps back to the sigsetjmp anchor instead of
 * aborting the process. Usage:
 *
 *     CrashTrap trap;
 *     if (sigsetjmp(trap.jumpBuffer(), 0) == 0) {
 *         ... run the risky work ...
 *     } else {
 *         // panicked; trap.message() holds the panic text
 *     }
 *
 * Two rules keep this sound:
 *
 *  - The *interrupted* frames are abandoned, destructors unrun, so
 *    the risky work must live in its own function call below the
 *    sigsetjmp: nothing constructed between the sigsetjmp and the
 *    panic may be touched afterwards. Resources that must survive a
 *    crash have to be pool-owned (the harness machine pool is; a
 *    crashed run's machine is simply never released, and the
 *    supervisor retires its siblings).
 *  - Never longjmp across a std::call_once — that is undefined and
 *    deadlocks waiters. A trap *inside* the once-callee (the
 *    harness run path installs one) converts the panic to an error
 *    return instead, so it never unwinds past the once_flag.
 *
 * The destructor restores the previous trap, so scopes nest; only
 * the installing thread can trip its trap, and untrapped threads
 * keep the abort-with-core contract.
 */

#ifndef MMGPU_COMMON_CRASH_GUARD_HH
#define MMGPU_COMMON_CRASH_GUARD_HH

#include <setjmp.h> // sigsetjmp/siglongjmp are POSIX, not <csetjmp>

#include <string>

namespace mmgpu
{

/** Supervised scope; see the file comment for the usage contract. */
class CrashTrap
{
  public:
    CrashTrap();
    ~CrashTrap();

    CrashTrap(const CrashTrap &) = delete;
    CrashTrap &operator=(const CrashTrap &) = delete;

    /** Anchor for sigsetjmp; valid for this trap's lifetime. */
    sigjmp_buf &jumpBuffer() { return jump_; }

    /** True once a panic unwound to this trap. */
    bool tripped() const { return tripped_; }

    /** Panic text of the crash (empty until tripped). */
    const std::string &message() const { return message_; }

  private:
    static void onPanic(const std::string &msg);

    sigjmp_buf jump_;
    std::string message_;
    CrashTrap *previous_ = nullptr;
    bool tripped_ = false;
};

} // namespace mmgpu

#endif // MMGPU_COMMON_CRASH_GUARD_HH
