#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace mmgpu
{

void
TextTable::header(std::vector<std::string> cells)
{
    mmgpu_assert(rows_.empty(), "header() after addRow()");
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    mmgpu_assert(cells.size() == header_.size(),
                 "row width ", cells.size(), " != header width ",
                 header_.size(), " in table '", title_, "'");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::pct(double v)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << v << "%";
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&] {
        os << "+";
        for (auto w : widths)
            os << std::string(w + 2, '-') << "+";
        os << "\n";
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << " " << std::setw(static_cast<int>(widths[c]))
               << cells[c] << " |";
        os << "\n";
    };

    os << "\n== " << title_ << " ==\n";
    rule();
    os << std::left;
    line(header_);
    os << std::right;
    rule();
    for (const auto &row : rows_)
        line(row);
    rule();
}

} // namespace mmgpu
