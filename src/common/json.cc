#include "common/json.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace mmgpu
{

namespace
{

void
writeEscaped(std::ostream &os, const std::string &text)
{
    os << '"';
    for (char ch : text) {
        switch (ch) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          case '\r':
            os << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(ch)
                   << std::dec << std::setfill(' ');
            } else {
                os << ch;
            }
        }
    }
    os << '"';
}

void
indentTo(std::ostream &os, int level)
{
    for (int i = 0; i < level; ++i)
        os << "  ";
}

} // namespace

JsonValue &
JsonValue::set(const std::string &key, JsonValue child)
{
    auto *object = std::get_if<Object>(&value);
    mmgpu_assert(object != nullptr, "set() on a non-object JSON value");
    (*object)[key] = std::move(child);
    return *this;
}

JsonValue &
JsonValue::push(JsonValue child)
{
    auto *array = std::get_if<Array>(&value);
    mmgpu_assert(array != nullptr, "push() on a non-array JSON value");
    array->push_back(std::move(child));
    return *this;
}

void
JsonValue::write(std::ostream &os, int indent) const
{
    if (std::holds_alternative<std::nullptr_t>(value)) {
        os << "null";
    } else if (auto *b = std::get_if<bool>(&value)) {
        os << (*b ? "true" : "false");
    } else if (auto *d = std::get_if<double>(&value)) {
        if (!std::isfinite(*d)) {
            os << "null"; // JSON has no Inf/NaN
        } else if (*d == std::floor(*d) && std::abs(*d) < 1e15) {
            os << static_cast<long long>(*d);
        } else {
            std::ostringstream tmp;
            tmp << std::setprecision(12) << *d;
            os << tmp.str();
        }
    } else if (auto *s = std::get_if<std::string>(&value)) {
        writeEscaped(os, *s);
    } else if (auto *object = std::get_if<Object>(&value)) {
        if (object->empty()) {
            os << "{}";
            return;
        }
        os << "{\n";
        bool first = true;
        for (const auto &[key, child] : *object) {
            if (!first)
                os << ",\n";
            first = false;
            indentTo(os, indent + 1);
            writeEscaped(os, key);
            os << ": ";
            child.write(os, indent + 1);
        }
        os << "\n";
        indentTo(os, indent);
        os << "}";
    } else if (auto *array = std::get_if<Array>(&value)) {
        if (array->empty()) {
            os << "[]";
            return;
        }
        os << "[\n";
        bool first = true;
        for (const auto &child : *array) {
            if (!first)
                os << ",\n";
            first = false;
            indentTo(os, indent + 1);
            child.write(os, indent + 1);
        }
        os << "\n";
        indentTo(os, indent);
        os << "]";
    }
}

std::string
JsonValue::dump() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

} // namespace mmgpu
