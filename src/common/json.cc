#include "common/json.hh"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace mmgpu
{

namespace
{

void
writeEscaped(std::ostream &os, const std::string &text)
{
    os << '"';
    for (char ch : text) {
        switch (ch) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          case '\r':
            os << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(ch)
                   << std::dec << std::setfill(' ');
            } else {
                os << ch;
            }
        }
    }
    os << '"';
}

void
indentTo(std::ostream &os, int level)
{
    for (int i = 0; i < level; ++i)
        os << "  ";
}

} // namespace

JsonValue &
JsonValue::set(const std::string &key, JsonValue child)
{
    auto *object = std::get_if<Object>(&value);
    mmgpu_assert(object != nullptr, "set() on a non-object JSON value");
    (*object)[key] = std::move(child);
    return *this;
}

JsonValue &
JsonValue::push(JsonValue child)
{
    auto *array = std::get_if<Array>(&value);
    mmgpu_assert(array != nullptr, "push() on a non-array JSON value");
    array->push_back(std::move(child));
    return *this;
}

void
JsonValue::write(std::ostream &os, int indent) const
{
    if (std::holds_alternative<std::nullptr_t>(value)) {
        os << "null";
    } else if (auto *b = std::get_if<bool>(&value)) {
        os << (*b ? "true" : "false");
    } else if (auto *d = std::get_if<double>(&value)) {
        if (!std::isfinite(*d)) {
            os << "null"; // JSON has no Inf/NaN
        } else if (*d == std::floor(*d) && std::abs(*d) < 1e15) {
            os << static_cast<long long>(*d);
        } else {
            std::ostringstream tmp;
            tmp << std::setprecision(12) << *d;
            os << tmp.str();
        }
    } else if (auto *s = std::get_if<std::string>(&value)) {
        writeEscaped(os, *s);
    } else if (auto *object = std::get_if<Object>(&value)) {
        if (object->empty()) {
            os << "{}";
            return;
        }
        os << "{\n";
        bool first = true;
        for (const auto &[key, child] : *object) {
            if (!first)
                os << ",\n";
            first = false;
            indentTo(os, indent + 1);
            writeEscaped(os, key);
            os << ": ";
            child.write(os, indent + 1);
        }
        os << "\n";
        indentTo(os, indent);
        os << "}";
    } else if (auto *array = std::get_if<Array>(&value)) {
        if (array->empty()) {
            os << "[]";
            return;
        }
        os << "[\n";
        bool first = true;
        for (const auto &child : *array) {
            if (!first)
                os << ",\n";
            first = false;
            indentTo(os, indent + 1);
            child.write(os, indent + 1);
        }
        os << "\n";
        indentTo(os, indent);
        os << "]";
    }
}

std::string
JsonValue::dump() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

void
JsonValue::writeCompact(std::ostream &os) const
{
    if (std::holds_alternative<std::nullptr_t>(value)) {
        os << "null";
    } else if (auto *b = std::get_if<bool>(&value)) {
        os << (*b ? "true" : "false");
    } else if (auto *d = std::get_if<double>(&value)) {
        if (!std::isfinite(*d)) {
            os << "null"; // JSON has no Inf/NaN
        } else if (*d == std::floor(*d) && std::abs(*d) < 1e15) {
            os << static_cast<long long>(*d);
        } else {
            std::ostringstream tmp;
            tmp << std::setprecision(12) << *d;
            os << tmp.str();
        }
    } else if (auto *s = std::get_if<std::string>(&value)) {
        writeEscaped(os, *s);
    } else if (auto *object = std::get_if<Object>(&value)) {
        os << '{';
        bool first = true;
        for (const auto &[key, child] : *object) {
            if (!first)
                os << ',';
            first = false;
            writeEscaped(os, key);
            os << ':';
            child.writeCompact(os);
        }
        os << '}';
    } else if (auto *array = std::get_if<Array>(&value)) {
        os << '[';
        bool first = true;
        for (const auto &child : *array) {
            if (!first)
                os << ',';
            first = false;
            child.writeCompact(os);
        }
        os << ']';
    }
}

std::string
JsonValue::dumpCompact() const
{
    std::ostringstream os;
    writeCompact(os);
    return os.str();
}

bool
JsonValue::isNull() const
{
    return std::holds_alternative<std::nullptr_t>(value);
}

bool
JsonValue::isObject() const
{
    return std::holds_alternative<Object>(value);
}

bool
JsonValue::isArray() const
{
    return std::holds_alternative<Array>(value);
}

bool
JsonValue::isString() const
{
    return std::holds_alternative<std::string>(value);
}

bool
JsonValue::isNumber() const
{
    return std::holds_alternative<double>(value);
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    const auto *object = std::get_if<Object>(&value);
    if (object == nullptr)
        return nullptr;
    auto it = object->find(key);
    return it == object->end() ? nullptr : &it->second;
}

std::size_t
JsonValue::size() const
{
    const auto *array = std::get_if<Array>(&value);
    return array ? array->size() : 0;
}

const JsonValue *
JsonValue::at(std::size_t index) const
{
    const auto *array = std::get_if<Array>(&value);
    if (array == nullptr || index >= array->size())
        return nullptr;
    return &(*array)[index];
}

const std::string &
JsonValue::asString() const
{
    static const std::string empty;
    const auto *s = std::get_if<std::string>(&value);
    return s ? *s : empty;
}

double
JsonValue::asNumber() const
{
    const auto *d = std::get_if<double>(&value);
    return d ? *d : 0.0;
}

namespace
{

/** Strict recursive-descent JSON parser over a string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text(text) {}

    std::optional<JsonValue>
    document()
    {
        auto value = parseValue();
        if (!value)
            return std::nullopt;
        skipSpace();
        if (pos != text.size())
            return std::nullopt; // trailing garbage
        return value;
    }

  private:
    static constexpr int maxDepth = 64;

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        std::size_t len = std::string::traits_type::length(word);
        if (text.compare(pos, len, word) != 0)
            return false;
        pos += len;
        return true;
    }

    std::optional<JsonValue>
    parseValue()
    {
        if (++depth > maxDepth)
            return std::nullopt;
        skipSpace();
        std::optional<JsonValue> result;
        if (pos >= text.size()) {
            result = std::nullopt;
        } else if (text[pos] == '{') {
            result = parseObject();
        } else if (text[pos] == '[') {
            result = parseArray();
        } else if (text[pos] == '"') {
            auto s = parseString();
            if (s)
                result = JsonValue(std::move(*s));
        } else if (literal("null")) {
            result = JsonValue(nullptr);
        } else if (literal("true")) {
            result = JsonValue(true);
        } else if (literal("false")) {
            result = JsonValue(false);
        } else {
            result = parseNumber();
        }
        --depth;
        return result;
    }

    std::optional<JsonValue>
    parseObject()
    {
        ++pos; // '{'
        JsonValue object = JsonValue::object();
        skipSpace();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return object;
        }
        while (true) {
            skipSpace();
            if (pos >= text.size() || text[pos] != '"')
                return std::nullopt;
            auto key = parseString();
            if (!key)
                return std::nullopt;
            skipSpace();
            if (pos >= text.size() || text[pos] != ':')
                return std::nullopt;
            ++pos;
            auto child = parseValue();
            if (!child)
                return std::nullopt;
            object.set(*key, std::move(*child));
            skipSpace();
            if (pos >= text.size())
                return std::nullopt;
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == '}') {
                ++pos;
                return object;
            }
            return std::nullopt;
        }
    }

    std::optional<JsonValue>
    parseArray()
    {
        ++pos; // '['
        JsonValue array = JsonValue::array();
        skipSpace();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return array;
        }
        while (true) {
            auto child = parseValue();
            if (!child)
                return std::nullopt;
            array.push(std::move(*child));
            skipSpace();
            if (pos >= text.size())
                return std::nullopt;
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == ']') {
                ++pos;
                return array;
            }
            return std::nullopt;
        }
    }

    std::optional<std::string>
    parseString()
    {
        ++pos; // '"'
        std::string out;
        while (pos < text.size()) {
            char ch = text[pos];
            if (ch == '"') {
                ++pos;
                return out;
            }
            if (ch == '\\') {
                if (pos + 1 >= text.size())
                    return std::nullopt;
                char esc = text[pos + 1];
                pos += 2;
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return std::nullopt;
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            code |= h - 'A' + 10;
                        else
                            return std::nullopt;
                    }
                    pos += 4;
                    // The writer only emits \u for control chars;
                    // decode the Latin-1 subset and reject the rest.
                    if (code > 0xff)
                        return std::nullopt;
                    out += static_cast<char>(code);
                    break;
                  }
                  default:
                    return std::nullopt;
                }
                continue;
            }
            out += ch;
            ++pos;
        }
        return std::nullopt; // unterminated
    }

    std::optional<JsonValue>
    parseNumber()
    {
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        // JSON numbers start with a digit after the optional minus;
        // without this check strtod would also accept "+1", ".5" and
        // the NaN/Infinity spellings.
        if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
            pos = start;
            return std::nullopt;
        }
        while (pos < text.size() &&
               ((text[pos] >= '0' && text[pos] <= '9') ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        std::string token = text.substr(start, pos - start);
        char *end = nullptr;
        double parsed = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return std::nullopt;
        // Overflowed literals ("1e999999") come back infinite;
        // JSON has no way to round-trip them, so reject.
        if (!std::isfinite(parsed))
            return std::nullopt;
        return JsonValue(parsed);
    }

    const std::string &text;
    std::size_t pos = 0;
    int depth = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text)
{
    return Parser(text).document();
}

} // namespace mmgpu
