/**
 * @file
 * Lightweight statistics package.
 *
 * Simulator components register named scalar counters and
 * distributions with a StatGroup. Reports and the energy model read
 * event counts from here, so the counter names double as the contract
 * between the performance simulator and GPUJoule.
 */

#ifndef MMGPU_COMMON_STATS_HH
#define MMGPU_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/units.hh"

namespace mmgpu
{

/** A named monotonically increasing event counter. */
class StatCounter
{
  public:
    StatCounter() = default;

    /** Add @p n events. */
    void add(Count n = 1) { value_ += n; }

    /** Current value. */
    Count value() const { return value_; }

    /** Reset to zero (between kernels / runs). */
    void reset() { value_ = 0; }

  private:
    Count value_ = 0;
};

/** Streaming mean/min/max/sum accumulator for sampled quantities. */
class StatDistribution
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        count_ += 1;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    /** Number of samples recorded. */
    Count count() const { return count_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Mean of all samples; 0 when empty. */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Smallest sample; 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest sample; 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Forget all samples. */
    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = 0.0;
        max_ = 0.0;
    }

  private:
    double sum_ = 0.0;
    Count count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A registry of named counters/distributions owned by one simulated
 * component (an SM, a cache, a link, the whole GPU).
 */
class StatGroup
{
  public:
    /** @param name Hierarchical component name, e.g. "gpm0.l2". */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Component name. */
    const std::string &name() const { return name_; }

    /**
     * Get-or-create a counter.
     * @param key Counter name local to this group.
     */
    StatCounter &counter(const std::string &key) { return counters_[key]; }

    /** Get-or-create a distribution. */
    StatDistribution &
    distribution(const std::string &key)
    {
        return distributions_[key];
    }

    /** Read a counter value; 0 if never created. */
    Count
    read(const std::string &key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? 0 : it->second.value();
    }

    /** Reset every counter and distribution in the group. */
    void reset();

    /** Dump "group.key value" lines. */
    void dump(std::ostream &os) const;

    /** All counters, for aggregation. */
    const std::map<std::string, StatCounter> &
    counters() const
    {
        return counters_;
    }

  private:
    std::string name_;
    std::map<std::string, StatCounter> counters_;
    std::map<std::string, StatDistribution> distributions_;
};

/**
 * Sum the value of counter @p key across many groups.
 * Convenience for whole-GPU aggregation across SMs/GPMs.
 */
Count sumCounter(const std::vector<const StatGroup *> &groups,
                 const std::string &key);

} // namespace mmgpu

#endif // MMGPU_COMMON_STATS_HH
