#include "common/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace mmgpu
{

namespace
{

// The harness runs simulations on worker threads (ParallelRunner);
// reporting must neither tear the enable flag nor interleave lines.
std::atomic<bool> informEnabled{true};
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

// Per-thread supervision hook; see setThreadPanicTrap() in the
// header. A plain function pointer (not std::function) so installing
// and clearing it is trivially async-signal-tolerant.
thread_local void (*panicTrap)(const std::string &) = nullptr;

} // namespace

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled, std::memory_order_relaxed);
}

void
setThreadPanicTrap(void (*trap)(const std::string &msg))
{
    panicTrap = trap;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "panic: " << msg << "\n  @ " << file << ":"
                  << line << std::endl;
    }
    if (panicTrap != nullptr) {
        // The trap unwinds (siglongjmp) to a supervised scope; clear
        // it first so a panic raised *inside* the trap still aborts.
        auto *trap = panicTrap;
        panicTrap = nullptr;
        trap(msg);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "fatal: " << msg << "\n  @ " << file << ":"
                  << line << std::endl;
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!informEnabled.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(logMutex());
    std::cerr << "info: " << msg << std::endl;
}

} // namespace detail

} // namespace mmgpu
