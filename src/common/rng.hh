/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything stochastic in the framework (trace generation, sensor
 * noise, address patterns) draws from seeded xoshiro256** streams so
 * that identical configurations yield bit-identical results on every
 * platform. std::mt19937 is avoided because distribution
 * implementations vary across standard libraries.
 */

#ifndef MMGPU_COMMON_RNG_HH
#define MMGPU_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace mmgpu
{

/**
 * xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
 * Small, fast, and statistically strong for simulation purposes.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is fine. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;

        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                m = static_cast<__uint128_t>(next()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Standard normal draw (Marsaglia polar method).
     * Used only for sensor noise; no cached second value is kept so
     * the stream position is easy to reason about in tests.
     */
    double
    gaussian()
    {
        double u, v, s;
        do {
            u = 2.0 * uniform() - 1.0;
            v = 2.0 * uniform() - 1.0;
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        return u * std::sqrt(-2.0 * std::log(s) / s);
    }

    /**
     * Derive an independent child stream. Used to give every
     * (workload, block, warp) tuple its own reproducible stream no
     * matter the simulation interleaving.
     */
    Rng
    fork(std::uint64_t salt) const
    {
        return Rng(state[0] ^ (salt * 0xd1342543de82ef95ull) ^ state[3]);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace mmgpu

#endif // MMGPU_COMMON_RNG_HH
