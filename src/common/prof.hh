/**
 * @file
 * Zero-cost-when-disabled profiling: scoped timers and counters.
 *
 * The engine's binding constraint is wall-clock per sweep point, so
 * the repo carries its own always-available profiler instead of
 * relying on external tooling being installed. Instrumentation sites
 * are static `Site` objects aggregated per label; `Scope` stamps
 * inclusive and exclusive (self) nanoseconds into its site via the
 * wallclock shim (the only sanctioned clock — mmgpu-lint's
 * determinism-clock rule stays intact).
 *
 * Cost model:
 *  - `MMGPU_PROFILE` unset/0: every `Scope` constructor is a single
 *    predictable branch on a cached bool; no clock reads, no atomics.
 *    Counters likewise. Overhead is unmeasurable by design.
 *  - `MMGPU_PROFILE=1`: two clock reads per scope plus relaxed
 *    atomic adds. A per-event site costs ~100 ns/event — fine for
 *    finding where the time goes, not for nanosecond-true numbers.
 *
 * Reporting: a human-readable table on stderr at process exit
 * (sorted by exclusive time), `writeJson()` for machine consumption
 * (`mmgpu_cli --prof-out`, `mmgpu_serve --prof-out` / `prof` verb),
 * and `snapshot()` for in-process consumers (serve `stats`).
 *
 * Threading: sites are registered once under a mutex; sample
 * accumulation is relaxed-atomic so parallel workers can share a
 * site. Exclusive-time bookkeeping uses a thread-local scope stack,
 * so nesting across threads is simply independent.
 *
 * Determinism: nothing here feeds simulation state. Timing values
 * are observational only and must never enter a RunKey, cache
 * fingerprint, or result.
 */

#ifndef MMGPU_COMMON_PROF_HH
#define MMGPU_COMMON_PROF_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/wallclock.hh"

namespace mmgpu::prof
{

/** True when MMGPU_PROFILE is set to a nonzero value. Cached once. */
bool enabled();

/**
 * One aggregation bucket. Construct as a function-local or
 * namespace-scope `static` next to the code being timed; the
 * constructor registers the site in the global report. Sites are
 * trivially destructible on purpose: registration outlives every
 * static-destruction order question because nothing ever
 * unregisters, and the report walks live objects at exit.
 */
class Site
{
  public:
    explicit Site(const char *label);

    /** Record one timed interval (both values in ns). */
    void addSample(std::uint64_t inclusive_ns, std::uint64_t exclusive_ns)
    {
        calls_.fetch_add(1, std::memory_order_relaxed);
        inclusiveNs_.fetch_add(inclusive_ns, std::memory_order_relaxed);
        exclusiveNs_.fetch_add(exclusive_ns, std::memory_order_relaxed);
    }

    /** Record @p delta units of a plain counter (no timing). */
    void addCount(std::uint64_t delta)
    {
        count_.fetch_add(delta, std::memory_order_relaxed);
    }

    const char *label() const { return label_; }
    std::uint64_t calls() const
    {
        return calls_.load(std::memory_order_relaxed);
    }
    std::uint64_t inclusiveNs() const
    {
        return inclusiveNs_.load(std::memory_order_relaxed);
    }
    std::uint64_t exclusiveNs() const
    {
        return exclusiveNs_.load(std::memory_order_relaxed);
    }
    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

  private:
    const char *label_;
    std::atomic<std::uint64_t> calls_{0};
    std::atomic<std::uint64_t> inclusiveNs_{0};
    std::atomic<std::uint64_t> exclusiveNs_{0};
    std::atomic<std::uint64_t> count_{0};
};

/**
 * Look up (or create) a site with a runtime-computed label, e.g.
 * "serve/shard3". Returned pointer is valid for the process
 * lifetime. Costs a mutex + map lookup — for request-grained code,
 * resolve once and keep the pointer.
 */
Site *dynamicSite(const std::string &label);

/**
 * RAII timer. When profiling is disabled the constructor is one
 * branch and the destructor a null check.
 */
class Scope
{
  public:
    explicit Scope(Site &site)
    {
        if (enabled())
            open(site);
    }
    ~Scope()
    {
        if (site_ != nullptr)
            close();
    }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    void open(Site &site);
    void close();

    Site *site_ = nullptr;
    Scope *parent_ = nullptr;
    std::int64_t startNs_ = 0;
    std::uint64_t childNs_ = 0;
};

/** Point-in-time copy of one site, for reporting. */
struct SiteSnapshot
{
    std::string label;
    std::uint64_t calls = 0;
    std::uint64_t inclusiveNs = 0;
    std::uint64_t exclusiveNs = 0;
    std::uint64_t count = 0;
};

/**
 * Copy every registered site with at least one call or count,
 * sorted by exclusive ns descending. Works whether or not profiling
 * is enabled (serve's shard timers sample unconditionally).
 */
std::vector<SiteSnapshot> snapshot();

/** Serialize snapshot() as a JSON object string. */
std::string snapshotJson();

/** Write snapshotJson() to @p path. Returns false on I/O failure. */
bool writeJson(const std::string &path);

/**
 * Print the human-readable report to stderr now (normally runs via
 * atexit when profiling is enabled; exposed for tests).
 */
void report();

#define MMGPU_PROF_CONCAT2(a, b) a##b
#define MMGPU_PROF_CONCAT(a, b) MMGPU_PROF_CONCAT2(a, b)

/** Time the enclosing scope under @p label (a string literal). */
#define MMGPU_PROF_SCOPE(label)                                               \
    static ::mmgpu::prof::Site MMGPU_PROF_CONCAT(mmgpuProfSite,               \
                                                 __LINE__){label};            \
    ::mmgpu::prof::Scope MMGPU_PROF_CONCAT(mmgpuProfScope, __LINE__)          \
    {                                                                         \
        MMGPU_PROF_CONCAT(mmgpuProfSite, __LINE__)                            \
    }

/** Bump a labelled counter by @p delta when profiling is enabled. */
#define MMGPU_PROF_COUNT(label, delta)                                        \
    do                                                                        \
    {                                                                         \
        if (::mmgpu::prof::enabled())                                         \
        {                                                                     \
            static ::mmgpu::prof::Site mmgpuProfCountSite{label};             \
            mmgpuProfCountSite.addCount(delta);                               \
        }                                                                     \
    } while (false)

} // namespace mmgpu::prof

#endif // MMGPU_COMMON_PROF_HH
