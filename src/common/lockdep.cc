/**
 * @file
 * Lockdep registry: the global lock-order graph behind sync::Mutex.
 *
 * Data structures (all guarded by the registry's own plain
 * std::mutex — deliberately NOT a sync::Mutex, the validator must
 * never instrument itself):
 *
 *   edges     adjacency: id -> set of ids acquired after it while it
 *             was held. Deterministic containers (ids are monotonic
 *             construction order) so cycle reports replay stably.
 *   reported  edges already warned about at level 1 (warn once).
 *
 * Each thread additionally keeps:
 *
 *   held      its acquisition stack (ids in acquisition order)
 *   seen      edges this thread has already published — the fast
 *             path: a (prev, next) pair found here skips the global
 *             mutex entirely, so steady-state locking costs one
 *             thread-local set lookup.
 *
 * Cycle check: before inserting edge a->b, walk the existing graph
 * from b; reaching a means some other path already orders b before
 * a, i.e. the new edge closes a cycle. The offending edge is NOT
 * inserted (the graph stays acyclic, so one bug reports once per
 * thread-cache miss rather than corrupting later checks), and the
 * violation reports per contract level: panic at >= 2, warn + count
 * at 1.
 */

#include "common/lockdep.hh"

#if MMGPU_CONTRACT_LEVEL >= 1

#include <atomic>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/thread_safety.hh"

namespace mmgpu::sync
{

namespace
{

struct Registry
{
    std::mutex mutex;
    std::map<std::uint32_t, std::set<std::uint32_t>> edges
        MMGPU_GUARDED_BY(mutex);
    std::set<std::pair<std::uint32_t, std::uint32_t>> reported
        MMGPU_GUARDED_BY(mutex);
};

/** Leaked: mutexes (thread-local caches, static singletons) may
 *  unlock during process teardown after statics are destroyed. */
Registry &
registry()
{
    static Registry *instance = new Registry;
    return *instance;
}

std::atomic<std::uint32_t> nextId{1};
std::atomic<std::uint64_t> cycles{0};
std::atomic<std::uint64_t> generation{0};

struct ThreadState
{
    std::vector<std::uint32_t> held;
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    std::uint64_t seenGeneration = 0;
};

ThreadState &
threadState()
{
    thread_local ThreadState state;
    return state;
}

/** DFS: is @p to reachable from @p from in the current graph? */
bool
reaches(const Registry &reg, std::uint32_t from, std::uint32_t to)
    MMGPU_REQUIRES(reg.mutex)
{
    std::vector<std::uint32_t> stack{from};
    std::set<std::uint32_t> visited;
    while (!stack.empty()) {
        const std::uint32_t at = stack.back();
        stack.pop_back();
        if (at == to)
            return true;
        if (!visited.insert(at).second)
            continue;
        auto it = reg.edges.find(at);
        if (it == reg.edges.end())
            continue;
        for (std::uint32_t next : it->second)
            stack.push_back(next);
    }
    return false;
}

/** One path to -> ... -> from proving the cycle, for the report;
 *  the path exists by construction (reaches() just returned true). */
std::string
describeCycle(const Registry &reg, std::uint32_t from,
              std::uint32_t to) MMGPU_REQUIRES(reg.mutex)
{
    std::map<std::uint32_t, std::uint32_t> parent;
    std::vector<std::uint32_t> stack{to};
    parent[to] = to;
    while (!stack.empty()) {
        const std::uint32_t at = stack.back();
        stack.pop_back();
        if (at == from)
            break;
        auto it = reg.edges.find(at);
        if (it == reg.edges.end())
            continue;
        for (std::uint32_t next : it->second) {
            if (parent.emplace(next, at).second)
                stack.push_back(next);
        }
    }
    // parent[] chains from -> ... -> to (each node points at its DFS
    // discoverer, and edges run discoverer -> node); replay it
    // backwards so the report reads in acquisition order.
    std::vector<std::uint32_t> chain;
    for (std::uint32_t at = from; at != to;) {
        auto it = parent.find(at);
        if (it == parent.end() || it->second == at)
            break; // defensive: report what we have
        chain.push_back(at);
        at = it->second;
    }
    std::ostringstream os;
    os << "mutex#" << from << " -> mutex#" << to
       << " closes the cycle: mutex#" << to;
    for (std::size_t i = chain.size(); i-- > 0;)
        os << " -> mutex#" << chain[i];
    os << " -> mutex#" << to;
    return os.str();
}

void
recordEdge(std::uint32_t prev, std::uint32_t id)
{
    std::string cycle;
    bool warnOnce = false;
    {
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        auto it = reg.edges.find(prev);
        if (it != reg.edges.end() && it->second.count(id))
            return; // another thread published it first
        if (!reaches(reg, id, prev)) {
            reg.edges[prev].insert(id);
            return;
        }
        // Cycle: the offending edge is NOT inserted, so the graph
        // stays acyclic and later checks stay sound.
        cycles.fetch_add(1, std::memory_order_relaxed);
        cycle = describeCycle(reg, prev, id);
        warnOnce = reg.reported.emplace(prev, id).second;
    }
    // Report outside the registry lock: a panic trap (serve shard
    // supervision) longjmps out of mmgpu_panic and would leave the
    // registry mutex held forever.
    if (contract::auditsEnabled) {
        mmgpu_panic("lockdep: lock-order inversion — acquiring ",
                    cycle);
    }
    if (warnOnce)
        warn("lockdep: lock-order inversion — acquiring ", cycle,
             " (level 1: counted, not fatal)");
}

} // namespace

namespace detail
{

std::uint32_t
lockdepRegister()
{
    return nextId.fetch_add(1, std::memory_order_relaxed);
}

void
lockdepUnregister(std::uint32_t id)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.edges.erase(id);
    for (auto &[from, to] : reg.edges)
        to.erase(id);
}

void
lockdepAcquired(std::uint32_t id)
{
    ThreadState &state = threadState();
    const std::uint64_t gen =
        generation.load(std::memory_order_acquire);
    if (state.seenGeneration != gen) {
        state.seen.clear(); // lockdepReset() invalidated the cache
        state.seenGeneration = gen;
    }
    if (!state.held.empty()) {
        const std::uint32_t prev = state.held.back();
        if (prev != id && state.seen.emplace(prev, id).second)
            recordEdge(prev, id);
    }
    state.held.push_back(id);
}

void
lockdepAcquiredNoOrder(std::uint32_t id)
{
    threadState().held.push_back(id);
}

void
lockdepReleased(std::uint32_t id)
{
    // Remove the most recent occurrence, not necessarily the top:
    // unlock order is not required to mirror lock order
    // (std::unique_lock::unlock(), scoped early releases).
    std::vector<std::uint32_t> &held = threadState().held;
    for (std::size_t i = held.size(); i-- > 0;) {
        if (held[i] == id) {
            held.erase(held.begin() +
                       static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

} // namespace detail

std::uint64_t
lockdepCycleCount()
{
    return cycles.load(std::memory_order_relaxed);
}

void
lockdepReset()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.edges.clear();
    reg.reported.clear();
    cycles.store(0, std::memory_order_relaxed);
    // Thread-local caches cannot be cleared from here; bump the
    // generation so every thread drops its cache on next use.
    generation.fetch_add(1, std::memory_order_acq_rel);
}

} // namespace mmgpu::sync

#else // MMGPU_CONTRACT_LEVEL == 0

namespace mmgpu::sync
{

std::uint64_t
lockdepCycleCount()
{
    return 0;
}

void
lockdepReset()
{
}

} // namespace mmgpu::sync

#endif
