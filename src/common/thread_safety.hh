/**
 * @file
 * Thread-safety annotation vocabulary — one set of macros drives both
 * halves of the concurrency-discipline toolchain:
 *
 *  - Statically, the tokens are consumed by mmgpu-lint's guarded-field
 *    / lock-order / condvar-discipline rules (tools/lint/rules.cc),
 *    which work on the raw token stream and therefore see the macro
 *    names whether or not the compiler expands them to anything.
 *  - Under clang with -DMMGPU_THREAD_SAFETY=ON they additionally
 *    expand to the -Wthread-safety capability attributes, so clang's
 *    own analysis re-checks the same contracts (scripts/ci.sh runs
 *    that configuration when clang is on PATH; GCC builds see empty
 *    expansions and pay nothing).
 *
 * Vocabulary (names follow the clang attribute they map to):
 *
 *   MMGPU_CAPABILITY(x)        the annotated type is a lockable
 *                              capability (sync::Mutex carries this)
 *   MMGPU_GUARDED_BY(m)        field (or condition variable) may only
 *                              be touched while m is held
 *   MMGPU_REQUIRES(m)          function must be called with m held —
 *                              the *Locked() helper convention
 *   MMGPU_EXCLUDES(m)          function must NOT be called with m
 *                              held (it takes m itself, or blocks)
 *   MMGPU_ACQUIRED_BEFORE(m)   declares lock order: this mutex is
 *                              acquired before m wherever both are
 *                              held (seed edges of the lint's
 *                              lock-order DAG)
 *   MMGPU_ACQUIRE()/MMGPU_RELEASE()/MMGPU_TRY_ACQUIRE(b)
 *                              lock-function annotations for the
 *                              sync::Mutex wrapper itself
 *   MMGPU_NO_THREAD_SAFETY_ANALYSIS
 *                              opt a function out of clang's analysis
 *                              (lockdep internals, test harnesses)
 *
 * Annotations go after the declarator name:
 *
 *   std::map<Key, Job> inflight_ MMGPU_GUARDED_BY(inflightMutex_);
 *   void resetLocked(State &s) MMGPU_REQUIRES(mutex_);
 */

#ifndef MMGPU_COMMON_THREAD_SAFETY_HH
#define MMGPU_COMMON_THREAD_SAFETY_HH

#if defined(__clang__) && defined(MMGPU_THREAD_SAFETY)
#define MMGPU_TSA_ATTR(x) __attribute__((x))
#else
#define MMGPU_TSA_ATTR(x)
#endif

#define MMGPU_CAPABILITY(x) MMGPU_TSA_ATTR(capability(x))
#define MMGPU_GUARDED_BY(m) MMGPU_TSA_ATTR(guarded_by(m))
#define MMGPU_REQUIRES(...) \
    MMGPU_TSA_ATTR(requires_capability(__VA_ARGS__))
#define MMGPU_EXCLUDES(...) MMGPU_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define MMGPU_ACQUIRED_BEFORE(...) \
    MMGPU_TSA_ATTR(acquired_before(__VA_ARGS__))
#define MMGPU_ACQUIRE(...) \
    MMGPU_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define MMGPU_RELEASE(...) \
    MMGPU_TSA_ATTR(release_capability(__VA_ARGS__))
#define MMGPU_TRY_ACQUIRE(...) \
    MMGPU_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define MMGPU_NO_THREAD_SAFETY_ANALYSIS \
    MMGPU_TSA_ATTR(no_thread_safety_analysis)

#endif // MMGPU_COMMON_THREAD_SAFETY_HH
