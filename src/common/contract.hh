/**
 * @file
 * Build-gated runtime contracts: the enforcement half of the repo's
 * correctness tooling (mmgpu-lint is the static half).
 *
 * Three macro families, gated by MMGPU_CONTRACT_LEVEL (a compile-time
 * definition; set it with -DMMGPU_CONTRACTS=<level> at configure
 * time):
 *
 *   level 0  everything compiles away (release sweeps at full speed)
 *   level 1  MMGPU_EXPECT / MMGPU_ENSURE active — cheap interface
 *            pre/postconditions on module boundaries (the default)
 *   level 2  + MMGPU_INVARIANT active — expensive internal audits:
 *            energy-conservation, NoC flit-conservation, and pool
 *            accounting checks that walk whole data structures
 *
 * A violated contract is a framework bug, never a user error, so all
 * three report through mmgpu_panic (abort + core dump), matching the
 * logging severity contract. User-input validation must keep using
 * Result<T, SimError> / mmgpu_fatal instead — contracts are not an
 * error-reporting channel and vanish at level 0.
 *
 * Audit helpers (e.g. noc::InterGpmNetwork::auditConservation,
 * joule::auditEstimate) are plain functions returning a diagnostic
 * string (empty = pass) so tests can exercise them at any contract
 * level; production call sites wrap them in MMGPU_INVARIANT.
 */

#ifndef MMGPU_COMMON_CONTRACT_HH
#define MMGPU_COMMON_CONTRACT_HH

#include "common/logging.hh"

#ifndef MMGPU_CONTRACT_LEVEL
#define MMGPU_CONTRACT_LEVEL 1
#endif

namespace mmgpu::contract
{

/** Active contract level (0 = off, 1 = interface, 2 = + audits). */
inline constexpr int level = MMGPU_CONTRACT_LEVEL;

/** True when MMGPU_EXPECT / MMGPU_ENSURE are compiled in. */
inline constexpr bool checksEnabled = level >= 1;

/** True when MMGPU_INVARIANT and the conservation audits run. */
inline constexpr bool auditsEnabled = level >= 2;

} // namespace mmgpu::contract

#if MMGPU_CONTRACT_LEVEL >= 1

/** Precondition on a public entry point; violation = caller bug. */
#define MMGPU_EXPECT(cond, ...)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::mmgpu::panicAt(__FILE__, __LINE__,                          \
                             "precondition violated: ", #cond, " ",       \
                             ##__VA_ARGS__);                              \
        }                                                                 \
    } while (0)

/** Postcondition before returning; violation = callee bug. */
#define MMGPU_ENSURE(cond, ...)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::mmgpu::panicAt(__FILE__, __LINE__,                          \
                             "postcondition violated: ", #cond, " ",      \
                             ##__VA_ARGS__);                              \
        }                                                                 \
    } while (0)

#else

// Level 0: the condition is type-checked but never evaluated
// (contracts may be O(n)); sizeof keeps the operands "used" so a
// variable that exists only for its contract does not warn.
#define MMGPU_EXPECT(cond, ...) ((void)sizeof((cond) ? 1 : 0))
#define MMGPU_ENSURE(cond, ...) ((void)sizeof((cond) ? 1 : 0))

#endif

#if MMGPU_CONTRACT_LEVEL >= 2

/** Expensive internal invariant (conservation audits, structure
 *  walks); compiled only into audit builds. */
#define MMGPU_INVARIANT(cond, ...)                                        \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::mmgpu::panicAt(__FILE__, __LINE__,                          \
                             "invariant violated: ", #cond, " ",          \
                             ##__VA_ARGS__);                              \
        }                                                                 \
    } while (0)

#else

#define MMGPU_INVARIANT(cond, ...) ((void)sizeof((cond) ? 1 : 0))

#endif

#endif // MMGPU_COMMON_CONTRACT_HH
