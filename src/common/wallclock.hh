/**
 * @file
 * The repo's only sanctioned access to host time.
 *
 * Simulation results must be a pure function of configuration,
 * workload, and seed — bit-identical across runs, hosts, and worker
 * counts — so mmgpu-lint bans std::chrono clocks, time(), rand(),
 * and friends everywhere outside src/common's rng/clock shims. The
 * pieces of the harness that legitimately need wall-clock time
 * (watchdog budgets, retry backoff, fault-plan hang windows) go
 * through this shim, which keeps every such site greppable and keeps
 * host time out of anything that feeds simulation state.
 *
 * Values are milliseconds on a monotonic clock with an arbitrary
 * epoch: good for measuring elapsed time, meaningless as a calendar
 * timestamp — deliberately, so nobody is tempted to persist one.
 */

#ifndef MMGPU_COMMON_WALLCLOCK_HH
#define MMGPU_COMMON_WALLCLOCK_HH

#include <cstdint>

namespace mmgpu::wallclock
{

/** Monotonic host time in milliseconds since an arbitrary epoch. */
std::int64_t nowMs();

/**
 * Monotonic host time in nanoseconds since an arbitrary epoch.
 * The profiler's clock (common/prof.hh): millisecond granularity is
 * useless for timing engine hot loops. Same epoch caveat as nowMs()
 * — never persist or compare across processes.
 */
std::int64_t nowNs();

/** Block the calling thread for @p ms milliseconds (>= 0). */
void sleepMs(std::int64_t ms);

} // namespace mmgpu::wallclock

#endif // MMGPU_COMMON_WALLCLOCK_HH
