#include "common/prof.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "common/thread_safety.hh"

namespace mmgpu::prof
{

namespace
{

/**
 * The site registry. Leaked on purpose: sites are registered from
 * static initializers and function-local statics in arbitrary TUs,
 * and the exit report must be able to walk them no matter how
 * static destruction is ordered. Registered Site objects are
 * trivially destructible, so a "destroyed" site is still readable.
 */
struct Registry
{
    // Recursive: dynamicSite() constructs a Site (whose constructor
    // registers itself, re-entering the lock) while holding it, so
    // concurrent dynamicSite() calls cannot race a half-registered
    // entry.
    std::recursive_mutex mutex;
    std::vector<Site *> sites MMGPU_GUARDED_BY(mutex);
    // Dynamic-label sites own their label storage here (Site keeps a
    // const char* into the map's stable keys).
    std::map<std::string, Site *> dynamic MMGPU_GUARDED_BY(mutex);
};

Registry &
registry()
{
    static Registry *instance = new Registry; // leaked, see above
    return *instance;
}

bool
readEnabled()
{
    const char *env = std::getenv("MMGPU_PROFILE");
    return env != nullptr && env[0] != '\0' &&
           std::strcmp(env, "0") != 0;
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
atExitReport()
{
    if (enabled())
        report();
}

} // namespace

bool
enabled()
{
    static const bool value = [] {
        bool on = readEnabled();
        if (on)
            std::atexit(atExitReport);
        return on;
    }();
    return value;
}

Site::Site(const char *label) : label_(label)
{
    Registry &reg = registry();
    std::lock_guard<std::recursive_mutex> lock(reg.mutex);
    reg.sites.push_back(this);
}

Site *
dynamicSite(const std::string &label)
{
    Registry &reg = registry();
    std::lock_guard<std::recursive_mutex> lock(reg.mutex);
    auto it = reg.dynamic.find(label);
    if (it != reg.dynamic.end())
        return it->second;
    // std::map keys are stable, so the Site can point at the key.
    it = reg.dynamic.emplace(label, nullptr).first;
    it->second = new Site(it->first.c_str()); // leaked with the registry
    return it->second;
}

namespace
{
thread_local Scope *currentScope = nullptr;
} // namespace

void
Scope::open(Site &site)
{
    site_ = &site;
    parent_ = currentScope;
    currentScope = this;
    startNs_ = wallclock::nowNs();
}

void
Scope::close()
{
    std::int64_t end = wallclock::nowNs();
    auto elapsed = static_cast<std::uint64_t>(
        end > startNs_ ? end - startNs_ : 0);
    std::uint64_t self =
        childNs_ < elapsed ? elapsed - childNs_ : 0;
    site_->addSample(elapsed, self);
    currentScope = parent_;
    if (parent_ != nullptr)
        parent_->childNs_ += elapsed;
}

std::vector<SiteSnapshot>
snapshot()
{
    std::vector<SiteSnapshot> out;
    Registry &reg = registry();
    std::lock_guard<std::recursive_mutex> lock(reg.mutex);
    out.reserve(reg.sites.size());
    for (const Site *site : reg.sites) {
        SiteSnapshot snap;
        snap.label = site->label();
        snap.calls = site->calls();
        snap.inclusiveNs = site->inclusiveNs();
        snap.exclusiveNs = site->exclusiveNs();
        snap.count = site->count();
        if (snap.calls == 0 && snap.count == 0)
            continue;
        out.push_back(std::move(snap));
    }
    std::sort(out.begin(), out.end(),
              [](const SiteSnapshot &a, const SiteSnapshot &b) {
                  if (a.exclusiveNs != b.exclusiveNs)
                      return a.exclusiveNs > b.exclusiveNs;
                  return a.label < b.label;
              });
    return out;
}

std::string
snapshotJson()
{
    std::vector<SiteSnapshot> sites = snapshot();
    std::string out = "{\"sites\":[";
    bool first = true;
    for (const SiteSnapshot &site : sites) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"label\":";
        appendJsonString(out, site.label);
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      ",\"calls\":%llu,\"inclusive_ns\":%llu,"
                      "\"exclusive_ns\":%llu,\"count\":%llu}",
                      static_cast<unsigned long long>(site.calls),
                      static_cast<unsigned long long>(site.inclusiveNs),
                      static_cast<unsigned long long>(site.exclusiveNs),
                      static_cast<unsigned long long>(site.count));
        out += buf;
    }
    out += "]}";
    return out;
}

bool
writeJson(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        return false;
    std::string json = snapshotJson();
    bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
              json.size();
    ok = std::fclose(file) == 0 && ok;
    return ok;
}

void
report()
{
    std::vector<SiteSnapshot> sites = snapshot();
    if (sites.empty())
        return;
    std::fprintf(stderr,
                 "\n[mmgpu-prof] %-38s %12s %14s %14s %12s\n", "site",
                 "calls", "excl ms", "incl ms", "count");
    for (const SiteSnapshot &site : sites) {
        std::fprintf(stderr,
                     "[mmgpu-prof] %-38s %12llu %14.3f %14.3f %12llu\n",
                     site.label.c_str(),
                     static_cast<unsigned long long>(site.calls),
                     static_cast<double>(site.exclusiveNs) / 1e6,
                     static_cast<double>(site.inclusiveNs) / 1e6,
                     static_cast<unsigned long long>(site.count));
    }
}

} // namespace mmgpu::prof
