#include "sim/gpu_config.hh"

#include <sstream>
#include <string>

#include "common/logging.hh"
#include "isa/instruction.hh"
#include "noc/topology_registry.hh"

namespace mmgpu::sim
{

const char *
bwSettingName(BwSetting bw)
{
    switch (bw) {
      case BwSetting::Bw1x:
        return "1x-BW";
      case BwSetting::Bw2x:
        return "2x-BW";
      case BwSetting::Bw4x:
        return "4x-BW";
      default:
        mmgpu_panic("bad BwSetting");
    }
}

double
bwSettingBytesPerCycle(BwSetting bw)
{
    // 1 GHz core clock: N GB/s == N bytes/cycle.
    switch (bw) {
      case BwSetting::Bw1x:
        return 128.0;
      case BwSetting::Bw2x:
        return 256.0;
      case BwSetting::Bw4x:
        return 512.0;
      default:
        mmgpu_panic("bad BwSetting");
    }
}

const char *
domainName(IntegrationDomain domain)
{
    return domain == IntegrationDomain::OnPackage ? "on-package"
                                                  : "on-board";
}

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::FirstTouchOwner:
        return "first-touch";
      case PlacementPolicy::Striped:
        return "striped";
      case PlacementPolicy::Locality:
        return "locality";
      default:
        mmgpu_panic("bad PlacementPolicy");
    }
}

IntegrationDomain
defaultDomainFor(BwSetting bw)
{
    return bw == BwSetting::Bw1x ? IntegrationDomain::OnBoard
                                 : IntegrationDomain::OnPackage;
}

Result<void>
GpuConfig::check() const
{
    auto bad = [this](const std::string &what) {
        return SimError::config("config '" + name + "': " + what);
    };

    if (gpmCount == 0 || smsPerGpm == 0 || warpSlotsPerSm == 0)
        return bad("zero-sized machine (gpmCount, smsPerGpm and"
                   " warpSlotsPerSm must all be > 0)");
    if (issueSlotsPerCycle <= 0.0)
        return bad("non-positive issue rate");
    if (clock.frequency() <= 0.0)
        return bad("non-positive core clock frequency");
    if (memory.gpmCount != gpmCount || memory.smsPerGpm != smsPerGpm)
        return bad("memory config disagrees with machine shape (set"
                   " memory.gpmCount/memory.smsPerGpm to match)");
    const noc::TopologyDesc &topo = noc::topologyDesc(topology);
    if (gpmCount > 1 && topology == noc::Topology::None)
        return bad("multi-GPM machine without interconnect (choose"
                   " one of: " +
                   noc::topologyNameList() + ")");
    if (gpmCount == 1 && topology != noc::Topology::None)
        return bad("single-GPM machine with an interconnect (drop the"
                   " topology or add GPMs)");
    if (topology != noc::Topology::None && gpmCount < topo.minGpms)
        return bad(std::string(topo.name) + " topology needs >= " +
                   std::to_string(topo.minGpms) + " GPMs");
    if (gpmCount > 1 && interGpmBytesPerCycle <= 0.0)
        return bad("zero inter-GPM link bandwidth: a multi-GPM"
                   " machine needs interGpmBytesPerCycle > 0");

    if (memory.l2BytesPerGpm == 0 || memory.l2Assoc == 0)
        return bad("inconsistent L2 slices: zero slice size or"
                   " associativity");
    if (memory.l2BytesPerGpm %
            (static_cast<Bytes>(memory.l2Assoc) * isa::cacheLineBytes)
        != 0)
        return bad("inconsistent L2 slices: slice size is not a"
                   " multiple of associativity x " +
                   std::to_string(isa::cacheLineBytes) +
                   "-byte lines");

    // Fault legality is topology geometry — the registry owns it.
    if (Result<void> r = topo.checkFaults(gpmCount, linkFaults);
        !r.ok())
        return bad(r.error().message);

    return Result<void>::success();
}

void
GpuConfig::validate() const
{
    Result<void> checked = check();
    if (!checked.ok())
        mmgpu_fatal(checked.error().message);
}

GpuConfig
baselineConfig()
{
    GpuConfig config;
    config.name = "1-GPM";
    config.gpmCount = 1;
    config.topology = noc::Topology::None;
    config.memory.gpmCount = 1;
    config.memory.smsPerGpm = config.smsPerGpm;
    return config;
}

GpuConfig
multiGpmConfig(unsigned gpm_count, BwSetting bw,
               noc::Topology topology, IntegrationDomain domain)
{
    if (gpm_count < 2)
        mmgpu_fatal("multiGpmConfig needs >= 2 GPMs, got ", gpm_count);

    GpuConfig config = baselineConfig();
    std::ostringstream name;
    name << gpm_count << "-GPM/" << bwSettingName(bw) << "/"
         << noc::topologyName(topology) << "/" << domainName(domain);
    config.name = name.str();
    config.gpmCount = gpm_count;
    config.topology = topology;
    config.domain = domain;
    config.interGpmBytesPerCycle = bwSettingBytesPerCycle(bw);
    config.memory.gpmCount = gpm_count;
    return config;
}

GpuConfig
monolithicConfig(unsigned scale)
{
    if (scale == 0)
        mmgpu_fatal("monolithicConfig with zero scale");

    GpuConfig config = baselineConfig();
    std::ostringstream name;
    name << scale << "x-monolithic";
    config.name = name.str();
    config.smsPerGpm = 16 * scale;
    config.memory.smsPerGpm = config.smsPerGpm;
    config.memory.l2BytesPerGpm = 2 * units::MiB * scale;
    config.memory.dramBytesPerCycle = 256.0 * scale;
    config.memory.nocBytesPerCycle = 1024.0 * scale;
    return config;
}

const std::vector<unsigned> &
tableThreeGpmCounts()
{
    static const std::vector<unsigned> counts = {2, 4, 8, 16, 32};
    return counts;
}

const std::vector<BwSetting> &
tableFourBwSettings()
{
    static const std::vector<BwSetting> settings = {
        BwSetting::Bw1x, BwSetting::Bw2x, BwSetting::Bw4x};
    return settings;
}

} // namespace mmgpu::sim
