#include "sim/gpu_config.hh"

#include <sstream>

#include "common/logging.hh"

namespace mmgpu::sim
{

const char *
bwSettingName(BwSetting bw)
{
    switch (bw) {
      case BwSetting::Bw1x:
        return "1x-BW";
      case BwSetting::Bw2x:
        return "2x-BW";
      case BwSetting::Bw4x:
        return "4x-BW";
      default:
        mmgpu_panic("bad BwSetting");
    }
}

double
bwSettingBytesPerCycle(BwSetting bw)
{
    // 1 GHz core clock: N GB/s == N bytes/cycle.
    switch (bw) {
      case BwSetting::Bw1x:
        return 128.0;
      case BwSetting::Bw2x:
        return 256.0;
      case BwSetting::Bw4x:
        return 512.0;
      default:
        mmgpu_panic("bad BwSetting");
    }
}

const char *
domainName(IntegrationDomain domain)
{
    return domain == IntegrationDomain::OnPackage ? "on-package"
                                                  : "on-board";
}

const char *
placementPolicyName(PlacementPolicy policy)
{
    return policy == PlacementPolicy::FirstTouchOwner
               ? "first-touch"
               : "striped";
}

IntegrationDomain
defaultDomainFor(BwSetting bw)
{
    return bw == BwSetting::Bw1x ? IntegrationDomain::OnBoard
                                 : IntegrationDomain::OnPackage;
}

void
GpuConfig::validate() const
{
    if (gpmCount == 0 || smsPerGpm == 0 || warpSlotsPerSm == 0)
        mmgpu_fatal("config '", name, "': zero-sized machine");
    if (issueSlotsPerCycle <= 0.0)
        mmgpu_fatal("config '", name, "': non-positive issue rate");
    if (memory.gpmCount != gpmCount || memory.smsPerGpm != smsPerGpm)
        mmgpu_fatal("config '", name,
                    "': memory config disagrees with machine shape");
    if (gpmCount > 1 && topology == noc::Topology::None)
        mmgpu_fatal("config '", name,
                    "': multi-GPM machine without interconnect");
    if (gpmCount == 1 && topology != noc::Topology::None)
        mmgpu_fatal("config '", name,
                    "': single-GPM machine with an interconnect");
}

GpuConfig
baselineConfig()
{
    GpuConfig config;
    config.name = "1-GPM";
    config.gpmCount = 1;
    config.topology = noc::Topology::None;
    config.memory.gpmCount = 1;
    config.memory.smsPerGpm = config.smsPerGpm;
    return config;
}

GpuConfig
multiGpmConfig(unsigned gpm_count, BwSetting bw,
               noc::Topology topology, IntegrationDomain domain)
{
    if (gpm_count < 2)
        mmgpu_fatal("multiGpmConfig needs >= 2 GPMs, got ", gpm_count);

    GpuConfig config = baselineConfig();
    std::ostringstream name;
    name << gpm_count << "-GPM/" << bwSettingName(bw) << "/"
         << noc::topologyName(topology) << "/" << domainName(domain);
    config.name = name.str();
    config.gpmCount = gpm_count;
    config.topology = topology;
    config.domain = domain;
    config.interGpmBytesPerCycle = bwSettingBytesPerCycle(bw);
    config.memory.gpmCount = gpm_count;
    return config;
}

GpuConfig
monolithicConfig(unsigned scale)
{
    if (scale == 0)
        mmgpu_fatal("monolithicConfig with zero scale");

    GpuConfig config = baselineConfig();
    std::ostringstream name;
    name << scale << "x-monolithic";
    config.name = name.str();
    config.smsPerGpm = 16 * scale;
    config.memory.smsPerGpm = config.smsPerGpm;
    config.memory.l2BytesPerGpm = 2 * units::MiB * scale;
    config.memory.dramBytesPerCycle = 256.0 * scale;
    config.memory.nocBytesPerCycle = 1024.0 * scale;
    return config;
}

const std::vector<unsigned> &
tableThreeGpmCounts()
{
    static const std::vector<unsigned> counts = {2, 4, 8, 16, 32};
    return counts;
}

const std::vector<BwSetting> &
tableFourBwSettings()
{
    static const std::vector<BwSetting> settings = {
        BwSetting::Bw1x, BwSetting::Bw2x, BwSetting::Bw4x};
    return settings;
}

} // namespace mmgpu::sim
