/**
 * @file
 * The event-driven multi-GPM GPU performance simulator.
 *
 * GpuSim assembles SMs, the memory resources, and the inter-GPM
 * network per a GpuConfig and replays a KernelProfile's warp traces
 * on it. The engine runs one global calendar carrying two event
 * kinds:
 *
 *  - warp continuations: a warp issues its next trace operation
 *    against its SM's issue bandwidth, blocks when its memory-level-
 *    parallelism window is full, and drains before retiring;
 *  - memory-pipeline stages: each global access advances through
 *    L1 miss -> intra-GPM NoC -> L2 -> (remote request hop(s) ->
 *    home DRAM -> response hop(s) | local DRAM) -> completion, one
 *    calendar event per stage.
 *
 * Staging matters: every bandwidth server (NoC, HBM channel, ring
 * link, switch port) is acquired at the calendar time the request
 * actually reaches it, so servers see arrivals in time order and
 * congestion (the paper's central mechanism — inter-GPM bandwidth
 * pressure idling GPMs) emerges without ordering artifacts.
 */

#ifndef MMGPU_SIM_GPU_SIM_HH
#define MMGPU_SIM_GPU_SIM_HH

#include <memory>
#include <optional>
#include <vector>

#include "sim/gpu_config.hh"
#include "sim/perf_result.hh"
#include "sm/cta_scheduler.hh"
#include "sm/sm_core.hh"
#include "telemetry/telemetry.hh"
#include "trace/kernel_profile.hh"
#include "trace/warp_trace.hh"

namespace mmgpu::sim
{

/** One simulated GPU instance. */
class GpuSim
{
  public:
    /** Build the machine described by @p config (validated). */
    explicit GpuSim(const GpuConfig &config);

    ~GpuSim();

    GpuSim(const GpuSim &) = delete;
    GpuSim &operator=(const GpuSim &) = delete;

    /**
     * Run @p profile (all of its launches) to completion.
     *
     * Every call rebuilds the machine (network, memory hierarchy,
     * SMs) and zeroes all accumulators before simulating, so a
     * GpuSim is reusable across workloads and across repeated runs
     * of the same workload: two consecutive run() calls with the
     * same profile produce identical PerfResults.
     *
     * @return the performance result.
     */
    PerfResult run(const trace::KernelProfile &profile);

    /** The configuration this machine was built from. */
    const GpuConfig &config() const { return config_; }

    /**
     * Mirror this engine's activity into @p telemetry on every
     * subsequent run() (nullptr detaches). The engine calls
     * Telemetry::beginRun()/finalizeRun() itself, registers its
     * counters/tracks after rebuilding the machine, and wires the
     * memory system and network in turn. The Telemetry object must
     * outlive the GpuSim (or be detached first). When detached —
     * the default — every hook compiles down to a branch-on-null.
     */
    void attachTelemetry(telemetry::Telemetry *telemetry);

  private:
    static constexpr std::uint32_t invalidIndex = 0xffffffffu;

    /** Why a warp is not schedulable right now. */
    enum class WarpBlock : std::uint8_t
    {
        None,    //!< runnable (an event is pending for it)
        Window,  //!< MLP window full; woken by a load completion
        Drain,   //!< waiting for all outstanding loads (final sync)
    };

    /** A resident warp context bound to an SM warp slot. */
    struct WarpSlot
    {
        std::unique_ptr<trace::WarpTrace> trace;
        unsigned sm = 0;          //!< flat SM id
        unsigned cta = 0;
        unsigned outstanding = 0; //!< loads in flight
        WarpBlock blocked = WarpBlock::None;
        std::optional<isa::TraceOp> replay;
        bool live = false;
    };

    /** Stage of an in-flight memory task. */
    enum class MemStage : std::uint8_t
    {
        L2Lookup,   //!< arrived at the local L2 slice
        ReqHop,     //!< request header travelling to the home GPM
        HomeDram,   //!< arrived at the home GPM's memory controller
        RespHop,    //!< data travelling back to the requester
        Complete,   //!< data available; notify the parent access
        WbHop,      //!< eviction writeback travelling to its home
        WbDram,     //!< eviction writeback at the home controller
    };

    /** One line-granular memory task moving through the pipeline. */
    struct MemTask
    {
        MemStage stage = MemStage::Complete;
        std::uint8_t mask = 0;     //!< sectors requested of this line
        bool store = false;
        unsigned node = 0;         //!< current network node
        unsigned homeGpm = 0;
        unsigned reqGpm = 0;
        std::uint64_t lineAddr = 0;
        std::uint32_t access = invalidIndex; //!< parent AccessRec
    };

    /** A warp-level access fanned out into per-line tasks. */
    struct AccessRec
    {
        std::uint32_t warpSlot = invalidIndex;
        std::uint32_t partsLeft = 0;
    };

    /** Calendar entry. */
    struct Event
    {
        noc::Tick when;
        std::uint32_t index; //!< warp slot or mem task index
        bool isMem;

        bool
        operator>(const Event &other) const
        {
            return when > other.when;
        }
    };

    // -- engine helpers --

    void pushWarp(noc::Tick when, std::uint32_t slot);
    void pushMem(noc::Tick when, std::uint32_t task);

    std::uint32_t allocTask();
    void freeTask(std::uint32_t index);
    std::uint32_t allocAccess();
    void freeAccess(std::uint32_t index);

    /** Run one kernel launch starting at @p start; returns end time. */
    noc::Tick runLaunch(const trace::KernelProfile &profile,
                        const trace::SegmentLayout &layout,
                        unsigned launch, noc::Tick start);

    /** Dispatch CTAs to @p sm while it has room; pushes warp events. */
    void fillSm(const trace::KernelProfile &profile,
                const trace::SegmentLayout &layout, unsigned launch,
                unsigned sm, noc::Tick t);

    /** Process one warp continuation. */
    void stepWarp(const trace::KernelProfile &profile,
                  std::uint32_t slot_index, noc::Tick t);

    /** Process one memory-pipeline stage. */
    void stepMem(std::uint32_t task_index, noc::Tick t);

    /** Begin a warp-level global access (fans out line tasks). */
    void startGlobalAccess(noc::Tick t, std::uint32_t warp_slot,
                           unsigned sm, unsigned gpm,
                           std::uint64_t addr, unsigned sector_count,
                           bool is_store);

    /** Schedule an eviction writeback toward its home GPM. */
    void startWriteback(noc::Tick t, unsigned gpm,
                        std::uint64_t line_addr, std::uint8_t dirty);

    /** A load part finished; notify its access and maybe its warp. */
    void completePart(std::uint32_t access_index, noc::Tick t);

    /** Register counters/tracks for this run's fresh machine. */
    void setupTelemetry();

    /** Null all cached telemetry handles (detached state). */
    void clearTelemetryHooks();

    /** Record @p amount txns of @p level at time @p t (hook). */
    void
    noteTxn(noc::Tick t, isa::TxnLevel level, double amount)
    {
        if (txnSampler_)
            txnSampler_->addAt(t, static_cast<std::size_t>(level),
                               amount);
    }

    /** Record one warp instruction of @p op at time @p t (hook). */
    void
    noteInstr(noc::Tick t, isa::Opcode op, double amount = 1.0)
    {
        if (instrSampler_)
            instrSampler_->addAt(t, static_cast<std::size_t>(op),
                                 amount);
    }

    GpuConfig config_;
    std::unique_ptr<noc::InterGpmNetwork> network;
    std::unique_ptr<mem::MemSystem> memory;
    std::vector<sm::SmCore> sms;

    // Pools.
    std::vector<MemTask> taskPool;
    std::vector<std::uint32_t> freeTasks;
    std::vector<AccessRec> accessPool;
    std::vector<std::uint32_t> freeAccesses;

    // Per-launch transient state. The containers themselves persist
    // across launches and runs so their backing storage (and the
    // WarpTrace objects inside the slots) is allocated once and
    // reused; runLaunch() re-initializes the *contents* each launch.
    std::vector<WarpSlot> slots;
    std::vector<std::vector<unsigned>> freeSlotsPerSm;
    /**
     * The event calendar: a binary min-heap (std::push_heap /
     * std::pop_heap over Event::operator>) on an explicit vector
     * instead of std::priority_queue. The heap operations are the
     * exact ones priority_queue is specified to perform, so event
     * ordering is bit-identical; owning the vector lets run() keep
     * the backing capacity across launches instead of reallocating
     * it from scratch every time.
     */
    std::vector<Event> calendar;
    std::vector<sm::GpmCtaQueue> ctaQueues;
    std::vector<unsigned> ctaWarpsLeft;

    /** Launch-scoped context for CTA backfill from stepWarp(). */
    const trace::SegmentLayout *launchLayout = nullptr;
    unsigned launchIndex = 0;

    // Accumulated across launches.
    std::array<Count, isa::numOpcodes> instrs_{};
    mem::MemCounters memCounters;
    double busyAccum = 0.0;
    double stallAccum = 0.0;
    double occupiedAccum = 0.0;
    noc::Tick endOfRun = 0.0;

    // Telemetry. telemetry_ is the attached sink (nullable); the
    // rest are cached handles refreshed by setupTelemetry() each
    // run, null while detached so hooks are branch-on-null.
    telemetry::Telemetry *telemetry_ = nullptr;
    telemetry::Counter *ctrEventsWarp_ = nullptr;
    telemetry::Counter *ctrEventsMem_ = nullptr;
    telemetry::Counter *ctrBlockWindow_ = nullptr;
    telemetry::Counter *ctrBlockDrain_ = nullptr;
    telemetry::Counter *ctrWarpWakes_ = nullptr;
    telemetry::ActivitySampler *instrSampler_ = nullptr;
    telemetry::ActivitySampler *txnSampler_ = nullptr;
    std::vector<telemetry::TimelineTrack *> smActiveTracks_;
};

} // namespace mmgpu::sim

#endif // MMGPU_SIM_GPU_SIM_HH
