/**
 * @file
 * The event-driven multi-GPM GPU performance simulator.
 *
 * GpuSim is a thin façade over the engine layer: it builds the
 * machine — SMs, memory resources, inter-GPM network, the
 * engine::Calendar, an engine::WarpEngine and engine::MemPipeline —
 * once in its constructor, and run() replays a KernelProfile on it.
 * The warp engine issues trace operations against SM issue
 * bandwidth and enforces the memory-level-parallelism window; the
 * memory pipeline advances each global access through its staged
 * path (L1 miss -> intra-GPM NoC -> L2 -> remote hops/DRAM ->
 * completion), one calendar event per stage. See the engine headers
 * for the machinery; this class only assembles, resets, and reports.
 *
 * Machines are build-once/reset-per-run: every part with run-scoped
 * state follows the engine::Component protocol and is zeroed through
 * one ComponentRegistry before each run, so repeated (and
 * interleaved) runs on one GpuSim are bit-identical to runs on
 * freshly constructed machines — which is what lets the harness pool
 * and reuse machines across sweep points.
 */

#ifndef MMGPU_SIM_GPU_SIM_HH
#define MMGPU_SIM_GPU_SIM_HH

#include <memory>
#include <vector>

#include "engine/calendar.hh"
#include "engine/component.hh"
#include "engine/mem_pipeline.hh"
#include "engine/placement/placement.hh"
#include "engine/warp_engine.hh"
#include "sim/gpu_config.hh"
#include "sim/perf_result.hh"
#include "sm/sm_core.hh"
#include "telemetry/telemetry.hh"
#include "trace/kernel_profile.hh"

namespace mmgpu::sim
{

/** One simulated GPU instance. */
class GpuSim
{
  public:
    /**
     * Build the machine described by @p config (validated): the
     * network, memory hierarchy, SM cores, and both engines are
     * constructed here, once, and live for the GpuSim's lifetime.
     */
    explicit GpuSim(const GpuConfig &config);

    ~GpuSim();

    GpuSim(const GpuSim &) = delete;
    GpuSim &operator=(const GpuSim &) = delete;

    /**
     * Run @p profile (all of its launches) to completion.
     *
     * The machine is never rebuilt: every component is reset to its
     * as-constructed state (structural allocations survive), so a
     * GpuSim is reusable across workloads and across repeated runs
     * of the same workload, and any sequence of run() calls yields
     * the same PerfResult a freshly constructed machine would. With
     * MMGPU_CONTRACTS=2 the per-component drain audits additionally
     * verify the machine is quiescent both at end of run and before
     * each reuse.
     *
     * @return the performance result.
     */
    PerfResult run(const trace::KernelProfile &profile);

    /** The configuration this machine was built from. */
    const GpuConfig &config() const { return config_; }

    /**
     * Mirror this engine's activity into @p telemetry on every
     * subsequent run() (nullptr detaches). The engine calls
     * Telemetry::beginRun()/finalizeRun() itself and re-resolves
     * every counter/track handle per run, so the same machine can
     * alternate between attached and detached runs. The Telemetry
     * object must outlive the GpuSim (or be detached first). When
     * detached — the default — every hook compiles down to a
     * branch-on-null.
     */
    void attachTelemetry(telemetry::Telemetry *telemetry);

  private:
    /** Run one kernel launch starting at @p start; returns end time. */
    noc::Tick runLaunch(const trace::KernelProfile &profile,
                        const trace::SegmentLayout &layout,
                        unsigned launch, noc::Tick start);

    /** Home every page up front per the placement policy. */
    void prePlacePages(const trace::KernelProfile &profile,
                       const trace::SegmentLayout &layout);

    /** Register counters/tracks for this run on the machine. */
    void setupTelemetry();

    /** Null every telemetry handle and sink (detached state). */
    void clearTelemetryHooks();

    GpuConfig config_;

    // The machine, built once.
    engine::Calendar calendar_;
    std::unique_ptr<noc::InterGpmNetwork> network_;
    std::unique_ptr<mem::MemSystem> memory_;
    std::vector<sm::SmCore> sms_;
    std::unique_ptr<engine::PlacementStrategy> placement_;
    std::unique_ptr<engine::MemPipeline> memPipeline_;
    std::unique_ptr<engine::WarpEngine> warpEngine_;
    engine::ComponentRegistry registry_;

    // Accumulated across launches; zeroed per run.
    double busyAccum_ = 0.0;
    double stallAccum_ = 0.0;
    double occupiedAccum_ = 0.0;
    noc::Tick endOfRun_ = 0.0;

    // Telemetry. telemetry_ is the attached sink (nullable); the
    // handles are refreshed per run. The event counters point at a
    // per-machine discard sink while detached so the event loop adds
    // unconditionally — runLaunch() pops tens of millions of events
    // per run and a branch per pop is measurable.
    telemetry::Telemetry *telemetry_ = nullptr;
    telemetry::Counter nullCounter_;
    telemetry::Counter *ctrEventsWarp_ = &nullCounter_;
    telemetry::Counter *ctrEventsMem_ = &nullCounter_;
    std::vector<telemetry::TimelineTrack *> smActiveTracks_;
};

} // namespace mmgpu::sim

#endif // MMGPU_SIM_GPU_SIM_HH
