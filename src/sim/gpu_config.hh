/**
 * @file
 * Whole-GPU configuration (paper Tables III and IV).
 *
 * The basic GPU module mirrors the paper's simulated 1-GPM building
 * block: 16 SMs with 32 KB L1s, a 2 MB module-side L2, and one HBM
 * stack at 256 GB/s. Multi-module configurations replicate the GPM
 * 2-32x and attach an inter-GPM network whose per-GPM bandwidth is
 * set relative to local DRAM bandwidth (1x-BW = 1:2, 2x-BW = 1:1,
 * 4x-BW = 2:1).
 */

#ifndef MMGPU_SIM_GPU_CONFIG_HH
#define MMGPU_SIM_GPU_CONFIG_HH

#include <string>
#include <vector>

#include "common/result.hh"
#include "common/units.hh"
#include "fault/fault_plan.hh"
#include "mem/mem_system.hh"
#include "noc/interconnect.hh"
#include "sm/cta_scheduler.hh"

namespace mmgpu::sim
{

/** Table IV inter-GPM bandwidth settings. */
enum class BwSetting : std::uint8_t
{
    Bw1x,  //!< 128 GB/s per GPM, inter-GPM:DRAM = 1:2 (on-board)
    Bw2x,  //!< 256 GB/s per GPM, 1:1 (on-package)
    Bw4x,  //!< 512 GB/s per GPM, 2:1 (on-package, next-gen signaling)
};

/** @return "1x-BW" etc. */
const char *bwSettingName(BwSetting bw);

/** @return per-GPM inter-GPM bandwidth in bytes/cycle at 1 GHz. */
double bwSettingBytesPerCycle(BwSetting bw);

/** Physical integration domain (determines link energy + constant
 *  energy amortization in the energy model). */
enum class IntegrationDomain : std::uint8_t
{
    OnPackage,  //!< 0.54 pJ/bit links, shared platform overheads
    OnBoard,    //!< 10 pJ/bit links, per-GPM platform overheads
};

/** @return "on-package" / "on-board". */
const char *domainName(IntegrationDomain domain);

/**
 * Page-placement policy. FirstTouchOwner is the paper's baseline
 * (first touch under distributed CTA scheduling, which homes each
 * page on the GPM owning its byte range); Striped round-robins pages
 * across GPMs — locality-oblivious, used by the ablation study of
 * the paper's §V-E locality discussion. Locality mines the kernel
 * profile's access patterns for a per-page traffic matrix and homes
 * each page on the GPM with the largest estimated weight (see
 * engine::PlacementStrategy).
 */
enum class PlacementPolicy : std::uint8_t
{
    FirstTouchOwner,
    Striped,
    Locality,
};

/** @return human-readable placement-policy name. */
const char *placementPolicyName(PlacementPolicy policy);

/** Complete machine description for one simulation. */
struct GpuConfig
{
    std::string name = "1-GPM";

    unsigned gpmCount = 1;
    unsigned smsPerGpm = 16;
    unsigned warpSlotsPerSm = 32;
    double issueSlotsPerCycle = 2.0;

    /** Memory hierarchy parameters (gpmCount/smsPerGpm mirrored in). */
    mem::MemConfig memory;

    noc::Topology topology = noc::Topology::None;
    IntegrationDomain domain = IntegrationDomain::OnPackage;

    /** NUMA policy knobs (paper baselines; ablations override). */
    PlacementPolicy placement = PlacementPolicy::FirstTouchOwner;
    sm::CtaSchedPolicy ctaScheduling = sm::CtaSchedPolicy::Distributed;

    /** Per-GPM inter-GPM I/O bandwidth, bytes/cycle per direction. */
    double interGpmBytesPerCycle = 256.0;

    Cycles hopLatency = 40;
    Cycles switchLatency = 60;

    /** Idle gap between consecutive kernel launches (driver/launch
     *  overhead), charged only against constant power. */
    Cycles launchOverhead = 2000;

    /** Core clock. All configurations run at 1 GHz. */
    ClockDomain clock{1.0e9};

    /**
     * Degraded or failed inter-GPM links for fault studies. Empty in
     * every healthy configuration (and excluded from run
     * fingerprints when empty, so healthy caches are unaffected).
     */
    fault::LinkFaultSpec linkFaults;

    /** Total SMs across the GPU. */
    unsigned totalSms() const { return gpmCount * smsPerGpm; }

    /**
     * Consistency checks. Reports the first problem found with an
     * actionable message; library code that must not abort calls
     * this instead of validate().
     */
    Result<void> check() const;

    /** Consistency checks; fatal() on user error. */
    void validate() const;
};

/** The paper's basic 1-GPM building block (Table III column 1). */
GpuConfig baselineConfig();

/**
 * A Table III multi-module configuration.
 *
 * @param gpm_count 2..32 GPMs.
 * @param bw Table IV bandwidth setting.
 * @param topology Ring (default in the paper) or Switch.
 * @param domain Integration domain; the paper pairs 1x-BW with
 *        on-board and 2x/4x-BW with on-package, but the pairing is
 *        overridable for the point studies.
 */
GpuConfig multiGpmConfig(unsigned gpm_count, BwSetting bw,
                         noc::Topology topology = noc::Topology::Ring,
                         IntegrationDomain domain =
                             IntegrationDomain::OnPackage);

/** Table IV's default domain pairing for a bandwidth setting. */
IntegrationDomain defaultDomainFor(BwSetting bw);

/**
 * A hypothetical monolithic GPU with @p scale times the baseline
 * resources on one die (used for the Figure 7 monolithic-scaling
 * comparison): scale x SMs, scale x L2, scale x DRAM bandwidth, no
 * inter-GPM network.
 */
GpuConfig monolithicConfig(unsigned scale);

/** All Table III GPM counts: {2, 4, 8, 16, 32}. */
const std::vector<unsigned> &tableThreeGpmCounts();

/** All Table IV bandwidth settings. */
const std::vector<BwSetting> &tableFourBwSettings();

} // namespace mmgpu::sim

#endif // MMGPU_SIM_GPU_CONFIG_HH
