#include "sim/gpu_sim.hh"

#include <algorithm>
#include <bit>
#include <string>

#include "common/contract.hh"
#include "common/logging.hh"

namespace mmgpu::sim
{

namespace
{

/** Bytes of a read-request header on the inter-GPM network. */
constexpr double requestHeaderBytes = 8.0;

} // namespace

GpuSim::GpuSim(const GpuConfig &config) : config_(config)
{
    config_.validate();
}

GpuSim::~GpuSim() = default;

void
GpuSim::attachTelemetry(telemetry::Telemetry *telemetry)
{
    telemetry_ = telemetry;
    // Handles are (re)resolved per run; drop stale ones now so a
    // detach cannot leave dangling hook pointers behind.
    clearTelemetryHooks();
}

void
GpuSim::clearTelemetryHooks()
{
    ctrEventsWarp_ = nullptr;
    ctrEventsMem_ = nullptr;
    ctrBlockWindow_ = nullptr;
    ctrBlockDrain_ = nullptr;
    ctrWarpWakes_ = nullptr;
    instrSampler_ = nullptr;
    txnSampler_ = nullptr;
    smActiveTracks_.clear();
}

void
GpuSim::setupTelemetry()
{
    telemetry::Telemetry &tel = *telemetry_;
    tel.beginRun();
    clearTelemetryHooks();

    telemetry::CounterRegistry &reg = tel.counters();
    ctrEventsWarp_ = &reg.counter("sim/events_warp");
    ctrEventsMem_ = &reg.counter("sim/events_mem");
    ctrBlockWindow_ = &reg.counter("warp/block_mlp_window");
    ctrBlockDrain_ = &reg.counter("warp/block_drain");
    ctrWarpWakes_ = &reg.counter("warp/wakes");

    memory->attachTelemetry(tel);

    telemetry::Timeline *timeline = tel.timeline();
    if (timeline == nullptr)
        return;
    instrSampler_ = &tel.activity("instr", isa::numOpcodes);
    txnSampler_ = &tel.activity("txn", isa::numTxnLevels);

    using Kind = telemetry::TimelineTrack::Kind;
    double sms_per_gpm = static_cast<double>(config_.smsPerGpm);
    for (unsigned g = 0; g < config_.gpmCount; ++g) {
        std::string prefix = "gpm" + std::to_string(g);
        telemetry::TimelineTrack &busy = timeline->track(
            prefix + "/sm_busy", Kind::Busy, sms_per_gpm);
        smActiveTracks_.push_back(&timeline->track(
            prefix + "/sm_active", Kind::Busy, sms_per_gpm));
        for (unsigned s = 0; s < config_.smsPerGpm; ++s)
            sms[g * config_.smsPerGpm + s].attachTelemetry(&busy);
    }
    if (network)
        network->attachTelemetry(*timeline);
}

void
GpuSim::pushWarp(noc::Tick when, std::uint32_t slot)
{
    calendar.push_back({when, slot, false});
    std::push_heap(calendar.begin(), calendar.end(), std::greater<>{});
}

void
GpuSim::pushMem(noc::Tick when, std::uint32_t task)
{
    calendar.push_back({when, task, true});
    std::push_heap(calendar.begin(), calendar.end(), std::greater<>{});
}

std::uint32_t
GpuSim::allocTask()
{
    if (freeTasks.empty()) {
        taskPool.emplace_back();
        return static_cast<std::uint32_t>(taskPool.size() - 1);
    }
    std::uint32_t index = freeTasks.back();
    freeTasks.pop_back();
    return index;
}

void
GpuSim::freeTask(std::uint32_t index)
{
    freeTasks.push_back(index);
}

std::uint32_t
GpuSim::allocAccess()
{
    if (freeAccesses.empty()) {
        accessPool.emplace_back();
        return static_cast<std::uint32_t>(accessPool.size() - 1);
    }
    std::uint32_t index = freeAccesses.back();
    freeAccesses.pop_back();
    return index;
}

void
GpuSim::freeAccess(std::uint32_t index)
{
    freeAccesses.push_back(index);
}

PerfResult
GpuSim::run(const trace::KernelProfile &profile)
{
    profile.validate();
    mmgpu_assert(calendar.empty(),
                 "stale calendar events at run() entry");

    // Fresh machine state per run so GpuSim is reusable.
    network = noc::makeNetwork(config_.topology, config_.gpmCount,
                               config_.interGpmBytesPerCycle,
                               config_.hopLatency,
                               config_.switchLatency,
                               config_.linkFaults);
    memory = std::make_unique<mem::MemSystem>(config_.memory,
                                              network.get());
    sms.clear();
    for (unsigned s = 0; s < config_.totalSms(); ++s)
        sms.emplace_back(s, s / config_.smsPerGpm,
                         config_.warpSlotsPerSm,
                         config_.issueSlotsPerCycle);

    taskPool.clear();
    freeTasks.clear();
    accessPool.clear();
    freeAccesses.clear();
    instrs_.fill(0);
    memCounters.reset();
    busyAccum = 0.0;
    stallAccum = 0.0;
    occupiedAccum = 0.0;
    endOfRun = 0.0;

    if (telemetry_)
        setupTelemetry();
    else
        clearTelemetryHooks();

    trace::SegmentLayout layout(profile);

    // Page placement. FirstTouchOwner is idealized first touch:
    // every page is homed on the GPM of the CTA owning its byte
    // range (that CTA is the page's first toucher under distributed
    // CTA scheduling; doing it up front avoids simulation-order
    // races with halo accesses). Striped round-robins pages across
    // GPMs regardless of who uses them.
    {
        auto lists = sm::assignCtas(profile.ctaCount, config_.gpmCount,
                                    config_.ctaScheduling);
        std::vector<unsigned> cta_to_gpm(profile.ctaCount);
        for (unsigned g = 0; g < lists.size(); ++g)
            for (unsigned c : lists[g])
                cta_to_gpm[c] = g;
        std::uint64_t page_index = 0;
        for (unsigned s = 0; s < profile.segments.size(); ++s) {
            std::uint64_t base = layout.base(s);
            Bytes size = layout.size(s);
            for (std::uint64_t page = base; page < base + size;
                 page += mem::PageTable::pageBytes, ++page_index) {
                unsigned home;
                if (config_.placement ==
                    PlacementPolicy::FirstTouchOwner) {
                    unsigned cta = trace::chunkOwnerCta(profile, layout,
                                                        s, page);
                    home = cta_to_gpm[cta];
                } else {
                    home = static_cast<unsigned>(page_index %
                                                 config_.gpmCount);
                }
                memory->prePlace(page, home);
            }
        }
    }

    noc::Tick start = 0.0;
    for (unsigned launch = 0; launch < profile.launches; ++launch) {
        noc::Tick end = runLaunch(profile, layout, launch, start);
        end = memory->kernelBoundary(end, memCounters);
        endOfRun = end;
        start = end + static_cast<double>(config_.launchOverhead);

        // Fold per-launch SM accounting, then reset issue windows.
        for (auto &core : sms) {
            busyAccum += core.busyCycles();
            stallAccum += core.stallCycles();
            occupiedAccum += core.occupiedCycles();
            if (!smActiveTracks_.empty() && core.everActive()) {
                smActiveTracks_[core.gpm()]->addSpan(
                    core.firstActiveAt(), core.lastActiveAt());
            }
            core.reset();
        }
    }
    // Launch gaps between kernels count toward wall-clock time.
    if (profile.launches > 1) {
        endOfRun += static_cast<double>(config_.launchOverhead)
                    * (profile.launches - 1);
    }

    // End-of-run conservation audits (MMGPU_CONTRACTS=2). The
    // calendar is drained and kernelBoundary() has flushed the
    // caches, so the machine is quiescent: every in-flight quantity
    // must be back at zero and the NoC books must balance.
    if constexpr (contract::auditsEnabled) {
        if (network) {
            std::string verdict = network->auditConservation();
            MMGPU_INVARIANT(verdict.empty(), verdict);
        }
        MMGPU_INVARIANT(freeTasks.size() == taskPool.size(),
                        "leaked memory tasks: ",
                        taskPool.size() - freeTasks.size(),
                        " of ", taskPool.size(), " still in flight");
        MMGPU_INVARIANT(freeAccesses.size() == accessPool.size(),
                        "leaked access records: ",
                        accessPool.size() - freeAccesses.size(),
                        " of ", accessPool.size(),
                        " still outstanding");
        for (const WarpSlot &slot : slots) {
            MMGPU_INVARIANT(!slot.live,
                            "warp slot live after calendar drain");
            MMGPU_INVARIANT(slot.outstanding == 0,
                            "warp slot retains ", slot.outstanding,
                            " outstanding accesses at end of run");
        }
        for (unsigned left : ctaWarpsLeft)
            MMGPU_INVARIANT(left == 0, "undrained CTA at end of run");
    }

    PerfResult result;
    result.configName = config_.name;
    result.workloadName = profile.name;
    result.execCycles = endOfRun;
    result.execSeconds = endOfRun / config_.clock.frequency();
    result.instrs = instrs_;
    result.mem = memCounters;
    if (network) {
        result.link = network->traffic();
        result.linkQueueing = network->totalQueueing();
        result.linkBusy = network->totalBusy();
    }
    result.smBusyCycles = busyAccum;
    result.smStallCycles = stallAccum;
    result.smOccupiedCycles = occupiedAccum;
    result.l1Accesses = memory->l1Accesses();
    result.l1SectorHits = memory->l1SectorHits();
    result.l2Accesses = memory->l2Accesses();
    result.l2SectorHits = memory->l2SectorHits();
    result.dramQueueing = memory->dramQueueing();
    result.dramBusy = memory->dramBusy();

    if (telemetry_) {
        telemetry::CounterRegistry &reg = telemetry_->counters();
        reg.gauge("sim/end_cycles").set(endOfRun);
        reg.gauge("sim/ipc").set(result.ipc());
        reg.gauge("sim/sm_busy_cycles").set(busyAccum);
        reg.gauge("sim/sm_stall_cycles").set(stallAccum);
        reg.gauge("sim/sm_occupied_cycles").set(occupiedAccum);
        if (!config_.linkFaults.empty()) {
            reg.counter("fault/link_reroutes")
                .add(result.link.rerouted);
            reg.gauge("fault/degraded_links")
                .set(static_cast<double>(
                    config_.linkFaults.faults.size()));
        }

        telemetry::RunInfo info;
        info.configName = config_.name;
        info.workloadName = profile.name;
        info.gpmCount = config_.gpmCount;
        info.clockHz = config_.clock.frequency();
        info.endCycles = endOfRun;
        telemetry_->finalizeRun(info);
    }
    return result;
}

void
GpuSim::fillSm(const trace::KernelProfile &profile,
               const trace::SegmentLayout &layout, unsigned launch,
               unsigned sm_id, noc::Tick t)
{
    sm::SmCore &core = sms[sm_id];
    unsigned gpm = core.gpm();
    while (core.freeSlots() >= profile.warpsPerCta &&
           ctaQueues[gpm].hasWork()) {
        unsigned cta = ctaQueues[gpm].pop();
        core.reserveSlots(profile.warpsPerCta);
        ctaWarpsLeft[cta] = profile.warpsPerCta;
        for (unsigned w = 0; w < profile.warpsPerCta; ++w) {
            mmgpu_assert(!freeSlotsPerSm[sm_id].empty(),
                         "free-slot list disagrees with SmCore");
            unsigned slot_id = freeSlotsPerSm[sm_id].back();
            freeSlotsPerSm[sm_id].pop_back();
            WarpSlot &slot = slots[slot_id];
            if (slot.trace)
                slot.trace->reset(profile, layout, launch, cta, w);
            else
                slot.trace = std::make_unique<trace::WarpTrace>(
                    profile, layout, launch, cta, w);
            slot.sm = sm_id;
            slot.cta = cta;
            slot.outstanding = 0;
            slot.blocked = WarpBlock::None;
            slot.replay.reset();
            slot.live = true;
            pushWarp(t, slot_id);
        }
    }
}

void
GpuSim::startWriteback(noc::Tick t, unsigned gpm,
                       std::uint64_t line_addr, std::uint8_t dirty)
{
    unsigned sectors = std::popcount(dirty);
    if (sectors == 0)
        return;
    memCounters.txns[static_cast<std::size_t>(
        isa::TxnLevel::DramToL2)] += sectors;
    memCounters.writebackSectors += sectors;
    noteTxn(t, isa::TxnLevel::DramToL2, sectors);

    unsigned home = memory->pageTouch(line_addr, gpm);
    if (home == gpm || network == nullptr) {
        memCounters.localSectors += sectors;
        memory->dramAcquire(
            home, t,
            sectors * static_cast<double>(isa::sectorBytes));
        return;
    }

    memCounters.remoteSectors += sectors;
    network->noteTransfer(sectors *
                          static_cast<double>(isa::sectorBytes));
    std::uint32_t task_index = allocTask();
    MemTask &task = taskPool[task_index];
    task.stage = MemStage::WbHop;
    task.mask = dirty;
    task.store = true;
    task.node = gpm;
    task.homeGpm = home;
    task.reqGpm = gpm;
    task.lineAddr = line_addr;
    task.access = invalidIndex;
    pushMem(t, task_index);
}

void
GpuSim::startGlobalAccess(noc::Tick t, std::uint32_t warp_slot,
                          unsigned sm, unsigned gpm,
                          std::uint64_t addr, unsigned sector_count,
                          bool is_store)
{
    mmgpu_assert(sector_count >= 1 && sector_count <= 8,
                 "bad sector count ", sector_count);
    mmgpu_assert(addr % isa::sectorBytes == 0, "unaligned address");

    if (!is_store) {
        memCounters.txns[static_cast<std::size_t>(
            isa::TxnLevel::L1ToReg)] += 1;
        noteTxn(t, isa::TxnLevel::L1ToReg, 1.0);
    }

    std::uint32_t access_index = invalidIndex;
    if (!is_store && warp_slot != invalidIndex) {
        access_index = allocAccess();
        accessPool[access_index] = {warp_slot, 0};
        slots[warp_slot].outstanding += 1;
    }

    // Walk the touched lines.
    std::uint64_t first_sector = addr / isa::sectorBytes;
    std::uint64_t end_sector = first_sector + sector_count;
    while (first_sector < end_sector) {
        std::uint64_t line_addr = first_sector /
                                  mem::sectorsPerLine *
                                  isa::cacheLineBytes;
        unsigned lane0 =
            static_cast<unsigned>(first_sector % mem::sectorsPerLine);
        unsigned in_line = static_cast<unsigned>(std::min<std::uint64_t>(
            mem::sectorsPerLine - lane0, end_sector - first_sector));
        auto mask = static_cast<mem::SectorMask>(
            ((1u << in_line) - 1u) << lane0);
        first_sector += in_line;

        if (is_store) {
            // Write-through L1 (no allocate): the data crosses the
            // L1<->L2 wires toward the local L2.
            unsigned n = std::popcount(mask);
            double bytes = n * static_cast<double>(isa::sectorBytes);
            memory->nocAcquire(gpm, t, bytes);
            memCounters.txns[static_cast<std::size_t>(
                isa::TxnLevel::L2ToL1)] += n;
            noteTxn(t, isa::TxnLevel::L2ToL1, n);

            std::uint32_t task_index = allocTask();
            MemTask &task = taskPool[task_index];
            task.stage = MemStage::L2Lookup;
            task.mask = mask;
            task.store = true;
            task.node = gpm;
            task.reqGpm = gpm;
            task.lineAddr = line_addr;
            task.access = invalidIndex;
            pushMem(t + static_cast<double>(config_.memory.nocLatency),
                    task_index);
            continue;
        }

        mem::CacheAccessResult l1r =
            memory->l1Access(sm, line_addr, mask, false);
        mmgpu_assert(l1r.writebackMask == 0, "dirty L1 eviction");

        if (access_index != invalidIndex)
            accessPool[access_index].partsLeft += 1;

        if (l1r.missMask == 0) {
            // L1 hit: complete after the L1 latency.
            std::uint32_t task_index = allocTask();
            MemTask &task = taskPool[task_index];
            task.stage = MemStage::Complete;
            task.access = access_index;
            pushMem(t + static_cast<double>(config_.memory.l1Latency),
                    task_index);
            continue;
        }

        unsigned miss = std::popcount(l1r.missMask);
        memCounters.l1SectorMisses += miss;
        memCounters.txns[static_cast<std::size_t>(
            isa::TxnLevel::L2ToL1)] += miss;
        noteTxn(t, isa::TxnLevel::L2ToL1, miss);
        double bytes = miss * static_cast<double>(isa::sectorBytes);
        memory->nocAcquire(gpm, t, bytes);

        std::uint32_t task_index = allocTask();
        MemTask &task = taskPool[task_index];
        task.stage = MemStage::L2Lookup;
        task.mask = l1r.missMask;
        task.store = false;
        task.node = gpm;
        task.reqGpm = gpm;
        task.lineAddr = line_addr;
        task.access = access_index;
        pushMem(t + static_cast<double>(config_.memory.nocLatency),
                task_index);
    }
}

void
GpuSim::completePart(std::uint32_t access_index, noc::Tick t)
{
    if (access_index == invalidIndex)
        return;
    AccessRec &access = accessPool[access_index];
    mmgpu_assert(access.partsLeft > 0, "access part underflow");
    if (--access.partsLeft > 0)
        return;

    std::uint32_t warp_slot = access.warpSlot;
    freeAccess(access_index);
    if (warp_slot == invalidIndex)
        return;

    WarpSlot &slot = slots[warp_slot];
    mmgpu_assert(slot.outstanding > 0, "warp outstanding underflow");
    slot.outstanding -= 1;

    if (slot.blocked == WarpBlock::Window) {
        slot.blocked = WarpBlock::None;
        if (ctrWarpWakes_)
            ctrWarpWakes_->add();
        pushWarp(t, warp_slot);
    } else if (slot.blocked == WarpBlock::Drain &&
               slot.outstanding == 0) {
        slot.blocked = WarpBlock::None;
        if (ctrWarpWakes_)
            ctrWarpWakes_->add();
        pushWarp(t, warp_slot);
    }
}

void
GpuSim::stepMem(std::uint32_t task_index, noc::Tick t)
{
    MemTask &task = taskPool[task_index];
    const mem::MemConfig &mc = config_.memory;

    switch (task.stage) {
      case MemStage::L2Lookup: {
        mem::CacheAccessResult l2r = memory->l2Access(
            task.reqGpm, task.lineAddr, task.mask, task.store);
        if (l2r.writebackMask)
            startWriteback(t, task.reqGpm, l2r.writebackAddr,
                           l2r.writebackMask);

        if (task.store) {
            // Write-allocate without fetch (full-sector writes):
            // the store is complete once it lands in the L2.
            freeTask(task_index);
            return;
        }

        if (l2r.missMask == 0) {
            task.stage = MemStage::Complete;
            pushMem(t + static_cast<double>(mc.l2Latency), task_index);
            return;
        }

        // Fetch missed sectors from the home DRAM.
        unsigned miss = std::popcount(l2r.missMask);
        task.mask = l2r.missMask;
        memCounters.l2SectorMisses += miss;
        memCounters.txns[static_cast<std::size_t>(
            isa::TxnLevel::DramToL2)] += miss;
        noteTxn(t, isa::TxnLevel::DramToL2, miss);

        task.homeGpm = memory->pageTouch(task.lineAddr, task.reqGpm);
        if (task.homeGpm == task.reqGpm || network == nullptr) {
            memCounters.localSectors += miss;
            noc::Tick served = memory->dramAcquire(
                task.homeGpm, t,
                miss * static_cast<double>(isa::sectorBytes));
            task.stage = MemStage::Complete;
            pushMem(served + static_cast<double>(mc.dramLatency) +
                        static_cast<double>(mc.l2Latency),
                    task_index);
            return;
        }

        memCounters.remoteSectors += miss;
        network->noteTransfer(requestHeaderBytes);
        task.stage = MemStage::ReqHop;
        task.node = task.reqGpm;
        pushMem(t, task_index);
        return;
      }

      case MemStage::ReqHop: {
        noc::HopOutcome hop = network->step(task.node, task.homeGpm, t,
                                            requestHeaderBytes);
        task.node = hop.next;
        task.stage = hop.arrived ? MemStage::HomeDram
                                 : MemStage::ReqHop;
        pushMem(hop.ready, task_index);
        return;
      }

      case MemStage::HomeDram: {
        unsigned miss = std::popcount(task.mask);
        network->noteTransfer(miss *
                              static_cast<double>(isa::sectorBytes));
        noc::Tick served = memory->dramAcquire(
            task.homeGpm, t,
            miss * static_cast<double>(isa::sectorBytes));
        task.stage = MemStage::RespHop;
        task.node = task.homeGpm;
        pushMem(served + static_cast<double>(mc.dramLatency),
                task_index);
        return;
      }

      case MemStage::RespHop: {
        unsigned miss = std::popcount(task.mask);
        noc::HopOutcome hop = network->step(
            task.node, task.reqGpm, t,
            miss * static_cast<double>(isa::sectorBytes));
        task.node = hop.next;
        if (hop.arrived) {
            task.stage = MemStage::Complete;
            pushMem(hop.ready + static_cast<double>(mc.l2Latency),
                    task_index);
        } else {
            pushMem(hop.ready, task_index);
        }
        return;
      }

      case MemStage::Complete: {
        std::uint32_t access = task.access;
        freeTask(task_index);
        completePart(access, t);
        return;
      }

      case MemStage::WbHop: {
        unsigned sectors = std::popcount(task.mask);
        noc::HopOutcome hop = network->step(
            task.node, task.homeGpm, t,
            sectors * static_cast<double>(isa::sectorBytes));
        task.node = hop.next;
        if (hop.arrived) {
            task.stage = MemStage::WbDram;
        }
        pushMem(hop.ready, task_index);
        return;
      }

      case MemStage::WbDram: {
        unsigned sectors = std::popcount(task.mask);
        memory->dramAcquire(
            task.homeGpm, t,
            sectors * static_cast<double>(isa::sectorBytes));
        freeTask(task_index);
        return;
      }

      default:
        mmgpu_panic("bad memory stage");
    }
}

void
GpuSim::stepWarp(const trace::KernelProfile &profile,
                 std::uint32_t slot_index, noc::Tick t)
{
    WarpSlot &slot = slots[slot_index];
    mmgpu_assert(slot.live, "event for dead warp slot");
    sm::SmCore &core = sms[slot.sm];
    unsigned gpm = core.gpm();

    isa::TraceOp op;
    if (slot.replay) {
        op = *slot.replay;
        slot.replay.reset();
    } else {
        op = slot.trace->next();
    }

    switch (op.kind) {
      case isa::TraceOpKind::Compute: {
        instrs_[static_cast<std::size_t>(op.op)] += 1;
        noteInstr(t, op.op);
        noc::Tick issued = core.acquireIssue(t, isa::issueCost(op.op));
        pushWarp(issued + static_cast<double>(isa::defaultLatency(op.op)),
                 slot_index);
        break;
      }
      case isa::TraceOpKind::ComputeBlock: {
        for (const auto &mix : profile.compute) {
            instrs_[static_cast<std::size_t>(mix.op)] +=
                mix.perIteration;
            noteInstr(t, mix.op,
                      static_cast<double>(mix.perIteration));
        }
        noc::Tick issued = core.acquireIssue(t, op.blockSlots());
        pushWarp(issued + static_cast<double>(op.blockLatency()),
                 slot_index);
        break;
      }
      case isa::TraceOpKind::Load: {
        if (op.op == isa::Opcode::LD_SHARED) {
            instrs_[static_cast<std::size_t>(op.op)] += 1;
            memCounters.txns[static_cast<std::size_t>(
                isa::TxnLevel::SharedToReg)] += 1;
            noteInstr(t, op.op);
            noteTxn(t, isa::TxnLevel::SharedToReg, 1.0);
            noc::Tick issued = core.acquireIssue(t, 1);
            pushWarp(issued +
                         static_cast<double>(
                             config_.memory.sharedLatency),
                     slot_index);
            break;
        }
        // Enforce the memory-level-parallelism window: if full, park
        // the warp; a load completion wakes it and the op replays.
        if (slot.outstanding >= profile.mlp) {
            slot.replay = op;
            slot.blocked = WarpBlock::Window;
            core.noteActive(t);
            if (ctrBlockWindow_)
                ctrBlockWindow_->add();
            break;
        }
        MMGPU_INVARIANT(slot.outstanding < profile.mlp,
                        "MLP window bound violated");
        instrs_[static_cast<std::size_t>(op.op)] += 1;
        noteInstr(t, op.op);
        noc::Tick issued = core.acquireIssue(t, 1);
        startGlobalAccess(issued, slot_index, slot.sm, gpm, op.addr,
                          op.sectors, false);
        pushWarp(issued, slot_index);
        break;
      }
      case isa::TraceOpKind::Store: {
        instrs_[static_cast<std::size_t>(op.op)] += 1;
        noteInstr(t, op.op);
        noc::Tick issued = core.acquireIssue(t, 1);
        startGlobalAccess(issued, invalidIndex, slot.sm, gpm, op.addr,
                          op.sectors, true);
        pushWarp(issued, slot_index);
        break;
      }
      case isa::TraceOpKind::Sync: {
        if (slot.outstanding > 0) {
            slot.blocked = WarpBlock::Drain;
            core.noteActive(t);
            if (ctrBlockDrain_)
                ctrBlockDrain_->add();
        } else {
            pushWarp(t, slot_index);
        }
        break;
      }
      case isa::TraceOpKind::Exit: {
        // The trace object is kept (dead but allocated) so the next
        // dispatch into this slot can rebind it without allocating.
        slot.live = false;
        core.releaseSlot(t);
        freeSlotsPerSm[slot.sm].push_back(slot_index);
        mmgpu_assert(ctaWarpsLeft[slot.cta] > 0, "CTA underflow");
        if (--ctaWarpsLeft[slot.cta] == 0) {
            // CTA complete: backfill this SM.
            fillSm(profile, *launchLayout, launchIndex, slot.sm, t);
        }
        break;
      }
      default:
        mmgpu_panic("bad trace op kind");
    }
}

noc::Tick
GpuSim::runLaunch(const trace::KernelProfile &profile,
                  const trace::SegmentLayout &layout, unsigned launch,
                  noc::Tick start)
{
    // Transient state. The slot vector persists across launches and
    // runs (the SM geometry is fixed by the config): a launch leaves
    // every slot dead but keeps its WarpTrace allocation, which
    // fillSm() rebinds in place on the next dispatch. The free lists
    // are rebuilt in slot order each launch so dispatch order never
    // depends on the previous launch's completion order.
    unsigned total_slots = config_.totalSms() * config_.warpSlotsPerSm;
    slots.resize(total_slots);
    calendar.reserve(total_slots);
    freeSlotsPerSm.resize(config_.totalSms());
    for (unsigned s = 0; s < config_.totalSms(); ++s) {
        freeSlotsPerSm[s].clear();
        for (unsigned k = 0; k < config_.warpSlotsPerSm; ++k)
            freeSlotsPerSm[s].push_back(s * config_.warpSlotsPerSm + k);
    }

    ctaQueues.clear();
    for (auto &list : sm::assignCtas(profile.ctaCount,
                                     config_.gpmCount,
                                     config_.ctaScheduling))
        ctaQueues.emplace_back(std::move(list));
    ctaWarpsLeft.assign(profile.ctaCount, 0);

    launchLayout = &layout;
    launchIndex = launch;

    for (unsigned s = 0; s < config_.totalSms(); ++s)
        fillSm(profile, layout, launch, s, start);

    noc::Tick last = start;
    while (!calendar.empty()) {
        Event event = calendar.front();
        std::pop_heap(calendar.begin(), calendar.end(),
                      std::greater<>{});
        calendar.pop_back();
        last = std::max(last, event.when);
        if (ctrEventsWarp_)
            (event.isMem ? ctrEventsMem_ : ctrEventsWarp_)->add();
        if (event.isMem)
            stepMem(event.index, event.when);
        else
            stepWarp(profile, event.index, event.when);
    }

    launchLayout = nullptr;
    return last;
}

} // namespace mmgpu::sim
