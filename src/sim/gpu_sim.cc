#include "sim/gpu_sim.hh"

#include <string>

#include "common/contract.hh"
#include "common/logging.hh"
#include "common/prof.hh"

namespace mmgpu::sim
{

namespace
{

engine::PlacementKind
placementKindFor(PlacementPolicy policy)
{
    switch (policy) {
    case PlacementPolicy::FirstTouchOwner:
        return engine::PlacementKind::FirstTouch;
    case PlacementPolicy::Striped:
        return engine::PlacementKind::Striped;
    case PlacementPolicy::Locality:
        return engine::PlacementKind::Locality;
    }
    mmgpu_panic("bad placement policy");
}

} // namespace

GpuSim::GpuSim(const GpuConfig &config) : config_(config)
{
    config_.validate();

    network_ = noc::makeNetwork(config_.topology, config_.gpmCount,
                                config_.interGpmBytesPerCycle,
                                config_.hopLatency,
                                config_.switchLatency,
                                config_.linkFaults);
    memory_ = std::make_unique<mem::MemSystem>(config_.memory,
                                               network_.get());
    for (unsigned s = 0; s < config_.totalSms(); ++s)
        sms_.emplace_back(s, s / config_.smsPerGpm,
                          config_.warpSlotsPerSm,
                          config_.issueSlotsPerCycle);
    placement_ = engine::makePlacementStrategy(
        placementKindFor(config_.placement), config_.ctaScheduling);
    memPipeline_ = std::make_unique<engine::MemPipeline>(
        config_.memory, *memory_, network_.get(), calendar_);
    warpEngine_ = std::make_unique<engine::WarpEngine>(
        config_.memory, config_.warpSlotsPerSm, sms_, calendar_,
        *memPipeline_, *placement_, config_.gpmCount);
    memPipeline_->bindWaker(*warpEngine_);

    // Reset order is registration order; the drain audits fire for
    // every entry at quiescent points (MMGPU_CONTRACTS=2).
    registry_.add(
        "calendar", [this] { calendar_.reset(); },
        [this] {
            return calendar_.empty()
                       ? std::string{}
                       : std::to_string(calendar_.pending()) +
                             " undrained events";
        });
    if (network_) {
        registry_.add(
            "network", [this] { network_->reset(); },
            [this] { return network_->auditConservation(); });
    }
    registry_.add("memory", [this] { memory_->reset(); });
    registry_.add("sm-cores", [this] {
        for (auto &core : sms_)
            core.reset();
    });
    registry_.add(*memPipeline_);
    registry_.add(*warpEngine_);
}

GpuSim::~GpuSim() = default;

void
GpuSim::attachTelemetry(telemetry::Telemetry *telemetry)
{
    telemetry_ = telemetry;
    // Handles are (re)resolved per run; drop stale ones now so a
    // detach cannot leave dangling hook pointers behind.
    clearTelemetryHooks();
}

void
GpuSim::clearTelemetryHooks()
{
    ctrEventsWarp_ = &nullCounter_;
    ctrEventsMem_ = &nullCounter_;
    smActiveTracks_.clear();
    warpEngine_->setTelemetryHooks({});
    memPipeline_->setTxnSampler(nullptr);
    memory_->detachTelemetry();
    if (network_)
        network_->detachTelemetry();
    for (auto &core : sms_)
        core.attachTelemetry(nullptr);
}

void
GpuSim::setupTelemetry()
{
    telemetry::Telemetry &tel = *telemetry_;
    tel.beginRun();
    clearTelemetryHooks();

    telemetry::CounterRegistry &reg = tel.counters();
    ctrEventsWarp_ = &reg.counter("sim/events_warp");
    ctrEventsMem_ = &reg.counter("sim/events_mem");
    engine::WarpEngine::TelemetryHooks hooks;
    hooks.blockWindow = &reg.counter("warp/block_mlp_window");
    hooks.blockDrain = &reg.counter("warp/block_drain");
    hooks.warpWakes = &reg.counter("warp/wakes");

    memory_->attachTelemetry(tel);

    telemetry::Timeline *timeline = tel.timeline();
    if (timeline == nullptr) {
        warpEngine_->setTelemetryHooks(hooks);
        return;
    }
    hooks.instr = &tel.activity("instr", isa::numOpcodes);
    hooks.txn = &tel.activity("txn", isa::numTxnLevels);
    warpEngine_->setTelemetryHooks(hooks);
    memPipeline_->setTxnSampler(hooks.txn);

    using Kind = telemetry::TimelineTrack::Kind;
    double sms_per_gpm = static_cast<double>(config_.smsPerGpm);
    for (unsigned g = 0; g < config_.gpmCount; ++g) {
        std::string prefix = "gpm" + std::to_string(g);
        telemetry::TimelineTrack &busy = timeline->track(
            prefix + "/sm_busy", Kind::Busy, sms_per_gpm);
        smActiveTracks_.push_back(&timeline->track(
            prefix + "/sm_active", Kind::Busy, sms_per_gpm));
        for (unsigned s = 0; s < config_.smsPerGpm; ++s)
            sms_[g * config_.smsPerGpm + s].attachTelemetry(&busy);
    }
    if (network_)
        network_->attachTelemetry(*timeline);
}

void
GpuSim::prePlacePages(const trace::KernelProfile &profile,
                      const trace::SegmentLayout &layout)
{
    // Homing every page up front (rather than on simulated first
    // touch) avoids simulation-order races with halo accesses; the
    // strategy decides where each page lands.
    auto lists = placement_->assign(profile.ctaCount, config_.gpmCount);
    std::vector<unsigned> cta_to_gpm(profile.ctaCount);
    for (unsigned g = 0; g < lists.size(); ++g)
        for (unsigned c : lists[g])
            cta_to_gpm[c] = g;

    engine::PageContext ctx;
    ctx.profile = &profile;
    ctx.layout = &layout;
    ctx.ctaToGpm = &cta_to_gpm;
    ctx.gpmCount = config_.gpmCount;

    std::uint64_t page_index = 0;
    for (unsigned s = 0; s < profile.segments.size(); ++s) {
        std::uint64_t base = layout.base(s);
        Bytes size = layout.size(s);
        for (std::uint64_t page = base; page < base + size;
             page += mem::PageTable::pageBytes, ++page_index) {
            unsigned home =
                placement_->homePage(ctx, s, page, page_index);
            MMGPU_EXPECT(home < config_.gpmCount,
                         "placement strategy homed a page on a"
                         " GPM the machine does not have");
            memory_->prePlace(page, home);
        }
    }
}

PerfResult
GpuSim::run(const trace::KernelProfile &profile)
{
    MMGPU_PROF_SCOPE("sim/run");
    profile.validate();
    mmgpu_assert(calendar_.empty(),
                 "stale calendar events at run() entry");

    // Zero every component back to its as-constructed state (with
    // MMGPU_CONTRACTS=2 the drain audits fire first, so a reused
    // machine cannot carry in-flight state between runs).
    {
        MMGPU_PROF_SCOPE("sim/reset");
        registry_.resetAll();
    }
    busyAccum_ = 0.0;
    stallAccum_ = 0.0;
    occupiedAccum_ = 0.0;
    endOfRun_ = 0.0;

    if (telemetry_)
        setupTelemetry();
    else
        clearTelemetryHooks();

    trace::SegmentLayout layout(profile);
    {
        MMGPU_PROF_SCOPE("sim/preplace");
        prePlacePages(profile, layout);
    }

    noc::Tick start = 0.0;
    for (unsigned launch = 0; launch < profile.launches; ++launch) {
        noc::Tick end = runLaunch(profile, layout, launch, start);
        {
            MMGPU_PROF_SCOPE("sim/kernel_boundary");
            end = memory_->kernelBoundary(end,
                                          memPipeline_->counters());
        }
        endOfRun_ = end;
        start = end + static_cast<double>(config_.launchOverhead);

        // Fold per-launch SM accounting, then reset issue windows.
        for (auto &core : sms_) {
            busyAccum_ += core.busyCycles();
            stallAccum_ += core.stallCycles();
            occupiedAccum_ += core.occupiedCycles();
            if (!smActiveTracks_.empty() && core.everActive()) {
                smActiveTracks_[core.gpm()]->addSpan(
                    core.firstActiveAt(), core.lastActiveAt());
            }
            core.reset();
        }
    }
    // Launch gaps between kernels count toward wall-clock time.
    if (profile.launches > 1) {
        endOfRun_ += static_cast<double>(config_.launchOverhead) *
                     (profile.launches - 1);
    }

    // End-of-run conservation audits (MMGPU_CONTRACTS=2). The
    // calendar is drained and kernelBoundary() has flushed the
    // caches, so the machine is quiescent: every component's drain
    // audit must come back clean.
    if constexpr (contract::auditsEnabled) {
        std::string verdict = registry_.auditAll();
        MMGPU_INVARIANT(verdict.empty(), verdict);
    }

    PerfResult result;
    result.configName = config_.name;
    result.workloadName = profile.name;
    result.execCycles = endOfRun_;
    result.execSeconds = endOfRun_ / config_.clock.frequency();
    result.instrs = warpEngine_->instrs();
    result.mem = memPipeline_->counters();
    if (network_) {
        result.link = network_->traffic();
        result.linkQueueing = network_->totalQueueing();
        result.linkBusy = network_->totalBusy();
    }
    result.smBusyCycles = busyAccum_;
    result.smStallCycles = stallAccum_;
    result.smOccupiedCycles = occupiedAccum_;
    result.l1Accesses = memory_->l1Accesses();
    result.l1SectorHits = memory_->l1SectorHits();
    result.l2Accesses = memory_->l2Accesses();
    result.l2SectorHits = memory_->l2SectorHits();
    result.dramQueueing = memory_->dramQueueing();
    result.dramBusy = memory_->dramBusy();

    if (telemetry_) {
        telemetry::CounterRegistry &reg = telemetry_->counters();
        reg.gauge("sim/end_cycles").set(endOfRun_);
        reg.gauge("sim/ipc").set(result.ipc());
        reg.gauge("sim/sm_busy_cycles").set(busyAccum_);
        reg.gauge("sim/sm_stall_cycles").set(stallAccum_);
        reg.gauge("sim/sm_occupied_cycles").set(occupiedAccum_);
        if (!config_.linkFaults.empty()) {
            reg.counter("fault/link_reroutes")
                .add(result.link.rerouted);
            reg.gauge("fault/degraded_links")
                .set(static_cast<double>(
                    config_.linkFaults.faults.size()));
        }

        telemetry::RunInfo info;
        info.configName = config_.name;
        info.workloadName = profile.name;
        info.gpmCount = config_.gpmCount;
        info.clockHz = config_.clock.frequency();
        info.endCycles = endOfRun_;
        telemetry_->finalizeRun(info);
    }
    return result;
}

noc::Tick
GpuSim::runLaunch(const trace::KernelProfile &profile,
                  const trace::SegmentLayout &layout, unsigned launch,
                  noc::Tick start)
{
    calendar_.advanceTo(start);
    {
        MMGPU_PROF_SCOPE("sim/begin_launch");
        warpEngine_->beginLaunch(profile, layout, launch, start);
    }

    // The event loop is the engine's hot path, so the profiled
    // variant is a separate loop: with MMGPU_PROFILE=0 the plain
    // loop below runs with zero instrumentation (not even a branch
    // per event), which is what keeps the disabled overhead
    // unmeasurable. The profiled copy samples the clock around each
    // step and attributes it to the warp or mem engine.
    if (prof::enabled()) {
        static prof::Site warpSite("sim/step_warp");
        static prof::Site memSite("sim/step_mem");
        while (!calendar_.empty()) {
            engine::Event event = calendar_.pop();
            (event.isMem ? ctrEventsMem_ : ctrEventsWarp_)->add();
            std::int64_t t0 = wallclock::nowNs();
            if (event.isMem)
                memPipeline_->step(event.index, event.when);
            else
                warpEngine_->step(event.index, event.when);
            auto dt = static_cast<std::uint64_t>(wallclock::nowNs() -
                                                 t0);
            (event.isMem ? memSite : warpSite).addSample(dt, dt);
        }
    } else {
        while (!calendar_.empty()) {
            engine::Event event = calendar_.pop();
            (event.isMem ? ctrEventsMem_ : ctrEventsWarp_)->add();
            if (event.isMem)
                memPipeline_->step(event.index, event.when);
            else
                warpEngine_->step(event.index, event.when);
        }
    }

    warpEngine_->endLaunch();
    return calendar_.now();
}

} // namespace mmgpu::sim
