/**
 * @file
 * Performance-simulation output: everything GPUJoule's Eq. 4 needs,
 * plus locality/congestion diagnostics used by the analysis sections.
 */

#ifndef MMGPU_SIM_PERF_RESULT_HH
#define MMGPU_SIM_PERF_RESULT_HH

#include <array>

#include "common/units.hh"
#include "isa/instruction.hh"
#include "isa/opcode.hh"
#include "mem/mem_system.hh"
#include "noc/interconnect.hh"

namespace mmgpu::sim
{

/** Result of simulating one workload on one configuration. */
struct PerfResult
{
    /** Configuration name the run used. */
    std::string configName;

    /** Workload name. */
    std::string workloadName;

    /** End-to-end execution time (all launches + gaps), in cycles. */
    double execCycles = 0.0;

    /** End-to-end execution time in seconds. */
    Seconds execSeconds = 0.0;

    /** Warp-level instruction counts per opcode (compute + memory). */
    std::array<Count, isa::numOpcodes> instrs{};

    /** Memory transaction counters (EPT inputs). */
    mem::MemCounters mem;

    /** Inter-GPM traffic (link-energy inputs). */
    noc::LinkTraffic link;

    /** Aggregate SM issue-busy cycles across all SMs and launches. */
    double smBusyCycles = 0.0;

    /** Aggregate SM active-but-stalled cycles (EPStall input). */
    double smStallCycles = 0.0;

    /** Aggregate SM active-window cycles. */
    double smOccupiedCycles = 0.0;

    // ---- diagnostics ----

    Count l1Accesses = 0;
    Count l1SectorHits = 0;
    Count l2Accesses = 0;
    Count l2SectorHits = 0;

    /** Queueing cycles summed over all DRAM channels. */
    double dramQueueing = 0.0;

    /** Queueing cycles summed over all inter-GPM links. */
    double linkQueueing = 0.0;

    /** Busy cycles summed over all inter-GPM links. */
    double linkBusy = 0.0;

    /** Busy cycles summed over all DRAM channels. */
    double dramBusy = 0.0;

    /** Total warp-level instructions executed. */
    Count
    totalWarpInstrs() const
    {
        Count total = 0;
        for (Count c : instrs)
            total += c;
        return total;
    }

    /** Fraction of DRAM sectors served by a remote GPM. */
    double
    remoteFraction() const
    {
        Count total = mem.remoteSectors + mem.localSectors;
        return total ? static_cast<double>(mem.remoteSectors) / total
                     : 0.0;
    }

    /** Aggregate IPC in warp instructions per cycle. */
    double
    ipc() const
    {
        return execCycles > 0.0 ? totalWarpInstrs() / execCycles : 0.0;
    }
};

} // namespace mmgpu::sim

#endif // MMGPU_SIM_PERF_RESULT_HH
