/**
 * @file
 * Ablation: the paper's closing §V-D suggestion that "at extreme
 * scales, architects may be forced to turn to extreme measures such
 * as reallocation of costly on-chip pin-outs to re-balance local
 * DRAM bandwidth versus inter-GPM bandwidth if the ratio of local to
 * remote memory access happens to skew towards the latter."
 *
 * This bench performs that experiment on the 32-GPM on-board design:
 * holding the total per-GPM pin (bandwidth) budget fixed at
 * 256 + 128 = 384 GB/s, it shifts bandwidth from the local HBM stack
 * to the inter-GPM links and reports where the EDPSE optimum falls —
 * once for the full suite and once for the remote-heavy (irregular)
 * workloads the paper's sentence is really about.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

namespace
{

sim::GpuConfig
pinConfig(double shift_gbps)
{
    auto config = sim::multiGpmConfig(32, sim::BwSetting::Bw1x,
                                      noc::Topology::Ring,
                                      sim::IntegrationDomain::OnBoard);
    config.memory.dramBytesPerCycle = 256.0 - shift_gbps;
    config.interGpmBytesPerCycle = 128.0 + shift_gbps;
    config.name += "/pins-" + std::to_string(
        static_cast<int>(shift_gbps));
    return config;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    bench::banner("Pin reallocation: DRAM vs inter-GPM bandwidth",
                  "Section V-D closing remark (rebalance local vs "
                  "remote bandwidth at extreme scales)");

    harness::ScalingRunner runner = bench::makeRunner();
    const auto &all = trace::scalingWorkloads();

    // The remote-heavy subset: workloads with irregular gathers.
    std::vector<trace::KernelProfile> irregular;
    for (const auto &profile : all) {
        for (const auto &load : profile.loads) {
            if (load.pattern == trace::AccessPattern::Random ||
                load.irregular >= 0.08) {
                irregular.push_back(profile);
                break;
            }
        }
    }

    TextTable table("32-GPM on-board ring, fixed 384 GB/s pin budget "
                    "per GPM");
    table.header({"DRAM : inter-GPM", "EDPSE (all)",
                  "EDPSE (irregular)", "speedup (all)"});
    CsvWriter csv({"shift_gbps", "edpse_all", "edpse_irregular",
                   "speedup_all"});

    double best_all = 0.0, base_all = 0.0;
    double best_irr = 0.0, base_irr = 0.0;
    double best_all_shift = 0.0, best_irr_shift = 0.0;
    for (double shift : {0.0, 32.0, 64.0, 96.0, 128.0}) {
        auto config = pinConfig(shift);
        auto points_all = harness::scalingStudy(runner, config, all);
        auto points_irr =
            harness::scalingStudy(runner, config, irregular);
        double edpse_all = harness::meanOf(
            points_all, &harness::ScalingPoint::edpse);
        double edpse_irr = harness::meanOf(
            points_irr, &harness::ScalingPoint::edpse);
        double speed_all = harness::meanOf(
            points_all, &harness::ScalingPoint::speedup);

        if (shift == 0.0) {
            base_all = edpse_all;
            base_irr = edpse_irr;
        }
        if (edpse_all > best_all) {
            best_all = edpse_all;
            best_all_shift = shift;
        }
        if (edpse_irr > best_irr) {
            best_irr = edpse_irr;
            best_irr_shift = shift;
        }

        char label[40];
        std::snprintf(label, sizeof(label), "%.0f : %.0f GB/s",
                      256.0 - shift, 128.0 + shift);
        table.addRow({label, TextTable::pct(edpse_all),
                      TextTable::pct(edpse_irr),
                      TextTable::num(speed_all, 2)});
        csv.addRow({TextTable::num(shift, 0),
                    TextTable::num(edpse_all, 1),
                    TextTable::num(edpse_irr, 1),
                    TextTable::num(speed_all, 2)});
    }
    table.print(std::cout);

    std::printf("\nEDPSE optimum (all workloads): shift %.0f GB/s of "
                "pins to the links (%.1f%% -> %.1f%%)\n",
                best_all_shift, base_all, best_all);
    std::printf("EDPSE optimum (irregular subset): shift %.0f GB/s "
                "(%.1f%% -> %.1f%%) — the skew the paper predicts\n",
                best_irr_shift, base_irr, best_irr);
    bench::writeCsv("ablation_pins", csv);

    // The paper's prediction: remote-heavy workloads want the
    // reallocation at least as much as the average does.
    return best_irr_shift >= best_all_shift ? 0 : 1;
}
