/**
 * @file
 * Ablation: how far can clock/power gating claw back the
 * constant-energy problem?
 *
 * The paper's §V-E closes with "techniques such as ... intelligent
 * clock-gating and power-gating can improve energy efficiency of
 * multi-module GPUs". This bench applies the first-order gating
 * model (gpujoule/gating.hh) to the worst configuration the paper
 * studies — 32 GPMs on-board at 1x-BW, where GPM idle time dominates
 * — and reports how much EDPSE each technique recovers.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "gpujoule/gating.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

namespace
{

/** Suite-level energy/delay under a gating option. */
metrics::EnergyDelay
suitePoint(harness::ScalingRunner &runner, const sim::GpuConfig &config,
           const joule::GatingOptions &gating)
{
    const auto &context = runner.context();
    joule::EnergyParams params = context.paramsFor(config);
    metrics::EnergyDelay total{0.0, 0.0};
    for (const auto &workload : trace::scalingWorkloads()) {
        const auto &run = runner.run(config, workload);
        auto inputs = harness::inputsFrom(run.perf, config.gpmCount,
                                          config.totalSms());
        total.energy +=
            joule::estimateWithGating(inputs, params, gating).total();
        total.delay += run.perf.execSeconds;
    }
    return total;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    bench::banner("Clock/power gating on the worst design point",
                  "Section V-E (idle-power management as the lever "
                  "against constant energy)");

    harness::ScalingRunner runner = bench::makeRunner();
    auto baseline_cfg = sim::baselineConfig();
    auto config = sim::multiGpmConfig(32, sim::BwSetting::Bw1x,
                                      noc::Topology::Ring,
                                      sim::IntegrationDomain::OnBoard);

    struct Variant
    {
        const char *label;
        joule::GatingOptions gating;
    };
    const Variant variants[] = {
        {"no gating (paper baseline)", {0.0, 0.0, 0.4}},
        {"clock gating (80% of stall energy)", {0.8, 0.0, 0.4}},
        {"power gating (80% of idle SM domain)", {0.0, 0.8, 0.4}},
        {"both", {0.8, 0.8, 0.4}},
    };

    metrics::EnergyDelay one =
        suitePoint(runner, baseline_cfg, variants[0].gating);

    TextTable table("32-GPM / 1x-BW / on-board ring, 14 workloads");
    table.header({"variant", "energy ratio", "EDPSE",
                  "EDPSE recovered"});
    CsvWriter csv({"variant", "energy_ratio", "edpse"});

    double edpse_base = 0.0, edpse_both = 0.0;
    for (const auto &variant : variants) {
        metrics::EnergyDelay point =
            suitePoint(runner, config, variant.gating);
        double energy_ratio = point.energy / one.energy;
        double edpse = metrics::edpse(one, point, 32);
        if (&variant == &variants[0])
            edpse_base = edpse;
        if (&variant == &variants[3])
            edpse_both = edpse;
        table.addRow({variant.label, TextTable::num(energy_ratio, 2),
                      TextTable::pct(edpse),
                      "+" + TextTable::num(edpse - edpse_base, 1)});
        csv.addRow({variant.label, TextTable::num(energy_ratio, 3),
                    TextTable::num(edpse, 2)});
    }
    table.print(std::cout);

    std::printf("\ngating recovers %.1f EDPSE points on the worst "
                "design point — meaningful, but no substitute for "
                "inter-GPM bandwidth (Figure 8 buys ~%.0f points)\n",
                edpse_both - edpse_base, 25.0);
    bench::writeCsv("ablation_gating", csv);
    return edpse_both > edpse_base ? 0 : 1;
}
