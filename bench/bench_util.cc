#include "bench_util.hh"

#include <cstdio>
#include <mutex>
#include <optional>

#include "common/logging.hh"

namespace mmgpu::bench
{

harness::StudyContext &
studyContext()
{
    // std::call_once rather than a bare function-local static: the
    // calibration campaign inside the constructor must run exactly
    // once even when the first callers race, and an exception leaves
    // the flag unset so a later call can retry instead of poisoning
    // the static forever.
    static std::once_flag once;
    static std::optional<harness::StudyContext> context;
    std::call_once(once, [] { context.emplace(); });
    return *context;
}

harness::ScalingRunner
makeRunner()
{
    return harness::ScalingRunner(studyContext());
}

void
prefill(harness::ScalingRunner &runner,
        const std::vector<sim::GpuConfig> &configs,
        const std::vector<trace::KernelProfile> &workloads,
        double link_energy_scale, double const_growth_override)
{
    harness::ParallelRunner pool(runner);
    for (const auto &config : configs)
        pool.enqueueStudy(config, workloads, link_energy_scale,
                          const_growth_override);
    pool.drain();
}

std::vector<SweepResult>
runSweep(harness::ScalingRunner &runner,
         const std::vector<SweepCell> &cells,
         const std::vector<trace::KernelProfile> &workloads)
{
    harness::ParallelRunner pool(runner);
    for (const SweepCell &cell : cells)
        pool.enqueueStudy(cell.config, workloads,
                          cell.linkEnergyScale,
                          cell.constGrowthOverride);
    pool.drain();

    std::vector<SweepResult> results;
    results.reserve(cells.size());
    for (const SweepCell &cell : cells)
        results.push_back({harness::scalingStudy(
            runner, cell.config, workloads, cell.linkEnergyScale,
            cell.constGrowthOverride)});
    return results;
}

void
writeCsv(const std::string &name, const CsvWriter &csv)
{
    std::string path = name + ".csv";
    if (csv.writeTo(path))
        std::printf("[csv] %s\n", path.c_str());
}

void
banner(const std::string &what, const std::string &paper_ref)
{
    std::printf("\n================================================"
                "====================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("=================================================="
                "==================\n");
}

} // namespace mmgpu::bench
