#include "bench_util.hh"

#include <cstdio>

#include "common/logging.hh"

namespace mmgpu::bench
{

harness::StudyContext &
studyContext()
{
    static harness::StudyContext context;
    return context;
}

harness::ScalingRunner
makeRunner()
{
    return harness::ScalingRunner(studyContext());
}

void
writeCsv(const std::string &name, const CsvWriter &csv)
{
    std::string path = name + ".csv";
    if (csv.writeTo(path))
        std::printf("[csv] %s\n", path.c_str());
}

void
banner(const std::string &what, const std::string &paper_ref)
{
    std::printf("\n================================================"
                "====================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("=================================================="
                "==================\n");
}

} // namespace mmgpu::bench
