/**
 * @file
 * Topology/placement cross sweep: EDPSE for every registered
 * inter-GPM fabric under both the paper's baseline placement and the
 * locality-aware strategy, on a 16-GPM 2x-BW on-package design.
 *
 * The paper evaluates ring (§IV) and switch (§V-C) fabrics; the
 * topology registry adds a fullmesh and an optically
 * circuit-scheduled (OCS) fabric behind the same interface. This
 * bench is the apples-to-apples comparison the registry exists for:
 * one sweep, every fabric x placement combination, recorded to
 * BENCH_topology.json so regressions in any fabric's energy or
 * traffic books show up as a diff.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/json.hh"
#include "noc/topology_registry.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner("Topology x placement EDPSE, 16-GPM 2x-BW",
                  "Registry sweep: ring / switch / fullmesh / ocs "
                  "under first-touch and locality placement");

    harness::ScalingRunner runner = bench::makeRunner();
    const auto &workloads = trace::scalingWorkloads();

    // Registry-driven: a newly registered fabric joins the sweep
    // without touching this bench.
    std::vector<noc::Topology> fabrics;
    for (const noc::TopologyDesc *desc : noc::allTopologies()) {
        if (desc->id != noc::Topology::None)
            fabrics.push_back(desc->id);
    }
    // Striped rides along as the locality-oblivious control: it must
    // lose to both NUMA-aware strategies on every fabric, proving the
    // placement axis reaches the machine.
    const sim::PlacementPolicy placements[] = {
        sim::PlacementPolicy::FirstTouchOwner,
        sim::PlacementPolicy::Locality,
        sim::PlacementPolicy::Striped,
    };

    TextTable table("EDPSE by fabric and placement");
    table.header({"fabric", "placement", "EDPSE", "speedup",
                  "energy", "link energy", "reconfigs"});
    CsvWriter csv({"fabric", "placement", "edpse", "speedup",
                   "energy", "link_fraction", "reconfigs"});
    JsonValue series = JsonValue::array();

    bool shape_ok = true;
    double ring_ft_edpse = 0.0;
    for (noc::Topology topo : fabrics) {
        const noc::TopologyDesc &desc = noc::topologyDesc(topo);
        double ft_edpse = 0.0;
        for (sim::PlacementPolicy placement : placements) {
            auto config =
                sim::multiGpmConfig(16, sim::BwSetting::Bw2x, topo);
            config.placement = placement;
            const char *placement_name =
                sim::placementPolicyName(placement);

            auto points =
                harness::scalingStudy(runner, config, workloads);
            double edpse = harness::meanOf(
                points, &harness::ScalingPoint::edpse);
            double speed = harness::meanOf(
                points, &harness::ScalingPoint::speedup);
            double energy = harness::meanOf(
                points, &harness::ScalingPoint::energyRatio);

            // Aggregate link-energy share and OCS reconfigurations
            // across the suite from the memoized outcomes.
            double link_joules = 0.0, total_joules = 0.0;
            unsigned long long reconfigs = 0;
            for (const auto &workload : workloads) {
                const auto &run = runner.run(config, workload);
                link_joules += run.energy.interModule;
                total_joules += run.energy.total();
                reconfigs += run.perf.link.reconfigs;
            }
            double link_fraction = link_joules / total_joules;

            if (placement == sim::PlacementPolicy::FirstTouchOwner) {
                ft_edpse = edpse;
                if (topo == noc::Topology::Ring)
                    ring_ft_edpse = edpse;
            }

            // Shape: every cell simulates to a sane efficiency, only
            // the OCS ever reconfigures, and the locality-oblivious
            // control loses to the NUMA-aware strategies.
            shape_ok &= edpse > 0.0 && edpse < 200.0;
            shape_ok &= speed > 1.0;
            shape_ok &= link_fraction > 0.0 && link_fraction < 0.5;
            shape_ok &= (reconfigs > 0) == desc.usesCircuitReconfig;
            if (placement == sim::PlacementPolicy::Striped)
                shape_ok &= edpse < ft_edpse;

            table.addRow({desc.name, placement_name,
                          TextTable::pct(edpse),
                          TextTable::num(speed, 2),
                          TextTable::num(energy, 2),
                          TextTable::pct(link_fraction * 100.0),
                          std::to_string(reconfigs)});
            csv.addRow({desc.name, placement_name,
                        TextTable::num(edpse, 1),
                        TextTable::num(speed, 2),
                        TextTable::num(energy, 3),
                        TextTable::num(link_fraction, 4),
                        std::to_string(reconfigs)});

            JsonValue row = JsonValue::object();
            row.set("fabric", desc.name);
            row.set("placement", placement_name);
            row.set("edpse_pct", edpse);
            row.set("speedup", speed);
            row.set("energy_ratio", energy);
            row.set("link_energy_fraction", link_fraction);
            row.set("reconfigs", reconfigs);
            series.push(row);
        }
    }
    table.print(std::cout);

    JsonValue report = JsonValue::object();
    report.set("bench", "topology");
    report.set("design_point", "16-GPM/2x-BW/on-package");
    report.set("workloads",
               static_cast<unsigned long long>(workloads.size()));
    report.set("ring_first_touch_edpse_pct", ring_ft_edpse);
    report.set("cells", series);
    {
        std::ofstream os("BENCH_topology.json");
        report.write(os);
        os << '\n';
        if (os)
            std::printf("[json] BENCH_topology.json\n");
    }

    bench::writeCsv("topology", csv);
    std::printf("\nshape %s\n", shape_ok ? "ok" : "FAILED");
    return shape_ok ? 0 : 1;
}
