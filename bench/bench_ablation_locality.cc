/**
 * @file
 * Ablation: how much of multi-module GPU efficiency do the two NUMA
 * mechanisms — first-touch page placement and distributed
 * (contiguous) CTA scheduling — actually buy?
 *
 * The paper adopts both from the MCM-GPU / NUMA-aware-GPU work
 * (§V-A1) and its §V-E discussion calls system-level data locality
 * the research priority. This bench quantifies that on a 16-GPM
 * on-package design by knocking each mechanism out: striped
 * (locality-oblivious) page placement and round-robin CTA
 * scheduling.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner("Locality-mechanism ablation, 16-GPM 2x-BW",
                  "Section V-A1/V-E (first-touch + distributed CTA "
                  "scheduling are the locality substrate)");

    harness::ScalingRunner runner = bench::makeRunner();
    const auto &workloads = trace::scalingWorkloads();

    struct Variant
    {
        const char *label;
        sim::PlacementPolicy placement;
        sm::CtaSchedPolicy scheduling;
    };
    const Variant variants[] = {
        {"first-touch + distributed (paper)",
         sim::PlacementPolicy::FirstTouchOwner,
         sm::CtaSchedPolicy::Distributed},
        {"striped pages + distributed",
         sim::PlacementPolicy::Striped,
         sm::CtaSchedPolicy::Distributed},
        {"first-touch + round-robin CTAs",
         sim::PlacementPolicy::FirstTouchOwner,
         sm::CtaSchedPolicy::RoundRobin},
        {"striped + round-robin (no locality)",
         sim::PlacementPolicy::Striped,
         sm::CtaSchedPolicy::RoundRobin},
    };

    TextTable table("Knocking out the locality mechanisms");
    table.header({"variant", "EDPSE", "speedup", "energy",
                  "remote traffic"});
    CsvWriter csv({"variant", "edpse", "speedup", "energy",
                   "remote_fraction"});

    double edpse_paper = 0.0, edpse_none = 0.0;
    for (const auto &variant : variants) {
        auto config = sim::multiGpmConfig(16, sim::BwSetting::Bw2x);
        config.placement = variant.placement;
        config.ctaScheduling = variant.scheduling;

        auto points = harness::scalingStudy(runner, config, workloads);
        double edpse =
            harness::meanOf(points, &harness::ScalingPoint::edpse);
        double speed = harness::meanOf(
            points, &harness::ScalingPoint::speedup);
        double energy = harness::meanOf(
            points, &harness::ScalingPoint::energyRatio);

        // Aggregate remote-traffic fraction across the suite.
        Count remote = 0, local = 0;
        for (const auto &workload : workloads) {
            const auto &run = runner.run(config, workload);
            remote += run.perf.mem.remoteSectors;
            local += run.perf.mem.localSectors;
        }
        double remote_fraction =
            static_cast<double>(remote) / (remote + local);

        if (&variant == &variants[0])
            edpse_paper = edpse;
        if (&variant == &variants[3])
            edpse_none = edpse;
        table.addRow({variant.label, TextTable::pct(edpse),
                      TextTable::num(speed, 2),
                      TextTable::num(energy, 2),
                      TextTable::pct(remote_fraction * 100.0)});
        csv.addRow({variant.label, TextTable::num(edpse, 1),
                    TextTable::num(speed, 2),
                    TextTable::num(energy, 3),
                    TextTable::num(remote_fraction, 3)});
    }
    table.print(std::cout);

    std::printf("\nlocality mechanisms are worth %.1fx in EDPSE on "
                "this design (%.1f%% -> %.1f%% without them)\n",
                edpse_paper / edpse_none, edpse_paper, edpse_none);
    bench::writeCsv("ablation_locality", csv);
    return edpse_paper > edpse_none ? 0 : 1;
}
