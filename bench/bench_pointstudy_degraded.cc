/**
 * @file
 * Degraded-mode interconnect point study (fault-injection companion
 * to the §V-B ring scaling results): on the 8-GPM on-package 2x-BW
 * ring, compare EDPSE of the healthy machine against (a) one fully
 * failed clockwise link — traffic reroutes the long way around — and
 * (b) every link derated to half width. Failing one of sixteen links
 * costs much less than halving all of them: reroutes consume spare
 * ring capacity, while a uniform derate moves every transfer onto a
 * slower link. The healthy column must be bit-identical to the same
 * study without any fault machinery loaded (fault-off determinism).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner("Degraded-mode interconnect, 8-GPM 2x-BW ring",
                  "EDPSE under one failed link (reroute) and "
                  "half-width links (derate)");

    harness::ScalingRunner runner = bench::makeRunner();
    const auto &workloads = trace::scalingWorkloads();

    const auto healthy = sim::multiGpmConfig(
        8, sim::BwSetting::Bw2x, noc::Topology::Ring,
        sim::IntegrationDomain::OnPackage);

    // One failed clockwise link out of GPM 0.
    auto one_failed = healthy;
    one_failed.name += "/fail-gpm0-cw";
    one_failed.linkFaults.faults.push_back(
        fault::LinkFault{0, 0, 0.0});

    // Every link (both directions) derated to half capacity.
    auto derated = healthy;
    derated.name += "/derate-50";
    for (unsigned g = 0; g < 8; ++g) {
        for (unsigned c = 0; c < 2; ++c)
            derated.linkFaults.faults.push_back(
                fault::LinkFault{g, c, 0.5});
    }

    struct Mode
    {
        const char *label;
        const sim::GpuConfig *config;
    };
    const Mode modes[] = {{"healthy", &healthy},
                          {"1 link failed", &one_failed},
                          {"all links 50%", &derated}};

    TextTable table("EDPSE under interconnect degradation");
    table.header({"mode", "EDPSE", "delta", "speedup", "energy"});
    CsvWriter csv({"mode", "edpse", "speedup", "energy_ratio"});

    double edpse_healthy = 0.0, edpse_failed = 0.0;
    double edpse_derated = 0.0;
    for (const Mode &mode : modes) {
        auto points = harness::scalingStudy(runner, *mode.config,
                                            workloads);
        double edpse =
            harness::meanOf(points, &harness::ScalingPoint::edpse);
        double speedup =
            harness::meanOf(points, &harness::ScalingPoint::speedup);
        double energy = harness::meanOf(
            points, &harness::ScalingPoint::energyRatio);
        if (mode.config == &healthy)
            edpse_healthy = edpse;
        else if (mode.config == &one_failed)
            edpse_failed = edpse;
        else
            edpse_derated = edpse;
        table.addRow({mode.label, TextTable::pct(edpse),
                      TextTable::pct(edpse - edpse_healthy),
                      TextTable::num(speedup, 2),
                      TextTable::num(energy, 3)});
        csv.addRow({mode.label, TextTable::num(edpse, 2),
                    TextTable::num(speedup, 2),
                    TextTable::num(energy, 3)});
    }
    table.print(std::cout);

    std::printf("\none failed link costs %.2f EDPSE points; "
                "half-width links cost %.2f\n",
                edpse_healthy - edpse_failed,
                edpse_healthy - edpse_derated);
    bench::writeCsv("pointstudy_degraded", csv);

    // Sanity: degradation can only hurt, and losing one of sixteen
    // links hurts less than halving all sixteen.
    bool sane = edpse_failed <= edpse_healthy + 1e-9 &&
                edpse_derated <= edpse_healthy + 1e-9 &&
                edpse_derated <= edpse_failed + 1e-9;
    return sane ? 0 : 1;
}
