/**
 * @file
 * Regenerates paper Figure 7: performance speedup and energy increase
 * at each GPM-doubling step (2x-BW on-package ring), with the energy
 * delta broken down by Eq. 4 component, plus the monolithic-GPU
 * comparison the paper quotes for the 16->32 step.
 *
 * Paper reference points: 86.8% speedup for 1->2, 47% for 16->32
 * (80.8% on an equivalent monolithic GPU), a 15.7% energy increase
 * for 16->32, and the constant-energy overhead as the dominant
 * growth component at high GPM counts.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

namespace
{

struct Aggregate
{
    double seconds = 0.0;
    joule::EnergyBreakdown energy;
};

Aggregate
aggregateFor(harness::ScalingRunner &runner, const sim::GpuConfig &config)
{
    Aggregate total;
    for (const auto &workload : trace::scalingWorkloads()) {
        const auto &run = runner.run(config, workload);
        total.seconds += run.perf.execSeconds;
        const auto &e = run.energy;
        total.energy.smBusy += e.smBusy;
        total.energy.smIdle += e.smIdle;
        total.energy.constant += e.constant;
        total.energy.shmToReg += e.shmToReg;
        total.energy.l1ToReg += e.l1ToReg;
        total.energy.l2ToL1 += e.l2ToL1;
        total.energy.dramToL2 += e.dramToL2;
        total.energy.interModule += e.interModule;
    }
    return total;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    bench::banner(
        "Incremental speedup and energy growth per scaling step",
        "Figure 7 (1->2: +86.8% speed; 16->32: +47% speed, +15.7% "
        "energy, constant overhead dominant)");

    harness::ScalingRunner runner = bench::makeRunner();

    std::vector<std::pair<unsigned, Aggregate>> steps;
    steps.emplace_back(
        1u, aggregateFor(runner, sim::baselineConfig()));
    for (unsigned n : sim::tableThreeGpmCounts())
        steps.emplace_back(
            n, aggregateFor(runner,
                            sim::multiGpmConfig(
                                n, sim::BwSetting::Bw2x)));

    TextTable table("Per-step deltas (vs preceding configuration)");
    table.header({"step", "speedup", "dE total", "dE busy", "dE idle",
                  "dE const", "dE L1->Reg", "dE L2->L1", "dE DRAM",
                  "dE inter-mod"});
    CsvWriter csv({"step", "speedup", "de_total_pct", "de_busy",
                   "de_idle", "de_const", "de_l1", "de_l2", "de_dram",
                   "de_link"});

    double speed_1_2 = 0.0, speed_16_32 = 0.0, de_16_32 = 0.0;
    std::string dominant_16_32;
    for (std::size_t i = 1; i < steps.size(); ++i) {
        const Aggregate &prev = steps[i - 1].second;
        const Aggregate &curr = steps[i].second;
        double speedup = prev.seconds / curr.seconds;
        double prev_total = prev.energy.total();
        auto delta = [&](double now, double before) {
            return (now - before) / prev_total * 100.0;
        };
        double d_total =
            delta(curr.energy.total(), prev.energy.total());
        double d_busy = delta(curr.energy.smBusy, prev.energy.smBusy);
        double d_idle = delta(curr.energy.smIdle, prev.energy.smIdle);
        double d_const =
            delta(curr.energy.constant, prev.energy.constant);
        double d_l1 = delta(curr.energy.l1ToReg, prev.energy.l1ToReg);
        double d_l2 = delta(curr.energy.l2ToL1, prev.energy.l2ToL1);
        double d_dram =
            delta(curr.energy.dramToL2, prev.energy.dramToL2);
        double d_link =
            delta(curr.energy.interModule, prev.energy.interModule);

        std::string step = std::to_string(steps[i - 1].first) + "->" +
                           std::to_string(steps[i].first);
        table.addRow({step, TextTable::num(speedup, 2),
                      TextTable::pct(d_total), TextTable::pct(d_busy),
                      TextTable::pct(d_idle), TextTable::pct(d_const),
                      TextTable::pct(d_l1), TextTable::pct(d_l2),
                      TextTable::pct(d_dram),
                      TextTable::pct(d_link)});
        csv.addRow({step, TextTable::num(speedup, 3),
                    TextTable::num(d_total, 2),
                    TextTable::num(d_busy, 2),
                    TextTable::num(d_idle, 2),
                    TextTable::num(d_const, 2),
                    TextTable::num(d_l1, 2), TextTable::num(d_l2, 2),
                    TextTable::num(d_dram, 2),
                    TextTable::num(d_link, 2)});

        if (i == 1)
            speed_1_2 = speedup;
        if (steps[i].first == 32) {
            speed_16_32 = speedup;
            de_16_32 = d_total;
            double worst = std::max(
                {d_busy, d_idle, d_const, d_l1, d_l2, d_dram, d_link});
            dominant_16_32 = worst == d_const  ? "constant overhead"
                             : worst == d_idle ? "SM idle"
                                               : "other";
        }
    }
    table.print(std::cout);

    // Monolithic comparison for the 16->32 step (paper: 80.8%).
    Aggregate mono16 =
        aggregateFor(runner, sim::monolithicConfig(16));
    Aggregate mono32 =
        aggregateFor(runner, sim::monolithicConfig(32));
    double mono_speedup = mono16.seconds / mono32.seconds;

    std::printf("\n1->2 speedup: +%.1f%% (paper +86.8%%)\n",
                (speed_1_2 - 1.0) * 100.0);
    std::printf("16->32 speedup: +%.1f%% (paper +47%%); monolithic "
                "16->32: +%.1f%% (paper +80.8%%)\n",
                (speed_16_32 - 1.0) * 100.0,
                (mono_speedup - 1.0) * 100.0);
    std::printf("16->32 energy increase: %.1f%% (paper +15.7%%); "
                "dominant growth component: %s (paper: constant "
                "energy overhead)\n",
                de_16_32, dominant_16_32.c_str());
    bench::writeCsv("fig7_incremental", csv);

    bool shape_ok = speed_1_2 > 1.7 && speed_16_32 < speed_1_2 &&
                    mono_speedup > speed_16_32 && de_16_32 > 0.0;
    return shape_ok ? 0 : 1;
}
