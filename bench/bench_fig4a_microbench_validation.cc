/**
 * @file
 * Regenerates paper Figure 4a: energy-estimation error of the mixed
 * FADD64 + memory-level validation microbenchmarks. The paper
 * reports errors between +2.5% and -6%.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner("Mixed-microbenchmark validation error",
                  "Figure 4a (errors within +2.5% / -6% on the K40)");

    const auto &calib = bench::studyContext().calibration();

    TextTable table("GPUJoule vs sensor, validation microbenchmarks");
    table.header({"microbenchmark", "modeled (J)", "measured (J)",
                  "error"});
    CsvWriter csv({"bench", "modeled_J", "measured_J", "error_pct"});

    double worst_pos = 0.0, worst_neg = 0.0;
    for (const auto &point : calib.validation) {
        double err = point.relativeError() * 100.0;
        worst_pos = std::max(worst_pos, err);
        worst_neg = std::min(worst_neg, err);
        table.addRow({point.name, TextTable::num(point.modeled, 2),
                      TextTable::num(point.measured, 2),
                      TextTable::pct(err)});
        csv.addRow({point.name, TextTable::num(point.modeled, 4),
                    TextTable::num(point.measured, 4),
                    TextTable::num(err, 2)});
    }
    table.print(std::cout);

    std::printf("\nerror envelope: %+.1f%% .. %+.1f%% "
                "(paper: +2.5%% .. -6%%)\n",
                worst_pos, worst_neg);
    bench::writeCsv("fig4a_microbench_validation", csv);

    // The envelope should stay in the same ballpark as the paper's.
    return (worst_pos <= 8.0 && worst_neg >= -10.0) ? 0 : 1;
}
