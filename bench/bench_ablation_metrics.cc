/**
 * @file
 * Ablation: does the choice of efficiency metric change the story?
 *
 * The paper's §V-D cautions that its conclusions should be checked
 * against other combined metrics — "similar trends will be apparent
 * with other metrics that rely on ED2 or performance/watt as well".
 * This bench computes EDPSE (Eq. 2), ED2PSE (Eq. 3 with i = 2), and
 * performance-per-watt scaling efficiency side by side across the
 * on-package scaling sweep.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner("Metric sensitivity: EDPSE vs ED2PSE vs perf/W",
                  "Section V-D (trends agree across metric choices)");

    harness::ScalingRunner runner = bench::makeRunner();
    const auto &workloads = trace::scalingWorkloads();

    std::vector<sim::GpuConfig> sweep;
    for (unsigned n : sim::tableThreeGpmCounts())
        sweep.push_back(sim::multiGpmConfig(n, sim::BwSetting::Bw2x));
    bench::prefill(runner, sweep, workloads);

    TextTable table("Scaling efficiency (%) per metric, "
                    "2x-BW on-package ring");
    table.header({"config", "EDPSE", "ED2PSE", "perf/W SE",
                  "ordering agrees?"});
    CsvWriter csv({"gpms", "edpse", "ed2pse", "perf_per_watt_se"});

    double prev_edpse = 1e9, prev_ed2 = 1e9, prev_ppw = 1e9;
    bool all_monotone = true;
    for (unsigned n : sim::tableThreeGpmCounts()) {
        auto config = sim::multiGpmConfig(n, sim::BwSetting::Bw2x);
        auto points = harness::scalingStudy(runner, config, workloads);
        double edpse =
            harness::meanOf(points, &harness::ScalingPoint::edpse);
        double ed2 =
            harness::meanOf(points, &harness::ScalingPoint::ed2pse);
        double ppw = harness::meanOf(
            points, &harness::ScalingPoint::perfPerWattSE);

        // Past the caching sweet spot (>= 8 GPMs) every metric must
        // agree the trend is downhill.
        bool agrees = n < 8 ||
                      (edpse <= prev_edpse && ed2 <= prev_ed2 &&
                       ppw <= prev_ppw);
        all_monotone = all_monotone && agrees;
        prev_edpse = edpse;
        prev_ed2 = ed2;
        prev_ppw = ppw;

        table.addRow({std::to_string(n) + "-GPM",
                      TextTable::pct(edpse), TextTable::pct(ed2),
                      TextTable::pct(ppw), agrees ? "yes" : "NO"});
        csv.addRow({std::to_string(n), TextTable::num(edpse, 1),
                    TextTable::num(ed2, 1), TextTable::num(ppw, 1)});
    }
    table.print(std::cout);

    std::printf("\ndiminishing efficiency visible in every metric: "
                "%s (paper §V-D's expectation)\n",
                all_monotone ? "yes" : "NO");
    bench::writeCsv("ablation_metrics", csv);
    return all_monotone ? 0 : 1;
}
