/**
 * @file
 * Regenerates paper Table Ib: the EPI/EPT table of the Tesla K40,
 * as recovered by the GPUJoule calibration pipeline (Figure 3)
 * running against the virtual silicon through the NVML-like sensor.
 *
 * Output columns: the recovered value, the paper's published value,
 * and the relative deviation. The paper validates GPUJoule "within
 * 10% of real silicon"; the recovered table must stay within that.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "gpujoule/energy_table.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner("GPUJoule calibrated EPI/EPT table",
                  "Table Ib (energy of operations measured on HW)");

    const auto &calib = bench::studyContext().calibration();
    joule::EnergyTable paper = joule::paperTableIb();

    std::printf("calibration: %u iteration(s), %s; Const_Power = "
                "%.1f W; EP_stall = %.2f nJ/SM-cycle\n",
                calib.iterations,
                calib.converged ? "converged" : "NOT converged",
                calib.constPower, calib.stallEnergy / units::nJ);

    TextTable epi_table("PTX instruction EPIs (nJ/thread-instr)");
    epi_table.header(
        {"instruction", "recovered", "paper", "delta"});
    CsvWriter csv({"kind", "name", "recovered_nJ", "paper_nJ",
                   "delta_pct"});

    for (std::size_t i = 0; i < isa::numOpcodes; ++i) {
        auto op = static_cast<isa::Opcode>(i);
        if (isa::isMemory(op) || op == isa::Opcode::MOV32)
            continue;
        double recovered = calib.table.epi[i] / units::nJ;
        double published = paper.epi[i] / units::nJ;
        double delta = (recovered - published) / published * 100.0;
        epi_table.addRow({isa::mnemonic(op),
                          TextTable::num(recovered, 3),
                          TextTable::num(published, 3),
                          TextTable::pct(delta)});
        csv.addRow({"epi", isa::mnemonic(op),
                    TextTable::num(recovered, 4),
                    TextTable::num(published, 4),
                    TextTable::num(delta, 2)});
    }
    epi_table.print(std::cout);

    TextTable ept_table(
        "Data movement EPTs (nJ/transaction | pJ/bit)");
    ept_table.header({"transaction", "recovered", "paper", "pJ/bit",
                      "paper pJ/bit", "delta"});
    for (std::size_t i = 0; i < isa::numTxnLevels; ++i) {
        auto level = static_cast<isa::TxnLevel>(i);
        double recovered = calib.table.ept[i] / units::nJ;
        double published = paper.ept[i] / units::nJ;
        double delta = (recovered - published) / published * 100.0;
        ept_table.addRow({isa::txnLevelName(level),
                          TextTable::num(recovered, 2),
                          TextTable::num(published, 2),
                          TextTable::num(calib.table.pjPerBit(level), 2),
                          TextTable::num(paper.pjPerBit(level), 2),
                          TextTable::pct(delta)});
        csv.addRow({"ept", isa::txnLevelName(level),
                    TextTable::num(recovered, 3),
                    TextTable::num(published, 3),
                    TextTable::num(delta, 2)});
    }
    ept_table.print(std::cout);

    double worst = joule::maxRelativeError(calib.table, paper) * 100.0;
    std::printf("\nworst deviation vs published table: %.1f%% "
                "(paper claims fidelity within 10%%)\n",
                worst);
    bench::writeCsv("table1_epi", csv);
    return worst <= 10.0 ? 0 : 1;
}
