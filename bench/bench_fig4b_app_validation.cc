/**
 * @file
 * Regenerates paper Figure 4b: end-to-end energy-estimation error for
 * the 18 Table II applications. The paper reports a 9.4% mean
 * absolute error with four documented outliers above 30%:
 * RSBench/CoMD (low memory utilization exposes unmodeled DRAM
 * background power) and BFS/MiniAMR (kernels shorter than the power
 * sensor's refresh period).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner("Application-level energy validation",
                  "Figure 4b (9.4% mean abs error; 4 outliers >30%)");

    harness::ScalingRunner runner = bench::makeRunner();
    auto points =
        harness::validateApplications(runner, trace::allWorkloads());

    TextTable table("GPUJoule vs sensor, Table II applications");
    table.header({"application", "cat", "modeled (J)", "measured (J)",
                  "error", "paper outlier?"});
    CsvWriter csv({"app", "class", "modeled_J", "measured_J",
                   "error_pct", "expected_outlier"});

    double outlier_min_abs = 1e9, inlier_max_abs = 0.0;
    for (const auto &point : points) {
        double err = point.errorPercent();
        if (point.expectedOutlier)
            outlier_min_abs = std::min(outlier_min_abs, std::abs(err));
        else
            inlier_max_abs = std::max(inlier_max_abs, std::abs(err));
        table.addRow({point.workload,
                      trace::workloadClassName(point.cls),
                      TextTable::num(point.modeled, 1),
                      TextTable::num(point.measured, 1),
                      TextTable::pct(err),
                      point.expectedOutlier ? "yes" : ""});
        csv.addRow({point.workload,
                    trace::workloadClassName(point.cls),
                    TextTable::num(point.modeled, 2),
                    TextTable::num(point.measured, 2),
                    TextTable::num(err, 2),
                    point.expectedOutlier ? "1" : "0"});
    }
    table.print(std::cout);

    double mae = harness::meanAbsoluteErrorPercent(points);
    std::printf("\nmean absolute error: %.1f%% (paper: 9.4%%)\n", mae);
    std::printf("outliers separate from the pack: min |outlier| ="
                " %.1f%%, max |inlier| = %.1f%%\n",
                outlier_min_abs, inlier_max_abs);
    bench::writeCsv("fig4b_app_validation", csv);

    return (outlier_min_abs > inlier_max_abs && mae < 25.0) ? 0 : 1;
}
