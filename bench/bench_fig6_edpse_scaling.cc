/**
 * @file
 * Regenerates paper Figure 6: EDPSE of compute-intensive,
 * memory-intensive, and all workloads as GPM count scales, for the
 * baseline on-package 2x-BW ring configuration. The paper reports a
 * maximum of 94% at 2 GPMs falling to 36% at 32 GPMs, compute
 * workloads above their memory counterparts (with >100% at small
 * counts), and the 50% efficiency threshold crossed past 16 GPMs.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner("EDPSE vs GPM count, on-package 2x-BW ring",
                  "Figure 6 (94% at 2-GPM -> 36% at 32-GPM)");

    harness::ScalingRunner runner = bench::makeRunner();
    const auto &workloads = trace::scalingWorkloads();

    TextTable table("EDPSE (%) by workload class");
    table.header({"config", "compute", "memory", "all",
                  ">= 50% threshold?"});
    CsvWriter csv({"gpms", "edpse_c", "edpse_m", "edpse_all"});

    double all2 = 0.0, all32 = 0.0;
    double c32 = 0.0, m32 = 0.0;
    for (unsigned n : sim::tableThreeGpmCounts()) {
        auto config = sim::multiGpmConfig(n, sim::BwSetting::Bw2x);
        auto points = harness::scalingStudy(runner, config, workloads);
        double c = harness::meanOf(points,
                                   &harness::ScalingPoint::edpse,
                                   trace::WorkloadClass::Compute);
        double m = harness::meanOf(points,
                                   &harness::ScalingPoint::edpse,
                                   trace::WorkloadClass::Memory);
        double all =
            harness::meanOf(points, &harness::ScalingPoint::edpse);
        if (n == 2)
            all2 = all;
        if (n == 32) {
            all32 = all;
            c32 = c;
            m32 = m;
        }
        table.addRow({std::to_string(n) + "-GPM", TextTable::pct(c),
                      TextTable::pct(m), TextTable::pct(all),
                      all >= 50.0 ? "yes" : "NO"});
        csv.addRow({std::to_string(n), TextTable::num(c, 1),
                    TextTable::num(m, 1), TextTable::num(all, 1)});
    }
    table.print(std::cout);

    std::printf("\nall-workloads EDPSE: %.1f%% at 2-GPM (paper 94%%),"
                " %.1f%% at 32-GPM (paper 36%%)\n",
                all2, all32);
    std::printf("compute > memory at 32-GPM: %s (paper: compute "
                "workloads achieve significantly higher EDPSE)\n",
                c32 > m32 ? "yes" : "NO");
    bench::writeCsv("fig6_edpse_scaling", csv);

    bool shape_ok = all2 > all32 && c32 > m32 && all32 < 60.0;
    return shape_ok ? 0 : 1;
}
