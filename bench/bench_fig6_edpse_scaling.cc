/**
 * @file
 * Regenerates paper Figure 6: EDPSE of compute-intensive,
 * memory-intensive, and all workloads as GPM count scales, for the
 * baseline on-package 2x-BW ring configuration. The paper reports a
 * maximum of 94% at 2 GPMs falling to 36% at 32 GPMs, compute
 * workloads above their memory counterparts (with >100% at small
 * counts), and the 50% efficiency threshold crossed past 16 GPMs.
 *
 * This bench doubles as the execution-layer benchmark: it runs the
 * identical sweep three times — serial cold, parallel cold, and
 * warm from the persistent run cache — and writes the wall-clock
 * comparison to BENCH_fig6.json. The figure itself is aggregated
 * from the warm pass; all three passes produce bit-identical
 * outcomes (tests/test_parallel_runner asserts this).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>

#include "bench_util.hh"
#include "common/json.hh"
#include "harness/run_cache.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

namespace
{

/** Wall-clock seconds to drain the whole sweep at @p workers. */
double
timedSweep(harness::ScalingRunner &runner,
           const std::vector<sim::GpuConfig> &configs,
           const std::vector<trace::KernelProfile> &workloads,
           unsigned workers)
{
    auto begin = std::chrono::steady_clock::now();
    harness::ParallelRunner pool(runner, workers);
    for (const auto &config : configs)
        pool.enqueueStudy(config, workloads);
    pool.drain();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

} // namespace

int
main()
{
    setInformEnabled(false);
    bench::banner("EDPSE vs GPM count, on-package 2x-BW ring",
                  "Figure 6 (94% at 2-GPM -> 36% at 32-GPM)");

    const auto &workloads = trace::scalingWorkloads();
    std::vector<sim::GpuConfig> configs;
    for (unsigned n : sim::tableThreeGpmCounts())
        configs.push_back(sim::multiGpmConfig(n, sim::BwSetting::Bw2x));
    // Unique points: every workload on each config plus the shared
    // 1-GPM baseline.
    std::size_t points = workloads.size() * (configs.size() + 1);

    // Calibrate up front so pass A's timing is pure sweep.
    bench::studyContext();

    // Pass A — serial cold: fresh memo cache, persistence detached,
    // one worker. This is the pre-parallelism reference cost.
    harness::ScalingRunner serial_runner = bench::makeRunner();
    serial_runner.attachPersistentCache(nullptr);
    double serial_seconds =
        timedSweep(serial_runner, configs, workloads, 1);

    // Pass B — parallel cold: fresh memo cache, disk reads off so
    // every point genuinely simulates, results published to disk.
    // Uses the process-wide cache file unless MMGPU_NO_CACHE
    // disabled it, in which case a bench-local file stands in.
    harness::RunCache *disk = harness::RunCache::processCache();
    harness::RunCache local_cache(".mmgpu-cache/bench_fig6.json");
    if (disk == nullptr)
        disk = &local_cache;
    harness::ScalingRunner parallel_runner = bench::makeRunner();
    parallel_runner.attachPersistentCache(disk);
    parallel_runner.setPersistentReads(false);
    unsigned workers = harness::ParallelRunner::defaultWorkers();
    double parallel_seconds =
        timedSweep(parallel_runner, configs, workloads, workers);
    disk->flush();

    // Pass C — warm: fresh memo cache again, every point served
    // from the just-written disk entries.
    harness::ScalingRunner runner = bench::makeRunner();
    runner.attachPersistentCache(disk);
    double warm_seconds = timedSweep(runner, configs, workloads, workers);

    // Aggregate the figure from the warm runner's memo cache (the
    // sweep is fully memoized, so runSweep's parallel phase finds
    // nothing to do).
    std::vector<bench::SweepCell> cells;
    for (const auto &config : configs)
        cells.push_back({config});
    const auto results = bench::runSweep(runner, cells, workloads);

    TextTable table("EDPSE (%) by workload class");
    table.header({"config", "compute", "memory", "all",
                  ">= 50% threshold?"});
    CsvWriter csv({"gpms", "edpse_c", "edpse_m", "edpse_all"});

    double all2 = 0.0, all32 = 0.0;
    double c32 = 0.0, m32 = 0.0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        unsigned n = cells[i].config.gpmCount;
        double c = results[i].mean(&harness::ScalingPoint::edpse,
                                   trace::WorkloadClass::Compute);
        double m = results[i].mean(&harness::ScalingPoint::edpse,
                                   trace::WorkloadClass::Memory);
        double all =
            results[i].mean(&harness::ScalingPoint::edpse);
        if (n == 2)
            all2 = all;
        if (n == 32) {
            all32 = all;
            c32 = c;
            m32 = m;
        }
        table.addRow({std::to_string(n) + "-GPM", TextTable::pct(c),
                      TextTable::pct(m), TextTable::pct(all),
                      all >= 50.0 ? "yes" : "NO"});
        csv.addRow({std::to_string(n), TextTable::num(c, 1),
                    TextTable::num(m, 1), TextTable::num(all, 1)});
    }
    table.print(std::cout);

    std::printf("\nall-workloads EDPSE: %.1f%% at 2-GPM (paper 94%%),"
                " %.1f%% at 32-GPM (paper 36%%)\n",
                all2, all32);
    std::printf("compute > memory at 32-GPM: %s (paper: compute "
                "workloads achieve significantly higher EDPSE)\n",
                c32 > m32 ? "yes" : "NO");
    bench::writeCsv("fig6_edpse_scaling", csv);

    std::printf("\nsweep wall-clock (%zu points): serial %.2fs, "
                "parallel (%u workers) %.2fs (%.2fx), warm cache "
                "%.2fs (%.1f%% of serial)\n",
                points, serial_seconds, workers, parallel_seconds,
                serial_seconds / parallel_seconds, warm_seconds,
                100.0 * warm_seconds / serial_seconds);

    JsonValue report = JsonValue::object();
    report.set("bench", "fig6_edpse_scaling");
    report.set("points", static_cast<unsigned long long>(points));
    report.set("workers", workers);
    report.set("hardware_threads",
               std::thread::hardware_concurrency());
    report.set("serial_seconds", serial_seconds);
    report.set("parallel_seconds", parallel_seconds);
    report.set("warm_seconds", warm_seconds);
    report.set("parallel_speedup", serial_seconds / parallel_seconds);
    report.set("warm_fraction_of_serial",
               warm_seconds / serial_seconds);
    report.set("cache_path", disk->path());
    report.set("cache_hits",
               static_cast<unsigned long long>(disk->hits()));
    report.set("cache_misses",
               static_cast<unsigned long long>(disk->misses()));
    {
        std::ofstream os("BENCH_fig6.json");
        report.write(os);
        os << '\n';
        if (os)
            std::printf("[json] BENCH_fig6.json\n");
    }

    bool shape_ok = all2 > all32 && c32 > m32 && all32 < 60.0;
    return shape_ok ? 0 : 1;
}
