/**
 * @file
 * Regenerates paper Figure 8: EDPSE as a function of the inter-GPM
 * bandwidth setting (1x/2x/4x, Table IV) at every GPM count. The
 * paper's key claim: at high GPM counts EDPSE improves by a factor
 * of ~3 when inter-module bandwidth increases by a factor of 4.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner("EDPSE vs interconnect bandwidth settings",
                  "Figure 8 (~3x EDPSE from 4x bandwidth at 32 GPMs)");

    harness::ScalingRunner runner = bench::makeRunner();
    const auto &workloads = trace::scalingWorkloads();

    // Grid: bandwidth settings vary fastest, so row n starts at
    // cell 3n.
    std::vector<bench::SweepCell> cells;
    for (unsigned n : sim::tableThreeGpmCounts())
        for (auto bw : sim::tableFourBwSettings())
            cells.push_back({sim::multiGpmConfig(
                n, bw, noc::Topology::Ring,
                sim::defaultDomainFor(bw))});
    const auto results = bench::runSweep(runner, cells, workloads);

    TextTable table("EDPSE (%) per bandwidth setting");
    table.header({"config", "1x-BW", "2x-BW", "4x-BW",
                  "4x/1x ratio"});
    CsvWriter csv({"gpms", "edpse_1x", "edpse_2x", "edpse_4x"});

    double ratio_at_32 = 0.0;
    std::size_t cell = 0;
    for (unsigned n : sim::tableThreeGpmCounts()) {
        double edpse_by_bw[3] = {};
        for (double &edpse : edpse_by_bw)
            edpse = results[cell++].mean(
                &harness::ScalingPoint::edpse);
        double ratio = edpse_by_bw[2] / edpse_by_bw[0];
        if (n == 32)
            ratio_at_32 = ratio;
        table.addRow({std::to_string(n) + "-GPM",
                      TextTable::pct(edpse_by_bw[0]),
                      TextTable::pct(edpse_by_bw[1]),
                      TextTable::pct(edpse_by_bw[2]),
                      TextTable::num(ratio, 2) + "x"});
        csv.addRow({std::to_string(n),
                    TextTable::num(edpse_by_bw[0], 1),
                    TextTable::num(edpse_by_bw[1], 1),
                    TextTable::num(edpse_by_bw[2], 1)});
    }
    table.print(std::cout);

    std::printf("\nEDPSE gain from 4x bandwidth at 32 GPMs: %.2fx "
                "(paper: ~3x)\n",
                ratio_at_32);
    bench::writeCsv("fig8_bandwidth", csv);
    return ratio_at_32 > 1.5 ? 0 : 1;
}
