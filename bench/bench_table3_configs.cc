/**
 * @file
 * Regenerates paper Tables III and IV: the simulated multi-module
 * configurations and the per-GPM I/O bandwidth settings, printed
 * from the actual GpuConfig factories (so the table can never drift
 * from what the simulations run).
 */

#include <iostream>

#include "bench_util.hh"
#include "sim/gpu_config.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner("Simulated configurations",
                  "Tables III and IV");

    TextTable t3("Table III: simulated multi-module GPU "
                 "configurations");
    t3.header({"configuration", "modules", "total SMs", "L1/SM",
               "total L2", "total DRAM BW"});
    CsvWriter csv({"gpms", "sms", "l2_mib", "dram_gbps"});

    auto add_row = [&](const sim::GpuConfig &config) {
        unsigned n = config.gpmCount;
        t3.addRow({std::to_string(n) + "-GPM", std::to_string(n),
                   std::to_string(config.totalSms()),
                   std::to_string(config.memory.l1BytesPerSm /
                                  units::KiB) +
                       " KB",
                   std::to_string(config.memory.l2BytesPerGpm * n /
                                  units::MiB) +
                       " MB",
                   TextTable::num(config.memory.dramBytesPerCycle * n,
                                  0) +
                       " GB/s"});
        csv.addRow({std::to_string(n),
                    std::to_string(config.totalSms()),
                    std::to_string(config.memory.l2BytesPerGpm * n /
                                   units::MiB),
                    TextTable::num(config.memory.dramBytesPerCycle * n,
                                   0)});
    };

    add_row(sim::baselineConfig());
    for (unsigned n : sim::tableThreeGpmCounts())
        add_row(sim::multiGpmConfig(n, sim::BwSetting::Bw2x));
    t3.print(std::cout);

    TextTable t4("Table IV: simulated per-GPM I/O bandwidth");
    t4.header({"configuration", "inter-GPM BW", "inter-GPM:DRAM",
               "integration domain"});
    for (auto bw : sim::tableFourBwSettings()) {
        double io = sim::bwSettingBytesPerCycle(bw);
        double dram = sim::baselineConfig().memory.dramBytesPerCycle;
        std::string ratio =
            io < dram ? "1:" + TextTable::num(dram / io, 0)
                      : TextTable::num(io / dram, 0) + ":1";
        t4.addRow({sim::bwSettingName(bw),
                   TextTable::num(io, 0) + " GB/s", ratio,
                   sim::domainName(sim::defaultDomainFor(bw))});
    }
    t4.print(std::cout);

    bench::writeCsv("table3_configs", csv);
    return 0;
}
