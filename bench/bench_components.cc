/**
 * @file
 * google-benchmark microbenchmarks of the framework's hot components:
 * cache tag lookups, bandwidth-server arbitration, ring routing, warp
 * trace generation, and a small end-to-end simulation. These guard
 * the simulator's own performance (a full Figure 10 sweep is ~200
 * simulations, so the inner loops matter).
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "engine/calendar.hh"
#include "engine/pool.hh"
#include "mem/cache.hh"
#include "mem/page_table.hh"
#include "noc/bandwidth_server.hh"
#include "noc/interconnect.hh"
#include "noc/topologies/ring.hh"
#include "noc/topologies/switch.hh"
#include "sim/gpu_sim.hh"
#include "trace/warp_trace.hh"
#include "trace/workloads.hh"

namespace
{

using namespace mmgpu;

void
BM_CacheAccess(benchmark::State &state)
{
    mem::SectoredCache cache("bench", 2 * units::MiB, 16);
    Rng rng(1);
    std::uint64_t footprint = 8 * units::MiB / isa::cacheLineBytes;
    for (auto _ : state) {
        std::uint64_t addr =
            rng.below(footprint) * isa::cacheLineBytes;
        benchmark::DoNotOptimize(
            cache.access(addr, mem::fullLineMask, false));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_CalendarScheduleSequential(benchmark::State &state)
{
    // A CTA-dispatch-shaped load: bursts of 8 same-tick events
    // scheduled one by one, drained against a standing population.
    engine::Calendar calendar;
    Rng rng(3);
    double t = 0.0;
    for (unsigned i = 0; i < 1024; ++i)
        calendar.schedule(static_cast<double>(rng.below(64)), i,
                          false);
    for (auto _ : state) {
        t += 1.0;
        for (std::uint32_t w = 0; w < 8; ++w)
            calendar.schedule(t + static_cast<double>(rng.below(4)),
                              w, false);
        for (unsigned p = 0; p < 8; ++p)
            benchmark::DoNotOptimize(calendar.pop());
    }
}
BENCHMARK(BM_CalendarScheduleSequential);

void
BM_CalendarScheduleBatch(benchmark::State &state)
{
    // Same load as BM_CalendarScheduleSequential, but each burst
    // lands via one scheduleBatch() call (the fillSm fast path).
    engine::Calendar calendar;
    Rng rng(3);
    double t = 0.0;
    for (unsigned i = 0; i < 1024; ++i)
        calendar.schedule(static_cast<double>(rng.below(64)), i,
                          false);
    engine::Event burst[8];
    for (auto _ : state) {
        t += 1.0;
        for (std::uint32_t w = 0; w < 8; ++w)
            burst[w] = {t + static_cast<double>(rng.below(4)), w,
                        false};
        calendar.scheduleBatch(burst, 8);
        for (unsigned p = 0; p < 8; ++p)
            benchmark::DoNotOptimize(calendar.pop());
    }
}
BENCHMARK(BM_CalendarScheduleBatch);

void
BM_GenPoolAllocRelease(benchmark::State &state)
{
    // The mem-pipeline task churn: allocate a small working set,
    // touch each slot through its handle, release in FIFO order.
    engine::GenPool<std::uint64_t> pool;
    std::uint32_t handles[16];
    for (auto _ : state) {
        for (unsigned i = 0; i < 16; ++i) {
            handles[i] = pool.alloc();
            pool.at(handles[i]) = i;
        }
        std::uint64_t sum = 0;
        for (unsigned i = 0; i < 16; ++i)
            sum += pool.at(handles[i]);
        benchmark::DoNotOptimize(sum);
        for (unsigned i = 0; i < 16; ++i)
            pool.release(handles[i]);
    }
}
BENCHMARK(BM_GenPoolAllocRelease);

void
BM_PageTableTouch(benchmark::State &state)
{
    // Line-granular touches over a block-streamed footprint: long
    // same-page runs (the one-entry cache's hit case) with a page
    // crossing every 32nd access.
    mem::PageTable table(8);
    Rng rng(4);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        addr += isa::cacheLineBytes;
        if (addr >= 64 * units::MiB)
            addr = rng.below(1024) * mem::PageTable::pageBytes;
        benchmark::DoNotOptimize(
            table.touch(addr, static_cast<unsigned>(addr >> 22) % 8));
    }
}
BENCHMARK(BM_PageTableTouch);

void
BM_BandwidthServer(benchmark::State &state)
{
    noc::BandwidthServer server("bench", 256.0);
    double t = 0.0;
    for (auto _ : state) {
        t += 0.5;
        benchmark::DoNotOptimize(server.acquire(t, 128.0));
    }
}
BENCHMARK(BM_BandwidthServer);

void
BM_RingTransfer(benchmark::State &state)
{
    noc::RingNetwork ring(32, 64.0, 40);
    Rng rng(2);
    double t = 0.0;
    for (auto _ : state) {
        unsigned src = static_cast<unsigned>(rng.below(32));
        unsigned dst = static_cast<unsigned>(rng.below(32));
        if (src == dst)
            dst = (dst + 1) % 32;
        t += 1.0;
        benchmark::DoNotOptimize(ring.transfer(t, src, dst, 128.0));
    }
}
BENCHMARK(BM_RingTransfer);

void
BM_WarpTraceGeneration(benchmark::State &state)
{
    const auto &profile = trace::scalingWorkloads().front();
    trace::SegmentLayout layout(profile);
    unsigned cta = 0;
    for (auto _ : state) {
        trace::WarpTrace trace(profile, layout, 0,
                               cta++ % profile.ctaCount, 0);
        while (trace.next().kind != isa::TraceOpKind::Exit) {
        }
    }
}
BENCHMARK(BM_WarpTraceGeneration);

void
BM_SmallSimulation(benchmark::State &state)
{
    trace::KernelProfile profile;
    profile.name = "bench";
    profile.ctaCount = 64;
    profile.warpsPerCta = 2;
    profile.iterations = 4;
    profile.segments.push_back({"seg", 1 * units::MiB});
    trace::SegmentAccess access;
    access.segment = 0;
    access.pattern = trace::AccessPattern::BlockStream;
    access.perIteration = 2;
    profile.loads.push_back(access);
    profile.compute.push_back({isa::Opcode::FFMA32, 4});

    sim::GpuSim machine(sim::baselineConfig());
    for (auto _ : state)
        benchmark::DoNotOptimize(machine.run(profile));
}
BENCHMARK(BM_SmallSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
