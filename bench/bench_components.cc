/**
 * @file
 * google-benchmark microbenchmarks of the framework's hot components:
 * cache tag lookups, bandwidth-server arbitration, ring routing, warp
 * trace generation, and a small end-to-end simulation. These guard
 * the simulator's own performance (a full Figure 10 sweep is ~200
 * simulations, so the inner loops matter).
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "mem/cache.hh"
#include "noc/bandwidth_server.hh"
#include "noc/interconnect.hh"
#include "sim/gpu_sim.hh"
#include "trace/warp_trace.hh"
#include "trace/workloads.hh"

namespace
{

using namespace mmgpu;

void
BM_CacheAccess(benchmark::State &state)
{
    mem::SectoredCache cache("bench", 2 * units::MiB, 16);
    Rng rng(1);
    std::uint64_t footprint = 8 * units::MiB / isa::cacheLineBytes;
    for (auto _ : state) {
        std::uint64_t addr =
            rng.below(footprint) * isa::cacheLineBytes;
        benchmark::DoNotOptimize(
            cache.access(addr, mem::fullLineMask, false));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_BandwidthServer(benchmark::State &state)
{
    noc::BandwidthServer server("bench", 256.0);
    double t = 0.0;
    for (auto _ : state) {
        t += 0.5;
        benchmark::DoNotOptimize(server.acquire(t, 128.0));
    }
}
BENCHMARK(BM_BandwidthServer);

void
BM_RingTransfer(benchmark::State &state)
{
    noc::RingNetwork ring(32, 64.0, 40);
    Rng rng(2);
    double t = 0.0;
    for (auto _ : state) {
        unsigned src = static_cast<unsigned>(rng.below(32));
        unsigned dst = static_cast<unsigned>(rng.below(32));
        if (src == dst)
            dst = (dst + 1) % 32;
        t += 1.0;
        benchmark::DoNotOptimize(ring.transfer(t, src, dst, 128.0));
    }
}
BENCHMARK(BM_RingTransfer);

void
BM_WarpTraceGeneration(benchmark::State &state)
{
    const auto &profile = trace::scalingWorkloads().front();
    trace::SegmentLayout layout(profile);
    unsigned cta = 0;
    for (auto _ : state) {
        trace::WarpTrace trace(profile, layout, 0,
                               cta++ % profile.ctaCount, 0);
        while (trace.next().kind != isa::TraceOpKind::Exit) {
        }
    }
}
BENCHMARK(BM_WarpTraceGeneration);

void
BM_SmallSimulation(benchmark::State &state)
{
    trace::KernelProfile profile;
    profile.name = "bench";
    profile.ctaCount = 64;
    profile.warpsPerCta = 2;
    profile.iterations = 4;
    profile.segments.push_back({"seg", 1 * units::MiB});
    trace::SegmentAccess access;
    access.segment = 0;
    access.pattern = trace::AccessPattern::BlockStream;
    access.perIteration = 2;
    profile.loads.push_back(access);
    profile.compute.push_back({isa::Opcode::FFMA32, 4});

    sim::GpuSim machine(sim::baselineConfig());
    for (auto _ : state)
        benchmark::DoNotOptimize(machine.run(profile));
}
BENCHMARK(BM_SmallSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
