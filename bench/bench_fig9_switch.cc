/**
 * @file
 * Regenerates paper Figure 9: EDPSE of on-board multi-module GPUs
 * with a ring versus a high-radix switch (NVSwitch-style). The paper
 * reports the switch improving EDPSE by nearly 2x at 32 GPMs despite
 * unchanged link bandwidth (and despite the extra 10 pJ/bit crossing
 * energy).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner("On-board ring vs high-radix switch",
                  "Figure 9 (switch ~2x EDPSE at 32 GPMs, same links)");

    harness::ScalingRunner runner = bench::makeRunner();
    const auto &workloads = trace::scalingWorkloads();

    // Grid: (ring 1x, switch 1x, switch 2x) per GPM count, so row n
    // starts at cell 3n.
    std::vector<bench::SweepCell> cells;
    for (unsigned n : sim::tableThreeGpmCounts()) {
        cells.push_back({sim::multiGpmConfig(
            n, sim::BwSetting::Bw1x, noc::Topology::Ring,
            sim::IntegrationDomain::OnBoard)});
        cells.push_back({sim::multiGpmConfig(
            n, sim::BwSetting::Bw1x, noc::Topology::Switch,
            sim::IntegrationDomain::OnBoard)});
        cells.push_back({sim::multiGpmConfig(
            n, sim::BwSetting::Bw2x, noc::Topology::Switch,
            sim::IntegrationDomain::OnBoard)});
    }
    const auto results = bench::runSweep(runner, cells, workloads);

    TextTable table("EDPSE (%), on-board integration");
    table.header({"config", "ring (1x-BW)", "switch (1x-BW)",
                  "switch (2x-BW)", "switch/ring"});
    CsvWriter csv({"gpms", "ring_1x", "switch_1x", "switch_2x"});

    double gain_at_32 = 0.0;
    std::size_t cell = 0;
    for (unsigned n : sim::tableThreeGpmCounts()) {
        double e_ring =
            results[cell++].mean(&harness::ScalingPoint::edpse);
        double e_sw1 =
            results[cell++].mean(&harness::ScalingPoint::edpse);
        double e_sw2 =
            results[cell++].mean(&harness::ScalingPoint::edpse);

        double gain = e_sw1 / e_ring;
        if (n == 32)
            gain_at_32 = gain;
        table.addRow({std::to_string(n) + "-GPM",
                      TextTable::pct(e_ring), TextTable::pct(e_sw1),
                      TextTable::pct(e_sw2),
                      TextTable::num(gain, 2) + "x"});
        csv.addRow({std::to_string(n), TextTable::num(e_ring, 1),
                    TextTable::num(e_sw1, 1),
                    TextTable::num(e_sw2, 1)});
    }
    table.print(std::cout);

    std::printf("\nswitch EDPSE gain over ring at 32 GPMs (same "
                "1x-BW links): %.2fx (paper: ~2x)\n",
                gain_at_32);
    bench::writeCsv("fig9_switch", csv);
    return gain_at_32 > 1.3 ? 0 : 1;
}
