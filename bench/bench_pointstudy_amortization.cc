/**
 * @file
 * Regenerates the paper's §V-C constant-energy amortization study:
 * a 32-GPM on-package (2x-BW) system where the per-GPM constant
 * power is shared across GPMs at 0% / 25% / 50% rates. The paper
 * reports that 50% amortization cuts absolute energy by 22.3% and
 * raises EDPSE by 8.1 points versus no amortization; 25% gives
 * 10.4% and 3.5 points.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner("Constant-energy amortization, 32-GPM on-package",
                  "Section V-C (50%: -22.3% energy, +8.1 EDPSE pts; "
                  "25%: -10.4%, +3.5 pts)");

    harness::ScalingRunner runner = bench::makeRunner();
    const auto &workloads = trace::scalingWorkloads();
    auto config = sim::multiGpmConfig(32, sim::BwSetting::Bw2x);

    struct Point
    {
        const char *label;
        double growth; //!< constGrowthFraction override
        double energy = 0.0;
        double edpse = 0.0;
    };
    Point points[] = {
        {"no amortization", 1.0},
        {"25% amortized", 0.75},
        {"50% amortized (baseline)", 0.5},
    };

    TextTable table("Energy and EDPSE vs amortization rate");
    table.header({"amortization", "energy ratio", "EDPSE",
                  "dE vs none", "dEDPSE vs none"});
    CsvWriter csv({"growth_fraction", "energy_ratio", "edpse"});

    std::vector<bench::SweepCell> cells;
    for (const auto &point : points)
        cells.push_back({config, 1.0, point.growth});
    const auto results = bench::runSweep(runner, cells, workloads);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        points[i].energy =
            results[i].mean(&harness::ScalingPoint::energyRatio);
        points[i].edpse =
            results[i].mean(&harness::ScalingPoint::edpse);
    }
    for (const auto &point : points) {
        double de =
            (1.0 - point.energy / points[0].energy) * 100.0;
        table.addRow({point.label, TextTable::num(point.energy, 3),
                      TextTable::pct(point.edpse),
                      TextTable::num(de, 1) + "%",
                      "+" + TextTable::num(
                                point.edpse - points[0].edpse, 1)});
        csv.addRow({TextTable::num(point.growth, 2),
                    TextTable::num(point.energy, 3),
                    TextTable::num(point.edpse, 2)});
    }
    table.print(std::cout);

    double cut50 = (1.0 - points[2].energy / points[0].energy) * 100.0;
    double cut25 = (1.0 - points[1].energy / points[0].energy) * 100.0;
    std::printf("\n50%% amortization: -%.1f%% energy (paper 22.3%%), "
                "+%.1f EDPSE points (paper 8.1)\n",
                cut50, points[2].edpse - points[0].edpse);
    std::printf("25%% amortization: -%.1f%% energy (paper 10.4%%), "
                "+%.1f EDPSE points (paper 3.5)\n",
                cut25, points[1].edpse - points[0].edpse);
    bench::writeCsv("pointstudy_amortization", csv);

    bool shape_ok = cut50 > cut25 && cut25 > 0.0 &&
                    points[2].edpse > points[1].edpse &&
                    points[1].edpse > points[0].edpse;
    return shape_ok ? 0 : 1;
}
