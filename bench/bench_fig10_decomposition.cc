/**
 * @file
 * Regenerates paper Figure 10: absolute speedup and energy (both
 * normalized to the 1-GPM GPU) for every GPM count at all three
 * bandwidth settings, with constant-energy amortization applied when
 * moving from the on-board (1x-BW) to on-package (2x/4x-BW) domains;
 * ring topology throughout.
 *
 * Paper reference points at 32 GPMs: quadrupling inter-GPM bandwidth
 * alone cuts energy by 27.4%; moving on-package (amortization)
 * raises the cut to 45%; a 16-GPM/2x-BW design outperforms a
 * 32-GPM/1x-BW design at about half the energy; and the overall
 * trajectory from >100% energy growth to ~10% while strong scaling
 * by ~18x (paper conclusion).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner("Speedup and energy vs bandwidth and domain",
                  "Figure 10 (-27.4% energy from 4x BW; -45% with "
                  "on-package amortization)");

    harness::ScalingRunner runner = bench::makeRunner();
    const auto &workloads = trace::scalingWorkloads();

    std::vector<sim::GpuConfig> sweep;
    for (unsigned n : sim::tableThreeGpmCounts())
        for (auto bw : sim::tableFourBwSettings())
            sweep.push_back(sim::multiGpmConfig(
                n, bw, noc::Topology::Ring, sim::defaultDomainFor(bw)));
    sweep.push_back(sim::multiGpmConfig(32, sim::BwSetting::Bw4x,
                                        noc::Topology::Ring,
                                        sim::IntegrationDomain::OnBoard));
    bench::prefill(runner, sweep, workloads);

    TextTable table("Normalized to the 1-GPM GPU (ring everywhere)");
    table.header({"config", "BW", "domain", "speedup",
                  "energy ratio"});
    CsvWriter csv({"gpms", "bw", "domain", "speedup", "energy"});

    // energy[gpms-index][bw-index], speedup likewise.
    double e32_1x = 0.0, e32_4x = 0.0;
    double s32_4x = 0.0;
    double e16_2x = 0.0, s16_2x = 0.0, s32_1x = 0.0;
    for (unsigned n : sim::tableThreeGpmCounts()) {
        for (auto bw : sim::tableFourBwSettings()) {
            auto domain = sim::defaultDomainFor(bw);
            auto config = sim::multiGpmConfig(
                n, bw, noc::Topology::Ring, domain);
            auto points =
                harness::scalingStudy(runner, config, workloads);
            double speed = harness::meanOf(
                points, &harness::ScalingPoint::speedup);
            double energy = harness::meanOf(
                points, &harness::ScalingPoint::energyRatio);

            if (n == 32 && bw == sim::BwSetting::Bw1x) {
                e32_1x = energy;
                s32_1x = speed;
            }
            if (n == 32 && bw == sim::BwSetting::Bw4x) {
                e32_4x = energy;
                s32_4x = speed;
            }
            if (n == 16 && bw == sim::BwSetting::Bw2x) {
                e16_2x = energy;
                s16_2x = speed;
            }
            table.addRow({std::to_string(n) + "-GPM",
                          sim::bwSettingName(bw),
                          sim::domainName(domain),
                          TextTable::num(speed, 2),
                          TextTable::num(energy, 2)});
            csv.addRow({std::to_string(n), sim::bwSettingName(bw),
                        sim::domainName(domain),
                        TextTable::num(speed, 3),
                        TextTable::num(energy, 3)});
        }
    }
    table.print(std::cout);

    // Isolate the two §V-D effects at 32 GPMs: bandwidth alone
    // (on-board domain at 4x-BW, no amortization) and bandwidth plus
    // on-package amortization (the default 4x-BW pairing above).
    auto bw_only = sim::multiGpmConfig(32, sim::BwSetting::Bw4x,
                                       noc::Topology::Ring,
                                       sim::IntegrationDomain::OnBoard);
    double e32_4x_onboard = harness::meanOf(
        harness::scalingStudy(runner, bw_only, workloads),
        &harness::ScalingPoint::energyRatio);

    double cut_bw = (1.0 - e32_4x_onboard / e32_1x) * 100.0;
    double cut_total = (1.0 - e32_4x / e32_1x) * 100.0;
    std::printf("\n32-GPM energy cut from 4x bandwidth alone: %.1f%% "
                "(paper 27.4%%)\n",
                cut_bw);
    std::printf("32-GPM energy cut incl. on-package amortization: "
                "%.1f%% (paper 45%%)\n",
                cut_total);
    std::printf("16-GPM/2x-BW vs 32-GPM/1x-BW: speedup %.2f vs %.2f, "
                "energy %.2f vs %.2f (paper: the 16-GPM design wins "
                "at about half the energy)\n",
                s16_2x, s32_1x, e16_2x, e32_1x);
    std::printf("best 32-GPM point: %.1fx speedup at %.0f%% energy "
                "growth (paper conclusion: ~18x at ~10%%)\n",
                s32_4x, (e32_4x - 1.0) * 100.0);
    bench::writeCsv("fig10_decomposition", csv);

    bool shape_ok = cut_bw > 5.0 && cut_total > cut_bw &&
                    e16_2x < e32_1x;
    return shape_ok ? 0 : 1;
}
