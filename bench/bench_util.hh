/**
 * @file
 * Shared scaffolding for the per-figure bench binaries.
 *
 * Every bench regenerates one table or figure of the paper: it runs
 * the relevant simulations through a calibrated StudyContext, prints
 * the series as an aligned text table (with the paper's reported
 * values alongside where the paper states them), and drops a CSV next
 * to the binary for re-plotting.
 */

#ifndef MMGPU_BENCH_BENCH_UTIL_HH
#define MMGPU_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/table.hh"
#include "harness/parallel_runner.hh"
#include "harness/study.hh"
#include "harness/validation.hh"

namespace mmgpu::bench
{

/**
 * Calibrate once per process and hand out the shared context.
 *
 * Thread-safe and idempotent: the calibration campaign runs exactly
 * once under std::call_once, concurrent callers block until it
 * finishes, and the returned reference stays valid for the rest of
 * the process. The StudyContext itself is immutable after
 * construction, so worker threads may use it freely.
 */
harness::StudyContext &studyContext();

/** A fresh memoizing runner bound to the shared context. */
harness::ScalingRunner makeRunner();

/**
 * Submit every (config x workload) point of a sweep — plus the 1-GPM
 * baseline each scalingStudy() compares against — to a ParallelRunner
 * and drain it, so the bench's subsequent serial passes hit a warm
 * memo cache. Points already memoized (or served by the persistent
 * cache) cost nothing.
 */
void prefill(harness::ScalingRunner &runner,
             const std::vector<sim::GpuConfig> &configs,
             const std::vector<trace::KernelProfile> &workloads,
             double link_energy_scale = 1.0,
             double const_growth_override = -1.0);

/**
 * One cell of a declarative sweep: a machine configuration plus the
 * energy-model knobs scalingStudy() threads to the estimator. Most
 * benches sweep configs only; the point studies vary the knobs too.
 */
struct SweepCell
{
    sim::GpuConfig config;
    double linkEnergyScale = 1.0;
    double constGrowthOverride = -1.0;
};

/** An evaluated cell: its per-workload scaling points, with mean
 *  reductions over any ScalingPoint metric. */
struct SweepResult
{
    std::vector<harness::ScalingPoint> points;

    double
    mean(double harness::ScalingPoint::*metric) const
    {
        return harness::meanOf(points, metric);
    }

    double
    mean(double harness::ScalingPoint::*metric,
         trace::WorkloadClass cls) const
    {
        return harness::meanOf(points, metric, cls);
    }
};

/**
 * Evaluate every cell of a sweep against one memoizing runner: the
 * whole grid is enqueued into a ParallelRunner up front (cold points
 * simulate concurrently, memoized or disk-cached ones cost nothing),
 * then each cell is aggregated serially from the warm memo cache.
 * Results come back in cell order, so a bench declares its grid,
 * calls runSweep once, and keeps only the table/CSV formatting.
 */
std::vector<SweepResult>
runSweep(harness::ScalingRunner &runner,
         const std::vector<SweepCell> &cells,
         const std::vector<trace::KernelProfile> &workloads);

/**
 * Write @p csv to "<name>.csv" in the current directory (benches are
 * run from the build tree); failures only warn.
 */
void writeCsv(const std::string &name, const CsvWriter &csv);

/** Print the standard bench banner. */
void banner(const std::string &what, const std::string &paper_ref);

} // namespace mmgpu::bench

#endif // MMGPU_BENCH_BENCH_UTIL_HH
