/**
 * @file
 * Shared scaffolding for the per-figure bench binaries.
 *
 * Every bench regenerates one table or figure of the paper: it runs
 * the relevant simulations through a calibrated StudyContext, prints
 * the series as an aligned text table (with the paper's reported
 * values alongside where the paper states them), and drops a CSV next
 * to the binary for re-plotting.
 */

#ifndef MMGPU_BENCH_BENCH_UTIL_HH
#define MMGPU_BENCH_BENCH_UTIL_HH

#include <string>

#include "common/csv.hh"
#include "common/table.hh"
#include "harness/study.hh"
#include "harness/validation.hh"

namespace mmgpu::bench
{

/** Calibrate once per process and hand out the shared context. */
harness::StudyContext &studyContext();

/** A fresh memoizing runner bound to the shared context. */
harness::ScalingRunner makeRunner();

/**
 * Write @p csv to "<name>.csv" in the current directory (benches are
 * run from the build tree); failures only warn.
 */
void writeCsv(const std::string &name, const CsvWriter &csv);

/** Print the standard bench banner. */
void banner(const std::string &what, const std::string &paper_ref);

} // namespace mmgpu::bench

#endif // MMGPU_BENCH_BENCH_UTIL_HH
