/**
 * @file
 * Regenerates paper Figure 2: average energy to compute a fixed-size
 * problem, normalized to the single-GPU baseline, as GPM count grows
 * under on-board integration. The paper reports ~2x at 32 GPMs —
 * the "multi-module GPUs are on a trajectory to become 2x less
 * energy efficient" headline.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner(
        "Energy cost of on-board strong scaling (14 workloads)",
        "Figure 2 (~2x energy at 32x capability)");

    harness::ScalingRunner runner = bench::makeRunner();
    const auto &workloads = trace::scalingWorkloads();

    std::vector<bench::SweepCell> cells;
    for (unsigned n : sim::tableThreeGpmCounts())
        cells.push_back(
            {sim::multiGpmConfig(n, sim::BwSetting::Bw1x,
                                 noc::Topology::Ring,
                                 sim::IntegrationDomain::OnBoard)});
    const auto results = bench::runSweep(runner, cells, workloads);

    TextTable table("Energy normalized to 1-GPM GPU "
                    "(1x-BW on-board ring)");
    table.header({"GPU capability", "energy ratio", "speedup",
                  "ideal energy"});
    CsvWriter csv({"gpms", "energy_ratio", "speedup"});

    double ratio32 = 0.0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        unsigned n = cells[i].config.gpmCount;
        double ratio =
            results[i].mean(&harness::ScalingPoint::energyRatio);
        double speed =
            results[i].mean(&harness::ScalingPoint::speedup);
        if (n == 32)
            ratio32 = ratio;
        char label[16];
        std::snprintf(label, sizeof(label), "%ux", n);
        table.addRow({label, TextTable::num(ratio, 2),
                      TextTable::num(speed, 2), "1.00"});
        csv.addRow({std::to_string(n), TextTable::num(ratio, 3),
                    TextTable::num(speed, 3)});
    }
    table.print(std::cout);

    std::printf("\n32x energy ratio: %.2fx (paper: ~2x; ideal: 1x)\n",
                ratio32);
    bench::writeCsv("fig2_energy_scaling", csv);
    return (ratio32 > 1.5 && ratio32 < 3.5) ? 0 : 1;
}
