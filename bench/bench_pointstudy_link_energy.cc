/**
 * @file
 * Regenerates the paper's §V-C interconnect-energy point study:
 * on the 32-GPM on-board (1x-BW) design, scale the per-bit link
 * energy by 2x and 4x while leaving bandwidth unchanged. The paper
 * finds the EDPSE impact stays below 1% even at 4x — and that
 * spending 4x link energy to buy 2x link bandwidth *raises* EDPSE by
 * 8.8%, the "be locally inefficient to win globally" conclusion.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "trace/workloads.hh"

using namespace mmgpu;

int
main()
{
    setInformEnabled(false);
    bench::banner("Interconnect energy sensitivity, 32-GPM on-board",
                  "Section V-C point study (<1% EDPSE impact at 4x "
                  "link energy; +8.8% EDPSE for 4x energy -> 2x BW)");

    harness::ScalingRunner runner = bench::makeRunner();
    const auto &workloads = trace::scalingWorkloads();

    auto base_config = sim::multiGpmConfig(
        32, sim::BwSetting::Bw1x, noc::Topology::Ring,
        sim::IntegrationDomain::OnBoard);

    // Cells 0-2: link energy x1/x2/x4 at fixed bandwidth. Cell 3:
    // the trade — 4x link energy buying 2x link bandwidth.
    const double scales[] = {1.0, 2.0, 4.0};
    std::vector<bench::SweepCell> cells;
    for (double scale : scales)
        cells.push_back({base_config, scale});
    cells.push_back({sim::multiGpmConfig(
                         32, sim::BwSetting::Bw2x,
                         noc::Topology::Ring,
                         sim::IntegrationDomain::OnBoard),
                     4.0});
    const auto results = bench::runSweep(runner, cells, workloads);

    TextTable table("EDPSE vs link energy scaling (bandwidth fixed)");
    table.header({"link energy", "EDPSE", "delta vs 1x",
                  "energy ratio"});
    CsvWriter csv({"scale", "edpse", "energy_ratio"});

    double edpse_base = 0.0, edpse_4x = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
        double scale = scales[i];
        double edpse =
            results[i].mean(&harness::ScalingPoint::edpse);
        double energy =
            results[i].mean(&harness::ScalingPoint::energyRatio);
        if (scale == 1.0)
            edpse_base = edpse;
        if (scale == 4.0)
            edpse_4x = edpse;
        char label[32];
        std::snprintf(label, sizeof(label), "%.0fx (%.0f pJ/bit)",
                      scale, 10.0 * scale);
        table.addRow({label, TextTable::pct(edpse),
                      TextTable::pct(edpse - edpse_base),
                      TextTable::num(energy, 3)});
        csv.addRow({TextTable::num(scale, 0),
                    TextTable::num(edpse, 2),
                    TextTable::num(energy, 3)});
    }
    table.print(std::cout);

    double impact = edpse_base - edpse_4x;
    std::printf("\nEDPSE impact of 4x link energy: %.2f points "
                "(paper: below 1%%)\n",
                impact);

    double edpse_traded =
        results[3].mean(&harness::ScalingPoint::edpse);
    std::printf("4x link energy -> 2x bandwidth: EDPSE %.1f%% -> "
                "%.1f%% (+%.1f points; paper: +8.8%%)\n",
                edpse_base, edpse_traded, edpse_traded - edpse_base);
    bench::writeCsv("pointstudy_link_energy", csv);

    return (impact < 3.0 && edpse_traded > edpse_base) ? 0 : 1;
}
