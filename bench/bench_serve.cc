/**
 * @file
 * Service-layer bench: what does the daemon add on top of the
 * simulations it serves, and what does its memo reuse buy?
 *
 * Drives the Figure 6 sweep (a full scaling study per Table III
 * module count) through an in-process SimService twice:
 *
 *   cold  every study simulates from scratch (empty memo cache);
 *         latency is dominated by simulation itself
 *   warm  the same requests again; everything is served from the
 *         runner's memo cache, so latency IS the service overhead
 *         (admission, routing, dedup bookkeeping, encoding)
 *
 * The warm pass is pipelined (all studies submitted before any
 * response is awaited) so the admission queue actually fills and the
 * housekeeper's queue-depth timeseries shows real backlog. Results
 * land in BENCH_serve.json: per-request cold/warm latencies, the
 * cold:warm ratio, service stats, and the queue-depth timeseries.
 *
 * A third phase measures *fairness under overload*: a second service
 * with per-client quotas enabled serves a light, paced client while
 * a flooding client hammers it with batch-tier work. The light
 * client's p95 with the flood running must stay within 2x its solo
 * p95 (the quota + priority gates are what make that true); both
 * percentiles and the flood's reject accounting are recorded under
 * "fairness" and the bench exits nonzero when the bound is missed.
 */

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/json.hh"
#include "common/wallclock.hh"
#include "serve/service.hh"
#include "sim/gpu_config.hh"

namespace
{

using namespace mmgpu;

serve::Request
studyRequest(unsigned gpms)
{
    serve::Request request;
    request.type = serve::RequestType::Study;
    request.id = "fig6-" + std::to_string(gpms);
    request.spec.workload = "all";
    request.spec.gpms = gpms;
    request.spec.bw = sim::BwSetting::Bw2x;
    return request;
}

/** Latencies of one pass over the Figure 6 sweep, pipelined. */
std::vector<double>
sweepLatencies(serve::SimService &service,
               const std::vector<unsigned> &gpm_counts)
{
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t pending = gpm_counts.size();
    std::vector<double> latencies(gpm_counts.size(), 0.0);
    std::vector<std::int64_t> submitted(gpm_counts.size(), 0);

    for (std::size_t i = 0; i < gpm_counts.size(); ++i) {
        submitted[i] = wallclock::nowMs();
        service.submit(
            studyRequest(gpm_counts[i]),
            [&, i](const serve::Response &response) {
                std::lock_guard<std::mutex> lock(mutex);
                latencies[i] = static_cast<double>(
                    wallclock::nowMs() - submitted[i]);
                if (response.status != serve::ResponseStatus::Ok)
                    latencies[i] = -latencies[i]; // flag failures
                --pending;
                cv.notify_all();
            });
    }
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return pending == 0; });
    return latencies;
}

JsonValue
latencyArray(const std::vector<unsigned> &gpm_counts,
             const std::vector<double> &latencies)
{
    JsonValue array = JsonValue::array();
    for (std::size_t i = 0; i < gpm_counts.size(); ++i) {
        JsonValue row = JsonValue::object();
        row.set("gpms", static_cast<double>(gpm_counts[i]));
        row.set("latency-ms", latencies[i]);
        array.push(std::move(row));
    }
    return array;
}

serve::Request
fairRunRequest(const std::string &workload, const std::string &client,
               const std::string &id, int priority)
{
    serve::Request request;
    request.type = serve::RequestType::Run;
    request.id = id;
    request.client = client;
    request.priority = priority;
    request.spec.workload = workload;
    request.spec.gpms = 2;
    return request;
}

double
percentileMs(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    std::size_t index = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(index, samples.size() - 1)];
}

/** Reject accounting of the flooding client, for the JSON record. */
struct FloodTally
{
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> rejected{0};
};

/**
 * The light client's latencies: @p count memo-warm run requests,
 * paced @p pace_ms apart, each a blocking call().
 */
std::vector<double>
lightPass(serve::SimService &service, const char *phase, int count,
          std::int64_t pace_ms)
{
    static const char *const workloads[] = {"Stream", "BFS", "Kmeans",
                                            "Hotspot"};
    std::vector<double> latencies;
    latencies.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        serve::Request request = fairRunRequest(
            workloads[i % 4], "light",
            std::string("light-") + phase + "-" + std::to_string(i),
            /*priority=*/1);
        std::int64_t start = wallclock::nowMs();
        serve::Response response = service.call(std::move(request));
        if (response.status == serve::ResponseStatus::Ok)
            latencies.push_back(
                static_cast<double>(wallclock::nowMs() - start));
        wallclock::sleepMs(pace_ms);
    }
    return latencies;
}

} // namespace

int
main()
{
    using namespace mmgpu;

    serve::ServeOptions options;
    // One shard, so the pipelined sweep builds real backlog and the
    // queue-depth timeseries shows it draining (with two shards the
    // prefetch slots absorb all five studies and the queue never
    // grows).
    options.shards = 1;
    options.sampleMs = 100;     // fine-grained queue-depth series...
    options.timeseriesCap = 8192; // ...retained for the whole run
    serve::SimService service(options, bench::studyContext());
    service.runner().attachPersistentCache(nullptr);
    service.start();

    const std::vector<unsigned> gpm_counts =
        sim::tableThreeGpmCounts();

    std::printf("bench_serve: cold pass (%zu studies)...\n",
                gpm_counts.size());
    std::vector<double> cold = sweepLatencies(service, gpm_counts);
    std::printf("bench_serve: warm pass (memo-served)...\n");
    std::vector<double> warm = sweepLatencies(service, gpm_counts);

    double cold_total = 0.0, warm_total = 0.0;
    bool failed = false;
    for (std::size_t i = 0; i < gpm_counts.size(); ++i) {
        failed = failed || cold[i] < 0.0 || warm[i] < 0.0;
        cold_total += cold[i];
        warm_total += warm[i];
        std::printf("  %2u GPMs: cold %8.1f ms   warm %6.1f ms\n",
                    gpm_counts[i], cold[i], warm[i]);
    }
    serve::ServiceStats stats = service.stats();
    std::printf("bench_serve: cold %.1f ms total, warm %.1f ms "
                "total (x%.0f), %llu sims, p95 %.1f ms\n",
                cold_total, warm_total,
                warm_total > 0.0 ? cold_total / warm_total : 0.0,
                static_cast<unsigned long long>(
                    stats.simulationsStarted),
                stats.latencyP95Ms);

    // ---- Fairness under overload (per-client quotas) ----
    // A fresh service with the quota/shed gates armed: the flooding
    // client gets batch priority and no pacing; the light client
    // paces well under its own quota. Everything is memo-warm first,
    // so the measured latencies are service overhead + queueing —
    // exactly what the fairness gates are supposed to bound.
    serve::ServeOptions fair_options;
    fair_options.shards = 2;
    fair_options.quotaRatePerSec = 100.0;
    fair_options.quotaBurst = 16.0;
    serve::SimService fair(fair_options, bench::studyContext());
    fair.runner().attachPersistentCache(nullptr);
    fair.start();
    for (const char *workload : {"Stream", "BFS", "Kmeans", "Hotspot"})
        fair.call(fairRunRequest(workload, "warmup",
                                 std::string("warm-") + workload, 1));

    const int light_count = 100;
    const std::int64_t light_pace_ms = 25; // 40/s < its 100/s quota
    std::printf("bench_serve: fairness solo pass...\n");
    std::vector<double> solo =
        lightPass(fair, "solo", light_count, light_pace_ms);

    std::printf("bench_serve: fairness contended pass...\n");
    FloodTally flood;
    std::atomic<bool> flood_stop{false};
    std::atomic<std::size_t> flood_pending{0};
    std::mutex flood_mutex;
    std::condition_variable flood_cv;
    std::thread flooder([&] {
        std::uint64_t n = 0;
        while (!flood_stop.load()) {
            serve::Request request = fairRunRequest(
                "Stream", "flood", "flood-" + std::to_string(n++),
                /*priority=*/2);
            flood.submitted.fetch_add(1);
            flood_pending.fetch_add(1);
            fair.submit(std::move(request),
                        [&](const serve::Response &response) {
                            if (response.status ==
                                serve::ResponseStatus::Ok)
                                flood.ok.fetch_add(1);
                            else
                                flood.rejected.fetch_add(1);
                            if (flood_pending.fetch_sub(1) == 1) {
                                std::lock_guard<std::mutex> lock(
                                    flood_mutex);
                                flood_cv.notify_all();
                            }
                        });
            if (n % 64 == 0)
                wallclock::sleepMs(1); // yield; stay a flood
        }
    });
    std::vector<double> contended =
        lightPass(fair, "flooded", light_count, light_pace_ms);
    flood_stop.store(true);
    flooder.join();
    {
        std::unique_lock<std::mutex> lock(flood_mutex);
        flood_cv.wait(lock,
                      [&] { return flood_pending.load() == 0; });
    }

    double solo_p50 = percentileMs(solo, 0.50);
    double solo_p95 = percentileMs(solo, 0.95);
    double contended_p50 = percentileMs(contended, 0.50);
    double contended_p95 = percentileMs(contended, 0.95);
    // The 2x bound, with a small absolute floor so sub-millisecond
    // solo percentiles do not turn scheduler noise into a failure.
    double fairness_limit_ms = std::max(2.0 * solo_p95, 50.0);
    bool fairness_ok = !solo.empty() && !contended.empty() &&
                       solo.size() == contended.size() &&
                       contended_p95 <= fairness_limit_ms;
    serve::ServiceStats fair_stats = fair.stats();
    std::printf(
        "bench_serve: fairness light p95 %.1f ms solo -> %.1f ms "
        "flooded (limit %.1f ms), flood %llu submitted / %llu "
        "rejected: %s\n",
        solo_p95, contended_p95, fairness_limit_ms,
        static_cast<unsigned long long>(flood.submitted.load()),
        static_cast<unsigned long long>(flood.rejected.load()),
        fairness_ok ? "OK" : "FAILED");

    JsonValue doc = JsonValue::object();
    doc.set("bench", JsonValue("serve"));
    doc.set("sweep", JsonValue("fig6 (2x-BW scaling studies)"));
    doc.set("shards", static_cast<double>(options.shards));
    doc.set("cold", latencyArray(gpm_counts, cold));
    doc.set("warm", latencyArray(gpm_counts, warm));
    doc.set("cold-total-ms", cold_total);
    doc.set("warm-total-ms", warm_total);
    doc.set("cold-over-warm",
            warm_total > 0.0 ? cold_total / warm_total : 0.0);
    JsonValue stats_json = JsonValue::object();
    stats_json.set("completed", static_cast<double>(stats.completed));
    stats_json.set("simulations-started",
                   static_cast<double>(stats.simulationsStarted));
    stats_json.set("dedup-attached",
                   static_cast<double>(stats.dedupAttached));
    stats_json.set("affinity-hits",
                   static_cast<double>(stats.affinityHits));
    stats_json.set("latency-p50-ms", stats.latencyP50Ms);
    stats_json.set("latency-p95-ms", stats.latencyP95Ms);
    doc.set("stats", std::move(stats_json));
    JsonValue series = JsonValue::array();
    for (const serve::StatsSample &sample : service.timeseries()) {
        JsonValue row = JsonValue::object();
        row.set("t-ms", static_cast<double>(sample.tMs));
        row.set("queue-depth",
                static_cast<double>(sample.queueDepth));
        row.set("busy-shards",
                static_cast<double>(sample.busyShards));
        row.set("inflight", static_cast<double>(sample.inflight));
        series.push(std::move(row));
    }
    doc.set("queue-timeseries", std::move(series));

    JsonValue fairness = JsonValue::object();
    fairness.set("light-requests",
                 static_cast<double>(light_count));
    fairness.set("light-pace-ms",
                 static_cast<double>(light_pace_ms));
    fairness.set("quota-rate-per-sec", fair_options.quotaRatePerSec);
    fairness.set("quota-burst", fair_options.quotaBurst);
    fairness.set("solo-p50-ms", solo_p50);
    fairness.set("solo-p95-ms", solo_p95);
    fairness.set("flooded-p50-ms", contended_p50);
    fairness.set("flooded-p95-ms", contended_p95);
    fairness.set("limit-ms", fairness_limit_ms);
    fairness.set("flood-submitted",
                 static_cast<double>(flood.submitted.load()));
    fairness.set("flood-ok", static_cast<double>(flood.ok.load()));
    fairness.set("flood-rejected",
                 static_cast<double>(flood.rejected.load()));
    fairness.set("quota-rejected",
                 static_cast<double>(fair_stats.quotaRejected));
    fairness.set("shed", static_cast<double>(fair_stats.shed));
    fairness.set("ok", JsonValue(fairness_ok));
    doc.set("fairness", std::move(fairness));

    std::ofstream out("BENCH_serve.json");
    doc.write(out);
    out << "\n";
    std::printf("bench_serve: wrote BENCH_serve.json\n");

    fair.beginShutdown();
    fair.join();
    service.beginShutdown();
    service.join();
    return failed || !fairness_ok ? 1 : 0;
}
