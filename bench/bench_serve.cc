/**
 * @file
 * Service-layer bench: what does the daemon add on top of the
 * simulations it serves, and what does its memo reuse buy?
 *
 * Drives the Figure 6 sweep (a full scaling study per Table III
 * module count) through an in-process SimService twice:
 *
 *   cold  every study simulates from scratch (empty memo cache);
 *         latency is dominated by simulation itself
 *   warm  the same requests again; everything is served from the
 *         runner's memo cache, so latency IS the service overhead
 *         (admission, routing, dedup bookkeeping, encoding)
 *
 * The warm pass is pipelined (all studies submitted before any
 * response is awaited) so the admission queue actually fills and the
 * housekeeper's queue-depth timeseries shows real backlog. Results
 * land in BENCH_serve.json: per-request cold/warm latencies, the
 * cold:warm ratio, service stats, and the queue-depth timeseries.
 */

#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/json.hh"
#include "common/wallclock.hh"
#include "serve/service.hh"
#include "sim/gpu_config.hh"

namespace
{

using namespace mmgpu;

serve::Request
studyRequest(unsigned gpms)
{
    serve::Request request;
    request.type = serve::RequestType::Study;
    request.id = "fig6-" + std::to_string(gpms);
    request.spec.workload = "all";
    request.spec.gpms = gpms;
    request.spec.bw = sim::BwSetting::Bw2x;
    return request;
}

/** Latencies of one pass over the Figure 6 sweep, pipelined. */
std::vector<double>
sweepLatencies(serve::SimService &service,
               const std::vector<unsigned> &gpm_counts)
{
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t pending = gpm_counts.size();
    std::vector<double> latencies(gpm_counts.size(), 0.0);
    std::vector<std::int64_t> submitted(gpm_counts.size(), 0);

    for (std::size_t i = 0; i < gpm_counts.size(); ++i) {
        submitted[i] = wallclock::nowMs();
        service.submit(
            studyRequest(gpm_counts[i]),
            [&, i](const serve::Response &response) {
                std::lock_guard<std::mutex> lock(mutex);
                latencies[i] = static_cast<double>(
                    wallclock::nowMs() - submitted[i]);
                if (response.status != serve::ResponseStatus::Ok)
                    latencies[i] = -latencies[i]; // flag failures
                --pending;
                cv.notify_all();
            });
    }
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return pending == 0; });
    return latencies;
}

JsonValue
latencyArray(const std::vector<unsigned> &gpm_counts,
             const std::vector<double> &latencies)
{
    JsonValue array = JsonValue::array();
    for (std::size_t i = 0; i < gpm_counts.size(); ++i) {
        JsonValue row = JsonValue::object();
        row.set("gpms", static_cast<double>(gpm_counts[i]));
        row.set("latency-ms", latencies[i]);
        array.push(std::move(row));
    }
    return array;
}

} // namespace

int
main()
{
    using namespace mmgpu;

    serve::ServeOptions options;
    // One shard, so the pipelined sweep builds real backlog and the
    // queue-depth timeseries shows it draining (with two shards the
    // prefetch slots absorb all five studies and the queue never
    // grows).
    options.shards = 1;
    options.sampleMs = 100;     // fine-grained queue-depth series...
    options.timeseriesCap = 8192; // ...retained for the whole run
    serve::SimService service(options, bench::studyContext());
    service.runner().attachPersistentCache(nullptr);
    service.start();

    const std::vector<unsigned> gpm_counts =
        sim::tableThreeGpmCounts();

    std::printf("bench_serve: cold pass (%zu studies)...\n",
                gpm_counts.size());
    std::vector<double> cold = sweepLatencies(service, gpm_counts);
    std::printf("bench_serve: warm pass (memo-served)...\n");
    std::vector<double> warm = sweepLatencies(service, gpm_counts);

    double cold_total = 0.0, warm_total = 0.0;
    bool failed = false;
    for (std::size_t i = 0; i < gpm_counts.size(); ++i) {
        failed = failed || cold[i] < 0.0 || warm[i] < 0.0;
        cold_total += cold[i];
        warm_total += warm[i];
        std::printf("  %2u GPMs: cold %8.1f ms   warm %6.1f ms\n",
                    gpm_counts[i], cold[i], warm[i]);
    }
    serve::ServiceStats stats = service.stats();
    std::printf("bench_serve: cold %.1f ms total, warm %.1f ms "
                "total (x%.0f), %llu sims, p95 %.1f ms\n",
                cold_total, warm_total,
                warm_total > 0.0 ? cold_total / warm_total : 0.0,
                static_cast<unsigned long long>(
                    stats.simulationsStarted),
                stats.latencyP95Ms);

    JsonValue doc = JsonValue::object();
    doc.set("bench", JsonValue("serve"));
    doc.set("sweep", JsonValue("fig6 (2x-BW scaling studies)"));
    doc.set("shards", static_cast<double>(options.shards));
    doc.set("cold", latencyArray(gpm_counts, cold));
    doc.set("warm", latencyArray(gpm_counts, warm));
    doc.set("cold-total-ms", cold_total);
    doc.set("warm-total-ms", warm_total);
    doc.set("cold-over-warm",
            warm_total > 0.0 ? cold_total / warm_total : 0.0);
    JsonValue stats_json = JsonValue::object();
    stats_json.set("completed", static_cast<double>(stats.completed));
    stats_json.set("simulations-started",
                   static_cast<double>(stats.simulationsStarted));
    stats_json.set("dedup-attached",
                   static_cast<double>(stats.dedupAttached));
    stats_json.set("affinity-hits",
                   static_cast<double>(stats.affinityHits));
    stats_json.set("latency-p50-ms", stats.latencyP50Ms);
    stats_json.set("latency-p95-ms", stats.latencyP95Ms);
    doc.set("stats", std::move(stats_json));
    JsonValue series = JsonValue::array();
    for (const serve::StatsSample &sample : service.timeseries()) {
        JsonValue row = JsonValue::object();
        row.set("t-ms", static_cast<double>(sample.tMs));
        row.set("queue-depth",
                static_cast<double>(sample.queueDepth));
        row.set("busy-shards",
                static_cast<double>(sample.busyShards));
        row.set("inflight", static_cast<double>(sample.inflight));
        series.push(std::move(row));
    }
    doc.set("queue-timeseries", std::move(series));

    std::ofstream out("BENCH_serve.json");
    doc.write(out);
    out << "\n";
    std::printf("bench_serve: wrote BENCH_serve.json\n");

    service.beginShutdown();
    service.join();
    return failed ? 1 : 0;
}
